"""Unit tests for the chaos harness itself (schedules, spec parsing)."""

import pytest

from repro import RaSQLContext
from repro.chaos import (
    ChaosSchedule,
    make_schedule,
    parse_fault_spec,
    run_with_chaos,
)
from repro.engine.faults import FailureInjector, WorkerLossInjector


class TestMakeSchedule:
    def test_deterministic_per_seed(self):
        a, b = make_schedule(42), make_schedule(42)
        assert a.describe() == b.describe()

    def test_seeds_differ(self):
        described = {make_schedule(seed).describe() for seed in range(20)}
        assert len(described) > 1

    def test_composition(self):
        schedule = make_schedule(7, task_deaths=3, worker_losses=2)
        assert len(schedule.task_injectors) == 3
        assert len(schedule.loss_injectors) == 2
        for injector in schedule.task_injectors:
            assert injector.point in ("before", "after")

    def test_arm_installs_on_cluster(self):
        ctx = RaSQLContext(num_workers=2)
        schedule = make_schedule(3)
        schedule.arm(ctx.cluster)
        assert len(ctx.cluster.failure_injectors) == 2
        assert len(ctx.cluster.worker_loss_injectors) == 1


class TestParseFaultSpec:
    def test_task_spec(self):
        injector = parse_fault_spec(
            "task:fixpoint:task_index=1:point=after:times=2")
        assert isinstance(injector, FailureInjector)
        assert injector.stage_pattern == "fixpoint"
        assert injector.task_index == 1
        assert injector.point == "after"
        assert injector.times == 2

    def test_task_any_index_and_persistent(self):
        injector = parse_fault_spec("task:map:task_index=any:persistent=true")
        assert injector.task_index is None
        assert injector.persistent is True

    def test_worker_loss_spec(self):
        injector = parse_fault_spec(
            "worker-loss:fixpoint:worker=2:at_task=1:skip_matches=3")
        assert isinstance(injector, WorkerLossInjector)
        assert injector.worker == 2
        assert injector.at_task == 1
        assert injector.skip_matches == 3

    def test_worker_auto(self):
        assert parse_fault_spec("worker-loss:fixpoint:worker=auto").worker is None

    @pytest.mark.parametrize("bad", [
        "nonsense",
        "explode:fixpoint",
        "task:fixpoint:badoption",
        "task:fixpoint:times=soon",
    ])
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(ValueError):
            parse_fault_spec(bad)


class TestRunWithChaos:
    EDGES = [(1, 2, 1.0), (2, 3, 2.0), (1, 3, 5.0), (3, 4, 1.0), (4, 2, 1.0)]
    QUERY = """
        WITH recursive path(Dst, min() AS Cost) AS
          (SELECT 1, 0) UNION
          (SELECT edge.Dst, path.Cost + edge.Cost
           FROM path, edge WHERE path.Dst = edge.Src)
        SELECT Dst, Cost FROM path
    """

    def make_context(self):
        ctx = RaSQLContext(num_workers=4)
        ctx.register_table("edge", ["Src", "Dst", "Cost"], self.EDGES)
        return ctx

    def test_exact_match_and_counters(self):
        report = run_with_chaos(self.QUERY, self.make_context,
                                make_schedule(11, num_workers=4))
        assert report.matches
        assert report.baseline_rows == report.chaos_rows
        task_fired, losses_fired = report.schedule.injected_counts()
        assert report.counters["task_failures"] == task_fired
        assert report.counters["workers_lost"] == losses_fired
        assert report.overhead_seconds >= 0
        assert "EXACT" in report.summary()

    def test_empty_schedule_is_free(self):
        report = run_with_chaos(self.QUERY, self.make_context,
                                ChaosSchedule(seed=0))
        assert report.matches
        assert report.counters["task_failures"] == 0
        assert report.counters["recovery_seconds"] == 0
        # The two runs do the same work; only measured-CPU jitter differs.
        assert abs(report.overhead_seconds) < \
            0.2 * report.baseline_sim_time + 0.01

    def test_trace_shows_recovery(self):
        from repro.engine.tracing import format_explain_analyze

        report = run_with_chaos(
            self.QUERY, self.make_context,
            ChaosSchedule(seed=0, injectors=[
                WorkerLossInjector("fixpoint", worker=1, at_task=1)]))
        assert report.matches
        rendered = format_explain_analyze(report.trace)
        assert "fault recovery" in rendered
        assert "workers lost: 1" in rendered
