"""Unit tests for file IO and the CLI."""

import subprocess
import sys

import pytest

from repro.io import load_table, read_csv, read_edge_list, write_csv
from repro.relation import Relation


class TestEdgeList:
    def test_basic(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text("# comment\n1 2\n2 3\n\n3 1\n")
        relation = read_edge_list(path)
        assert relation.columns == ("Src", "Dst")
        assert relation.rows == [(1, 2), (2, 3), (3, 1)]

    def test_weighted_gets_cost_column(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text("1\t2\t0.5\n")
        relation = read_edge_list(path)
        assert relation.columns == ("Src", "Dst", "Cost")
        assert relation.rows == [(1, 2, 0.5)]

    def test_ragged_rejected(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text("1 2\n1 2 3\n")
        with pytest.raises(ValueError, match="ragged"):
            read_edge_list(path)

    def test_custom_columns(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text("a b\n")
        relation = read_edge_list(path, columns=["Parent", "Child"])
        assert relation.columns == ("Parent", "Child")
        assert relation.rows == [("a", "b")]


class TestCsv:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "sales.csv"
        original = Relation("sales", ["M", "P"], [(1, 10.5), (2, 20.0)])
        write_csv(original, path)
        loaded = read_csv(path)
        assert loaded.columns == ("M", "P")
        assert loaded.rows == original.rows

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_csv(path)

    def test_load_table_dispatch(self, tmp_path):
        csv_path = tmp_path / "t.csv"
        csv_path.write_text("A,B\n1,2\n")
        tsv_path = tmp_path / "t.tsv"
        tsv_path.write_text("1 2\n")
        assert load_table(csv_path).columns == ("A", "B")
        assert load_table(tsv_path).columns == ("Src", "Dst")


class TestCli:
    def run_cli(self, *argv, stdin=None):
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True, text=True, input=stdin)

    def test_inline_query(self, tmp_path):
        graph = tmp_path / "g.tsv"
        graph.write_text("1 2 1.0\n2 3 2.0\n")
        proc = self.run_cli(
            "--table", f"edge={graph}",
            "-q", """WITH recursive path(Dst, min() AS Cost) AS
                     (SELECT 1, 0) UNION
                     (SELECT edge.Dst, path.Cost + edge.Cost
                      FROM path, edge WHERE path.Dst = edge.Src)
                     SELECT Dst, Cost FROM path""")
        assert proc.returncode == 0, proc.stderr
        assert "3 | 3.0" in proc.stdout
        assert "fixpoint iterations" in proc.stderr

    def test_explain_mode(self, tmp_path):
        graph = tmp_path / "g.tsv"
        graph.write_text("1 2\n")
        proc = self.run_cli("--table", f"edge={graph}", "--explain",
                            "-q", "SELECT Src FROM edge")
        assert proc.returncode == 0
        assert "Final: SELECT Src FROM edge" in proc.stdout

    def test_query_from_stdin_and_csv_output(self, tmp_path):
        graph = tmp_path / "g.tsv"
        graph.write_text("1 2\n2 3\n")
        out = tmp_path / "result.csv"
        proc = self.run_cli("--table", f"edge={graph}",
                            "--output", str(out), "-",
                            stdin="SELECT count(*) FROM edge")
        assert proc.returncode == 0, proc.stderr
        assert out.read_text().splitlines()[1] == "2"

    def test_check_prem_mode(self, tmp_path):
        graph = tmp_path / "g.tsv"
        graph.write_text("1 2 1.0\n2 3 2.0\n")
        proc = self.run_cli(
            "--table", f"edge={graph}", "--check-prem",
            "-q", """WITH recursive path(Dst, min() AS Cost) AS
                     (SELECT 1, 0) UNION
                     (SELECT edge.Dst, path.Cost + edge.Cost
                      FROM path, edge WHERE path.Dst = edge.Src)
                     SELECT Dst, Cost FROM path""")
        assert proc.returncode == 0, proc.stderr
        assert "PreM held" in proc.stdout
        assert "facts(T^i)" in proc.stdout

    def test_check_prem_flags_violation(self, tmp_path):
        graph = tmp_path / "g.tsv"
        graph.write_text("1 2 1.0\n1 3 1.0\n3 2 1.0\n2 4 1.0\n")
        proc = self.run_cli(
            "--table", f"edge={graph}", "--check-prem",
            "-q", """WITH recursive path(Dst, min() AS Cost) AS
                     (SELECT 1, 0) UNION
                     (SELECT edge.Dst, 10 - path.Cost
                      FROM path, edge WHERE path.Dst = edge.Src)
                     SELECT Dst, Cost FROM path""")
        assert proc.returncode == 1
        assert "VIOLATED" in proc.stdout

    def test_missing_query_errors(self):
        proc = self.run_cli()
        assert proc.returncode != 0
        assert "provide a query" in proc.stderr

    def test_bad_table_spec_errors(self):
        proc = self.run_cli("--table", "nopath", "-q", "SELECT 1")
        assert proc.returncode != 0
