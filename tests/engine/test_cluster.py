"""Unit tests for the simulated cluster: stages, shuffle, broadcast, load."""

import pytest

from repro.engine.cluster import Cluster, StageTask
from repro.engine.partitioner import HashPartitioner
from repro.engine.scheduler import PartitionAwarePolicy


def make_cluster(**kwargs):
    kwargs.setdefault("num_workers", 4)
    return Cluster(**kwargs)


class TestPlacement:
    def test_canonical_worker_is_stable(self):
        cluster = make_cluster()
        assert cluster.worker_for_partition(5) == 5 % 4
        assert cluster.worker_for_partition(5) == cluster.worker_for_partition(5)

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            Cluster(num_workers=0)


class TestParallelize:
    def test_keyed_rows_land_with_partitioner(self):
        cluster = make_cluster(num_partitions=8)
        rows = [(i, i * 10) for i in range(100)]
        ds = cluster.parallelize(rows, key_indices=(0,))
        partitioner = HashPartitioner(8)
        for partition in ds.partitions:
            for row in partition.rows:
                assert partitioner.partition_of(row[0]) == partition.index

    def test_partitions_live_on_canonical_workers(self):
        cluster = make_cluster(num_partitions=8)
        ds = cluster.parallelize([(i,) for i in range(20)], key_indices=(0,))
        for partition in ds.partitions:
            assert partition.worker == cluster.worker_for_partition(partition.index)

    def test_unkeyed_rows_round_robin_chunks(self):
        cluster = make_cluster(num_partitions=4)
        ds = cluster.parallelize([(i,) for i in range(10)])
        assert ds.num_rows() == 10
        assert ds.partitioner is None

    def test_no_rows_lost(self):
        cluster = make_cluster(num_partitions=5)
        rows = [(i, str(i)) for i in range(77)]
        ds = cluster.parallelize(rows, key_indices=(1,))
        assert sorted(ds.collect()) == sorted(rows)

    def test_load_charges_time(self):
        cluster = make_cluster()
        before = cluster.metrics.sim_time
        cluster.load([(i, i) for i in range(1000)], key_indices=(0,))
        assert cluster.metrics.sim_time > before
        assert cluster.metrics.get("load_bytes") > 0


class TestRunStage:
    def test_executes_tasks_and_counts(self):
        cluster = make_cluster()
        ds = cluster.parallelize([(i,) for i in range(40)], key_indices=(0,))
        tasks = [StageTask(p.index, [p], lambda rows: len(rows))
                 for p in ds.partitions]
        results = cluster.run_stage("count", tasks)
        assert sum(r.output for r in results) == 40
        assert cluster.metrics.get("stages") == 1
        assert cluster.metrics.get("tasks") == len(tasks)

    def test_partition_aware_policy_causes_no_remote_fetches(self):
        cluster = make_cluster(scheduler="partition_aware", num_partitions=8)
        ds = cluster.parallelize([(i, i) for i in range(200)], key_indices=(0,))
        tasks = [StageTask(p.index, [p], lambda rows: rows,
                           preferred_worker=p.worker)
                 for p in ds.partitions]
        cluster.run_stage("identity", tasks)
        assert cluster.metrics.get("remote_fetches") == 0

    def test_default_policy_causes_remote_fetches_eventually(self):
        cluster = make_cluster(scheduler="default", num_partitions=8)
        ds = cluster.parallelize([(i, i) for i in range(200)], key_indices=(0,))
        for _ in range(10):
            tasks = [StageTask(p.index, [p], lambda rows: rows,
                               preferred_worker=p.worker)
                     for p in ds.partitions]
            cluster.run_stage("identity", tasks)
        assert cluster.metrics.get("remote_fetches") > 0

    def test_stage_advances_sim_clock(self):
        cluster = make_cluster()
        before = cluster.metrics.sim_time
        cluster.run_stage("noop", [StageTask(0, [], lambda: None)])
        assert cluster.metrics.sim_time >= before + cluster.cost_model.stage_overhead_s


class TestExchange:
    def test_rows_arrive_at_target_partitions(self):
        cluster = make_cluster(num_partitions=4)
        partitioner = HashPartitioner(4)
        buckets = {}
        rows = [(i, f"v{i}") for i in range(50)]
        for row in rows:
            buckets.setdefault(partitioner.partition_of(row[0]), []).append(row)
        ds = cluster.exchange([(0, buckets)], 4, partitioner, key_indices=(0,))
        assert sorted(ds.collect()) == sorted(rows)
        for partition in ds.partitions:
            for row in partition.rows:
                assert partitioner.partition_of(row[0]) == partition.index

    def test_local_buckets_are_free_of_network(self):
        cluster = make_cluster(num_partitions=4)
        partitioner = HashPartitioner(4)
        # All data already on the target's worker: source worker == target.
        buckets = {1: [(1, "x")]}
        source = cluster.worker_for_partition(1)
        cluster.exchange([(source, buckets)], 4, partitioner)
        assert cluster.metrics.get("shuffle_remote_bytes") == 0

    def test_cross_worker_buckets_charged(self):
        cluster = make_cluster(num_partitions=4)
        partitioner = HashPartitioner(4)
        source = (cluster.worker_for_partition(1) + 1) % 4
        cluster.exchange([(source, {1: [(1, "x")] * 10})], 4, partitioner)
        assert cluster.metrics.get("shuffle_remote_bytes") > 0


class TestBroadcast:
    def test_plain_broadcast_counts_bytes(self):
        cluster = make_cluster()
        rows = [(i, i) for i in range(100)]
        b = cluster.broadcast(rows)
        assert b.value is rows
        assert cluster.metrics.get("broadcast_bytes") == b.nbytes

    def test_compressed_broadcast_is_smaller(self):
        c1, c2 = make_cluster(), make_cluster()
        rows = [(i, i) for i in range(1000)]
        plain = c1.broadcast(rows)
        compressed = c2.broadcast(rows, compress=True)
        assert compressed.nbytes < plain.nbytes

    def test_hash_table_shipping_is_larger(self):
        c1, c2 = make_cluster(), make_cluster()
        rows = [(i, i) for i in range(1000)]
        raw = c1.broadcast(rows)
        shipped = c2.broadcast(rows, ship_hash_table=True)
        assert shipped.nbytes > raw.nbytes

    def test_broadcast_advances_clock(self):
        cluster = make_cluster()
        before = cluster.metrics.sim_time
        cluster.broadcast([(1, 2)] * 10)
        assert cluster.metrics.sim_time > before


class TestSimulatedParallelism:
    def test_more_workers_reduce_stage_time(self):
        """A stage of N equal tasks takes ~N/W worker time: the scale-out
        mechanism behind Figure 12."""
        def busy(rows):
            return sum(i * i for i in range(3000))

        times = {}
        for workers in (1, 4):
            cluster = Cluster(num_workers=workers, num_partitions=8)
            ds = cluster.parallelize([(i,) for i in range(8)], key_indices=(0,))
            tasks = [StageTask(p.index, [p], busy) for p in ds.partitions]
            cluster.run_stage("busy", tasks)
            times[workers] = cluster.metrics.sim_time
        assert times[4] < times[1]
