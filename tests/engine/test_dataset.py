"""Unit tests for Dataset/Partition."""

from repro.engine.dataset import Dataset, Partition, from_rows_single_partition
from repro.engine.partitioner import HashPartitioner


class TestPartition:
    def test_size_memoized(self):
        partition = Partition(0, [(1, 2)] * 10)
        first = partition.size_bytes()
        assert partition.size_bytes() == first
        assert first > 0

    def test_len(self):
        assert len(Partition(0, [(1,), (2,)])) == 2


class TestDataset:
    def make(self, partitioner=None, key=None):
        parts = [Partition(0, [(1, "a")], 0), Partition(1, [(2, "b")], 1)]
        return Dataset(parts, partitioner, key)

    def test_collect_in_partition_order(self):
        assert self.make().collect() == [(1, "a"), (2, "b")]

    def test_num_rows(self):
        assert self.make().num_rows() == 2

    def test_iteration(self):
        assert list(self.make()) == [(1, "a"), (2, "b")]

    def test_co_partitioning_requires_same_partitioner(self):
        p4 = HashPartitioner(2)
        a = self.make(p4, (0,))
        b = self.make(HashPartitioner(2), (1,))
        c = self.make(HashPartitioner(3), (0,))
        d = self.make(None, None)
        assert a.is_co_partitioned_with(b)  # key positions may differ
        assert not a.is_co_partitioned_with(c)
        assert not a.is_co_partitioned_with(d)

    def test_map_partitions_local(self):
        ds = self.make(HashPartitioner(2), (0,))
        doubled = ds.map_partitions(lambda i, rows: rows * 2)
        assert doubled.num_rows() == 4
        assert doubled.partitioner is None  # not preserved by default
        kept = ds.map_partitions(lambda i, rows: rows,
                                 preserve_partitioning=True)
        assert kept.partitioner == ds.partitioner

    def test_from_rows_helper(self):
        ds = from_rows_single_partition([[1, 2], [3, 4]], worker=2)
        assert ds.partitions[0].worker == 2
        assert ds.collect() == [(1, 2), (3, 4)]
