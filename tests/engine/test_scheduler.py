"""Unit tests for the scheduling policies (Section 6.1)."""

import pytest

from repro.engine.scheduler import (
    DefaultPolicy,
    PartitionAwarePolicy,
    TaskSpec,
    make_policy,
)


def specs(n, preferred=None):
    return [TaskSpec(i, preferred[i] if preferred else i) for i in range(n)]


class TestPartitionAware:
    def test_always_honours_preference(self):
        policy = PartitionAwarePolicy()
        preferred = [3, 1, 0, 2]
        assert policy.assign(specs(4, preferred), 4) == preferred

    def test_wraps_preference_modulo_workers(self):
        policy = PartitionAwarePolicy()
        tasks = [TaskSpec(0, 7)]
        assert policy.assign(tasks, 4) == [3]

    def test_no_preference_falls_back_to_index(self):
        policy = PartitionAwarePolicy()
        tasks = [TaskSpec(5, None)]
        assert policy.assign(tasks, 4) == [1]


class TestDefaultPolicy:
    def test_deterministic_per_seed(self):
        a = DefaultPolicy(seed=3).assign(specs(100), 4)
        b = DefaultPolicy(seed=3).assign(specs(100), 4)
        assert a == b

    def test_different_seeds_differ(self):
        a = DefaultPolicy(seed=3).assign(specs(100), 4)
        b = DefaultPolicy(seed=4).assign(specs(100), 4)
        assert a != b

    def test_miss_rate_near_configured(self):
        policy = DefaultPolicy(miss_probability=0.35, seed=1)
        preferred = list(range(4)) * 250
        tasks = [TaskSpec(i, p) for i, p in enumerate(preferred)]
        assignments = policy.assign(tasks, 4)
        misses = sum(1 for got, want in zip(assignments, preferred)
                     if got != want)
        # A miss re-rolls uniformly, so ~1/4 of misses land home anyway:
        # expected observable miss rate = 0.35 * 3/4 ≈ 0.26.
        assert 0.15 < misses / len(tasks) < 0.40

    def test_zero_miss_probability_equals_partition_aware(self):
        policy = DefaultPolicy(miss_probability=0.0, seed=1)
        preferred = [2, 0, 3, 1]
        assert policy.assign(specs(4, preferred), 4) == preferred

    def test_workers_in_range(self):
        policy = DefaultPolicy(seed=9)
        for worker in policy.assign(specs(200), 5):
            assert 0 <= worker < 5


class TestFactory:
    def test_makes_both_policies(self):
        assert isinstance(make_policy("partition_aware"), PartitionAwarePolicy)
        assert isinstance(make_policy("default"), DefaultPolicy)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            make_policy("round_robin")


class TestHealthHardening:
    """No policy may ever place a task on a dead/blacklisted worker, and
    an exhausted pool must fail typed — not hang or throw IndexError."""

    def test_no_policy_assigns_outside_healthy_pool(self):
        # Seeded property sweep: random pools, random preferences (some
        # pointing at unhealthy workers), both policies.
        import random

        from repro.engine.scheduler import fallback_worker

        rng = random.Random(20260808)
        for trial in range(300):
            num_workers = rng.randint(1, 8)
            pool = sorted(rng.sample(range(num_workers),
                                     rng.randint(1, num_workers)))
            tasks = [TaskSpec(i, rng.choice(
                         [None, rng.randrange(num_workers * 2)]))
                     for i in range(rng.randint(0, 12))]
            for policy in (PartitionAwarePolicy(),
                           DefaultPolicy(seed=trial)):
                assignments = policy.assign(tasks, num_workers, healthy=pool)
                assert len(assignments) == len(tasks)
                assert all(worker in pool for worker in assignments), (
                    f"trial {trial}: {policy.name} escaped the healthy "
                    f"pool {pool}: {assignments}")
            for preferred in range(num_workers):
                assert fallback_worker(preferred, pool) in pool

    def test_empty_pool_raises_typed_error(self):
        from repro.engine.scheduler import fallback_worker
        from repro.errors import NoHealthyWorkersError

        for policy in (PartitionAwarePolicy(), DefaultPolicy(seed=3)):
            with pytest.raises(NoHealthyWorkersError):
                policy.assign(specs(3), 4, healthy=[])
        with pytest.raises(NoHealthyWorkersError):
            fallback_worker(2, [])

    def test_empty_stage_on_empty_pool_is_a_noop(self):
        # Zero tasks need zero workers; scheduling must not fail.
        for policy in (PartitionAwarePolicy(), DefaultPolicy(seed=3)):
            assert policy.assign([], 4, healthy=[]) == []
