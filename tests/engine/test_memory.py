"""Unit tests for the per-worker memory manager (resource governance)."""

import pytest

from repro.engine.memory import MemoryConfig, MemoryManager
from repro.engine.metrics import CostModel, MetricsRegistry
from repro.errors import MemoryBudgetExceededError


def make_manager(num_workers=2, **config_kwargs):
    metrics = MetricsRegistry()
    manager = MemoryManager(num_workers, MemoryConfig(**config_kwargs),
                            metrics, CostModel())
    return manager, metrics


class TestMemoryConfig:
    def test_defaults_unbounded(self):
        config = MemoryConfig()
        assert config.worker_budget_bytes is None
        assert config.spill_enabled

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_rejects_nonpositive_budget(self, bad):
        with pytest.raises(ValueError, match="worker_budget_bytes"):
            MemoryConfig(worker_budget_bytes=bad)


class TestCharging:
    def test_charge_tracks_resident_per_worker(self):
        manager, _ = make_manager()
        manager.charge("state", "path", 0, 0, 100)
        manager.charge("state", "path", 1, 1, 40)
        assert manager.resident_bytes(0) == 100
        assert manager.resident_bytes(1) == 40
        assert manager.resident_bytes() == 140

    def test_recharge_resizes_in_place(self):
        manager, _ = make_manager()
        manager.charge("state", "path", 0, 0, 100)
        manager.charge("state", "path", 0, 0, 250)
        assert manager.resident_bytes(0) == 250

    def test_recharge_rehomes_bytes_after_worker_move(self):
        manager, _ = make_manager()
        manager.charge("state", "path", 0, 0, 100)
        manager.charge("state", "path", 0, 1, 100)
        assert manager.resident_bytes(0) == 0
        assert manager.resident_bytes(1) == 100

    def test_high_water_counter_is_running_max(self):
        manager, metrics = make_manager()
        manager.charge("state", "path", 0, 0, 100)
        manager.charge("shuffle", "x0", 0, 0, 50)
        manager.release("shuffle", "x0", 0)
        manager.charge("shuffle", "x1", 0, 0, 20)
        assert manager.high_water_bytes(0) == 150
        assert metrics.get("memory_hwm_bytes_w0") == 150

    def test_touch_unknown_key_is_noop(self):
        manager, _ = make_manager()
        manager.touch("state", "never-charged", 3)
        assert manager.resident_bytes() == 0


class TestRelease:
    def test_release_group_frees_all_partitions(self):
        manager, _ = make_manager()
        manager.charge("shuffle", "x0", 0, 0, 10)
        manager.charge("shuffle", "x0", 1, 1, 20)
        manager.charge("shuffle", "x1", 0, 0, 30)
        manager.release_group("shuffle", "x0")
        assert manager.resident_bytes() == 30

    def test_release_all_clears_everything(self):
        manager, _ = make_manager()
        manager.charge("state", "a", 0, 0, 10)
        manager.charge("base", "1", 1, 1, 20)
        manager.release_all()
        assert manager.resident_bytes() == 0
        assert manager.spilled_bytes() == 0

    def test_release_spilled_segment(self):
        manager, _ = make_manager(worker_budget_bytes=100)
        manager.charge("state", "a", 0, 0, 80)
        manager.charge("state", "b", 0, 0, 80)  # spills "a"
        assert manager.spilled_bytes(0) == 80
        manager.release("state", "a", 0)
        assert manager.spilled_bytes(0) == 0


class TestSpill:
    def test_spill_evicts_least_recently_touched(self):
        manager, metrics = make_manager(worker_budget_bytes=250)
        manager.charge("state", "cold", 0, 0, 100)
        manager.charge("state", "warm", 0, 0, 100)
        manager.touch("state", "cold", 0)  # now "warm" is coldest
        manager.charge("state", "hot", 0, 0, 100)  # forces one spill
        assert metrics.get("spill_events") == 1
        assert manager.spilled_bytes(0) == 100
        # The un-touched segment was the victim: touching it reads it
        # back (unspill) and in turn evicts another victim.
        before = metrics.get("unspill_events")
        manager.touch("state", "warm", 0)
        assert metrics.get("unspill_events") == before + 1

    def test_spill_charges_simulated_disk_time(self):
        manager, metrics = make_manager(worker_budget_bytes=100)
        manager.charge("state", "a", 0, 0, 80)
        t0 = metrics.sim_time
        manager.charge("state", "b", 0, 0, 80)
        assert metrics.sim_time > t0
        assert metrics.get("spill_bytes") == 80
        assert metrics.get("spill_seconds") > 0

    def test_charged_segment_never_its_own_victim(self):
        manager, metrics = make_manager(worker_budget_bytes=100)
        manager.charge("state", "a", 0, 0, 60)
        manager.charge("state", "b", 0, 0, 90)  # a spills, b stays
        assert manager.resident_bytes(0) == 90
        assert metrics.get("spill_events") == 1

    def test_unspillable_segments_stay_resident(self):
        manager, _ = make_manager(worker_budget_bytes=100)
        manager.charge("state", "pinned", 0, 0, 60, spillable=False)
        with pytest.raises(MemoryBudgetExceededError):
            manager.charge("state", "b", 0, 0, 90)

    def test_workers_isolated(self):
        manager, metrics = make_manager(worker_budget_bytes=100)
        manager.charge("state", "a", 0, 0, 90)
        manager.charge("state", "b", 1, 1, 90)
        assert metrics.get("spill_events") == 0


class TestHardBudget:
    def test_oversized_working_set_raises(self):
        manager, _ = make_manager(worker_budget_bytes=50)
        with pytest.raises(MemoryBudgetExceededError) as info:
            manager.charge("state", "huge", 0, 0, 200)
        error = info.value
        assert error.worker == 0
        assert error.requested_bytes == 200
        assert error.budget_bytes == 50
        assert "spill" in str(error)

    def test_spill_disabled_raises_immediately(self):
        manager, _ = make_manager(worker_budget_bytes=100,
                                  spill_enabled=False)
        manager.charge("state", "a", 0, 0, 80)
        with pytest.raises(MemoryBudgetExceededError):
            manager.charge("state", "b", 0, 0, 80)

    def test_reset_budget_restores_configured(self):
        manager, _ = make_manager(worker_budget_bytes=500)
        manager.set_budget(10, soft=True)
        manager.reset_budget()
        assert manager.budget_bytes == 500
        assert not manager.soft


class TestSoftBudget:
    def test_apply_pressure_spills_but_never_raises(self):
        manager, metrics = make_manager()
        manager.charge("state", "a", 0, 0, 100)
        manager.charge("state", "b", 0, 0, 100)
        budget = manager.apply_pressure(0.4)
        assert budget == 80
        assert manager.soft
        assert metrics.get("memory_pressure_events") == 1
        assert metrics.get("spill_events") >= 1
        # Even a working set larger than the soft budget degrades
        # (overflow counter) instead of raising.
        manager.charge("state", "big", 0, 0, 500)
        assert metrics.get("memory_budget_overflows") >= 1


class TestIterationHighWater:
    def test_begin_iteration_resets_to_current_resident(self):
        manager, _ = make_manager()
        manager.charge("state", "a", 0, 0, 100)
        manager.charge("shuffle", "x0", 0, 0, 300)
        manager.release_group("shuffle", "x0")
        manager.begin_iteration()
        manager.charge("shuffle", "x1", 0, 0, 50)
        hwm = manager.iteration_high_water()
        assert hwm[0] == 150  # not the 400 peak of the previous iteration
