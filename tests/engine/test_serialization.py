"""Unit tests for the wire-size model and compression codec."""

from repro.engine.serialization import (
    CompressionCodec,
    HASH_TABLE_BLOWUP,
    row_size,
    rows_size,
    value_size,
)


class TestSizeModel:
    def test_numeric_values(self):
        assert value_size(42) == 8
        assert value_size(3.14) == 8

    def test_string_values_scale_with_length(self):
        assert value_size("abcd") == 4
        assert value_size("") == 0
        assert value_size("ab" * 100) == 200

    def test_unicode_measured_in_bytes(self):
        assert value_size("é") == 2

    def test_none_and_bool_are_one_byte(self):
        assert value_size(None) == 1
        assert value_size(True) == 1

    def test_row_size_includes_overheads(self):
        assert row_size((1, 2)) == 4 + 2 * (2 + 8)

    def test_rows_size_sums(self):
        rows = [(1, 2), (3, 4), (5, 6)]
        assert rows_size(rows) == 3 * row_size((1, 2))

    def test_hash_table_blowup_in_paper_range(self):
        assert 2.0 <= HASH_TABLE_BLOWUP <= 3.0


class TestCompressionCodec:
    def test_compression_shrinks(self):
        codec = CompressionCodec()
        assert codec.compressed_size(10_000) < 10_000

    def test_compression_never_zero(self):
        codec = CompressionCodec()
        assert codec.compressed_size(1) >= 1

    def test_cpu_seconds_proportional(self):
        codec = CompressionCodec()
        assert codec.cpu_seconds(2_000_000) == 2 * codec.cpu_seconds(1_000_000)
