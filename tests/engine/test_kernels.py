"""Unit tests for the specialized fixpoint kernels.

Every kernel has a naive reference loop that stays in the codebase; these
tests pin each kernel to its reference bit-exactly on adversarial inputs
(negative ints, floats, strings, tuples, None, bools), and pin the
fallback rules: custom aggregate clones and unsupported shapes must
return ``None`` so the generic dispatch keeps honouring their hooks.
"""

import dataclasses
import random

from repro.core.physical import pad_row
from repro.engine.aggregates import BY_NAME, partial_aggregate
from repro.engine.kernels import (
    AdaptiveJoinSelector,
    hash_probe_join,
    make_extractor,
    make_fold_kernel,
    make_merge_kernel,
    make_merge_rows_kernel,
    make_padder,
    make_router,
    nested_loop_equi,
)
from repro.engine.partitioner import HashPartitioner, key_of
from repro.engine.setrdd import KeyedStateRDD

MIXED_KEYS = [0, 1, -5, -(2**40), 2**63, "node-1", "", 3.5, -2.25, 10.0,
              None, True, False, ("a", 1), (None, -3)]


def mixed_rows():
    rng = random.Random(17)
    rows = []
    for key in MIXED_KEYS:
        for _ in range(3):
            rows.append((key, rng.randint(-50, 50), rng.choice(MIXED_KEYS)))
    rng.shuffle(rows)
    return rows


class TestExtractor:
    def test_matches_key_of(self):
        row = ("a", -7, 3.5, None)
        for positions in [(0,), (2,), (1, 3), (3, 0, 2)]:
            assert make_extractor(positions)(row) == key_of(row, positions)

    def test_empty_positions(self):
        assert make_extractor(())(("x", "y")) == ()


class TestPadder:
    def test_matches_pad_row(self):
        row = (1, "a", None)
        for offset, arity in [(0, 3), (0, 5), (2, 5), (2, 7), (4, 7)]:
            padder = make_padder(offset, arity, len(row))
            assert padder(row) == pad_row(row, offset, arity)

    def test_identity_when_full_width(self):
        assert make_padder(0, 2, 2)((5, 6)) == (5, 6)


class TestRouter:
    def _reference(self, rows, positions, n):
        partitioner = HashPartitioner(n)
        buckets = [[] for _ in range(n)]
        for row in rows:
            buckets[partitioner.partition_of(key_of(row, positions))].append(row)
        return buckets

    def test_single_key_matches_partition_of(self):
        rows = mixed_rows()
        for n in (2, 4, 7):
            assert make_router((0,), n)(rows) == self._reference(rows, (0,), n)

    def test_multi_key_matches_partition_of(self):
        rows = mixed_rows()
        for n in (2, 5):
            route = make_router((0, 2), n)
            assert route(rows) == self._reference(rows, (0, 2), n)

    def test_single_partition_collects_everything(self):
        rows = mixed_rows()
        assert make_router((0,), 1)(rows) == [rows]

    def test_preserves_order_within_buckets(self):
        rows = [(k, i) for i, k in enumerate([3, 7, 3, 11, 7, 3])]
        buckets = make_router((0,), 4)(rows)
        for bucket in buckets:
            positions = [row[1] for row in bucket]
            assert positions == sorted(positions)


class TestMergeKernels:
    def _pairs(self, name):
        rng = random.Random(5)
        keys = list(range(6)) + ["k1", "k2"]
        batches = []
        for _ in range(4):
            batch = [(rng.choice(keys), (rng.randint(-9, 9),))
                     for _ in range(20)]
            if name in ("sum", "count"):
                batch.append((keys[0], (0,)))  # zero increment: no delta
            batch.append((keys[1], batch[0][1]))  # duplicate key in batch
            batches.append(batch)
        return batches

    def test_bit_exact_with_generic_dispatch(self):
        for name in ("min", "max", "sum", "count"):
            aggregates = (BY_NAME[name],)
            fast = KeyedStateRDD(1, aggregates, use_kernels=True)
            reference = KeyedStateRDD(1, aggregates, use_kernels=False)
            assert fast._merge_kernel is not None
            for batch in self._pairs(name):
                assert fast.merge(0, batch) == reference.merge(0, batch)
                assert fast.partitions[0] == reference.partitions[0]

    def test_merge_rows_bit_exact(self):
        for name in ("min", "max", "sum", "count"):
            aggregates = (BY_NAME[name],)
            fast = KeyedStateRDD(1, aggregates, use_kernels=True)
            reference = KeyedStateRDD(1, aggregates, use_kernels=False)
            for batch in self._pairs(name):
                rows = [(k, v[0]) for k, v in batch]
                assert fast.merge_rows(0, rows) == reference.merge_rows(0, rows)
                assert fast.partitions[0] == reference.partitions[0]

    def test_custom_clone_falls_back_to_generic(self):
        # Borrowing a builtin name while swapping a hook must NOT get the
        # specialized loop: only the canonical singletons qualify.
        custom = dataclasses.replace(
            BY_NAME["min"], delta_for_insert=lambda v: ("ins", v))
        assert make_merge_kernel((custom,)) is None
        assert make_merge_rows_kernel((custom,)) is None
        assert make_fold_kernel(custom) is None

    def test_multi_aggregate_falls_back(self):
        assert make_merge_kernel((BY_NAME["min"], BY_NAME["sum"])) is None
        assert make_merge_rows_kernel((BY_NAME["min"], BY_NAME["sum"])) is None


class TestFoldKernels:
    def test_matches_partial_aggregate(self):
        rng = random.Random(11)
        pairs = [(rng.randrange(8), (rng.randint(-20, 20),))
                 for _ in range(120)]
        for name in ("min", "max", "sum", "count"):
            aggregate = BY_NAME[name]
            fold = make_fold_kernel(aggregate)
            assert fold is not None
            folded = [(k, (v,)) for k, v in fold((k, v[0]) for k, v in pairs)]
            assert folded == partial_aggregate(pairs, (aggregate,))

    def test_min_ties_keep_incumbent(self):
        fold = make_fold_kernel(BY_NAME["min"])
        # 1.0 arrives first; the later equal int 1 must not replace it.
        assert fold([("k", 1.0), ("k", 1)]) == [("k", 1.0)]


class TestJoinBodies:
    def test_hash_and_nested_loop_agree_row_for_row(self):
        rng = random.Random(3)
        build = [(rng.randrange(5), rng.randrange(100)) for _ in range(12)]
        probe = [(rng.randrange(6), rng.randrange(100)) for _ in range(30)]
        table = {}
        for row in build:
            table.setdefault(row[0], []).append(row)
        key = make_extractor((0,))
        combine = lambda a, b: a + b  # noqa: E731
        assert (hash_probe_join(probe, table, key, combine)
                == nested_loop_equi(probe, build, key, key, combine))


class TestAdaptiveJoinSelector:
    def test_fused_hash_never_overridden(self):
        selector = AdaptiveJoinSelector()
        choice = selector.choose(0, 0, "hash", fused=True,
                                 delta_n=1, build_n=1)
        assert choice == "hash"
        assert selector.overrides == 0

    def test_tiny_product_goes_nested_loop(self):
        selector = AdaptiveJoinSelector()
        assert selector.choose(0, 0, "hash", fused=False,
                               delta_n=4, build_n=8) == "nested_loop"
        assert selector.overrides == 1

    def test_large_build_never_nested_loop(self):
        selector = AdaptiveJoinSelector()
        assert selector.choose(0, 0, "hash", fused=False,
                               delta_n=1, build_n=17) == "hash"

    def test_sort_merge_promotes_to_hash_after_amortization(self):
        selector = AdaptiveJoinSelector()
        # Cumulative probed rows: 40, 80 >= build 60 -> promote on 2nd call.
        first = selector.choose(1, 0, "sort_merge", fused=False,
                                delta_n=40, build_n=60)
        second = selector.choose(1, 0, "sort_merge", fused=False,
                                 delta_n=40, build_n=60)
        assert (first, second) == ("sort_merge", "hash")

    def test_counters_accumulate_per_partition(self):
        selector = AdaptiveJoinSelector()
        selector.choose(1, 0, "sort_merge", fused=False,
                        delta_n=50, build_n=60)
        # Different partition: its own cumulative count, no promotion yet.
        assert selector.choose(1, 1, "sort_merge", fused=False,
                               delta_n=50, build_n=60) == "sort_merge"
        assert selector.choices["sort_merge"] == 2
