"""Unit tests for the columnar batch layer (``repro.engine.columnar``).

A :class:`ColumnBatch` claims bit-exactness with the row-tuple paths it
replaces: ``to_rows(from_rows(rows)) == rows`` value-for-value and
order-for-order, routing bucket-for-bucket identical to
``kernels.make_router``, and an encode/decode wire round trip that
preserves every value's ``repr`` (so ``1`` never comes back as ``True``
or ``1.0``).  These tests pin all three claims on seeded adversarial
inputs — mixed types, NULLs, bools, >64-bit ints, NaN/inf floats, empty
relations — plus the columnar merge/join twins and the memory-governance
self-accounting hook.
"""

import math
import pickle
import random

import pytest

from repro.engine.aggregates import BY_NAME, merge_columns
from repro.engine.columnar import (
    MIN_BATCH_ROWS,
    ColumnBatch,
    as_rows,
    maybe_batch,
)
from repro.engine.joins import build_hash_table, build_hash_table_columns
from repro.engine.kernels import (
    batch_hash_probe,
    hash_probe_join,
    make_extractor,
    make_merge_columns_kernel,
    make_merge_rows_kernel,
    make_router,
)
from repro.engine.memory import MemoryConfig, MemoryManager
from repro.engine.metrics import CostModel, MetricsRegistry
from repro.engine.partitioner import HashPartitioner
from repro.engine.serialization import rows_size, value_size

MIXED_VALUES = [0, 1, -5, -(2**40), 2**63, 2**70, "node-1", "", 3.5,
                -2.25, 10.0, float("inf"), None, True, False, ("a", 1)]

SEEDS = [5, 13]


def mixed_rows(seed, count=40, arity=3):
    rng = random.Random(seed)
    return [tuple(rng.choice(MIXED_VALUES) for _ in range(arity))
            for _ in range(count)]


def int_rows(seed, count=40, lo=-1000, hi=1000):
    rng = random.Random(seed)
    return [(rng.randint(lo, hi), rng.randint(lo, hi)) for _ in range(count)]


def reprs(rows):
    """Type-exact comparison key: ``repr`` distinguishes 1/True/1.0."""
    return [tuple(repr(v) for v in row) for row in rows]


class TestRoundTrip:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_mixed_rows_round_trip_repr_exact(self, seed):
        rows = mixed_rows(seed)
        batch = ColumnBatch.from_rows(rows)
        assert batch.to_rows() == rows
        assert reprs(batch.to_rows()) == reprs(rows)
        assert list(batch.iter_rows()) == rows
        assert list(batch) == rows  # __iter__ is iter_rows
        assert len(batch) == len(rows)

    def test_empty_relation(self):
        batch = ColumnBatch.from_rows([])
        assert batch.to_rows() == []
        assert len(batch) == 0
        assert list(batch.iter_rows()) == []
        round_tripped = ColumnBatch.decode(batch.encode())
        assert round_tripped.to_rows() == []

    def test_kind_classification(self):
        batch = ColumnBatch.from_rows([
            (1, 1.5, "a", None, True, 2**70),
            (2, -0.0, "b", 3, False, 0),
        ])
        # bools, NULL-bearing and >64-bit columns must all be object
        # columns: an array would change their repr or overflow.
        assert batch.kinds == "ifoooo"

    def test_bool_column_survives_exactly(self):
        rows = [(True,), (False,), (True,)]
        decoded = ColumnBatch.decode(ColumnBatch.from_rows(rows).encode())
        assert reprs(decoded.to_rows()) == reprs(rows)

    def test_nan_round_trips_bitwise(self):
        rows = [(float("nan"), 1.0), (2.0, float("-inf"))]
        decoded = ColumnBatch.decode(ColumnBatch.from_rows(rows).encode())
        out = decoded.to_rows()
        assert math.isnan(out[0][0])
        assert out[1] == (2.0, float("-inf"))

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError, match="uniform-arity"):
            ColumnBatch.from_rows([(1, 2), (3,)])


class TestWire:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_encode_decode_mixed(self, seed):
        rows = mixed_rows(seed)
        batch = ColumnBatch.from_rows(rows)
        decoded = ColumnBatch.decode(batch.encode())
        assert reprs(decoded.to_rows()) == reprs(rows)
        assert decoded.kinds == batch.kinds

    @pytest.mark.parametrize("lo,hi", [(0, 100), (-120, 120), (-40000, 0),
                                       (10**6, 10**6 + 500),
                                       (-(2**62), 2**62)])
    def test_narrow_int_widths(self, lo, hi):
        rows = [(v,) for v in (lo, hi, (lo + hi) // 2, lo, hi)]
        decoded = ColumnBatch.decode(ColumnBatch.from_rows(rows).encode())
        assert decoded.to_rows() == rows

    def test_pickle_ships_the_encoded_wire(self):
        rows = int_rows(5, count=200, lo=0, hi=50)
        batch = ColumnBatch.from_rows(rows)
        blob = pickle.dumps(batch, protocol=pickle.HIGHEST_PROTOCOL)
        assert batch.encode() in blob
        clone = pickle.loads(blob)
        assert isinstance(clone, ColumnBatch)
        assert clone.to_rows() == rows
        # A relayed batch re-sends its cached wire, not a re-encode.
        assert clone.encode() == batch.encode()

    def test_wire_is_compact_for_narrow_columns(self):
        # Uniform-random narrow ints: one byte per value pre-DEFLATE
        # already halves the row pickle.
        rows = int_rows(7, count=500, lo=0, hi=60)
        row_pickle = pickle.dumps(rows, protocol=pickle.HIGHEST_PROTOCOL)
        assert len(ColumnBatch.from_rows(rows).encode()) < len(row_pickle) / 2
        # A converging fixpoint's delta (few distinct labels repeated):
        # column-major layout lets DEFLATE collapse it ≥5×.
        rng = random.Random(7)
        labels = [(node, rng.choice((0, 1, 2))) for node in range(500)]
        label_pickle = pickle.dumps(labels, protocol=pickle.HIGHEST_PROTOCOL)
        assert len(ColumnBatch.from_rows(labels).encode()) < \
            len(label_pickle) / 5

    def test_decode_rejects_foreign_blobs(self):
        with pytest.raises(Exception):
            ColumnBatch.decode(b"R" + pickle.dumps(("nope", 0, [])))


class TestRouting:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("key_positions", [(0,), (1,), (0, 2)])
    @pytest.mark.parametrize("n", [1, 2, 4, 7])
    def test_route_matches_make_router(self, seed, key_positions, n):
        rows = mixed_rows(seed)
        batch = ColumnBatch.from_rows(rows)
        assert batch.route(key_positions, n) == make_router(
            key_positions, n)(rows)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_int_column_fast_path_matches(self, seed):
        rows = int_rows(seed)
        batch = ColumnBatch.from_rows(rows)
        assert batch.kinds == "ii"
        for n in (2, 4, 5):
            assert batch.route((0,), n) == make_router((0,), n)(rows)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("key_positions", [(0,), (1, 2)])
    def test_partition_ids_match_partitioner(self, seed, key_positions):
        rows = mixed_rows(seed)
        batch = ColumnBatch.from_rows(rows)
        partitioner = HashPartitioner(4)
        extractor = make_extractor(key_positions)
        expected = [partitioner.partition_of(extractor(row)) for row in rows]
        assert list(batch.partition_ids(key_positions, 4)) == expected

    @pytest.mark.parametrize("seed", SEEDS)
    def test_keys_match_extractor(self, seed):
        rows = mixed_rows(seed)
        batch = ColumnBatch.from_rows(rows)
        for positions in [(0,), (2,), (1, 2)]:
            extractor = make_extractor(positions)
            assert list(batch.keys(positions)) == [extractor(r) for r in rows]


class TestPrimitives:
    def test_dedup_first_occurrence_order(self):
        rows = [(1, "a"), (2, "b"), (1, "a"), (3, "c"), (2, "b")]
        assert ColumnBatch.from_rows(rows).dedup().to_rows() == \
            list(dict.fromkeys(rows))

    def test_take_and_slice(self):
        rows = int_rows(5, count=20)
        batch = ColumnBatch.from_rows(rows)
        assert batch.take([3, 0, 7]).to_rows() == [rows[3], rows[0], rows[7]]
        assert batch.slice(4, 9).to_rows() == rows[4:9]

    def test_maybe_batch_thresholds(self):
        small = int_rows(5, count=MIN_BATCH_ROWS - 1)
        assert maybe_batch(small) is small
        big = int_rows(5, count=MIN_BATCH_ROWS)
        assert isinstance(maybe_batch(big), ColumnBatch)
        ragged = [(1, 2)] * MIN_BATCH_ROWS + [(3,)]
        assert maybe_batch(ragged) is ragged

    def test_as_rows_normalizes_both_forms(self):
        rows = int_rows(5)
        assert as_rows(rows) is rows
        assert as_rows(ColumnBatch.from_rows(rows)) == rows


class TestMergeTwins:
    """The columnar merge/join twins against their row references."""

    @pytest.mark.parametrize("name", ["min", "max", "sum", "count"])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_merge_columns_kernel_matches_rows_kernel(self, name, seed):
        aggregates = (BY_NAME[name],)
        rows_kernel = make_merge_rows_kernel(aggregates)
        columns_kernel = make_merge_columns_kernel(aggregates)
        assert rows_kernel is not None and columns_kernel is not None
        rows = int_rows(seed, count=60, lo=0, hi=9)
        batch = ColumnBatch.from_rows(rows)
        state_rows, state_cols = {}, {}
        fresh_rows = rows_kernel(state_rows, rows)
        keys, values = batch.columns
        fresh_cols = columns_kernel(state_cols, keys, values)
        assert fresh_cols == fresh_rows
        assert state_cols == state_rows

    @pytest.mark.parametrize("name", ["min", "max", "sum", "count"])
    def test_generic_merge_columns_matches_kernel(self, name):
        aggregate = BY_NAME[name]
        rows = int_rows(11, count=60, lo=0, hi=9)
        batch = ColumnBatch.from_rows(rows)
        kernel = make_merge_columns_kernel((aggregate,))
        state_a, state_b = {}, {}
        keys, values = batch.columns
        assert merge_columns(state_a, keys, values, aggregate) == \
            kernel(state_b, keys, values)
        assert state_a == state_b

    @pytest.mark.parametrize("seed", SEEDS)
    def test_columnar_hash_build_matches_row_build(self, seed):
        rows = mixed_rows(seed)
        batch = ColumnBatch.from_rows(rows)
        key_fn = make_extractor((0,))
        row_table = build_hash_table(rows, key_fn)
        col_table = build_hash_table_columns(batch.keys((0,)), batch)
        assert col_table == row_table
        assert list(col_table) == list(row_table)  # insertion order too

    @pytest.mark.parametrize("seed", SEEDS)
    def test_batch_hash_probe_matches_hash_probe_join(self, seed):
        build = mixed_rows(seed, count=30, arity=2)
        probe = mixed_rows(seed + 1, count=30, arity=2)
        key_fn = make_extractor((0,))
        table = build_hash_table(build, key_fn)
        combine = lambda left, right: left + right  # noqa: E731
        probe_batch = ColumnBatch.from_rows(probe)
        assert batch_hash_probe(probe_batch.keys((0,)), probe_batch,
                                table, combine) == \
            hash_probe_join(probe, table, key_fn, combine)


@pytest.mark.governance
class TestMemoryAccounting:
    """A batch charges its own array-aware footprint (satellite 6)."""

    def test_rows_size_uses_batch_nbytes(self):
        batch = ColumnBatch.from_rows(int_rows(5, count=1000))
        assert rows_size(batch) == batch.nbytes
        # Two q-arrays of 1000 items dominate; the row-list model would
        # charge tuple headers per row and land far higher.
        assert 2 * 8 * 1000 <= batch.nbytes < rows_size(batch.to_rows())

    def test_memory_manager_charges_batch_directly(self):
        metrics = MetricsRegistry()
        manager = MemoryManager(1, MemoryConfig(), metrics, CostModel())
        batch = ColumnBatch.from_rows(int_rows(5, count=100))
        manager.charge("state", "columnar", 0, 0, batch)
        assert manager.resident_bytes(0) == batch.nbytes

    def test_object_column_sampling_scales(self):
        rows = [("x" * 40,) for _ in range(1000)]
        batch = ColumnBatch.from_rows(rows)
        exact = sum(value_size(s) for s, in rows)
        assert 0.5 * exact < batch.nbytes < 2 * exact
