"""Unit tests for the tracing span tree (EXPLAIN ANALYZE's backbone)."""

import json

import pytest

from repro.engine.metrics import MetricsRegistry
from repro.engine.tracing import (
    Span,
    Tracer,
    format_explain_analyze,
    iteration_timeline,
)


def make_tracer():
    metrics = MetricsRegistry()
    return metrics, Tracer(metrics)


class TestSpanLifecycle:
    def test_duration_comes_from_the_simulated_clock(self):
        metrics, tracer = make_tracer()
        metrics.advance(1.0)
        with tracer.span("stage", "s") as span:
            metrics.advance(0.5, label="stage:s")
        assert span.start == pytest.approx(1.0)
        assert span.end == pytest.approx(1.5)
        assert span.duration == pytest.approx(0.5)

    def test_nesting_builds_a_tree(self):
        _, tracer = make_tracer()
        with tracer.span("query", "q") as outer:
            with tracer.span("fixpoint", "f"):
                with tracer.span("iteration", "i1"):
                    pass
                with tracer.span("iteration", "i2"):
                    pass
        assert tracer.roots == [outer]
        (fixpoint,) = outer.children
        assert [c.name for c in fixpoint.children] == ["i1", "i2"]
        assert [s.name for s in outer.find("iteration")] == ["i1", "i2"]

    def test_counter_deltas_recorded_on_exit(self):
        metrics, tracer = make_tracer()
        metrics.inc("shuffle_bytes", 100)
        with tracer.span("iteration", "i") as span:
            metrics.inc("shuffle_bytes", 40)
            metrics.inc("tasks", 4)
        assert span.metrics == {"shuffle_bytes": 40, "tasks": 4}

    def test_mismatched_end_raises(self):
        _, tracer = make_tracer()
        outer = tracer.begin("query", "q")
        tracer.begin("stage", "s")
        with pytest.raises(RuntimeError):
            tracer.end(outer)

    def test_span_closed_on_exception(self):
        _, tracer = make_tracer()
        with pytest.raises(ValueError):
            with tracer.span("query", "q"):
                raise ValueError("boom")
        assert tracer.current is None
        assert tracer.roots[0].end is not None

    def test_leaf_spans_attach_to_current(self):
        _, tracer = make_tracer()
        with tracer.span("stage", "s") as stage:
            tracer.leaf("task", "s[0]", worker=2, cpu_seconds=0.1)
        (task,) = stage.children
        assert task.kind == "task"
        assert task.attrs["worker"] == 2
        assert task.duration == 0.0

    def test_disabled_tracer_records_nothing(self):
        metrics = MetricsRegistry()
        tracer = Tracer(metrics, enabled=False)
        with tracer.span("query", "q") as span:
            span.annotate(anything=1)
            tracer.leaf("task", "t")
        assert tracer.roots == []
        assert tracer.to_dict() == {"spans": []}


class TestSerialization:
    def test_to_dict_round_trips_through_json(self):
        metrics, tracer = make_tracer()
        with tracer.span("query", "q"):
            with tracer.span("iteration", "i", index=1) as span:
                metrics.advance(0.25, label="stage:x")
                metrics.inc("shuffle_remote_bytes", 64)
                span.annotate(delta_total=3, delta_by_view={"path": 3})
        reloaded = json.loads(tracer.to_json())
        (query,) = reloaded["spans"]
        (iteration,) = query["children"]
        assert iteration["attrs"]["delta_by_view"] == {"path": 3}
        assert iteration["metrics"]["shuffle_remote_bytes"] == 64
        assert iteration["time_by_label"]["stage:x"] == pytest.approx(0.25)
        assert iteration["duration"] == pytest.approx(0.25)

    def test_reset_clears_spans(self):
        _, tracer = make_tracer()
        with tracer.span("query", "q"):
            pass
        tracer.reset()
        assert tracer.roots == []


class TestRendering:
    def _trace(self):
        metrics, tracer = make_tracer()
        with tracer.span("query", "q") as query:
            with tracer.span("fixpoint", "path") as fixpoint:
                for i, delta in enumerate([3, 1, 0], start=1):
                    with tracer.span("iteration", f"iteration-{i}",
                                     index=i) as span:
                        metrics.advance(0.02, label="stage:fixpoint-shufflemap")
                        if delta:
                            metrics.advance(0.001, label="shuffle")
                            metrics.inc("shuffle_remote_bytes", delta * 16)
                        span.annotate(delta_total=delta,
                                      delta_by_view={"path": delta})
                fixpoint.annotate(iterations=3, mode="dsn")
        return query.to_dict()

    def test_iteration_timeline_rows(self):
        rows = iteration_timeline(self._trace())
        assert [r["iteration"] for r in rows] == [1, 2, 3]
        assert [r["delta_total"] for r in rows] == [3, 1, 0]
        assert rows[0]["delta_by_view"] == {"path": 3}
        assert rows[0]["remote_bytes"] == 48
        assert rows[0]["stage_seconds"] == pytest.approx(0.02)
        assert rows[0]["shuffle_seconds"] == pytest.approx(0.001)
        assert rows[2]["remote_bytes"] == 0

    def test_format_explain_analyze_shape(self):
        report = format_explain_analyze(self._trace())
        assert "EXPLAIN ANALYZE" in report
        assert "iterations=3" in report
        assert "delta(path)" in report
        # One table line per iteration.
        data_lines = [line for line in report.splitlines()
                      if line.strip().startswith(("1 ", "2 ", "3 "))]
        assert len(data_lines) == 3

    def test_format_handles_missing_trace(self):
        assert "no trace" in format_explain_analyze(None)

    def test_span_find_includes_self(self):
        span = Span(kind="fixpoint", name="f")
        assert list(span.find("fixpoint")) == [span]
