"""Unit + property tests for the monotonic aggregates of Section 6.2."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine.aggregates import (
    BY_NAME,
    COUNT,
    MAX,
    MIN,
    SUM,
    get_aggregate,
    partial_aggregate,
)


class TestMinMax:
    def test_min_improves(self):
        state, changed, delta = MIN.merge(10, 5)
        assert (state, changed, delta) == (5, True, 5)

    def test_min_ignores_worse(self):
        state, changed, delta = MIN.merge(5, 10)
        assert (state, changed) == (5, False)

    def test_min_ignores_equal(self):
        # Algorithm 5 uses a strict comparison: equal values are discarded,
        # which is what guarantees termination.
        state, changed, _ = MIN.merge(5, 5)
        assert (state, changed) == (5, False)

    def test_max_improves(self):
        state, changed, delta = MAX.merge(5, 10)
        assert (state, changed, delta) == (10, True, 10)

    def test_max_ignores_worse(self):
        _, changed, _ = MAX.merge(10, 5)
        assert not changed


class TestSumCount:
    def test_sum_delta_is_increment(self):
        state, changed, delta = SUM.merge(10, 4)
        assert (state, changed, delta) == (14, True, 4)

    def test_sum_zero_contribution_is_noop(self):
        state, changed, _ = SUM.merge(10, 0)
        assert (state, changed) == (10, False)

    def test_count_normalizes_non_numeric_to_one(self):
        assert COUNT.normalize("alice") == 1
        assert COUNT.normalize(("a", "b")) == 1

    def test_count_keeps_numeric_contributions(self):
        # The Management query feeds literal 1s and accumulated counts.
        assert COUNT.normalize(1) == 1
        assert COUNT.normalize(7) == 7

    def test_count_treats_bool_as_fact(self):
        assert COUNT.normalize(True) == 1


class TestRegistry:
    def test_all_four_aggregates_present(self):
        assert set(BY_NAME) == {"min", "max", "sum", "count"}

    def test_lookup_case_insensitive(self):
        assert get_aggregate("MAX") is MAX

    def test_avg_rejected(self):
        with pytest.raises(KeyError, match="avg"):
            get_aggregate("avg")


class TestPartialAggregate:
    def test_collapses_same_keys(self):
        pairs = [("a", (3,)), ("a", (1,)), ("b", (2,))]
        result = dict(partial_aggregate(pairs, (MIN,)))
        assert result == {"a": (1,), "b": (2,)}

    def test_multiple_aggregate_columns(self):
        pairs = [("k", (3, 10)), ("k", (1, 5))]
        result = dict(partial_aggregate(pairs, (MIN, SUM)))
        assert result == {"k": (1, 15)}

    def test_empty_input(self):
        assert partial_aggregate([], (MAX,)) == []


@st.composite
def contributions(draw):
    keys = st.integers(min_value=0, max_value=5)
    values = st.integers(min_value=-100, max_value=100)
    return draw(st.lists(st.tuples(keys, st.tuples(values)), min_size=1, max_size=60))


class TestAlgebraicLaws:
    """Partial aggregation must commute with any split of the input —
    the PreM-for-union property that makes map-side combining sound."""

    @pytest.mark.parametrize("agg_name", ["min", "max", "sum"])
    @given(contributions(), st.integers(min_value=0, max_value=50))
    def test_split_invariance(self, agg_name, pairs, cut):
        agg = get_aggregate(agg_name)
        cut = min(cut, len(pairs))
        whole = dict(partial_aggregate(pairs, (agg,)))
        left = partial_aggregate(pairs[:cut], (agg,))
        right = partial_aggregate(pairs[cut:], (agg,))
        recombined = dict(partial_aggregate(left + right, (agg,)))
        assert whole == recombined

    @given(contributions())
    def test_merge_stream_equals_partial_aggregate(self, pairs):
        """Folding one-by-one through merge == bulk partial aggregation."""
        agg = get_aggregate("max")
        state = {}
        for key, (value,) in pairs:
            if key not in state:
                state[key] = value
            else:
                state[key], _, _ = agg.merge(state[key], value)
        bulk = dict(partial_aggregate(pairs, (agg,)))
        assert state == {k: v[0] for k, v in bulk.items()}
