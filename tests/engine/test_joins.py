"""Unit + property tests for the partition-local join kernels."""

from hypothesis import given
from hypothesis import strategies as st

from repro.engine.joins import (
    build_hash_table,
    hash_join_probe,
    nested_loop_join,
    sort_merge_join,
    sort_rows,
)


def combine_concat(a, b):
    return a + b


class TestHashJoin:
    def test_basic_match(self):
        table = build_hash_table([(1, "a"), (2, "b")], lambda r: r[0])
        out = hash_join_probe([(1, "x"), (3, "y")], lambda r: r[0],
                              table, combine_concat)
        assert out == [(1, "x", 1, "a")]

    def test_duplicate_build_keys(self):
        table = build_hash_table([(1, "a"), (1, "b")], lambda r: r[0])
        out = hash_join_probe([(1, "x")], lambda r: r[0], table, combine_concat)
        assert len(out) == 2

    def test_combine_none_filters(self):
        table = build_hash_table([(1, 10), (1, 20)], lambda r: r[0])
        out = hash_join_probe(
            [(1, 0)], lambda r: r[0], table,
            lambda p, b: (p + b) if b[1] > 15 else None)
        assert out == [(1, 0, 1, 20)]


class TestSortMergeJoin:
    def test_matches_hash_join(self):
        left = [(2, "l2"), (1, "l1"), (2, "l2b")]
        right = [(2, "r2"), (3, "r3"), (2, "r2b"), (1, "r1")]
        table = build_hash_table(right, lambda r: r[0])
        expected = sorted(hash_join_probe(left, lambda r: r[0], table,
                                          combine_concat))
        got = sorted(sort_merge_join(
            sort_rows(left, lambda r: r[0]), sort_rows(right, lambda r: r[0]),
            lambda r: r[0], lambda r: r[0], combine_concat))
        assert got == expected

    def test_empty_sides(self):
        assert sort_merge_join([], [(1, "a")], lambda r: r[0],
                               lambda r: r[0], combine_concat) == []
        assert sort_merge_join([(1, "a")], [], lambda r: r[0],
                               lambda r: r[0], combine_concat) == []

    @given(st.lists(st.tuples(st.integers(0, 8), st.integers(0, 3)), max_size=40),
           st.lists(st.tuples(st.integers(0, 8), st.integers(0, 3)), max_size=40))
    def test_equivalence_property(self, left, right):
        """sort-merge and hash join must produce identical multisets."""
        table = build_hash_table(right, lambda r: r[0])
        via_hash = sorted(hash_join_probe(left, lambda r: r[0], table,
                                          combine_concat))
        via_merge = sorted(sort_merge_join(
            sort_rows(left, lambda r: r[0]), sort_rows(right, lambda r: r[0]),
            lambda r: r[0], lambda r: r[0], combine_concat))
        assert via_hash == via_merge


class TestNestedLoopJoin:
    def test_theta_predicate(self):
        # The Interval-Coalesce style containment predicate.
        left = [(1, 5)]
        right = [(2, 9), (6, 7), (0, 0)]
        out = nested_loop_join(left, right,
                               lambda l, r: l[0] <= r[0] <= l[1],
                               combine_concat)
        assert sorted(out) == [(1, 5, 2, 9)]

    def test_subsumes_equi_join(self):
        left = [(1, "x"), (2, "y")]
        right = [(1, "a"), (3, "b")]
        table = build_hash_table(right, lambda r: r[0])
        expected = sorted(hash_join_probe(left, lambda r: r[0], table,
                                          combine_concat))
        got = sorted(nested_loop_join(left, right, lambda l, r: l[0] == r[0],
                                      combine_concat))
        assert got == expected
