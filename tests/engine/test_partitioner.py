"""Unit tests for hash partitioning."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine.partitioner import HashPartitioner, key_of, make_key_fn


class TestHashPartitioner:
    def test_partition_in_range(self):
        p = HashPartitioner(7)
        for value in [0, 1, -5, "abc", (1, "x"), 3.5, None, True]:
            assert 0 <= p.partition_of(value) < 7

    def test_deterministic(self):
        p1 = HashPartitioner(16)
        p2 = HashPartitioner(16)
        for value in ["node-1", 42, (1, 2, 3), 2.5]:
            assert p1.partition_of(value) == p2.partition_of(value)

    def test_int_and_integral_float_collocate(self):
        # Join keys may arrive as int on one side and float on the other
        # (SQL numeric widening); they must land in the same partition.
        p = HashPartitioner(13)
        assert p.partition_of(10) == p.partition_of(10.0)

    def test_equality_by_num_partitions(self):
        assert HashPartitioner(4) == HashPartitioner(4)
        assert HashPartitioner(4) != HashPartitioner(5)

    def test_rejects_zero_partitions(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)

    @given(st.lists(st.one_of(st.integers(), st.text(max_size=10)), min_size=50,
                    max_size=300),
           st.integers(min_value=2, max_value=16))
    def test_reasonable_balance(self, values, n):
        """No partition should swallow everything for diverse keys."""
        p = HashPartitioner(n)
        buckets = [0] * n
        for v in set(values):
            buckets[p.partition_of(v)] += 1
        distinct = len(set(values))
        if distinct >= 10 * n:
            assert max(buckets) < distinct  # not all in one bucket


class TestKeyExtraction:
    def test_single_column_key_is_scalar(self):
        assert key_of((10, 20, 30), (1,)) == 20

    def test_multi_column_key_is_tuple(self):
        assert key_of((10, 20, 30), (2, 0)) == (30, 10)

    def test_make_key_fn_matches_key_of(self):
        row = ("a", "b", "c")
        for indices in [(0,), (1, 2), (2, 0, 1)]:
            assert make_key_fn(indices)(row) == key_of(row, indices)
