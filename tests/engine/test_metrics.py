"""Unit tests for the metrics registry and cost model."""

import pytest

from repro.engine.metrics import CostModel, MetricsRegistry


class TestRegistry:
    def test_counters_lazy(self):
        metrics = MetricsRegistry()
        assert metrics.get("anything") == 0
        metrics.inc("stages")
        metrics.inc("stages", 2)
        assert metrics.get("stages") == 3

    def test_clock_advances_with_labels(self):
        metrics = MetricsRegistry()
        metrics.advance(0.5, label="stage:x")
        metrics.advance(0.25, label="shuffle")
        assert metrics.sim_time == pytest.approx(0.75)
        assert metrics.events() == [("stage:x", 0.5), ("shuffle", 0.25)]

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().advance(-1)

    def test_snapshot_includes_clock(self):
        metrics = MetricsRegistry()
        metrics.inc("tasks", 7)
        metrics.advance(1.0)
        snapshot = metrics.snapshot()
        assert snapshot["tasks"] == 7
        assert snapshot["sim_time"] == 1.0

    def test_reset(self):
        metrics = MetricsRegistry()
        metrics.inc("x")
        metrics.advance(1, label="y")
        metrics.reset()
        assert metrics.sim_time == 0
        assert metrics.get("x") == 0
        assert metrics.events() == []


class TestCostModel:
    def test_transfer_includes_latency(self):
        model = CostModel(network_bandwidth_bytes_per_s=1e6,
                          network_latency_s=0.01)
        assert model.transfer_seconds(1_000_000) == pytest.approx(1.01)

    def test_parallel_streams_divide_bandwidth_time(self):
        model = CostModel(network_bandwidth_bytes_per_s=1e6,
                          network_latency_s=0.0)
        single = model.transfer_seconds(1_000_000, 1)
        quad = model.transfer_seconds(1_000_000, 4)
        assert quad == pytest.approx(single / 4)

    def test_default_bandwidth_is_gigabit(self):
        # 1 Gbit/s = 125e6 bytes/s, the paper's testbed network.
        assert CostModel().network_bandwidth_bytes_per_s == 125e6

    def test_zero_streams_clamped(self):
        model = CostModel()
        assert model.transfer_seconds(1000, 0) == model.transfer_seconds(1000, 1)
