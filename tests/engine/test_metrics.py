"""Unit tests for the metrics registry and cost model."""

import pytest

from repro.engine.metrics import ClockEvent, CostModel, MetricsRegistry
from repro.engine.tracing import Tracer


class TestRegistry:
    def test_counters_lazy(self):
        metrics = MetricsRegistry()
        assert metrics.get("anything") == 0
        metrics.inc("stages")
        metrics.inc("stages", 2)
        assert metrics.get("stages") == 3

    def test_clock_advances_with_labels(self):
        metrics = MetricsRegistry()
        metrics.advance(0.5, label="stage:x")
        metrics.advance(0.25, label="shuffle")
        assert metrics.sim_time == pytest.approx(0.75)
        assert [(e.label, e.seconds) for e in metrics.events()] == [
            ("stage:x", 0.5), ("shuffle", 0.25)]

    def test_events_unpack_as_label_seconds_pairs(self):
        # ClockEvent stays tuple-compatible with the historical
        # (label, seconds) shape plus the span_id attribution field.
        metrics = MetricsRegistry()
        metrics.advance(0.5, label="load")
        event = metrics.events()[0]
        assert isinstance(event, ClockEvent)
        label, seconds, span_id = event
        assert (label, seconds, span_id) == ("load", 0.5, None)

    def test_unlabeled_advance_not_recorded_as_event(self):
        metrics = MetricsRegistry()
        metrics.advance(0.5)
        assert metrics.events() == []
        assert metrics.sim_time == 0.5


class TestEventAttribution:
    """events() label/span attribution after the tracing refactor."""

    def test_event_carries_innermost_span_id(self):
        metrics = MetricsRegistry()
        tracer = Tracer(metrics)
        with tracer.span("query", "q") as outer:
            metrics.advance(0.1, label="load")
            with tracer.span("stage", "s") as inner:
                metrics.advance(0.2, label="stage:s")
        events = metrics.events()
        assert events[0].span_id == outer.span_id
        assert events[1].span_id == inner.span_id

    def test_event_span_id_none_outside_spans(self):
        metrics = MetricsRegistry()
        Tracer(metrics)
        metrics.advance(0.1, label="load")
        assert metrics.events()[0].span_id is None

    def test_labels_attributed_to_open_spans(self):
        metrics = MetricsRegistry()
        tracer = Tracer(metrics)
        with tracer.span("query", "q") as outer:
            metrics.advance(0.1, label="load")
            with tracer.span("stage", "s") as inner:
                metrics.advance(0.2, label="stage:s")
            metrics.advance(0.3, label="shuffle")
        assert outer.time_by_label == pytest.approx(
            {"load": 0.1, "stage:s": 0.2, "shuffle": 0.3})
        assert inner.time_by_label == pytest.approx({"stage:s": 0.2})

    def test_disabled_tracer_leaves_events_unattributed(self):
        metrics = MetricsRegistry()
        tracer = Tracer(metrics, enabled=False)
        with tracer.span("query", "q"):
            metrics.advance(0.1, label="load")
        assert metrics.events()[0] == ClockEvent("load", 0.1, None)
        assert tracer.roots == []

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().advance(-1)

    def test_snapshot_includes_clock(self):
        metrics = MetricsRegistry()
        metrics.inc("tasks", 7)
        metrics.advance(1.0)
        snapshot = metrics.snapshot()
        assert snapshot["tasks"] == 7
        assert snapshot["sim_time"] == 1.0

    def test_reset(self):
        metrics = MetricsRegistry()
        metrics.inc("x")
        metrics.advance(1, label="y")
        metrics.reset()
        assert metrics.sim_time == 0
        assert metrics.get("x") == 0
        assert metrics.events() == []


class TestCostModel:
    def test_transfer_includes_latency(self):
        model = CostModel(network_bandwidth_bytes_per_s=1e6,
                          network_latency_s=0.01)
        assert model.transfer_seconds(1_000_000) == pytest.approx(1.01)

    def test_parallel_streams_divide_bandwidth_time(self):
        model = CostModel(network_bandwidth_bytes_per_s=1e6,
                          network_latency_s=0.0)
        single = model.transfer_seconds(1_000_000, 1)
        quad = model.transfer_seconds(1_000_000, 4)
        assert quad == pytest.approx(single / 4)

    def test_default_bandwidth_is_gigabit(self):
        # 1 Gbit/s = 125e6 bytes/s, the paper's testbed network.
        assert CostModel().network_bandwidth_bytes_per_s == 125e6

    def test_zero_streams_clamped(self):
        model = CostModel()
        assert model.transfer_seconds(1000, 0) == model.transfer_seconds(1000, 1)
