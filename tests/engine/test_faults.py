"""Failure injection + stage replay (Section 6.1's fault-recovery claim)."""

import pytest

from repro import ExecutionConfig, RaSQLContext
from repro.baselines import serial
from repro.engine.cluster import Cluster, StageTask
from repro.engine.faults import FailureInjector
from repro.queries import get_query

EDGES = [(1, 2, 1.0), (2, 3, 2.0), (1, 3, 5.0), (3, 4, 1.0), (4, 2, 1.0)]


class TestInjector:
    def test_matches_stage_and_task(self):
        injector = FailureInjector("shufflemap", task_index=2, times=3)
        assert not injector.should_fail("fixpoint-base", 2)
        assert not injector.should_fail("fixpoint-shufflemap", 1)
        assert injector.should_fail("fixpoint-shufflemap", 2)
        assert injector.injected == 1

    def test_bounded_times(self):
        injector = FailureInjector("stage", times=2, task_index=None)
        assert injector.should_fail("stage", 0)
        assert injector.should_fail("stage", 1)
        assert not injector.should_fail("stage", 2)

    def test_rejects_bad_point(self):
        with pytest.raises(ValueError):
            FailureInjector("x", point="middle")


class TestClusterReplay:
    def test_before_failure_charges_and_retries(self):
        cluster = Cluster(num_workers=2)
        cluster.inject_failures(FailureInjector("work", point="before"))
        calls = []
        tasks = [StageTask(0, [], lambda: calls.append(1) or "ok")]
        results = cluster.run_stage("work", tasks)
        assert results[0].output == "ok"
        assert len(calls) == 1  # before-failure never ran the body
        assert cluster.metrics.get("task_failures") == 1

    def test_after_failure_restores_and_reruns(self):
        cluster = Cluster(num_workers=2)
        cluster.inject_failures(FailureInjector("work", point="after"))
        state = {"value": 0}
        tasks = [StageTask(
            0, [],
            lambda: state.__setitem__("value", state["value"] + 1),
            snapshot=lambda: dict(state),
            restore=lambda saved: state.update(saved))]
        cluster.run_stage("work", tasks)
        # Ran twice, but the first attempt's mutation was rolled back.
        assert state["value"] == 1
        assert cluster.metrics.get("task_failures") == 1

    def test_failure_costs_simulated_time(self):
        baseline = Cluster(num_workers=2)
        baseline.run_stage("work", [StageTask(0, [], lambda: None)])
        failing = Cluster(num_workers=2)
        failing.inject_failures(FailureInjector("work", point="before"))
        failing.run_stage("work", [StageTask(0, [], lambda: None)])
        assert failing.metrics.sim_time > baseline.metrics.sim_time


class TestFixpointRecovery:
    """Injected failures must never change query results."""

    def run_sssp(self, injector=None, **config_kwargs):
        ctx = RaSQLContext(num_workers=4,
                           config=ExecutionConfig(**config_kwargs))
        if injector is not None:
            ctx.cluster.inject_failures(injector)
        ctx.register_table("edge", ["Src", "Dst", "Cost"], EDGES)
        result = ctx.sql(get_query("sssp").formatted(source=1))
        return result.to_dict(), ctx

    def test_before_failure_every_iteration(self):
        injector = FailureInjector("fixpoint", task_index=None, times=50,
                                   point="before")
        result, ctx = self.run_sssp(injector)
        assert result == serial.sssp(EDGES, 1)
        assert ctx.metrics.get("task_failures") > 0

    def test_after_failure_mid_merge(self):
        # The hard case: the task dies after mutating the cached state;
        # replay must restore the snapshot or sums/mins would re-merge.
        injector = FailureInjector("fixpoint-shufflemap", task_index=None,
                                   times=8, point="after")
        result, ctx = self.run_sssp(injector)
        assert result == serial.sssp(EDGES, 1)
        assert ctx.metrics.get("task_failures") == 8

    def test_after_failure_two_stage_mode(self):
        injector = FailureInjector("fixpoint-reduce", task_index=None,
                                   times=5, point="after")
        result, ctx = self.run_sssp(injector, stage_combination=False)
        assert result == serial.sssp(EDGES, 1)
        assert ctx.metrics.get("task_failures") == 5

    def test_after_failure_with_sum_aggregates(self):
        # Re-merging increments would double-count without the rollback.
        dag = [(1, 2), (1, 3), (2, 4), (3, 4)]
        ctx = RaSQLContext(num_workers=4)
        ctx.cluster.inject_failures(FailureInjector(
            "fixpoint-shufflemap", task_index=None, times=10, point="after"))
        ctx.register_table("edge", ["Src", "Dst"], dag)
        result = ctx.sql(get_query("count_paths").formatted(source=1))
        assert result.to_dict() == serial.count_paths(dag, 1)
        assert ctx.metrics.get("task_failures") == 10

    def test_recovery_slows_but_preserves(self):
        clean_result, clean_ctx = self.run_sssp()
        injector = FailureInjector("fixpoint", task_index=None, times=20,
                                   point="after")
        failed_result, failed_ctx = self.run_sssp(injector)
        assert failed_result == clean_result
        assert failed_ctx.metrics.sim_time > clean_ctx.metrics.sim_time
