"""Failure injection + stage replay (Section 6.1's fault-recovery claim)."""

import pytest

from repro import ExecutionConfig, RaSQLContext
from repro.baselines import serial
from repro.engine.cluster import Cluster, StageTask
from repro.engine.dataset import Partition
from repro.engine.faults import (
    FailureInjector,
    FaultToleranceConfig,
    WorkerLossInjector,
)
from repro.errors import (
    FaultInjectionError,
    NoHealthyWorkersError,
    TaskRetryExhaustedError,
)
from repro.queries import get_query

EDGES = [(1, 2, 1.0), (2, 3, 2.0), (1, 3, 5.0), (3, 4, 1.0), (4, 2, 1.0)]


class TestInjector:
    def test_matches_stage_and_task(self):
        injector = FailureInjector("shufflemap", task_index=2, times=3)
        assert not injector.should_fail("fixpoint-base", 2)
        assert not injector.should_fail("fixpoint-shufflemap", 1)
        assert injector.should_fail("fixpoint-shufflemap", 2)
        assert injector.injected == 1

    def test_bounded_times(self):
        injector = FailureInjector("stage", times=2, task_index=None)
        assert injector.should_fail("stage", 0)
        assert injector.should_fail("stage", 1)
        assert not injector.should_fail("stage", 2)

    def test_rejects_bad_point(self):
        with pytest.raises(ValueError):
            FailureInjector("x", point="middle")


class TestClusterReplay:
    def test_before_failure_charges_and_retries(self):
        cluster = Cluster(num_workers=2)
        cluster.inject_failures(FailureInjector("work", point="before"))
        calls = []
        tasks = [StageTask(0, [], lambda: calls.append(1) or "ok")]
        results = cluster.run_stage("work", tasks)
        assert results[0].output == "ok"
        assert len(calls) == 1  # before-failure never ran the body
        assert cluster.metrics.get("task_failures") == 1

    def test_after_failure_restores_and_reruns(self):
        cluster = Cluster(num_workers=2)
        cluster.inject_failures(FailureInjector("work", point="after"))
        state = {"value": 0}
        tasks = [StageTask(
            0, [],
            lambda: state.__setitem__("value", state["value"] + 1),
            snapshot=lambda: dict(state),
            restore=lambda saved: state.update(saved))]
        cluster.run_stage("work", tasks)
        # Ran twice, but the first attempt's mutation was rolled back.
        assert state["value"] == 1
        assert cluster.metrics.get("task_failures") == 1

    def test_failure_costs_simulated_time(self):
        baseline = Cluster(num_workers=2)
        baseline.run_stage("work", [StageTask(0, [], lambda: None)])
        failing = Cluster(num_workers=2)
        failing.inject_failures(FailureInjector("work", point="before"))
        failing.run_stage("work", [StageTask(0, [], lambda: None)])
        assert failing.metrics.sim_time > baseline.metrics.sim_time


class TestFixpointRecovery:
    """Injected failures must never change query results."""

    def run_sssp(self, injector=None, **config_kwargs):
        ctx = RaSQLContext(num_workers=4,
                           config=ExecutionConfig(**config_kwargs))
        if injector is not None:
            ctx.cluster.inject_failures(injector)
        ctx.register_table("edge", ["Src", "Dst", "Cost"], EDGES)
        result = ctx.sql(get_query("sssp").formatted(source=1))
        return result.to_dict(), ctx

    def test_before_failure_every_iteration(self):
        injector = FailureInjector("fixpoint", task_index=None, times=50,
                                   point="before")
        result, ctx = self.run_sssp(injector)
        assert result == serial.sssp(EDGES, 1)
        assert ctx.metrics.get("task_failures") > 0

    def test_after_failure_mid_merge(self):
        # The hard case: the task dies after mutating the cached state;
        # replay must restore the snapshot or sums/mins would re-merge.
        injector = FailureInjector("fixpoint-shufflemap", task_index=None,
                                   times=8, point="after")
        result, ctx = self.run_sssp(injector)
        assert result == serial.sssp(EDGES, 1)
        assert ctx.metrics.get("task_failures") == 8

    def test_after_failure_two_stage_mode(self):
        injector = FailureInjector("fixpoint-reduce", task_index=None,
                                   times=5, point="after")
        result, ctx = self.run_sssp(injector, stage_combination=False)
        assert result == serial.sssp(EDGES, 1)
        assert ctx.metrics.get("task_failures") == 5

    def test_after_failure_with_sum_aggregates(self):
        # Re-merging increments would double-count without the rollback.
        dag = [(1, 2), (1, 3), (2, 4), (3, 4)]
        ctx = RaSQLContext(num_workers=4)
        ctx.cluster.inject_failures(FailureInjector(
            "fixpoint-shufflemap", task_index=None, times=10, point="after"))
        ctx.register_table("edge", ["Src", "Dst"], dag)
        result = ctx.sql(get_query("count_paths").formatted(source=1))
        assert result.to_dict() == serial.count_paths(dag, 1)
        assert ctx.metrics.get("task_failures") == 10

    def test_recovery_slows_but_preserves(self):
        clean_result, clean_ctx = self.run_sssp()
        injector = FailureInjector("fixpoint", task_index=None, times=20,
                                   point="after")
        failed_result, failed_ctx = self.run_sssp(injector)
        assert failed_result == clean_result
        assert failed_ctx.metrics.sim_time > clean_ctx.metrics.sim_time


class TestRetryBudget:
    def test_persistent_failure_exhausts_budget(self):
        cluster = Cluster(
            num_workers=2,
            fault_config=FaultToleranceConfig(max_task_retries=2))
        cluster.inject_failures(FailureInjector(
            "work", point="before", times=100, persistent=True))
        with pytest.raises(TaskRetryExhaustedError) as excinfo:
            cluster.run_stage("work", [StageTask(0, [], lambda: "ok")])
        assert excinfo.value.stage == "work"
        assert excinfo.value.attempts == 3  # budget of 2 retries exceeded
        assert cluster.metrics.get("task_failures") == 3

    def test_transient_failure_stays_within_budget(self):
        # A non-persistent injector fails each task at most once per
        # stage visit, so even times=100 never exhausts the budget.
        cluster = Cluster(
            num_workers=2,
            fault_config=FaultToleranceConfig(max_task_retries=1))
        cluster.inject_failures(FailureInjector(
            "work", task_index=None, point="before", times=100))
        results = cluster.run_stage("work", [StageTask(0, [], lambda: "ok")])
        assert results[0].output == "ok"
        assert cluster.metrics.get("task_attempts") == 2

    def test_backoff_charged_to_clock(self):
        plain = Cluster(num_workers=2)
        plain.inject_failures(FailureInjector("work", point="before"))
        plain.run_stage("work", [StageTask(0, [], lambda: None)])
        assert plain.metrics.get("recovery_seconds") > 0
        assert plain.metrics.get("recovery_seconds") >= \
            plain.cost_model.task_retry_backoff_s


class TestMutationGuard:
    """Satellite: a mutating task without hooks must refuse after-replay
    instead of silently re-applying its side effects (the old behaviour
    re-ran ``task.fn`` and corrupted sums)."""

    def test_after_failure_without_hooks_raises(self):
        cluster = Cluster(num_workers=2)
        cluster.inject_failures(FailureInjector("work", point="after"))
        state = {"value": 0}
        task = StageTask(
            0, [], lambda: state.__setitem__("value", state["value"] + 1),
            mutating=True)  # declared mutating, but no snapshot/restore
        with pytest.raises(FaultInjectionError):
            cluster.run_stage("work", [task])

    def test_worker_loss_replay_without_hooks_raises(self):
        cluster = Cluster(num_workers=2)
        cluster.inject_failures(WorkerLossInjector("work", worker=0, at_task=1))
        state = {"value": 0}
        tasks = [
            StageTask(0, [],
                      lambda: state.__setitem__("value", state["value"] + 1),
                      preferred_worker=0, mutating=True),
            StageTask(1, [], lambda: "ok", preferred_worker=1),
        ]
        with pytest.raises(FaultInjectionError):
            cluster.run_stage("work", tasks)

    def test_pure_task_replays_without_hooks(self):
        # Side-effect-free tasks (mutating=False, the default) replay
        # fine without hooks — that is the Spark lineage story.
        cluster = Cluster(num_workers=2)
        cluster.inject_failures(FailureInjector("work", point="after"))
        results = cluster.run_stage("work", [StageTask(0, [], lambda: 42)])
        assert results[0].output == 42
        assert cluster.metrics.get("task_failures") == 1


class TestWorkerLoss:
    def make_tasks(self, cluster, n=4):
        tasks = []
        for i in range(n):
            part = Partition(i, [(i,)], cluster.worker_for_partition(i))
            tasks.append(StageTask(i, [part], lambda rows: list(rows),
                                   preferred_worker=part.worker))
        return tasks

    def test_loss_invalidates_and_reschedules(self):
        cluster = Cluster(num_workers=4)
        cluster.inject_failures(WorkerLossInjector("work", worker=2))
        results = cluster.run_stage("work", self.make_tasks(cluster))
        assert cluster.lost_workers == {2}
        assert all(r.worker != 2 for r in results)
        assert cluster.metrics.get("workers_lost") == 1
        assert cluster.metrics.get("cache_invalidated_partitions") == 1
        assert cluster.metrics.get("recovery_seconds") > 0
        # Outputs are unaffected by where the tasks ran.
        assert [r.output for r in results] == [[(i,)] for i in range(4)]

    def test_mid_stage_loss_replays_committed_tasks(self):
        cluster = Cluster(num_workers=4)
        cluster.inject_failures(WorkerLossInjector("work", worker=0, at_task=2))
        results = cluster.run_stage("work", self.make_tasks(cluster))
        # Task 0 committed on worker 0 before the loss; its output died
        # with the executor, so it re-ran elsewhere.
        assert results[0].worker != 0
        assert results[0].output == [(0,)]
        assert cluster.metrics.get("task_attempts") == 5  # 4 tasks + 1 replay

    def test_auto_victim_is_highest_live_worker(self):
        cluster = Cluster(num_workers=4)
        cluster.inject_failures(WorkerLossInjector("work", worker=None))
        cluster.run_stage("work", self.make_tasks(cluster))
        assert cluster.lost_workers == {3}

    def test_partition_homes_remap_deterministically(self):
        cluster = Cluster(num_workers=4)
        cluster.lose_worker(1)
        live = [0, 2, 3]
        for i in range(8):
            home = cluster.worker_for_partition(i)
            assert home in live
            if i % 4 != 1:
                assert home == i % 4  # surviving homes unchanged

    def test_last_worker_cannot_be_lost(self):
        cluster = Cluster(num_workers=2)
        cluster.lose_worker(0)
        with pytest.raises(NoHealthyWorkersError):
            cluster.lose_worker(1)

    def test_loss_skips_when_last_survivor(self):
        # An injector that would kill the only live worker is a no-op
        # rather than an abort: its budget is not consumed.
        cluster = Cluster(num_workers=2)
        cluster.lose_worker(1)
        injector = WorkerLossInjector("work", worker=0)
        cluster.inject_failures(injector)
        results = cluster.run_stage("work", [StageTask(0, [], lambda: "ok")])
        assert results[0].output == "ok"
        assert injector.injected == 0

    def test_query_survives_worker_loss(self):
        ctx = RaSQLContext(num_workers=4)
        ctx.inject_faults(WorkerLossInjector(
            "fixpoint", worker=1, at_task=1, skip_matches=1))
        ctx.register_table("edge", ["Src", "Dst", "Cost"], EDGES)
        result = ctx.sql(get_query("sssp").formatted(source=1))
        assert result.to_dict() == serial.sssp(EDGES, 1)
        assert ctx.metrics.get("workers_lost") == 1
        assert ctx.metrics.get("recovery_seconds") > 0


class TestBlacklisting:
    def test_repeated_failures_blacklist_worker(self):
        cluster = Cluster(
            num_workers=4,
            fault_config=FaultToleranceConfig(max_task_retries=10,
                                              blacklist_after=2))
        cluster.inject_failures(FailureInjector(
            "work", point="before", times=2, persistent=True))
        task = StageTask(0, [], lambda: "ok", preferred_worker=1)
        results = cluster.run_stage("work", [task])
        assert cluster.recovery.blacklisted == {1}
        assert cluster.metrics.get("workers_blacklisted") == 1
        # The committing attempt ran away from the blacklisted worker.
        assert results[0].worker != 1

    def test_scheduler_avoids_blacklisted_workers(self):
        cluster = Cluster(num_workers=4)
        cluster.recovery.blacklisted.add(2)
        parts = [Partition(i, [(i,)], i) for i in range(4)]
        tasks = [StageTask(i, [parts[i]], lambda rows: list(rows),
                           preferred_worker=i) for i in range(4)]
        results = cluster.run_stage("work", tasks)
        assert all(r.worker != 2 for r in results)

    def test_blacklist_ignored_when_all_workers_listed(self):
        cluster = Cluster(num_workers=2)
        cluster.recovery.blacklisted.update({0, 1})
        assert cluster.healthy_workers() == [0, 1]


class TestSpeculation:
    def make_skewed_tasks(self, straggler_loops=200_000):
        def fast(rows):
            return list(rows)

        def slow(rows):
            acc = 0
            for i in range(straggler_loops):
                acc += i
            return list(rows)

        tasks = []
        for i in range(4):
            part = Partition(i, [(i,)], i)
            fn = slow if i == 3 else fast
            tasks.append(StageTask(i, [part], fn, preferred_worker=i))
        return tasks

    def test_straggler_copy_saves_time(self):
        spec = Cluster(num_workers=4,
                       fault_config=FaultToleranceConfig(speculation=True))
        spec.run_stage("work", self.make_skewed_tasks())
        assert spec.metrics.get("speculative_tasks") == 1

    def test_speculation_never_changes_results(self):
        plain = Cluster(num_workers=4)
        spec = Cluster(num_workers=4,
                       fault_config=FaultToleranceConfig(speculation=True))
        plain_results = plain.run_stage("work", self.make_skewed_tasks())
        spec_results = spec.run_stage("work", self.make_skewed_tasks())
        assert ([r.output for r in plain_results]
                == [r.output for r in spec_results])

    def test_mutating_tasks_never_speculated(self):
        cluster = Cluster(num_workers=4,
                          fault_config=FaultToleranceConfig(speculation=True))
        tasks = self.make_skewed_tasks()
        tasks[3].mutating = True
        cluster.run_stage("work", tasks)
        assert cluster.metrics.get("speculative_tasks") == 0


class TestShuffleCorruption:
    """Checksum verification earns its keep: detected flips are
    bit-exact, unverified flips visibly diverge.

    Decomposed plans keep delta rows co-partitioned — the whole point of
    the optimization is that iterations never shuffle — so the suite
    turns them off to put a corruptible exchange on every iteration."""

    TC = """
WITH recursive tc(Src, Dst) AS
  (SELECT Src, Dst FROM edge) UNION
  (SELECT tc.Src, edge.Dst FROM tc, edge WHERE tc.Dst = edge.Src)
SELECT Src, Dst FROM tc
"""

    def make_context(self, **kwargs):
        from repro import RaSQLContext
        ctx = RaSQLContext(num_workers=4, **kwargs)
        ctx.register_table("edge", ["Src", "Dst"],
                           [(i, i + 1) for i in range(16)] + [(4, 2)])
        return ctx

    def run_tc(self, ctx):
        return sorted(
            ctx.sql(self.TC,
                    config=ctx.config.but(decomposed_plans=False)).rows)

    def test_detected_corruption_is_bit_exact_and_charged(self):
        from repro.engine.faults import CorruptionInjector
        clean = self.run_tc(self.make_context())

        ctx = self.make_context()
        ctx.inject_faults(CorruptionInjector(skip_matches=2, times=3, seed=5))
        got = self.run_tc(ctx)
        snap = ctx.metrics.snapshot()
        assert got == clean
        assert snap["shuffle_corruption_injected"] >= 1
        assert (snap["shuffle_corruption_detected"]
                == snap["shuffle_corruption_injected"])
        assert snap.get("shuffle_corruption_undetected", 0) == 0
        assert snap["shuffle_corruption_refetch_bytes"] > 0
        assert snap["recovery_seconds"] > 0

    def test_unverified_corruption_flows_through_and_diverges(self):
        from repro.engine.faults import CorruptionInjector
        clean = self.run_tc(self.make_context())

        ctx = self.make_context(fault_config=FaultToleranceConfig(
            verify_shuffle_checksums=False))
        ctx.inject_faults(CorruptionInjector(skip_matches=2, times=3, seed=5))
        got = self.run_tc(ctx)
        snap = ctx.metrics.snapshot()
        assert snap["shuffle_corruption_undetected"] >= 1
        assert snap.get("shuffle_corruption_detected", 0) == 0
        # The mangled bucket reached the reduce side: the closure the
        # fixpoint computes is no longer the clean one.
        assert got != clean

    def test_corruption_schedule_replays_identically(self):
        from repro.engine.faults import CorruptionInjector

        def discrete():
            ctx = self.make_context()
            ctx.inject_faults(CorruptionInjector(skip_matches=1, times=2,
                                                 seed=9))
            rows = self.run_tc(ctx)
            snap = ctx.metrics.snapshot()
            return (rows, snap["shuffle_corruption_injected"],
                    snap["shuffle_corruption_refetch_bytes"])

        assert discrete() == discrete()

    def test_clean_runs_never_pay_for_checksums(self):
        ctx = self.make_context()
        self.run_tc(ctx)
        snap = ctx.metrics.snapshot()
        assert snap.get("shuffle_corruption_injected", 0) == 0
        assert snap.get("shuffle_corruption_detected", 0) == 0
        assert snap.get("shuffle_corruption_refetch_bytes", 0) == 0
