"""Unit + property tests for SetRDD / KeyedStateRDD (Section 6.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine.aggregates import MIN, SUM
from repro.engine.setrdd import KeyedStateRDD, SetRDD


class TestSetRDD:
    def test_union_returns_only_new_rows(self):
        s = SetRDD(2)
        fresh = s.union_in_place(0, [(1,), (2,)])
        assert sorted(fresh) == [(1,), (2,)]
        fresh = s.union_in_place(0, [(2,), (3,)])
        assert fresh == [(3,)]

    def test_partitions_are_independent(self):
        s = SetRDD(2)
        s.union_in_place(0, [(1,)])
        fresh = s.union_in_place(1, [(1,)])
        assert fresh == [(1,)]  # same row, different partition: still new

    def test_contains(self):
        s = SetRDD(1)
        s.union_in_place(0, [(5, 6)])
        assert s.contains(0, (5, 6))
        assert not s.contains(0, (6, 5))

    def test_num_rows_and_collect(self):
        s = SetRDD(3)
        s.union_in_place(0, [(1,), (2,)])
        s.union_in_place(2, [(3,)])
        assert s.num_rows() == 3
        assert sorted(s.collect()) == [(1,), (2,), (3,)]

    @given(st.lists(st.tuples(st.integers(0, 20)), max_size=100))
    def test_idempotent_union(self, rows):
        """Re-inserting the full contents yields an empty delta."""
        s = SetRDD(1)
        s.union_in_place(0, rows)
        assert s.union_in_place(0, rows) == []

    @given(st.lists(st.tuples(st.integers(0, 50)), max_size=100),
           st.lists(st.tuples(st.integers(0, 50)), max_size=100))
    def test_union_models_set_union(self, a, b):
        s = SetRDD(1)
        s.union_in_place(0, a)
        s.union_in_place(0, b)
        assert set(s.collect()) == set(a) | set(b)


class TestKeyedStateRDD:
    def test_insert_then_improve_min(self):
        state = KeyedStateRDD(1, (MIN,))
        delta = state.merge(0, [("a", (10,))])
        assert delta == [("a", (10,))]
        delta = state.merge(0, [("a", (5,))])
        assert delta == [("a", (5,))]
        assert state.partitions[0]["a"] == (5,)

    def test_worse_min_produces_no_delta(self):
        state = KeyedStateRDD(1, (MIN,))
        state.merge(0, [("a", (5,))])
        assert state.merge(0, [("a", (9,))]) == []

    def test_sum_delta_carries_increment(self):
        state = KeyedStateRDD(1, (SUM,))
        state.merge(0, [("a", (10,))])
        delta = state.merge(0, [("a", (4,))])
        assert delta == [("a", (4,))]
        assert state.partitions[0]["a"] == (14,)

    def test_mixed_aggregate_columns(self):
        state = KeyedStateRDD(1, (MIN, SUM))
        state.merge(0, [("a", (10, 1))])
        delta = state.merge(0, [("a", (12, 2))])
        # min not improved (delta keeps state value), sum incremented.
        assert delta == [("a", (10, 2))]
        assert state.partitions[0]["a"] == (10, 3)

    def test_collect_rows_scalar_key(self):
        state = KeyedStateRDD(1, (MIN,))
        state.merge(0, [("a", (1,)), ("b", (2,))])
        assert sorted(state.collect_rows()) == [("a", 1), ("b", 2)]

    def test_collect_rows_tuple_key(self):
        state = KeyedStateRDD(1, (MIN,))
        state.merge(0, [(("x", "y"), (1,))])
        assert state.collect_rows() == [("x", "y", 1)]

    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(-50, 50)),
                    min_size=1, max_size=80))
    def test_min_state_matches_builtin_min(self, pairs):
        state = KeyedStateRDD(1, (MIN,))
        state.merge(0, [(k, (v,)) for k, v in pairs])
        expected = {}
        for k, v in pairs:
            expected[k] = min(expected.get(k, v), v)
        assert state.partitions[0] == {k: (v,) for k, v in expected.items()}

    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(1, 50)),
                    min_size=1, max_size=80))
    def test_sum_state_matches_builtin_sum(self, pairs):
        state = KeyedStateRDD(1, (SUM,))
        for k, v in pairs:
            state.merge(0, [(k, (v,))])
        expected: dict = {}
        for k, v in pairs:
            expected[k] = expected.get(k, 0) + v
        assert state.partitions[0] == {k: (v,) for k, v in expected.items()}


class TestInsertDeltaConsistency:
    """Regression: the single-aggregate hot path must emit the same
    insert delta as the generic multi-aggregate path (both via
    ``delta_for_insert``), not the raw incoming values."""

    def _tagging(self, base):
        """A clone of *base* whose delta_for_insert is observable."""
        from repro.engine.aggregates import AggregateFunction

        return AggregateFunction(
            name=base.name,
            merge=base.merge,
            delta_for_insert=lambda v: ("ins", v),
            combine=base.combine,
            normalize=base.normalize,
        )

    def test_single_aggregate_path_applies_delta_for_insert(self):
        tagged = self._tagging(MIN)
        state = KeyedStateRDD(1, (tagged,))
        delta = state.merge(0, [("a", (7,))])
        # Pre-fix, the hot path emitted the raw values ("a", (7,)).
        assert delta == [("a", (("ins", 7),))]
        # The stored state is the raw value, as in the multi path.
        assert state.partitions[0]["a"] == (7,)

    @pytest.mark.parametrize("name", ["sum", "count", "min", "max"])
    def test_single_and_multi_paths_agree(self, name):
        from repro.engine.aggregates import get_aggregate

        agg = get_aggregate(name)
        contributions = [("a", 10), ("a", 4), ("b", 3), ("b", 3), ("c", 1)]

        single = KeyedStateRDD(1, (agg,))
        multi = KeyedStateRDD(1, (agg, agg))
        single_deltas = []
        multi_deltas = []
        for key, value in contributions:
            single_deltas.extend(single.merge(0, [(key, (value,))]))
            multi_deltas.extend(multi.merge(0, [(key, (value, value))]))

        # Same keys enter the delta in the same order, and the first
        # (only) column of every delta value matches column-for-column.
        assert [(k, v[0]) for k, v in single_deltas] == \
            [(k, v[0]) for k, v in multi_deltas]
        assert [(k, v[0]) for k, v in multi_deltas] == \
            [(k, v[1]) for k, v in multi_deltas]
        # Final states agree too.
        assert {k: v[0] for k, v in single.partitions[0].items()} == \
            {k: v[0] for k, v in multi.partitions[0].items()}


class TestMultiAggregateMergeDeltas:
    """Coverage for multi-aggregate-column merge deltas."""

    def test_insert_delta_has_one_value_per_column(self):
        state = KeyedStateRDD(1, (MIN, SUM))
        delta = state.merge(0, [("a", (9, 2))])
        assert delta == [("a", (9, 2))]

    def test_partial_change_emits_state_for_unchanged_column(self):
        from repro.engine.aggregates import MAX

        state = KeyedStateRDD(1, (MIN, MAX))
        state.merge(0, [("a", (5, 5))])
        delta = state.merge(0, [("a", (7, 9))])
        # min unchanged (keeps state value 5), max improved to 9.
        assert delta == [("a", (5, 9))]
        assert state.partitions[0]["a"] == (5, 9)

    def test_no_change_emits_no_delta(self):
        state = KeyedStateRDD(1, (MIN, SUM))
        state.merge(0, [("a", (5, 1))])
        assert state.merge(0, [("a", (9, 0))]) == []

    def test_three_column_mixed_delta(self):
        from repro.engine.aggregates import COUNT, MAX

        state = KeyedStateRDD(1, (MIN, MAX, COUNT))
        state.merge(0, [("k", (4, 4, 1))])
        delta = state.merge(0, [("k", (3, 9, 2))])
        assert delta == [("k", (3, 9, 2))]
        assert state.partitions[0]["k"] == (3, 9, 3)
