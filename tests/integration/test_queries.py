"""Integration: every library query against an independent oracle.

The oracles live in ``repro.baselines.serial`` and share no code with the
fixpoint engine.  Graphs are randomized but seeded.
"""

import random

import pytest

from repro import RaSQLContext
from repro.baselines import serial
from repro.queries.library import get_query


def make_ctx(**tables):
    ctx = RaSQLContext(num_workers=4)
    for name, (columns, rows) in tables.items():
        ctx.register_table(name, columns, rows)
    return ctx


def random_graph(n, m, seed, weighted=False, acyclic=False):
    rng = random.Random(seed)
    edges = set()
    while len(edges) < m:
        a, b = rng.randrange(n), rng.randrange(n)
        if a == b:
            continue
        if acyclic and a > b:
            a, b = b, a
        edges.add((a, b))
    if weighted:
        return [(a, b, rng.randint(1, 10)) for a, b in sorted(edges)]
    return sorted(edges)


class TestGraphQueries:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_sssp_matches_dijkstra(self, seed):
        edges = random_graph(40, 150, seed, weighted=True)
        ctx = make_ctx(edge=(("Src", "Dst", "Cost"), edges))
        result = ctx.sql(get_query("sssp").formatted(source=0)).to_dict()
        assert result == serial.sssp(edges, 0)

    @pytest.mark.parametrize("seed", [1, 2])
    def test_reach_matches_bfs(self, seed):
        edges = random_graph(50, 120, seed)
        ctx = make_ctx(edge=(("Src", "Dst"), edges))
        result = {r[0] for r in ctx.sql(get_query("reach").formatted(source=0)).rows}
        assert result == serial.reach(edges, 0)

    @pytest.mark.parametrize("seed", [1, 2])
    def test_cc_labels_match_min_propagation(self, seed):
        edges = random_graph(40, 100, seed)
        ctx = make_ctx(edge=(("Src", "Dst"), edges))
        result = ctx.sql(get_query("cc_labels").sql).to_dict()
        assert result == serial.connected_components(edges)

    def test_cc_count_distinct(self):
        edges = [(1, 2), (2, 1), (3, 4), (4, 3), (5, 6), (6, 5)]
        ctx = make_ctx(edge=(("Src", "Dst"), edges))
        result = ctx.sql(get_query("cc").sql)
        assert result.rows == [(3,)]

    @pytest.mark.parametrize("seed", [1, 2])
    def test_tc_matches_reference(self, seed):
        edges = random_graph(18, 40, seed)
        ctx = make_ctx(edge=(("Src", "Dst"), edges))
        result = set(ctx.sql(get_query("tc").sql).rows)
        assert result == serial.transitive_closure(edges)

    @pytest.mark.parametrize("seed", [1, 2])
    def test_apsp_matches_dijkstra(self, seed):
        edges = random_graph(15, 40, seed, weighted=True)
        ctx = make_ctx(edge=(("Src", "Dst", "Cost"), edges))
        result = {(a, b): c for a, b, c in ctx.sql(get_query("apsp").sql).rows}
        assert result == serial.apsp(edges)

    @pytest.mark.parametrize("seed", [1, 2])
    def test_count_paths_on_dag(self, seed):
        edges = random_graph(25, 60, seed, acyclic=True)
        ctx = make_ctx(edge=(("Src", "Dst"), edges))
        result = ctx.sql(get_query("count_paths").formatted(source=0)).to_dict()
        expected = serial.count_paths(edges, 0)
        assert result == {k: v for k, v in expected.items() if v}

    def test_same_generation(self):
        rel = [(1, 2), (1, 3), (2, 4), (2, 5), (3, 6)]
        ctx = make_ctx(rel=(("Parent", "Child"), rel))
        result = set(ctx.sql(get_query("same_generation").sql).rows)
        assert result == {(2, 3), (3, 2), (4, 5), (5, 4), (4, 6), (6, 4),
                          (5, 6), (6, 5)}


class TestComplexAnalytics:
    def test_bom(self):
        assbl = [("car", "engine"), ("car", "wheel"),
                 ("engine", "piston"), ("engine", "valve")]
        basic = [("piston", 3), ("valve", 7), ("wheel", 2)]
        ctx = make_ctx(assbl=(("Part", "SPart"), assbl),
                       basic=(("Part", "Days"), basic))
        result = ctx.sql(get_query("bom").sql).to_dict()
        assert result == serial.bom_waitfor(assbl, basic)

    def test_bom_stratified_equals_endo(self):
        assbl = [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
        basic = [("d", 5)]
        ctx = make_ctx(assbl=(("Part", "SPart"), assbl),
                       basic=(("Part", "Days"), basic))
        endo = sorted(ctx.sql(get_query("bom").sql).rows)
        stratified = sorted(ctx.sql(get_query("bom_stratified").sql).rows)
        assert endo == stratified

    def test_management(self):
        report = [(2, 1), (3, 1), (4, 2), (5, 2), (6, 4), (7, 6)]
        ctx = make_ctx(report=(("Emp", "Mgr"), report))
        result = ctx.sql(get_query("management").sql).to_dict()
        assert result == serial.management_counts(report)

    def test_mlm_bonus(self):
        sales = [(1, 100.0), (2, 200.0), (3, 300.0), (4, 80.0)]
        sponsor = [(1, 2), (2, 3), (1, 4)]
        ctx = make_ctx(sales=(("M", "P"), sales),
                       sponsor=(("M1", "M2"), sponsor))
        result = ctx.sql(get_query("mlm_bonus").sql).to_dict()
        expected = serial.mlm_bonus(sales, sponsor)
        assert set(result) == set(expected)
        for member, bonus in expected.items():
            assert result[member] == pytest.approx(bonus)

    def test_interval_coalesce(self):
        intervals = [(1, 4), (2, 5), (4, 8), (10, 12), (11, 15), (20, 21)]
        ctx = make_ctx(inter=(("S", "E"), intervals))
        result = sorted(ctx.sql(get_query("interval_coalesce").sql).rows)
        assert result == serial.coalesce_intervals(intervals)

    def test_party_attendance(self):
        friendships = [("ann", "bob"), ("ann", "cat"), ("ann", "dan"),
                       ("bob", "cat"), ("cat", "dan"), ("bob", "eve"),
                       ("cat", "eve"), ("dan", "eve")]
        ctx = make_ctx(organizer=(("OrgName",), [("ann",)]),
                       friend=(("Pname", "Fname"), friendships))
        result = {r[0] for r in ctx.sql(get_query("party_attendance").sql).rows}
        assert result == serial.party_attendance(["ann"], friendships)

    def test_party_attendance_cascades(self):
        # Three organizers are friends of x; x attending tips y over.
        friendships = [("o1", "x"), ("o2", "x"), ("o3", "x"),
                       ("o1", "y"), ("o2", "y"), ("x", "y")]
        organizers = [("o1",), ("o2",), ("o3",)]
        ctx = make_ctx(organizer=(("OrgName",), organizers),
                       friend=(("Pname", "Fname"), friendships))
        result = {r[0] for r in ctx.sql(get_query("party_attendance").sql).rows}
        assert result == {"o1", "o2", "o3", "x", "y"}

    def test_company_control(self):
        shares = [("a", "b", 60), ("b", "c", 30), ("a", "c", 30),
                  ("c", "d", 51), ("b", "e", 20), ("c", "e", 40)]
        ctx = make_ctx(shares=(("By", "Of", "Percent"), shares))
        result = {(a, b): t for a, b, t in
                  ctx.sql(get_query("company_control").sql).rows}
        expected = serial.company_control(shares)
        assert set(result) == set(expected)
        for pair, total in expected.items():
            assert result[pair] == pytest.approx(total)

    def test_company_control_transitive_chain(self):
        # a controls b (60), b controls c (70): a inherits b's 70 of c.
        shares = [("a", "b", 60), ("b", "c", 70), ("c", "d", 30)]
        ctx = make_ctx(shares=(("By", "Of", "Percent"), shares))
        result = {(a, b): t for a, b, t in
                  ctx.sql(get_query("company_control").sql).rows}
        assert result[("a", "c")] == 70
        assert result[("a", "d")] == 30 + 30  # via b? no: via c only once
