"""Process-backend differential and supervision suite.

The simulated backend is the deterministic oracle; the process backend
runs eligible fixpoint stages on real spawn-started worker processes.
This suite proves the two agree bit-exactly — identical result rows,
identical iteration counts, identical convergence verdicts — for every
library query, both on a healthy pool and while chaos SIGKILLs/SIGSTOPs
live workers mid-query, and that the supervision layer's guarantees
hold: hung workers are reaped within the configured liveness timeout,
poison tasks fail typed (with a partial trace) instead of crash-looping,
and an exhausted pool surfaces :class:`NoHealthyWorkersError`.

Run with ``pytest -m process_backend``; each test tears its pool down.
"""

import time

import pytest

from repro import RaSQLContext
from repro.chaos import (
    _converged,
    make_real_kill_schedule,
    run_with_real_kills,
)
from repro.core.config import ExecutionConfig
from repro.engine.backend import ProcessConfig
from repro.errors import NoHealthyWorkersError, PoisonTaskError
from tests.integration.test_chaos import NUM_WORKERS, QUERY_SETUPS

pytestmark = pytest.mark.process_backend

#: Tight supervision constants so fault tests run in seconds: a worker
#: silent for 1s is reaped, crash backoff is near-zero.
FAST_SUPERVISION = ProcessConfig(heartbeat_interval=0.05,
                                 liveness_timeout=1.0,
                                 task_deadline_s=20.0,
                                 backoff_base_s=0.01)

#: ``kernel_min_rows=0`` disables the small-input kernel gate so the
#: tiny test graphs still take the remote-eligible kernel paths.
UNGATED = dict(kernel_min_rows=0)


def make_context(query_name, backend, process_config=FAST_SUPERVISION,
                 num_workers=NUM_WORKERS):
    build_tables, _ = QUERY_SETUPS[query_name]
    config = ExecutionConfig(backend=backend, **UNGATED)
    kwargs = {"process_config": process_config} if backend == "process" else {}
    ctx = RaSQLContext(num_workers=num_workers, config=config, **kwargs)
    for name, (columns, rows) in build_tables().items():
        ctx.register_table(name, columns, rows)
    return ctx


def _rows(relation):
    return sorted(relation.rows, key=repr)


# ----------------------------------------------------------------------
# differential: every library query, clean pool
# ----------------------------------------------------------------------


@pytest.mark.timeout(180)
@pytest.mark.parametrize("query_name", sorted(QUERY_SETUPS))
def test_clean_differential(query_name):
    _, make_query = QUERY_SETUPS[query_name]
    sim_ctx = make_context(query_name, "simulated")
    expected = sim_ctx.sql(make_query())
    sim_run = sim_ctx.last_run

    proc_ctx = make_context(query_name, "process")
    try:
        actual = proc_ctx.sql(make_query())
        run = proc_ctx.last_run
    finally:
        proc_ctx.close()

    assert _rows(expected) == _rows(actual)
    assert sim_run.iterations == run.iterations
    assert _converged(sim_run) == _converged(run)
    # The process run must not have silently degraded to the oracle.
    assert run.supervision_summary()["process_backend_degradations"] == 0


# ----------------------------------------------------------------------
# differential: every library query, under real signal chaos
# ----------------------------------------------------------------------


@pytest.mark.timeout(180)
@pytest.mark.parametrize("query_name", sorted(QUERY_SETUPS))
def test_differential_under_real_kills(query_name):
    index = sorted(QUERY_SETUPS).index(query_name)
    seed = 101 + index  # per-query seed: strikes land in varied spots
    _, make_query = QUERY_SETUPS[query_name]

    def factory(backend):
        return make_context(query_name, backend)

    report = run_with_real_kills(
        make_query(), factory, make_real_kill_schedule(seed, kills=1),
        seed=seed)
    assert report.exact, report.summary()
    # A fired kill must be fully accounted in the supervision counters.
    if report.kills_fired:
        counters = report.counters
        assert (counters["process_worker_crashes"]
                + counters["process_worker_reaps"]) >= report.kills_fired


# ----------------------------------------------------------------------
# supervision guarantees
# ----------------------------------------------------------------------


@pytest.mark.timeout(120)
def test_hung_worker_reaped_within_liveness_timeout():
    """A SIGSTOP-style hang (heartbeats cease) is detected and reaped
    within the configured liveness timeout plus scheduling slack."""
    config = FAST_SUPERVISION
    ctx = make_context("sssp", "process", config)
    _, make_query = QUERY_SETUPS["sssp"]
    try:
        backend = ctx.cluster.backend
        assert backend.remote_ready()

        # Warm run: pool spawned, imports done, query path exercised.
        t0 = time.monotonic()
        clean = ctx.sql(make_query())
        clean_wall = time.monotonic() - t0

        backend.add_chaos([{"kind": "hang", "stage": "fixpoint",
                            "task": None, "times": 1}])
        t0 = time.monotonic()
        chaotic = ctx.sql(make_query())
        chaos_wall = time.monotonic() - t0

        supervision = ctx.last_run.supervision_summary()
        assert supervision["process_worker_reaps"] >= 1
        assert supervision["process_worker_respawns"] >= 1
        assert _rows(clean) == _rows(chaotic)

        overhead = chaos_wall - clean_wall
        # The reaper must wait out the liveness timeout (the hang keeps
        # the OS process alive) but detect within about one heartbeat of
        # it; the remaining slack covers the respawn (a fresh spawn-start
        # interpreter) and state rebuild.
        assert overhead >= config.liveness_timeout - config.heartbeat_interval
        assert overhead <= config.liveness_timeout + 10.0
    finally:
        ctx.close()


@pytest.mark.timeout(120)
def test_poison_task_quarantined_with_partial_trace():
    """A task that keeps killing its worker is quarantined after
    ``poison_threshold`` kills and fails the query typed."""
    ctx = make_context("sssp", "process")
    _, make_query = QUERY_SETUPS["sssp"]
    try:
        backend = ctx.cluster.backend
        assert backend.remote_ready()
        backend.add_chaos([{"kind": "poison", "stage": "fixpoint",
                            "task": 1, "times": 10}])
        with pytest.raises(PoisonTaskError) as excinfo:
            ctx.sql(make_query())
        exc = excinfo.value
        assert exc.task_index == 1
        assert exc.worker_kills == backend.config.poison_threshold
        assert exc.partial_trace is not None
        supervision = ctx.last_run.supervision_summary()
        assert supervision["process_tasks_quarantined"] == 1
        # The first kills were respawned before the quarantine tripped.
        assert supervision["process_worker_respawns"] >= 1
    finally:
        ctx.close()


@pytest.mark.timeout(120)
def test_poison_surfaces_through_query_future():
    """Respawn-budget/poison exhaustion reaches a serving-layer client
    as a typed error carrying the partial trace."""
    from repro.serving import QueryService

    ctx = make_context("sssp", "process")
    _, make_query = QUERY_SETUPS["sssp"]
    try:
        backend = ctx.cluster.backend
        assert backend.remote_ready()
        backend.add_chaos([{"kind": "poison", "stage": "fixpoint",
                            "task": 1, "times": 20}])
        service = QueryService(ctx)
        future = service.submit(service.session("alice"), make_query())
        service.drain()
        assert future.done and not future.ok
        with pytest.raises(PoisonTaskError) as excinfo:
            future.result()
        assert excinfo.value.partial_trace is not None
    finally:
        ctx.close()


@pytest.mark.timeout(120)
def test_pool_exhaustion_raises_no_healthy_workers():
    """Killing every worker with no respawn budget fails typed, not by
    hanging or indexing into an empty pool."""
    config = ProcessConfig(heartbeat_interval=0.05, liveness_timeout=1.0,
                           task_deadline_s=20.0, backoff_base_s=0.01,
                           respawn_budget=0)
    ctx = make_context("sssp", "process", config, num_workers=2)
    _, make_query = QUERY_SETUPS["sssp"]
    try:
        backend = ctx.cluster.backend
        assert backend.remote_ready()
        backend.add_chaos([{"kind": "poison", "stage": "fixpoint",
                            "task": None, "times": 20}])
        with pytest.raises(NoHealthyWorkersError):
            ctx.sql(make_query())
    finally:
        ctx.close()


@pytest.mark.timeout(120)
def test_pool_shrinks_to_survivors_and_stays_exact():
    """With no respawn budget the pool degrades gracefully: partitions
    re-home onto survivors and the result stays bit-exact."""
    sim_ctx = make_context("cc", "simulated")
    _, make_query = QUERY_SETUPS["cc"]
    expected = sim_ctx.sql(make_query())
    sim_run = sim_ctx.last_run

    config = ProcessConfig(heartbeat_interval=0.05, liveness_timeout=1.0,
                           task_deadline_s=20.0, backoff_base_s=0.01,
                           respawn_budget=0)
    ctx = make_context("cc", "process", config)
    try:
        backend = ctx.cluster.backend
        assert backend.remote_ready()
        backend.add_chaos([{"kind": "poison", "stage": "fixpoint",
                            "task": 2, "times": 1}])
        actual = ctx.sql(make_query())
        run = ctx.last_run
        supervision = run.supervision_summary()
        assert supervision["process_worker_crashes"] >= 1
        assert supervision["process_worker_respawns"] == 0
        assert supervision["process_backend_degradations"] >= 1
        assert len(ctx.cluster.lost_workers) == 1
    finally:
        ctx.close()
    assert _rows(expected) == _rows(actual)
    assert sim_run.iterations == run.iterations


@pytest.mark.timeout(120)
def test_explain_analyze_reports_supervision():
    ctx = make_context("sssp", "process")
    _, make_query = QUERY_SETUPS["sssp"]
    try:
        ctx.sql(make_query())
        report = ctx.last_run.explain_analyze()
    finally:
        ctx.close()
    assert "process supervision" in report
    assert "tasks shipped to pool workers" in report
    assert "heartbeats" in report
