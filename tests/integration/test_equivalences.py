"""Property tests: every evaluation mode computes the same fixpoint.

These are the semantic heart of the reproduction: semi-naive ≡ naive ≡
stratified ≡ decomposed ≡ codegen ≡ interpreted, across random graphs —
the equivalences Sections 3 and 6 prove and the engine must preserve.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ExecutionConfig, RaSQLContext
from repro.queries.library import get_query

SETTINGS = settings(max_examples=15, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


@st.composite
def weighted_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=14))
    m = draw(st.integers(min_value=1, max_value=35))
    edges = set()
    for _ in range(m):
        a = draw(st.integers(min_value=0, max_value=n - 1))
        b = draw(st.integers(min_value=0, max_value=n - 1))
        if a != b:
            w = draw(st.integers(min_value=1, max_value=9))
            edges.add((a, b, w))
    return sorted(edges)


@st.composite
def dags(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    m = draw(st.integers(min_value=1, max_value=25))
    edges = set()
    for _ in range(m):
        a = draw(st.integers(min_value=0, max_value=n - 1))
        b = draw(st.integers(min_value=0, max_value=n - 1))
        if a < b:
            edges.add((a, b))
    return sorted(edges)


def run_sssp(edges, config):
    ctx = RaSQLContext(config=config)
    ctx.register_table("edge", ["Src", "Dst", "Cost"], edges)
    return sorted(ctx.sql(get_query("sssp").formatted(source=0)).rows)


def run_tc(edges, config):
    ctx = RaSQLContext(config=config)
    ctx.register_table("edge", ["Src", "Dst"], edges)
    return sorted(ctx.sql(get_query("tc").sql).rows)


class TestModeEquivalence:
    @SETTINGS
    @given(weighted_graphs())
    def test_dsn_equals_naive_sssp(self, edges):
        dsn = run_sssp(edges, ExecutionConfig())
        naive = run_sssp(edges, ExecutionConfig(evaluation="naive",
                                                codegen=False))
        assert dsn == naive

    @SETTINGS
    @given(weighted_graphs())
    def test_dsn_equals_stratified_on_dags(self, edges):
        # Orient edges upward so the graph is acyclic: stratified halts.
        edges = sorted({(min(a, b), max(a, b), w) for a, b, w in edges})
        dsn = run_sssp(edges, ExecutionConfig())
        stratified = run_sssp(edges, ExecutionConfig(
            evaluation="stratified", max_iterations=200))
        assert dsn == stratified

    @SETTINGS
    @given(weighted_graphs())
    def test_codegen_equals_interpreted_sssp(self, edges):
        generated = run_sssp(edges, ExecutionConfig(codegen=True))
        interpreted = run_sssp(edges, ExecutionConfig(codegen=False))
        assert generated == interpreted

    @SETTINGS
    @given(dags())
    def test_decomposed_equals_global_tc(self, edges):
        decomposed = run_tc(edges, ExecutionConfig(decomposed_plans=True))
        global_plan = run_tc(edges, ExecutionConfig(decomposed_plans=False))
        assert decomposed == global_plan

    @SETTINGS
    @given(weighted_graphs())
    def test_sort_merge_equals_shuffle_hash(self, edges):
        hash_join = run_sssp(edges, ExecutionConfig(join_strategy="shuffle_hash"))
        merge_join = run_sssp(edges, ExecutionConfig(join_strategy="sort_merge",
                                                     codegen=False))
        assert hash_join == merge_join

    @SETTINGS
    @given(weighted_graphs())
    def test_broadcast_equals_copartition(self, edges):
        broadcast = run_sssp(edges, ExecutionConfig(broadcast_bases=True))
        copartition = run_sssp(edges, ExecutionConfig(broadcast_bases=False))
        assert broadcast == copartition

    @SETTINGS
    @given(weighted_graphs())
    def test_two_stage_equals_combined(self, edges):
        combined = run_sssp(edges, ExecutionConfig(stage_combination=True))
        two_stage = run_sssp(edges, ExecutionConfig(stage_combination=False))
        assert combined == two_stage

    @SETTINGS
    @given(weighted_graphs())
    def test_setrdd_ablation_is_semantically_neutral(self, edges):
        mutable = run_sssp(edges, ExecutionConfig(use_setrdd=True))
        immutable = run_sssp(edges, ExecutionConfig(use_setrdd=False))
        assert mutable == immutable

    @SETTINGS
    @given(weighted_graphs())
    def test_partial_aggregation_is_semantically_neutral(self, edges):
        with_combine = run_sssp(edges, ExecutionConfig(partial_aggregation=True))
        without = run_sssp(edges, ExecutionConfig(partial_aggregation=False))
        assert with_combine == without

    @SETTINGS
    @given(weighted_graphs(), st.integers(min_value=1, max_value=9))
    def test_partition_count_is_semantically_neutral(self, edges, partitions):
        one = run_sssp(edges, ExecutionConfig())
        ctx = RaSQLContext(num_workers=3, num_partitions=partitions)
        ctx.register_table("edge", ["Src", "Dst", "Cost"], edges)
        many = sorted(ctx.sql(get_query("sssp").formatted(source=0)).rows)
        assert one == many


class TestSumEquivalences:
    @SETTINGS
    @given(dags())
    def test_count_paths_codegen_and_partitions(self, edges):
        results = []
        for config, workers in [(ExecutionConfig(codegen=True), 2),
                                (ExecutionConfig(codegen=False), 5)]:
            ctx = RaSQLContext(num_workers=workers, config=config)
            ctx.register_table("edge", ["Src", "Dst"], edges)
            results.append(sorted(
                ctx.sql(get_query("count_paths").formatted(source=0)).rows))
        assert results[0] == results[1]
