"""Multiple aggregate columns in one recursive head.

The paper's examples all use one aggregate, but nothing in the semantics
restricts the head to one: each column carries its own lattice/accumulator
and the delta fires when any of them changes.  These tests pin that down,
including the delta encodings (min/max carry totals, sum/count carry
increments) travelling side by side in one row.
"""

from repro import ExecutionConfig, RaSQLContext
from repro.datagen import random_graph

MIN_MAX = """
WITH recursive path(Dst, min() AS Best, max() AS Worst) AS
  (SELECT 0, 0, 0) UNION
  (SELECT edge.Dst, path.Best + edge.Cost, path.Worst + edge.Cost
   FROM path, edge WHERE path.Dst = edge.Src)
SELECT Dst, Best, Worst FROM path
"""

MIN_SUM = """
WITH recursive path(Dst, min() AS Cost, sum() AS Cnt) AS
  (SELECT 0, 0, 1) UNION
  (SELECT edge.Dst, path.Cost + edge.Cost, path.Cnt
   FROM path, edge WHERE path.Dst = edge.Src)
SELECT Dst, Cost, Cnt FROM path
"""


def run(sql, edges, config=None, workers=3):
    ctx = RaSQLContext(num_workers=workers, config=config)
    ctx.register_table("edge", ["Src", "Dst", "Cost"], edges)
    return sorted(ctx.sql(sql).rows)


def longest_paths(edges, source):
    """Longest-path oracle on a DAG (dynamic programming)."""
    from collections import defaultdict, deque

    adj = defaultdict(list)
    indeg = defaultdict(int)
    nodes = set()
    for a, b, w in edges:
        adj[a].append((b, w))
        indeg[b] += 1
        nodes.update((a, b))
    order = deque(n for n in nodes if indeg[n] == 0)
    longest = {source: 0}
    topo = []
    while order:
        node = order.popleft()
        topo.append(node)
        for neighbor, _ in adj[node]:
            indeg[neighbor] -= 1
            if indeg[neighbor] == 0:
                order.append(neighbor)
    for node in topo:
        if node in longest:
            for neighbor, weight in adj[node]:
                candidate = longest[node] + weight
                if candidate > longest.get(neighbor, float("-inf")):
                    longest[neighbor] = candidate
    return longest


class TestMinMaxTogether:
    EDGES = [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 5.0), (2, 3, 1.0)]

    def test_both_extrema_correct(self):
        from repro.baselines import serial

        rows = run(MIN_MAX, self.EDGES)
        best = {dst: b for dst, b, _ in rows}
        worst = {dst: w for dst, _, w in rows}
        assert best == serial.sssp(self.EDGES, 0)
        assert worst == longest_paths(self.EDGES, 0)

    def test_codegen_matches_interpreted(self):
        for_codegen = run(MIN_MAX, self.EDGES, ExecutionConfig(codegen=True))
        interpreted = run(MIN_MAX, self.EDGES, ExecutionConfig(codegen=False))
        assert for_codegen == interpreted

    def test_partial_aggregation_neutral(self):
        combined = run(MIN_MAX, self.EDGES,
                       ExecutionConfig(partial_aggregation=True))
        raw = run(MIN_MAX, self.EDGES,
                  ExecutionConfig(partial_aggregation=False))
        assert combined == raw

    def test_random_dags(self):
        from repro.baselines import serial

        edges = [(a, b, float(w)) for a, b, w in
                 random_graph(30, 90, seed=5, weighted=True, acyclic=True)]
        rows = run(MIN_MAX, edges)
        best = {dst: b for dst, b, _ in rows}
        assert best == serial.sssp(edges, 0)
        worst = {dst: w for dst, _, w in rows}
        assert worst == longest_paths(edges, 0)


class TestMinWithSum:
    def test_diamond_counts_derivations(self):
        # Two derivations reach node 3; min cost picks the cheaper one,
        # the sum column counts both.
        edges = [(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 2.0)]
        rows = run(MIN_SUM, edges)
        by_dst = {dst: (cost, cnt) for dst, cost, cnt in rows}
        assert by_dst[3] == (2.0, 2)
        assert by_dst[1] == (1.0, 1)

    def test_partition_count_neutral(self):
        edges = [(0, 1, 1.0), (0, 2, 3.0), (1, 2, 1.0), (2, 3, 1.0)]
        one = run(MIN_SUM, edges, workers=1)
        many = run(MIN_SUM, edges, workers=5)
        assert one == many

    def test_two_stage_neutral(self):
        edges = [(0, 1, 1.0), (0, 2, 3.0), (1, 2, 1.0)]
        combined = run(MIN_SUM, edges,
                       ExecutionConfig(stage_combination=True))
        split = run(MIN_SUM, edges,
                    ExecutionConfig(stage_combination=False))
        assert combined == split
