"""Resource-governance integration suite.

Three claims, verified end to end over the full query library:

1. **Spilling is invisible to correctness** — every library query returns
   bit-exact results when the per-worker budget is squeezed until cached
   partitions spill to the simulated disk tier (the analog of
   ``repro.chaos``'s clean-vs-faulted comparison, for memory pressure).
2. **Deadlines abort cooperatively, with evidence** — a query past its
   simulated deadline raises with the partial trace attached.
3. **Admission control bounds the session** — the governor queues and
   rejects with actionable errors, visible through ``RaSQLContext.sql``.

Run with ``pytest -m governance``; the CI job mirrors the chaos matrix.
"""

import os

import pytest

from repro import ExecutionConfig, MemoryConfig, QueryGovernor, RaSQLContext
from repro.chaos import make_schedule, run_with_chaos
from repro.engine.faults import MemoryPressureInjector
from repro.errors import (
    AdmissionRejectedError,
    MemoryBudgetExceededError,
    QueryDeadlineExceededError,
)

from tests.integration.test_chaos import NUM_WORKERS, QUERY_SETUPS

pytestmark = pytest.mark.governance

SEEDS = [int(s) for s in
         os.environ.get("RASQL_GOVERNANCE_SEEDS", "23").split(",")]


def _sorted(rows):
    return sorted(rows, key=repr)


def make_context(query_name, **context_kwargs):
    build_tables, _ = QUERY_SETUPS[query_name]
    ctx = RaSQLContext(num_workers=NUM_WORKERS, **context_kwargs)
    for name, (columns, rows) in build_tables().items():
        ctx.register_table(name, columns, rows)
    return ctx


# ----------------------------------------------------------------------
# 1. bit-exact under spill, across the whole query library
# ----------------------------------------------------------------------

@pytest.mark.timeout(120)
@pytest.mark.parametrize("query_name", sorted(QUERY_SETUPS))
def test_query_bit_exact_under_spill(query_name):
    """Squeeze the budget until partitions spill; results must not move.

    The budget is derived from the unconstrained run: above the largest
    single segment (so the hard budget cannot abort) but below the peak
    resident set (so at least one spill must happen).
    """
    _, make_query = QUERY_SETUPS[query_name]
    query = make_query()

    clean_ctx = make_context(query_name)
    clean = clean_ctx.sql(query)
    memory = clean_ctx.cluster.memory
    peak = max(memory.high_water_bytes(w) for w in range(NUM_WORKERS))
    budget = max(memory.max_segment_bytes() + 1, int(0.6 * peak))
    assert budget < peak, "budget heuristic must force spilling"

    squeezed_ctx = make_context(
        query_name,
        memory_config=MemoryConfig(worker_budget_bytes=budget))
    squeezed = squeezed_ctx.sql(query)

    assert _sorted(squeezed.rows) == _sorted(clean.rows)
    summary = squeezed_ctx.last_run.memory_summary()
    assert summary["spill_events"] >= 1
    assert summary["spill_bytes"] > 0
    # Spilling costs simulated disk time, never correctness.
    assert squeezed_ctx.last_run.sim_time >= clean_ctx.last_run.sim_time


@pytest.mark.timeout(120)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("query_name", ["sssp", "cc", "tc", "bom"])
def test_spill_composes_with_chaos_schedule(query_name, seed):
    """Seeded chaos (task deaths + worker loss + memory pressure) over a
    budget-constrained cluster still reproduces the clean result."""
    _, make_query = QUERY_SETUPS[query_name]

    probe = make_context(query_name)
    probe.sql(make_query())
    memory = probe.cluster.memory
    peak = max(memory.high_water_bytes(w) for w in range(NUM_WORKERS))
    budget = max(memory.max_segment_bytes() + 1, int(0.6 * peak))

    schedule = make_schedule(seed, num_workers=NUM_WORKERS)
    report = run_with_chaos(
        make_query(),
        lambda: make_context(
            query_name,
            memory_config=MemoryConfig(worker_budget_bytes=budget)),
        schedule)
    assert report.matches, report.summary()


@pytest.mark.timeout(120)
@pytest.mark.parametrize("query_name", ["sssp", "cc"])
def test_memory_pressure_injection_is_result_neutral(query_name):
    """A mid-fixpoint budget squeeze (soft enforcement) degrades the run
    without changing results or raising."""
    _, make_query = QUERY_SETUPS[query_name]
    query = make_query()

    clean = make_context(query_name).sql(query)

    ctx = make_context(query_name)
    ctx.inject_faults(MemoryPressureInjector(
        "fixpoint", fraction=0.3, skip_matches=1))
    pressured = ctx.sql(query)

    assert _sorted(pressured.rows) == _sorted(clean.rows)
    summary = ctx.last_run.memory_summary()
    assert summary["memory_pressure_events"] == 1
    assert summary["spill_events"] >= 1


def test_pressure_budget_does_not_leak_into_next_query():
    ctx = make_context("sssp")
    _, make_query = QUERY_SETUPS["sssp"]
    ctx.inject_faults(MemoryPressureInjector("fixpoint", fraction=0.3))
    ctx.sql(make_query())
    assert ctx.cluster.memory.soft
    ctx.sql(make_query())  # fresh query resets to the configured budget
    assert not ctx.cluster.memory.soft
    assert ctx.cluster.memory.budget_bytes is None


# ----------------------------------------------------------------------
# 2. EXPLAIN ANALYZE memory section
# ----------------------------------------------------------------------

@pytest.mark.timeout(60)
def test_explain_analyze_reports_memory_section():
    _, make_query = QUERY_SETUPS["sssp"]
    query = make_query()

    probe = make_context("sssp")
    probe.sql(query)
    memory = probe.cluster.memory
    peak = max(memory.high_water_bytes(w) for w in range(NUM_WORKERS))
    budget = max(memory.max_segment_bytes() + 1, int(0.6 * peak))

    ctx = make_context(
        "sssp", memory_config=MemoryConfig(worker_budget_bytes=budget))
    report = ctx.explain_analyze(query)
    assert "memory" in report
    for worker in range(NUM_WORKERS):
        assert f"worker {worker} high-water:" in report
    assert "spills:" in report
    assert "mem_peak_B" in report  # per-iteration peak column

    timeline = ctx.last_run.iteration_timeline()
    assert timeline and all(
        row["memory_peak_bytes"] > 0 for row in timeline)


# ----------------------------------------------------------------------
# 3. deadlines
# ----------------------------------------------------------------------

@pytest.mark.timeout(60)
def test_deadline_aborts_with_partial_trace():
    _, make_query = QUERY_SETUPS["sssp"]
    query = make_query()

    probe = make_context("sssp")
    probe.sql(query)
    full_time = probe.last_run.sim_time

    ctx = make_context("sssp")
    with pytest.raises(QueryDeadlineExceededError) as info:
        ctx.sql(query, config=ExecutionConfig(
            deadline_seconds=full_time / 2))
    error = info.value
    assert error.partial_trace is not None
    assert error.partial_trace["children"], "partial trace must be non-empty"
    assert error.sim_time > error.deadline_seconds >= 0
    assert ctx.last_run.trace == error.partial_trace
    assert ctx.last_run.metrics.get("deadline_aborts") == 1
    # The deadline is per-query: the next call runs to completion.
    result = ctx.sql(query)
    assert len(result.rows) > 0
    assert ctx.cluster.deadline is None


@pytest.mark.timeout(60)
def test_generous_deadline_does_not_fire():
    _, make_query = QUERY_SETUPS["sssp"]
    ctx = make_context("sssp")
    result = ctx.sql(make_query(),
                     config=ExecutionConfig(deadline_seconds=1e9))
    assert len(result.rows) > 0


# ----------------------------------------------------------------------
# 4. admission control through the public API
# ----------------------------------------------------------------------

def test_governor_queues_then_rejects_held_tickets():
    ctx = make_context(
        "sssp", governor=QueryGovernor(max_concurrent=1, max_queue=1))
    _, make_query = QUERY_SETUPS["sssp"]
    # Hold a slot open, as a long-running session would.
    ctx.governor.admit("held")
    before = ctx.metrics.sim_time
    ctx.sql(make_query())  # queued behind the held ticket, then runs
    assert ctx.metrics.get("queries_queued") == 1
    assert ctx.metrics.sim_time > before
    ctx.governor.admit("held-2")  # now 1 held + 1 held = queue full
    with pytest.raises(AdmissionRejectedError):
        ctx.sql(make_query())
    assert ctx.metrics.get("queries_rejected") == 1


def test_governor_rejects_on_reserved_memory():
    ctx = make_context(
        "sssp", governor=QueryGovernor(max_reserved_bytes=1))
    _, make_query = QUERY_SETUPS["sssp"]
    with pytest.raises(AdmissionRejectedError) as info:
        ctx.sql(make_query())  # the edge table alone estimates > 1 byte
    assert info.value.reason == "memory"


def test_rejected_query_leaves_no_ticket_behind():
    ctx = make_context(
        "sssp", governor=QueryGovernor(max_concurrent=1, max_queue=0))
    _, make_query = QUERY_SETUPS["sssp"]
    ctx.sql(make_query())
    assert len(ctx.governor.active) == 0


# ----------------------------------------------------------------------
# 5. hard budget failure mode
# ----------------------------------------------------------------------

def test_impossible_budget_raises_structured_error():
    ctx = make_context(
        "sssp", memory_config=MemoryConfig(worker_budget_bytes=8))
    _, make_query = QUERY_SETUPS["sssp"]
    with pytest.raises(MemoryBudgetExceededError) as info:
        ctx.sql(make_query())
    error = info.value
    assert error.budget_bytes == 8
    assert error.requested_bytes > 8
    assert 0 <= error.worker < NUM_WORKERS
