"""Kernel-layer differential suite: kernels on vs off, bit for bit.

The kernel layer (``repro.engine.kernels`` + the generated fast paths in
``repro.core.codegen``/``fixpoint``) claims pure wall-clock wins: same
rows, same iteration counts, only faster.  This suite pins that claim
across the whole query library and under composition with the other
subsystems (sort-merge planning, fault injection, memory pressure).

Run with ``pytest -m kernels``; extra graph seeds via
``RASQL_KERNELS_SEEDS`` (comma-separated).
"""

import os

import pytest

from repro import ExecutionConfig, MemoryConfig, RaSQLContext
from repro.chaos import make_schedule, run_with_chaos

from tests.integration.test_chaos import (
    NUM_WORKERS,
    QUERY_SETUPS,
    random_graph,
)

pytestmark = pytest.mark.kernels

SEEDS = [int(s) for s in
         os.environ.get("RASQL_KERNELS_SEEDS", "5,13").split(",")]

REFERENCE = ExecutionConfig(kernels=False, adaptive_joins=False)

#: Queries whose input is a generated graph: rebuilt per seed so the
#: differential covers several shapes.  Fixed-data queries (BOM, MLM,
#: intervals, ...) run on their canonical tables for every seed.
GRAPH_QUERIES = {
    "sssp": dict(weighted=True),
    "reach": dict(),
    "count_paths": dict(acyclic=True),
    "cc": dict(),
    "cc_labels": dict(),
    "tc": dict(),
}


def tables_for(query_name, seed):
    if query_name in GRAPH_QUERIES:
        kwargs = GRAPH_QUERIES[query_name]
        columns = ("Src", "Dst") + (("Cost",) if kwargs.get("weighted")
                                    else ())
        return {"edge": (columns, random_graph(24, 60, seed=seed, **kwargs))}
    if query_name == "apsp":
        return {"edge": (("Src", "Dst", "Cost"),
                         random_graph(12, 30, seed=seed, weighted=True))}
    build_tables, _ = QUERY_SETUPS[query_name]
    return build_tables()


def run_query(query_name, seed, config=None, **context_kwargs):
    _, make_query = QUERY_SETUPS[query_name]
    ctx = RaSQLContext(num_workers=NUM_WORKERS, **context_kwargs)
    for name, (columns, rows) in tables_for(query_name, seed).items():
        ctx.register_table(name, columns, rows)
    result = ctx.sql(make_query(), config=config)
    return sorted(result.rows, key=repr), ctx


# ----------------------------------------------------------------------
# 1. every library query, kernels on vs off: same rows, same iterations
# ----------------------------------------------------------------------

@pytest.mark.timeout(120)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("query_name", sorted(QUERY_SETUPS))
def test_query_bit_exact_and_iteration_parity(query_name, seed):
    fast_rows, fast_ctx = run_query(query_name, seed)
    reference_rows, reference_ctx = run_query(query_name, seed,
                                              config=REFERENCE)
    assert fast_rows == reference_rows
    assert (fast_ctx.last_run.iterations
            == reference_ctx.last_run.iterations)


# ----------------------------------------------------------------------
# 2. kernels compose with the sort-merge planner strategy
# ----------------------------------------------------------------------

@pytest.mark.timeout(120)
@pytest.mark.parametrize("query_name", ["sssp", "cc", "tc", "bom",
                                        "company_control"])
def test_bit_exact_under_sort_merge_strategy(query_name):
    seed = SEEDS[0]
    fast_rows, _ = run_query(
        query_name, seed, config=ExecutionConfig(join_strategy="sort_merge"))
    reference_rows, _ = run_query(
        query_name, seed,
        config=ExecutionConfig(join_strategy="sort_merge", kernels=False,
                               adaptive_joins=False))
    assert fast_rows == reference_rows


# ----------------------------------------------------------------------
# 3. kernel counters are observable where the kernels engage
# ----------------------------------------------------------------------

#: The counter tests run on tiny canonical graphs, below the size gate's
#: default threshold: disable the gate so the kernels actually dispatch.
UNGATED = ExecutionConfig(kernel_min_rows=0)


@pytest.mark.timeout(120)
def test_adaptive_join_counters_fire_on_sssp():
    _, ctx = run_query("sssp", SEEDS[0], config=UNGATED)
    summary = ctx.last_run.kernels_summary()
    assert summary["adaptive_join_hash"] > 0


@pytest.mark.timeout(120)
def test_state_cache_counters_fire_on_company_control():
    _, ctx = run_query("company_control", SEEDS[0], config=UNGATED)
    summary = ctx.last_run.kernels_summary()
    assert (summary["kernel_state_cache_hits"]
            + summary["kernel_state_cache_updates"]) > 0


@pytest.mark.timeout(120)
def test_grouped_fixpoint_kernel_engages_on_tc():
    _, ctx = run_query("tc", SEEDS[0], config=UNGATED)
    summary = ctx.last_run.kernels_summary()
    assert summary["kernel_grouped_fixpoint_stages"] > 0
    # ... and never off the kernel path.
    _, reference_ctx = run_query("tc", SEEDS[0], config=REFERENCE)
    reference_summary = reference_ctx.last_run.kernels_summary()
    assert reference_summary["kernel_grouped_fixpoint_stages"] == 0


# ----------------------------------------------------------------------
# 4. the small-input dispatch gate (ExecutionConfig.kernel_min_rows)
# ----------------------------------------------------------------------

@pytest.mark.timeout(120)
def test_small_input_gate_routes_through_reference_loops():
    # 60 edges < the default 256-row threshold: the gate engages and no
    # kernel machinery runs, even though kernels are on in the config.
    _, ctx = run_query("sssp", SEEDS[0])
    summary = ctx.last_run.kernels_summary()
    assert summary["kernel_small_input_gate"] == 1
    assert summary["adaptive_join_hash"] == 0
    assert summary["kernel_state_cache_hits"] == 0
    assert summary["kernel_state_cache_misses"] == 0


@pytest.mark.timeout(120)
def test_small_input_gate_is_bit_exact_with_ungated_kernels():
    for query_name in ("sssp", "tc", "company_control", "bom"):
        gated_rows, gated_ctx = run_query(query_name, SEEDS[0])
        ungated_rows, ungated_ctx = run_query(query_name, SEEDS[0],
                                              config=UNGATED)
        assert gated_rows == ungated_rows
        assert (gated_ctx.last_run.iterations
                == ungated_ctx.last_run.iterations)


@pytest.mark.timeout(120)
def test_gate_does_not_engage_above_threshold():
    ctx = RaSQLContext(num_workers=NUM_WORKERS)
    ctx.register_table("edge", ["Src", "Dst"],
                       random_graph(60, 300, seed=SEEDS[0]))
    _, make_query = QUERY_SETUPS["tc"]
    ctx.sql(make_query())
    assert ctx.last_run.kernels_summary()["kernel_small_input_gate"] == 0


@pytest.mark.timeout(120)
def test_gate_threshold_validated():
    with pytest.raises(ValueError, match="kernel_min_rows"):
        ExecutionConfig(kernel_min_rows=-1)


@pytest.mark.timeout(120)
def test_explain_analyze_reports_kernels_section():
    _, make_query = QUERY_SETUPS["company_control"]
    ctx = RaSQLContext(num_workers=NUM_WORKERS, config=UNGATED)
    for name, (columns, rows) in tables_for("company_control",
                                            SEEDS[0]).items():
        ctx.register_table(name, columns, rows)
    report = ctx.explain_analyze(make_query())
    assert "kernels" in report
    assert "state build-table cache" in report


@pytest.mark.timeout(120)
def test_kernels_off_run_reports_no_kernel_counters():
    _, ctx = run_query("sssp", SEEDS[0], config=REFERENCE)
    summary = ctx.last_run.kernels_summary()
    assert all(value == 0 for value in summary.values())


# ----------------------------------------------------------------------
# 4. composition: kernels under fault injection and memory pressure
# ----------------------------------------------------------------------

@pytest.mark.timeout(120)
@pytest.mark.parametrize("query_name", ["sssp", "cc", "tc", "bom"])
def test_kernels_bit_exact_under_chaos(query_name):
    """Kernels on (the default context) + a seeded fault schedule."""
    _, make_query = QUERY_SETUPS[query_name]

    def factory():
        ctx = RaSQLContext(num_workers=NUM_WORKERS)
        for name, (columns, rows) in tables_for(query_name,
                                                SEEDS[0]).items():
            ctx.register_table(name, columns, rows)
        return ctx

    report = run_with_chaos(make_query(), factory,
                            make_schedule(29, num_workers=NUM_WORKERS))
    assert report.matches, report.summary()


@pytest.mark.timeout(120)
@pytest.mark.parametrize("query_name", ["sssp", "tc"])
def test_kernels_bit_exact_under_spill(query_name):
    """Budget squeezed until spilling: kernels must not change results,
    and the squeezed kernel run must still match the kernels-off run."""
    clean_rows, clean_ctx = run_query(query_name, SEEDS[0])
    memory = clean_ctx.cluster.memory
    peak = max(memory.high_water_bytes(w) for w in range(NUM_WORKERS))
    budget = max(memory.max_segment_bytes() + 1, int(0.6 * peak))

    squeezed_rows, squeezed_ctx = run_query(
        query_name, SEEDS[0],
        memory_config=MemoryConfig(worker_budget_bytes=budget))
    assert squeezed_rows == clean_rows
    assert squeezed_ctx.last_run.memory_summary()["spill_events"] >= 1

    reference_rows, _ = run_query(query_name, SEEDS[0], config=REFERENCE)
    assert squeezed_rows == reference_rows
