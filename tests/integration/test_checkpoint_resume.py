"""Kill-and-resume differentials: every library query, bit-exact.

The durability claim mirrors Section 6.1's recovery claim one level up:
where worker-loss recovery replays a *stage* from cached state, durable
checkpoints replay a *driver* from persisted state.  For every query of
the library, a run killed mid-fixpoint by a :class:`DriverKillInjector`
and resumed in a fresh context must reproduce the uninterrupted run's
result rows, total iteration count, and convergence verdict exactly.

Seeds come from ``RASQL_RESILIENCE_SEEDS`` (comma-separated), so a
failing ``(query, seed)`` pair reproduces locally::

    RASQL_RESILIENCE_SEEDS=3 pytest tests/integration/test_checkpoint_resume.py -k sssp
"""

import os

import pytest

from repro import RaSQLContext
from repro.chaos import run_with_kill_resume
from repro.core.checkpoint import make_query_id
from repro.engine.faults import DriverKillInjector
from repro.errors import (
    CheckpointError,
    CheckpointNotFoundError,
    DriverCrashError,
    QueryDeadlineExceededError,
)
from tests.integration.test_chaos import QUERY_SETUPS, make_context_factory

pytestmark = pytest.mark.resilience

SEEDS = [int(s) for s in
         os.environ.get("RASQL_RESILIENCE_SEEDS", "3").split(",")]

TC = """
WITH recursive tc(Src, Dst) AS
  (SELECT Src, Dst FROM edge) UNION
  (SELECT tc.Src, edge.Dst FROM tc, edge WHERE tc.Dst = edge.Src)
SELECT Src, Dst FROM tc
"""


def _edge_context(rows=None):
    ctx = RaSQLContext(num_workers=4)
    ctx.register_table("edge", ["Src", "Dst"],
                       rows or [(i, i + 1) for i in range(24)] + [(5, 2)])
    return ctx


@pytest.mark.timeout(120)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("query_name", sorted(QUERY_SETUPS))
def test_kill_resume_bit_exact(query_name, seed, tmp_path):
    _, make_query = QUERY_SETUPS[query_name]
    report = run_with_kill_resume(make_query(),
                                  make_context_factory(query_name),
                                  str(tmp_path), seed=seed)
    assert report.exact, f"{query_name}: {report.summary()}"


@pytest.mark.timeout(60)
def test_resume_from_mid_run_checkpoint(tmp_path):
    """A kill that lands after several checkpoints restores, not reruns."""
    cfg_dir = str(tmp_path)
    clean_ctx = _edge_context()
    cfg = clean_ctx.config.but(checkpoint_interval=4,
                               checkpoint_dir=cfg_dir)
    clean = clean_ctx.sql(TC, config=cfg)
    clean_iters = clean_ctx.last_run.iterations

    victim = _edge_context()
    victim.inject_faults(DriverKillInjector("fixpoint", skip_matches=18))
    with pytest.raises(DriverCrashError):
        victim.sql(TC, config=cfg)

    resumer = _edge_context()
    resumed = resumer.resume(make_query_id(TC), checkpoint_dir=cfg_dir)
    run = resumer.last_run
    assert run.resumed_from > 0
    assert run.checkpoint_summary()["checkpoint_restores"] == 1
    assert sorted(resumed.rows) == sorted(clean.rows)
    assert run.iterations == clean_iters
    # Completion garbage-collects: a second resume has nothing to do.
    with pytest.raises(CheckpointNotFoundError):
        resumer.resume(make_query_id(TC), checkpoint_dir=cfg_dir)


@pytest.mark.timeout(60)
def test_deadline_killed_query_resumes_with_fresh_window(tmp_path):
    """A deadline abort is just another crash: resume finishes the job."""
    ctx = _edge_context()
    cfg = ctx.config.but(checkpoint_interval=2,
                         checkpoint_dir=str(tmp_path),
                         deadline_seconds=0.15)
    with pytest.raises(QueryDeadlineExceededError):
        ctx.sql(TC, config=cfg)
    qid = ctx.last_run.query_id
    assert qid is not None

    clean_ctx = _edge_context()
    clean = clean_ctx.sql(TC)

    resumer = _edge_context()
    # The manifest replays deadline_seconds=0.15 too — override it.
    resumed = resumer.resume(qid, checkpoint_dir=str(tmp_path),
                             config=cfg.but(deadline_seconds=None))
    assert resumer.last_run.resumed_from > 0
    assert sorted(resumed.rows) == sorted(clean.rows)


@pytest.mark.timeout(60)
def test_crash_before_first_checkpoint_resumes_from_scratch(tmp_path):
    ctx = _edge_context()
    cfg = ctx.config.but(checkpoint_interval=1000,  # never due
                         checkpoint_dir=str(tmp_path))
    ctx.inject_faults(DriverKillInjector("fixpoint", skip_matches=3))
    with pytest.raises(DriverCrashError):
        ctx.sql(TC, config=cfg)

    resumer = _edge_context()
    resumed = resumer.resume(make_query_id(TC),
                             checkpoint_dir=str(tmp_path))
    assert resumer.last_run.resumed_from == 0
    clean = _edge_context().sql(TC)
    assert sorted(resumed.rows) == sorted(clean.rows)


@pytest.mark.timeout(60)
def test_resume_refuses_a_changed_catalog(tmp_path):
    ctx = _edge_context()
    cfg = ctx.config.but(checkpoint_interval=2, checkpoint_dir=str(tmp_path))
    ctx.inject_faults(DriverKillInjector("fixpoint", skip_matches=12))
    with pytest.raises(DriverCrashError):
        ctx.sql(TC, config=cfg)

    drifted = _edge_context(rows=[(i, i + 1) for i in range(10)])
    with pytest.raises(CheckpointError, match="catalog"):
        drifted.resume(make_query_id(TC), checkpoint_dir=str(tmp_path))


@pytest.mark.timeout(60)
def test_completed_run_leaves_no_resumable_state(tmp_path):
    ctx = _edge_context()
    cfg = ctx.config.but(checkpoint_interval=2, checkpoint_dir=str(tmp_path))
    ctx.sql(TC, config=cfg)
    with pytest.raises(CheckpointNotFoundError):
        _edge_context().resume(make_query_id(TC),
                               checkpoint_dir=str(tmp_path))


@pytest.mark.timeout(60)
def test_checkpointing_off_means_no_counters_and_no_files(tmp_path):
    ctx = _edge_context()
    ctx.sql(TC)
    assert ctx.last_run.query_id is None
    summary = ctx.last_run.checkpoint_summary()
    assert all(v == 0 for v in summary.values())
    assert not list(tmp_path.iterdir())
