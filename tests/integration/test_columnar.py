"""Columnar batch layer differential suite: columnar on vs off, bit for
bit.

The columnar layer (``repro.engine.columnar`` + the batch hot paths in
``fixpoint``/``setrdd`` and the process backend's batch wire) claims
pure wall-clock/wire wins: same rows, same iteration counts, only faster
and smaller.  This suite pins that claim across the whole query library
and under composition with sort-merge planning, fault injection, memory
pressure and the real-process backend.

Run with ``pytest -m kernels``; extra graph seeds via
``RASQL_KERNELS_SEEDS`` (comma-separated).
"""

import pytest

from repro import ExecutionConfig, MemoryConfig, RaSQLContext
from repro.chaos import make_schedule, run_with_chaos
from repro.engine.backend import ProcessConfig

from tests.integration.test_chaos import NUM_WORKERS, QUERY_SETUPS
from tests.integration.test_kernels import SEEDS, run_query, tables_for

pytestmark = pytest.mark.kernels

#: Columnar rides on the kernel family; the tiny test graphs sit under
#: the default size gate, so both sides disable it.
ON = ExecutionConfig(kernel_min_rows=0)
OFF = ExecutionConfig(kernel_min_rows=0, columnar_batches=False)


# ----------------------------------------------------------------------
# 1. every library query, columnar on vs off: same rows, same iterations
# ----------------------------------------------------------------------

@pytest.mark.timeout(120)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("query_name", sorted(QUERY_SETUPS))
def test_query_bit_exact_and_iteration_parity(query_name, seed):
    on_rows, on_ctx = run_query(query_name, seed, config=ON)
    off_rows, off_ctx = run_query(query_name, seed, config=OFF)
    assert on_rows == off_rows
    assert on_ctx.last_run.iterations == off_ctx.last_run.iterations


# ----------------------------------------------------------------------
# 2. composition: sort-merge strategy, chaos, spill
# ----------------------------------------------------------------------

@pytest.mark.timeout(120)
@pytest.mark.parametrize("query_name", ["sssp", "cc", "tc", "bom"])
def test_bit_exact_under_sort_merge_strategy(query_name):
    seed = SEEDS[0]
    on_rows, _ = run_query(query_name, seed, config=ExecutionConfig(
        kernel_min_rows=0, join_strategy="sort_merge"))
    off_rows, _ = run_query(query_name, seed, config=ExecutionConfig(
        kernel_min_rows=0, join_strategy="sort_merge",
        columnar_batches=False))
    assert on_rows == off_rows


@pytest.mark.timeout(120)
@pytest.mark.parametrize("query_name", ["sssp", "cc", "tc"])
def test_bit_exact_under_chaos(query_name):
    _, make_query = QUERY_SETUPS[query_name]

    def factory():
        ctx = RaSQLContext(num_workers=NUM_WORKERS, config=ON)
        for name, (columns, rows) in tables_for(query_name,
                                                SEEDS[0]).items():
            ctx.register_table(name, columns, rows)
        return ctx

    report = run_with_chaos(make_query(), factory,
                            make_schedule(31, num_workers=NUM_WORKERS))
    assert report.matches, report.summary()


@pytest.mark.timeout(120)
@pytest.mark.parametrize("query_name", ["sssp", "tc"])
def test_bit_exact_under_spill(query_name):
    clean_rows, clean_ctx = run_query(query_name, SEEDS[0], config=ON)
    memory = clean_ctx.cluster.memory
    peak = max(memory.high_water_bytes(w) for w in range(NUM_WORKERS))
    budget = max(memory.max_segment_bytes() + 1, int(0.6 * peak))

    squeezed_rows, squeezed_ctx = run_query(
        query_name, SEEDS[0], config=ON,
        memory_config=MemoryConfig(worker_budget_bytes=budget))
    assert squeezed_rows == clean_rows
    assert squeezed_ctx.last_run.memory_summary()["spill_events"] >= 1

    off_rows, _ = run_query(query_name, SEEDS[0], config=OFF)
    assert squeezed_rows == off_rows


# ----------------------------------------------------------------------
# 3. the process backend: batch wire on vs off, plus the install cache
# ----------------------------------------------------------------------

def run_process_query(query_name, config, num_workers=2, num_partitions=8):
    """A process-backend run with more partitions than pool workers, so
    per-iteration task coalescing has something to coalesce."""
    _, make_query = QUERY_SETUPS[query_name]
    ctx = RaSQLContext(num_workers=num_workers,
                       num_partitions=num_partitions, config=config,
                       process_config=ProcessConfig())
    try:
        for name, (columns, rows) in tables_for(query_name,
                                                SEEDS[0]).items():
            ctx.register_table(name, columns, rows)
        result = ctx.sql(make_query())
        return (sorted(result.rows, key=repr), ctx.last_run,
                ctx.last_run.supervision_summary())
    finally:
        ctx.close()


PROCESS_ON = ExecutionConfig(backend="process", kernel_min_rows=0)
PROCESS_OFF = ExecutionConfig(backend="process", kernel_min_rows=0,
                              columnar_batches=False)


@pytest.mark.timeout(180)
@pytest.mark.parametrize("query_name", ["cc", "sssp", "tc"])
def test_process_backend_bit_exact_on_vs_off(query_name):
    on_rows, on_run, on_sup = run_process_query(query_name, PROCESS_ON)
    off_rows, off_run, off_sup = run_process_query(query_name, PROCESS_OFF)
    assert on_rows == off_rows
    assert on_run.iterations == off_run.iterations
    # Neither side silently degraded to the simulated oracle.
    assert on_sup["process_backend_degradations"] == 0
    assert off_sup["process_backend_degradations"] == 0
    # ... and both actually shipped work over the wire.
    assert on_sup["process_payload_bytes"] > 0
    assert off_sup["process_payload_bytes"] > 0


@pytest.mark.timeout(180)
def test_process_backend_matches_simulated_oracle():
    on_rows, on_run, _ = run_process_query("cc", PROCESS_ON)
    sim_rows, sim_ctx = run_query("cc", SEEDS[0], config=ON)
    assert on_rows == sim_rows
    assert on_run.iterations == sim_ctx.last_run.iterations


@pytest.mark.timeout(180)
def test_task_coalescing_cuts_pipe_messages():
    _, _, sup = run_process_query("cc", PROCESS_ON)
    shipped = sup["process_tasks_shipped"]
    messages = sup["process_task_messages"]
    assert shipped > 0 and messages > 0
    # 8 partitions over a 2-process pool: ≥4 tasks per message on the
    # all-ship iterations, so messages must come in well under tasks.
    assert messages <= shipped / 2


@pytest.mark.timeout(180)
def test_install_cache_skips_unchanged_base_partitions():
    _, make_query = QUERY_SETUPS["cc"]
    ctx = RaSQLContext(num_workers=2, num_partitions=8, config=PROCESS_ON,
                       process_config=ProcessConfig())
    try:
        for name, (columns, rows) in tables_for("cc", SEEDS[0]).items():
            ctx.register_table(name, columns, rows)
        first = ctx.sql(make_query())
        first_sup = ctx.last_run.supervision_summary()
        assert first_sup["process_install_bytes"] > 0
        second = ctx.sql(make_query())
        second_sup = ctx.last_run.supervision_summary()
        assert sorted(first.rows, key=repr) == sorted(second.rows, key=repr)
        # The second query's heavy install blob is content-identical, so
        # the driver skips re-shipping it and counts the saved bytes.
        saved = (second_sup["process_payload_bytes_saved"]
                 - first_sup["process_payload_bytes_saved"])
        assert saved >= first_sup["process_install_bytes"]
    finally:
        ctx.close()


# ----------------------------------------------------------------------
# 4. observability: the counters and report sections land
# ----------------------------------------------------------------------

@pytest.mark.timeout(120)
def test_columnar_counters_fire_and_stay_zero_when_off():
    _, on_ctx = run_query("cc", SEEDS[0], config=ON)
    on_summary = on_ctx.last_run.kernels_summary()
    assert on_summary["columnar_routes"] > 0
    _, off_ctx = run_query("cc", SEEDS[0], config=OFF)
    off_summary = off_ctx.last_run.kernels_summary()
    for key in ("columnar_batches_encoded", "columnar_batches_decoded",
                "columnar_batch_rows", "columnar_routes"):
        assert off_summary[key] == 0


@pytest.mark.timeout(120)
def test_explain_analyze_reports_columnar_line():
    _, make_query = QUERY_SETUPS["cc"]
    ctx = RaSQLContext(num_workers=NUM_WORKERS, config=ON)
    for name, (columns, rows) in tables_for("cc", SEEDS[0]).items():
        ctx.register_table(name, columns, rows)
    report = ctx.explain_analyze(make_query())
    assert "columnar batches" in report


@pytest.mark.timeout(180)
def test_explain_analyze_reports_wire_counters():
    _, run, sup = run_process_query("cc", PROCESS_ON)
    report = run.explain_analyze()
    assert "task pipe messages" in report
    assert "install blobs" in report
