"""Robustness of the public API: edge inputs, error quality, invariants."""

import pytest

from repro import ExecutionConfig, IncrementalView, RaSQLContext
from repro.errors import (
    AnalysisError,
    FixpointNotReachedError,
    ParseError,
    RaSQLError,
)
from repro.queries import get_query

SSSP = get_query("sssp").formatted(source=1)


class TestEmptyAndDegenerateInputs:
    def test_empty_edge_table(self):
        ctx = RaSQLContext(num_workers=2)
        ctx.register_table("edge", ["Src", "Dst", "Cost"], [])
        result = ctx.sql(SSSP)
        # Only the base-case source row survives.
        assert result.rows == [(1, 0)]

    def test_self_loop_only(self):
        ctx = RaSQLContext(num_workers=2)
        ctx.register_table("edge", ["Src", "Dst", "Cost"], [(1, 1, 5.0)])
        result = ctx.sql(SSSP)
        assert sorted(result.rows) == [(1, 0)]

    def test_single_worker_single_partition(self):
        ctx = RaSQLContext(num_workers=1, num_partitions=1)
        ctx.register_table("edge", ["Src", "Dst", "Cost"],
                           [(1, 2, 1.0), (2, 3, 1.0)])
        assert sorted(ctx.sql(SSSP).rows) == [(1, 0), (2, 1.0), (3, 2.0)]

    def test_many_partitions_few_rows(self):
        ctx = RaSQLContext(num_workers=2, num_partitions=32)
        ctx.register_table("edge", ["Src", "Dst", "Cost"], [(1, 2, 1.0)])
        assert sorted(ctx.sql(SSSP).rows) == [(1, 0), (2, 1.0)]

    def test_string_vertex_ids(self):
        ctx = RaSQLContext(num_workers=2)
        ctx.register_table("edge", ["Src", "Dst"],
                           [("a", "b"), ("b", "c")])
        result = ctx.sql("""
        WITH recursive reach(Dst) AS
          (SELECT 'a') UNION
          (SELECT edge.Dst FROM reach, edge WHERE reach.Dst = edge.Src)
        SELECT Dst FROM reach
        """)
        assert sorted(result.rows) == [("a",), ("b",), ("c",)]

    def test_mixed_int_float_keys_collocate(self):
        # Join keys arriving as int on one side, float on the other.
        ctx = RaSQLContext(num_workers=4)
        ctx.register_table("edge", ["Src", "Dst", "Cost"],
                           [(1, 2.0, 1.0), (2, 3, 1.0)])
        result = ctx.sql(SSSP)
        assert len(result) == 3


class TestErrorQuality:
    def test_all_errors_share_base(self):
        for error_type in (ParseError, AnalysisError,
                           FixpointNotReachedError):
            assert issubclass(error_type, RaSQLError)

    def test_parse_error_is_catchable_at_base(self):
        ctx = RaSQLContext(num_workers=1)
        with pytest.raises(RaSQLError):
            ctx.sql("SELEC oops")

    def test_helpful_unknown_table_message(self):
        ctx = RaSQLContext(num_workers=1)
        ctx.register_table("edges", ["Src", "Dst"], [])
        with pytest.raises(AnalysisError, match="edges"):
            # Message lists registered tables, aiding typo recovery.
            ctx.sql("SELECT Src FROM edge")

    def test_fixpoint_error_carries_partial_state(self):
        ctx = RaSQLContext(num_workers=2,
                           config=ExecutionConfig(max_iterations=1))
        ctx.register_table("edge", ["Src", "Dst", "Cost"],
                           [(1, 2, 1.0), (2, 3, 1.0)])
        with pytest.raises(FixpointNotReachedError) as info:
            ctx.sql(SSSP)
        partial = info.value.partial_result
        assert partial and "path" in partial


class TestSessionInvariants:
    def test_sessions_are_isolated(self):
        a = RaSQLContext(num_workers=2)
        b = RaSQLContext(num_workers=2)
        a.register_table("edge", ["Src", "Dst", "Cost"], [(1, 2, 1.0)])
        with pytest.raises(AnalysisError):
            b.sql(SSSP)

    def test_query_does_not_mutate_base_tables(self):
        ctx = RaSQLContext(num_workers=2)
        rows = [(1, 2, 1.0), (2, 3, 1.0)]
        ctx.register_table("edge", ["Src", "Dst", "Cost"], rows)
        ctx.sql(SSSP)
        assert ctx.catalog.get("edge").rows == rows

    def test_incremental_view_does_not_mutate_catalog(self):
        ctx = RaSQLContext(num_workers=2)
        rows = [(1, 2, 1.0)]
        ctx.register_table("edge", ["Src", "Dst", "Cost"], rows)
        view = IncrementalView(ctx, SSSP)
        view.insert("edge", [(2, 3, 1.0)])
        # The session catalog still holds the original registration; the
        # view keeps its own growing copy.
        assert ctx.catalog.get("edge").rows == rows
        assert len(view.result()) == 3

    def test_repeated_queries_deterministic(self):
        ctx = RaSQLContext(num_workers=3)
        ctx.register_table("edge", ["Src", "Dst", "Cost"],
                           [(1, 2, 1.0), (2, 3, 2.0), (1, 3, 5.0)])
        first = sorted(ctx.sql(SSSP).rows)
        for _ in range(3):
            assert sorted(ctx.sql(SSSP).rows) == first
