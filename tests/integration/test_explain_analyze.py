"""EXPLAIN ANALYZE / trace integration: the report must agree exactly
with ``FixpointResult`` and the ``MetricsRegistry``."""

import json

import pytest

from repro import RaSQLContext
from repro.__main__ import main as cli_main
from repro.queries.library import get_query

EDGES = [(1, 2, 1.0), (2, 3, 2.0), (1, 3, 5.0), (3, 4, 1.0), (4, 2, 1.0)]


def sssp_ctx(**kwargs):
    ctx = RaSQLContext(num_workers=4, **kwargs)
    ctx.register_table("edge", ["Src", "Dst", "Cost"], EDGES)
    return ctx


class TestExplainAnalyzeSSSP:
    def test_iteration_count_matches_fixpoint_result(self):
        ctx = sssp_ctx()
        report = ctx.explain_analyze(get_query("sssp").formatted(source=1))
        run = ctx.last_run
        assert run.iterations >= 3
        timeline = run.iteration_timeline()
        assert len(timeline) == run.iterations
        assert run.iterations == ctx.metrics.get("iterations")
        assert f"iterations={run.iterations}" in report

    def test_delta_sizes_match_delta_history(self):
        ctx = sssp_ctx()
        ctx.sql(get_query("sssp").formatted(source=1))
        run = ctx.last_run
        timeline = run.iteration_timeline()
        history = next(iter(run.delta_history.values()))
        # The last iteration is the empty round that stops the loop.
        assert [row["delta_total"] for row in timeline] == history + [0]
        for row in timeline:
            # Single-view clique: the per-view split is the whole delta.
            assert row["delta_by_view"] == {"path": row["delta_total"]}

    def test_trace_duration_matches_sim_time(self):
        ctx = sssp_ctx()
        ctx.sql(get_query("sssp").formatted(source=1))
        run = ctx.last_run
        # Fresh context: the query span covers every clock advance.
        assert run.trace["duration"] == pytest.approx(run.sim_time)
        assert run.sim_time == ctx.metrics.sim_time

    def test_iteration_spans_sum_to_fixpoint_span(self):
        ctx = sssp_ctx()
        ctx.sql(get_query("sssp").formatted(source=1))
        trace = ctx.last_run.trace

        def find(span, kind):
            found = [span] if span["kind"] == kind else []
            for child in span["children"]:
                found.extend(find(child, kind))
            return found

        (fixpoint,) = find(trace, "fixpoint")
        iterations = find(fixpoint, "iteration")
        assert len(iterations) == ctx.last_run.iterations
        # Iterations partition the fixpoint's time after setup/base work.
        assert sum(s["duration"] for s in iterations) <= fixpoint["duration"]
        # Every iteration ran exactly one combined ShuffleMap stage.
        for span in iterations:
            stages = find(span, "stage")
            assert [s["name"] for s in stages] == ["fixpoint-shufflemap"]
            assert len(find(span, "task")) == ctx.cluster.num_partitions

    def test_event_span_ids_resolve_into_trace(self):
        ctx = sssp_ctx()
        events_before = len(ctx.metrics.events())
        ctx.sql(get_query("sssp").formatted(source=1))
        trace = ctx.last_run.trace

        def span_ids(span):
            yield span["span_id"]
            for child in span["children"]:
                yield from span_ids(child)

        known = set(span_ids(trace))
        events = ctx.metrics.events()[events_before:]
        assert events
        assert all(e.span_id in known for e in events)

    def test_trace_is_json_serializable(self):
        ctx = sssp_ctx()
        ctx.sql(get_query("sssp").formatted(source=1))
        reloaded = json.loads(json.dumps(ctx.last_run.trace))
        assert reloaded["kind"] == "query"


class TestExplainAnalyzeOtherShapes:
    def test_multi_view_clique_splits_delta_by_view(self):
        ctx = RaSQLContext(num_workers=2)
        ctx.register_table("shares", ["By", "Of", "Percent"],
                           [("a", "b", 60), ("b", "c", 60), ("a", "c", 10)])
        ctx.sql(get_query("company_control").sql)
        timeline = ctx.last_run.iteration_timeline()
        assert timeline
        for row in timeline:
            assert set(row["delta_by_view"]) == {"cshares", "control"}
            assert (sum(row["delta_by_view"].values())
                    == row["delta_total"])

    def test_decomposed_fixpoint_annotates_mode(self):
        ctx = RaSQLContext(num_workers=2)
        ctx.register_table("edge", ["Src", "Dst"],
                           [(1, 2), (2, 3), (3, 4)])
        ctx.sql(get_query("tc").sql)
        trace = ctx.last_run.trace
        fixpoints = [s for s in _walk(trace) if s["kind"] == "fixpoint"]
        assert fixpoints[0]["attrs"]["mode"] == "decomposed"
        assert fixpoints[0]["attrs"]["iterations"] == ctx.last_run.iterations
        assert fixpoints[0]["attrs"]["local_iterations"]

    def test_tracing_can_be_disabled(self):
        ctx = sssp_ctx(trace=False)
        ctx.sql(get_query("sssp").formatted(source=1))
        assert ctx.last_run.trace is None
        assert "no trace" in ctx.last_run.explain_analyze()
        assert ctx.last_run.iteration_timeline() == []

    def test_system_result_carries_trace(self):
        from repro.baselines.systems import RaSQLSystem, Workload

        result = RaSQLSystem(num_workers=2).run(Workload(
            "sssp", {"edge": (["Src", "Dst", "Cost"], EDGES)}, source=1))
        assert result.trace is not None
        assert result.trace["kind"] == "query"


def _walk(span):
    yield span
    for child in span["children"]:
        yield from _walk(child)


class TestCLI:
    def _write_inputs(self, tmp_path):
        graph = tmp_path / "graph.tsv"
        graph.write_text("".join(f"{s} {d} {c}\n" for s, d, c in EDGES))
        query = tmp_path / "query.sql"
        query.write_text(get_query("sssp").formatted(source=1))
        return graph, query

    def test_explain_analyze_flag_prints_timeline(self, tmp_path, capsys):
        graph, query = self._write_inputs(tmp_path)
        assert cli_main(["--table", f"edge={graph}", "--explain-analyze",
                         str(query)]) == 0
        out = capsys.readouterr().out
        assert "EXPLAIN ANALYZE" in out
        assert "delta(path)" in out

    def test_trace_flag_writes_json(self, tmp_path, capsys):
        graph, query = self._write_inputs(tmp_path)
        trace_path = tmp_path / "run.trace.json"
        assert cli_main(["--table", f"edge={graph}", "--trace",
                         str(trace_path), str(query)]) == 0
        trace = json.loads(trace_path.read_text())
        assert trace["kind"] == "query"
        assert any(s["kind"] == "fixpoint" for s in _walk(trace))
