"""Determinism under chaos: every library query x several fault seeds.

Section 6.1's recovery claim, tested exhaustively: whatever faults a
seeded schedule injects (task deaths before/after commit, worker loss
mid-fixpoint), every query of the library must produce the *bit-exact*
result of a fault-free run, with the injected schedule fully accounted
for in the recovery counters and only bounded simulated-time overhead.

Seeds come from ``RASQL_CHAOS_SEEDS`` (comma-separated; CI sweeps
several), so a failing ``(query, seed)`` pair is reproducible locally::

    RASQL_CHAOS_SEEDS=29 pytest tests/integration/test_chaos.py -k sssp
"""

import os
import random

import pytest

from repro import RaSQLContext
from repro.chaos import make_schedule, run_with_chaos
from repro.queries.library import ALL_QUERIES, get_query

pytestmark = pytest.mark.chaos

SEEDS = [int(s) for s in
         os.environ.get("RASQL_CHAOS_SEEDS", "11,29,47").split(",")]
NUM_WORKERS = 4


def random_graph(n, m, seed, weighted=False, acyclic=False):
    rng = random.Random(seed)
    edges = set()
    while len(edges) < m:
        a, b = rng.randrange(n), rng.randrange(n)
        if a == b:
            continue
        if acyclic and a > b:
            a, b = b, a
        edges.add((a, b))
    if weighted:
        return [(a, b, rng.randint(1, 10)) for a, b in sorted(edges)]
    return sorted(edges)


def _graph_tables(**kwargs):
    def build():
        return {"edge": (("Src", "Dst") + (("Cost",) if kwargs.get("weighted")
                                           else ()),
                         random_graph(24, 60, seed=5, **kwargs))}
    return build


def _bom_tables():
    assbl = [("car", "engine"), ("car", "wheel"), ("car", "frame"),
             ("engine", "piston"), ("engine", "valve"), ("wheel", "rim"),
             ("frame", "beam"), ("beam", "bolt")]
    basic = [("piston", 3), ("valve", 7), ("rim", 2), ("bolt", 4)]
    return {"assbl": (("Part", "SPart"), assbl),
            "basic": (("Part", "Days"), basic)}


def _mlm_tables():
    sales = [(i, 50.0 * (i + 1)) for i in range(1, 9)]
    sponsor = [(1, 2), (1, 3), (2, 4), (2, 5), (3, 6), (5, 7), (6, 8)]
    return {"sales": (("M", "P"), sales), "sponsor": (("M1", "M2"), sponsor)}


#: Per-query table builder + query text.  Data shapes respect each
#: query's termination requirements (DAGs for path counting, forests for
#: BOM/MLM, an organizer seed for party attendance).
QUERY_SETUPS = {
    "sssp": (_graph_tables(weighted=True),
             lambda: get_query("sssp").formatted(source=0)),
    "reach": (_graph_tables(),
              lambda: get_query("reach").formatted(source=0)),
    "count_paths": (_graph_tables(acyclic=True),
                    lambda: get_query("count_paths").formatted(source=0)),
    "cc": (_graph_tables(), lambda: get_query("cc").sql),
    "cc_labels": (_graph_tables(), lambda: get_query("cc_labels").sql),
    "tc": (_graph_tables(), lambda: get_query("tc").sql),
    "apsp": (lambda: {"edge": (("Src", "Dst", "Cost"),
                               random_graph(12, 30, seed=5, weighted=True))},
             lambda: get_query("apsp").sql),
    "same_generation": (
        lambda: {"rel": (("Parent", "Child"),
                         [(1, 2), (1, 3), (2, 4), (2, 5), (3, 6), (4, 7)])},
        lambda: get_query("same_generation").sql),
    "bom": (_bom_tables, lambda: get_query("bom").sql),
    "bom_stratified": (_bom_tables, lambda: get_query("bom_stratified").sql),
    "management": (
        lambda: {"report": (("Emp", "Mgr"),
                            [(2, 1), (3, 1), (4, 2), (5, 2), (6, 4), (7, 6),
                             (8, 3)])},
        lambda: get_query("management").sql),
    "mlm_bonus": (_mlm_tables, lambda: get_query("mlm_bonus").sql),
    "interval_coalesce": (
        lambda: {"inter": (("S", "E"),
                           [(1, 4), (2, 5), (4, 8), (10, 12), (11, 15),
                            (20, 21), (21, 25)])},
        lambda: get_query("interval_coalesce").sql),
    "party_attendance": (
        lambda: {"organizer": (("OrgName",), [("ann",)]),
                 "friend": (("Pname", "Fname"),
                            [("ann", "bob"), ("ann", "cat"), ("ann", "dan"),
                             ("bob", "cat"), ("cat", "dan"), ("bob", "eve"),
                             ("cat", "eve"), ("dan", "eve")])},
        lambda: get_query("party_attendance").sql),
    "company_control": (
        lambda: {"shares": (("By", "Of", "Percent"),
                            [("a", "b", 60), ("b", "c", 30), ("a", "c", 30),
                             ("c", "d", 51), ("b", "e", 20), ("c", "e", 40)])},
        lambda: get_query("company_control").sql),
}


def test_every_library_query_is_covered():
    assert set(QUERY_SETUPS) == {q.name for q in ALL_QUERIES}


def make_context_factory(query_name):
    build_tables, _ = QUERY_SETUPS[query_name]

    def factory():
        ctx = RaSQLContext(num_workers=NUM_WORKERS)
        for name, (columns, rows) in build_tables().items():
            ctx.register_table(name, columns, rows)
        return ctx

    return factory


@pytest.mark.timeout(120)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("query_name", sorted(QUERY_SETUPS))
def test_query_deterministic_under_chaos(query_name, seed):
    schedule = make_schedule(seed, num_workers=NUM_WORKERS)
    _, make_query = QUERY_SETUPS[query_name]
    report = run_with_chaos(make_query(), make_context_factory(query_name),
                            schedule)

    assert report.matches, (
        f"{query_name} diverged under {schedule.describe()}: "
        f"{report.summary()}")

    # The injected schedule is fully accounted for in the counters.
    task_fired, losses_fired = schedule.injected_counts()
    assert report.counters["task_failures"] == task_fired
    assert report.counters["workers_lost"] == losses_fired
    if task_fired or losses_fired:
        assert report.counters["recovery_seconds"] > 0

    # Recovery overhead is bounded: replaying the current stage from
    # cached state must not balloon the run (loose bound — small graphs
    # have tiny baselines, so allow a constant term too).
    assert report.chaos_sim_time <= report.baseline_sim_time * 10 + 5.0


@pytest.mark.timeout(120)
@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_run_is_reproducible(seed):
    """Same (query, seed) twice -> the identical fault schedule fires.

    Only the *discrete* counters are compared exactly: the simulated
    clock folds in measured task CPU time, which jitters between runs.
    """
    first = run_with_chaos(get_query("sssp").formatted(source=0),
                           make_context_factory("sssp"),
                           make_schedule(seed, num_workers=NUM_WORKERS))
    second = run_with_chaos(get_query("sssp").formatted(source=0),
                            make_context_factory("sssp"),
                            make_schedule(seed, num_workers=NUM_WORKERS))
    assert first.schedule.describe() == second.schedule.describe()

    def discrete(report):
        return {k: v for k, v in report.counters.items()
                if k != "recovery_seconds"}

    assert discrete(first) == discrete(second)
    assert first.matches and second.matches
