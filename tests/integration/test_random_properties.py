"""Property tests: full-engine results vs independent oracles on
hypothesis-generated structured inputs (trees, hierarchies, intervals,
share networks)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import RaSQLContext
from repro.baselines import serial
from repro.queries import get_query

SETTINGS = settings(max_examples=12, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def run(query, tables, **params):
    ctx = RaSQLContext(num_workers=3)
    for name, (columns, rows) in tables.items():
        ctx.register_table(name, columns, rows)
    spec = get_query(query)
    return ctx.sql(spec.formatted(**params) if params else spec.sql)


@st.composite
def forests(draw):
    """Random forests as parent assignments: node i>0 gets parent < i."""
    n = draw(st.integers(min_value=2, max_value=25))
    edges = []
    for child in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=child - 1))
        edges.append((parent, child))
    # Randomly drop some edges to create a forest.
    keep = draw(st.lists(st.booleans(), min_size=len(edges),
                         max_size=len(edges)))
    return [e for e, k in zip(edges, keep) if k] or edges[:1]


@st.composite
def interval_sets(draw):
    raw = draw(st.lists(st.tuples(st.integers(0, 40), st.integers(1, 15)),
                        min_size=1, max_size=20))
    return sorted({(start, start + length) for start, length in raw})


class TestHierarchies:
    @SETTINGS
    @given(forests())
    def test_bom_matches_oracle(self, tree_edges):
        leaves = ({child for _, child in tree_edges}
                  - {parent for parent, _ in tree_edges})
        basic = [(leaf, (leaf * 31) % 17 + 1) for leaf in leaves]
        result = run("bom", {
            "assbl": (["Part", "SPart"], tree_edges),
            "basic": (["Part", "Days"], basic)})
        assert result.to_dict() == serial.bom_waitfor(tree_edges, basic)

    @SETTINGS
    @given(forests())
    def test_management_matches_oracle(self, tree_edges):
        report = [(child, parent) for parent, child in tree_edges]
        result = run("management", {"report": (["Emp", "Mgr"], report)})
        assert result.to_dict() == serial.management_counts(report)

    @SETTINGS
    @given(forests())
    def test_mlm_matches_oracle(self, tree_edges):
        members = {node for edge in tree_edges for node in edge}
        sales = [(member, float((member * 13) % 50 + 10))
                 for member in members]
        result = run("mlm_bonus", {
            "sales": (["M", "P"], sales),
            "sponsor": (["M1", "M2"], tree_edges)})
        expected = serial.mlm_bonus(sales, tree_edges)
        got = result.to_dict()
        assert set(got) == set(expected)
        for member, bonus in expected.items():
            assert got[member] == pytest.approx(bonus)


class TestIntervals:
    @SETTINGS
    @given(interval_sets())
    def test_coalesce_matches_sweep(self, intervals):
        result = run("interval_coalesce", {"inter": (["S", "E"], intervals)})
        assert sorted(result.rows) == serial.coalesce_intervals(intervals)


class TestCompanyControl:
    @st.composite
    @staticmethod
    def share_networks(draw):
        # Acyclic ownership (holders own lower-numbered... higher only):
        # cyclic majority control makes the classic program diverge (sum
        # contributions circulate forever), a stated precondition of the
        # Mumick-Pirahesh-Ramakrishnan query.
        n = draw(st.integers(min_value=2, max_value=8))
        companies = [f"c{i}" for i in range(n)]
        m = draw(st.integers(min_value=1, max_value=14))
        shares = []
        for _ in range(m):
            i = draw(st.integers(0, n - 2))
            j = draw(st.integers(i + 1, n - 1))
            shares.append((companies[i], companies[j],
                           draw(st.integers(1, 60))))
        return shares or [("c0", "c1", 51)]

    @SETTINGS
    @given(share_networks())
    def test_company_control_matches_oracle(self, shares):
        result = run("company_control",
                     {"shares": (["By", "Of", "Percent"], shares)})
        got = {(a, b): t for a, b, t in result.rows}
        expected = serial.company_control(shares)
        assert set(got) == set(expected)
        for pair in expected:
            assert got[pair] == pytest.approx(expected[pair])


class TestPartyAttendance:
    @SETTINGS
    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)),
                    max_size=40),
           st.sets(st.integers(0, 9), min_size=1, max_size=3))
    def test_matches_oracle(self, friend_pairs, organizers):
        friendships = [(f"p{a}", f"p{b}") for a, b in friend_pairs if a != b]
        organizer_names = [f"p{o}" for o in organizers]
        result = run("party_attendance", {
            "organizer": (["OrgName"], [(o,) for o in organizer_names]),
            "friend": (["Pname", "Fname"], friendships)})
        got = {row[0] for row in result.rows}
        assert got == serial.party_attendance(organizer_names, friendships)


class TestDuplicateBaseFacts:
    """Recursion is set-semantic: a base row stated twice is one fact.

    Hypothesis found both of these (duplicate rows inflating ``count``
    and ``sum`` heads through duplicate join derivations); pinned here
    so the regression does not depend on the local example database.
    """

    def test_duplicate_friend_rows_do_not_inflate_count(self):
        result = run("party_attendance", {
            "organizer": (["OrgName"], [("p0",)]),
            "friend": (["Pname", "Fname"], [("p0", "p1")] * 3)})
        assert {row[0] for row in result.rows} == {"p0"}

    def test_duplicate_share_rows_do_not_inflate_sum(self):
        result = run("company_control", {
            "shares": (["By", "Of", "Percent"],
                       [("c0", "c1", 10), ("c0", "c1", 10)])})
        assert {(a, b): t for a, b, t in result.rows} == {("c0", "c1"): 10}
