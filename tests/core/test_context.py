"""Unit tests for the RaSQLContext session API."""

import pytest

from repro import ExecutionConfig, RaSQLContext
from repro.errors import AnalysisError

EDGES = [(1, 2, 1.0), (2, 3, 2.0)]
SSSP = """
WITH recursive path(Dst, min() AS Cost) AS
  (SELECT 1, 0) UNION
  (SELECT edge.Dst, path.Cost + edge.Cost
   FROM path, edge WHERE path.Dst = edge.Src)
SELECT Dst, Cost FROM path
"""


def make_ctx(**kwargs):
    ctx = RaSQLContext(num_workers=2, **kwargs)
    ctx.register_table("edge", ["Src", "Dst", "Cost"], EDGES)
    return ctx


class TestSessionApi:
    def test_sql_returns_relation(self):
        result = make_ctx().sql(SSSP)
        assert result.columns == ("Dst", "Cost")
        assert sorted(result.rows) == [(1, 0), (2, 1.0), (3, 3.0)]

    def test_last_run_populated(self):
        ctx = make_ctx()
        ctx.sql(SSSP)
        assert ctx.last_run.iterations > 0
        assert "path" in ctx.last_run.clique_iterations
        assert ctx.last_run.sim_time > 0
        assert ctx.last_run.metrics["stages"] > 0

    def test_per_call_config_override(self):
        ctx = make_ctx()
        baseline = ctx.sql(SSSP)
        override = ctx.sql(SSSP, config=ExecutionConfig(codegen=False,
                                                        stage_combination=False))
        assert sorted(baseline.rows) == sorted(override.rows)

    def test_register_replaces_table(self):
        ctx = make_ctx()
        ctx.register_table("edge", ["Src", "Dst", "Cost"], [(1, 9, 1.0)])
        result = ctx.sql(SSSP)
        assert sorted(result.rows) == [(1, 0), (9, 1.0)]

    def test_unknown_table_raises_analysis_error(self):
        ctx = RaSQLContext(num_workers=2)
        with pytest.raises(AnalysisError):
            ctx.sql(SSSP)

    def test_reset_metrics(self):
        ctx = make_ctx()
        ctx.sql(SSSP)
        assert ctx.metrics.sim_time > 0
        ctx.reset_metrics()
        assert ctx.metrics.sim_time == 0

    def test_load_table_charges_time(self):
        ctx = RaSQLContext(num_workers=2)
        ctx.load_table("edge", ["Src", "Dst", "Cost"], EDGES)
        assert ctx.metrics.get("load_bytes") > 0

    def test_plain_select_without_recursion(self):
        ctx = make_ctx()
        result = ctx.sql("SELECT Src, Dst FROM edge WHERE Cost > 1.5")
        assert result.rows == [(2, 3)]
        assert ctx.last_run.iterations == 0

    def test_multiple_statements_create_view(self):
        ctx = make_ctx()
        result = ctx.sql("""
        CREATE VIEW big(S, D) AS (SELECT Src, Dst FROM edge WHERE Cost > 1.5);
        SELECT S FROM big
        """)
        assert result.rows == [(2,)]


class TestProfile:
    def test_time_breakdown_recorded(self):
        ctx = make_ctx()
        ctx.sql(SSSP)
        breakdown = ctx.last_run.time_breakdown
        assert any(label.startswith("stage:fixpoint")
                   for label in breakdown)
        assert sum(breakdown.values()) == pytest.approx(
            ctx.last_run.sim_time, rel=1e-6)

    def test_breakdown_is_per_call(self):
        ctx = make_ctx()
        ctx.sql(SSSP)
        first = dict(ctx.last_run.time_breakdown)
        ctx.sql("SELECT Src FROM edge")
        second = ctx.last_run.time_breakdown
        assert not any(label.startswith("stage:fixpoint")
                       for label in second)
        assert first  # untouched by the second call

    def test_profile_report_renders(self):
        ctx = make_ctx()
        ctx.sql(SSSP)
        report = ctx.last_run.profile_report()
        assert "stage:fixpoint" in report
        assert "%" in report
        assert "total" in report


class TestExplain:
    def test_explain_contains_all_layers(self):
        text = make_ctx().explain(SSSP)
        assert "RecursiveClique path" in text
        assert "FixPoint" in text
        assert "Final: SELECT" in text

    def test_explain_does_not_execute(self):
        ctx = make_ctx()
        ctx.explain(SSSP)
        assert ctx.metrics.get("iterations") == 0

    def test_explain_reflects_config(self):
        ctx = RaSQLContext(num_workers=2)
        ctx.register_table("edge", ["Src", "Dst"], [(1, 2)])
        tc = """
        WITH recursive tc(Src, Dst) AS
          (SELECT Src, Dst FROM edge) UNION
          (SELECT tc.Src, edge.Dst FROM tc, edge WHERE tc.Dst = edge.Src)
        SELECT Src, Dst FROM tc
        """
        decomposed = ctx.explain(tc)
        flat = ctx.explain(tc, config=ExecutionConfig(decomposed_plans=False))
        assert "decomposable" in decomposed
        assert "decomposable" not in flat
