"""Unit tests for the query library metadata."""

import pytest

from repro.queries import ALL_QUERIES, get_query


class TestLibrary:
    def test_all_fifteen_queries_present(self):
        names = {q.name for q in ALL_QUERIES}
        assert names == {
            "bom_stratified", "bom", "sssp", "cc", "cc_labels",
            "count_paths", "management", "mlm_bonus", "interval_coalesce",
            "party_attendance", "company_control", "same_generation",
            "reach", "apsp", "tc",
        }

    def test_lookup(self):
        assert get_query("sssp").name == "sssp"

    def test_unknown_query_helpful_error(self):
        with pytest.raises(KeyError, match="available"):
            get_query("pagerank")

    def test_parameterized_queries_format(self):
        sql = get_query("sssp").formatted(source=42)
        assert "SELECT 42, 0" in sql

    def test_tables_declared_for_every_query(self):
        for spec in ALL_QUERIES:
            assert spec.tables, spec.name
            for table, columns in spec.tables.items():
                assert columns, (spec.name, table)

    def test_specs_are_frozen(self):
        with pytest.raises(AttributeError):
            get_query("tc").name = "other"

    def test_descriptions_reference_paper(self):
        described = [q for q in ALL_QUERIES if q.description]
        assert len(described) == len(ALL_QUERIES)
