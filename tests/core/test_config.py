"""Unit tests for ExecutionConfig."""

import pytest

from repro.core.config import DEFAULT_CONFIG, ExecutionConfig


class TestConfig:
    def test_defaults_match_paper_reference_setup(self):
        # Section 8: shuffle-hash join, optimized DSN, stage combination,
        # code generation.
        assert DEFAULT_CONFIG.evaluation == "dsn"
        assert DEFAULT_CONFIG.join_strategy == "shuffle_hash"
        assert DEFAULT_CONFIG.stage_combination
        assert DEFAULT_CONFIG.codegen
        assert DEFAULT_CONFIG.partial_aggregation
        assert DEFAULT_CONFIG.use_setrdd

    def test_but_returns_modified_copy(self):
        changed = DEFAULT_CONFIG.but(codegen=False)
        assert not changed.codegen
        assert DEFAULT_CONFIG.codegen  # original untouched

    def test_invalid_evaluation_rejected(self):
        with pytest.raises(ValueError, match="evaluation"):
            ExecutionConfig(evaluation="bogus")

    def test_invalid_join_strategy_rejected(self):
        with pytest.raises(ValueError, match="join strategy"):
            ExecutionConfig(join_strategy="bogus")
