"""Unit + property tests for the RaSQL parser."""

import pytest

from repro.core import ast_nodes as ast
from repro.core.parser import parse, parse_query
from repro.errors import ParseError
from repro.queries.library import ALL_QUERIES


class TestSelect:
    def test_simple_select(self):
        q = parse_query("SELECT Src, Dst FROM edge")
        assert isinstance(q, ast.SelectQuery)
        assert [i.output_name(n) for n, i in enumerate(q.items)] == ["Src", "Dst"]
        assert q.from_tables[0].name == "edge"

    def test_constant_select_without_from(self):
        q = parse_query("SELECT 1, 0")
        assert q.from_tables == ()
        assert [i.expr.value for i in q.items] == [1, 0]

    def test_where_predicate_tree(self):
        q = parse_query("SELECT x FROM t WHERE a = 1 AND b <> 2 OR NOT c < 3")
        assert isinstance(q.where, ast.BinaryOp)
        assert q.where.op == "OR"
        assert q.where.left.op == "AND"
        assert isinstance(q.where.right, ast.UnaryOp)

    def test_arithmetic_precedence(self):
        q = parse_query("SELECT a + b * c FROM t")
        expr = q.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parenthesized_expression(self):
        q = parse_query("SELECT (a + b) * c FROM t")
        assert q.items[0].expr.op == "*"

    def test_alias_with_and_without_as(self):
        q = parse_query("SELECT a AS x, b y FROM t")
        assert q.items[0].alias == "x"
        assert q.items[1].alias == "y"

    def test_table_alias(self):
        q = parse_query("SELECT a.S FROM inter a, inter b")
        assert [(t.name, t.alias) for t in q.from_tables] == [
            ("inter", "a"), ("inter", "b")]

    def test_group_by_having(self):
        q = parse_query(
            "SELECT a.S FROM inter a GROUP BY a.S HAVING a.S = min(a.E)")
        assert len(q.group_by) == 1
        assert isinstance(q.having, ast.BinaryOp)

    def test_count_distinct(self):
        q = parse_query("SELECT count(distinct cc.CmpId) FROM cc")
        call = q.items[0].expr
        assert isinstance(call, ast.FunctionCall)
        assert call.distinct
        assert call.name == "count"

    def test_count_star(self):
        q = parse_query("SELECT count(*) FROM t")
        call = q.items[0].expr
        assert isinstance(call.args[0], ast.Star)

    def test_negative_literal(self):
        q = parse_query("SELECT -5 FROM t")
        assert isinstance(q.items[0].expr, ast.UnaryOp)

    def test_string_and_float_literals(self):
        q = parse_query("SELECT 'abc', 2.5 FROM t")
        assert q.items[0].expr.value == "abc"
        assert q.items[1].expr.value == 2.5

    def test_select_distinct(self):
        assert parse_query("SELECT DISTINCT x FROM t").distinct


class TestWithQuery:
    SSSP = """
    WITH recursive path(Dst, min() AS Cost) AS
      (SELECT 1, 0) UNION
      (SELECT edge.Dst, path.Cost + edge.Cost
       FROM path, edge WHERE path.Dst = edge.Src)
    SELECT Dst, Cost FROM path
    """

    def test_recursive_view_with_aggregate_head(self):
        q = parse_query(self.SSSP)
        assert isinstance(q, ast.WithQuery)
        view = q.views[0]
        assert view.recursive
        assert view.columns[0] == ast.ColumnSpec("Dst", None)
        assert view.columns[1] == ast.ColumnSpec("Cost", "min")
        assert len(view.branches) == 2

    def test_multiple_views_mutual_recursion(self):
        q = parse_query("""
        WITH recursive a(X) AS (SELECT X FROM base) UNION (SELECT Y FROM b),
        recursive b(Y, count() AS N) AS (SELECT X, 1 FROM a)
        SELECT X FROM a
        """)
        assert [v.name for v in q.views] == ["a", "b"]
        assert q.views[1].columns[1].aggregate == "count"

    def test_non_recursive_view_keyword_optional(self):
        q = parse_query("""
        WITH v(X) AS (SELECT X FROM t)
        SELECT X FROM v
        """)
        assert not q.views[0].recursive

    def test_create_view_statement(self):
        script = parse("""
        CREATE VIEW lstart(T) AS (SELECT a.S FROM inter a);
        SELECT T FROM lstart
        """)
        assert isinstance(script.statements[0], ast.CreateView)
        assert script.statements[0].columns == ("T",)
        assert len(script.statements) == 2


class TestErrors:
    def test_missing_from_table(self):
        with pytest.raises(ParseError):
            parse_query("SELECT x FROM")

    def test_garbage_statement(self):
        with pytest.raises(ParseError, match="statement"):
            parse("DROP TABLE t")

    def test_empty_script(self):
        with pytest.raises(ParseError, match="empty"):
            parse("   ")

    def test_unclosed_view_head(self):
        with pytest.raises(ParseError):
            parse("WITH v(X AS (SELECT 1) SELECT X FROM v")

    def test_error_carries_location(self):
        try:
            parse_query("SELECT x FROM t WHERE ~")
        except ParseError as e:
            assert e.line == 1
            assert e.column is not None
        else:
            pytest.fail("expected ParseError")


class TestLibraryCorpus:
    """Every query of the paper must parse; the AST must round-trip."""

    @pytest.mark.parametrize("spec", ALL_QUERIES, ids=lambda s: s.name)
    def test_parses(self, spec):
        script = parse(spec.formatted(source=1))
        assert script.statements

    @pytest.mark.parametrize("spec", ALL_QUERIES, ids=lambda s: s.name)
    def test_to_sql_round_trip(self, spec):
        """Rendering the AST back to SQL and re-parsing yields the same AST."""
        script = parse(spec.formatted(source=1))
        rendered = script.to_sql()
        reparsed = parse(rendered)
        assert reparsed == script
