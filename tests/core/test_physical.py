"""Unit tests for the physical step primitives."""

from repro.core.physical import (
    FilterStep,
    HashJoinStep,
    NestedLoopStep,
    TermRuntime,
    TotalizeStep,
    make_projector,
    make_slots_key,
    merge_padded,
    pad_row,
)
from repro.engine.aggregates import COUNT, MIN
from repro.engine.joins import build_hash_table


class TestPaddedRows:
    def test_pad_places_segment(self):
        assert pad_row((1, 2), 3, 7) == (None, None, None, 1, 2, None, None)

    def test_merge_coalesces_disjoint_segments(self):
        left = pad_row((1, 2), 0, 5)
        right = pad_row((8, 9), 2, 5)
        assert merge_padded(left, right) == (1, 2, 8, 9, None)

    def test_slots_key_scalar_and_tuple(self):
        row = (10, 20, 30)
        assert make_slots_key((1,))(row) == 20
        assert make_slots_key((2, 0))(row) == (30, 10)


class TestSteps:
    def test_hash_join_broadcast(self):
        step = HashJoinStep(0, "broadcast", probe_slots=(0,), build_slots=(2,))
        runtime = TermRuntime()
        build_rows = [pad_row((1, "a"), 2, 4)]
        runtime.broadcast_tables[0] = build_hash_table(
            build_rows, make_slots_key((2,)))
        rows = [pad_row((1, "x"), 0, 4)]
        out = step.apply(rows, 0, runtime)
        assert out == [(1, "x", 1, "a")]

    def test_hash_join_state_gather(self):
        step = HashJoinStep(0, "state", probe_slots=(0,), build_slots=(2,),
                            state_view="v", state_offset=2, arity=4,
                            gather=True)
        runtime = TermRuntime()
        calls = []

        def state_rows(view, partition):
            calls.append((view, partition))
            return [(1, "s")]

        runtime.state_rows = state_rows
        out = step.apply([pad_row((1, "x"), 0, 4)], 3, runtime)
        assert calls == [("v", -1)]  # gather reads all partitions
        assert out == [(1, "x", 1, "s")]

    def test_nested_loop_with_predicate(self):
        step = NestedLoopStep(0, predicate=lambda row: row[0] <= row[2])
        runtime = TermRuntime()
        runtime.broadcast_tables[0] = [pad_row((5, 6), 2, 4),
                                       pad_row((0, 1), 2, 4)]
        out = step.apply([pad_row((3, 4), 0, 4)], 0, runtime)
        assert out == [(3, 4, 5, 6)]

    def test_filter_step(self):
        step = FilterStep(lambda row: row[0] > 1, "x > 1")
        assert step.apply([(1,), (2,)], 0, TermRuntime()) == [(2,)]

    def test_totalize_replaces_increments(self):
        step = TotalizeStep("v", 0, group_slots=(0,),
                            agg_slot_to_position=((1, 0),))
        runtime = TermRuntime()
        runtime.state_total = lambda view, p, key: (100,) if key == "a" else None
        out = step.apply([("a", 5), ("b", 7)], 0, runtime)
        assert out == [("a", 100)]  # total substituted; unknown group dropped


class TestProjector:
    def test_plain_projection(self):
        project = make_projector([lambda r: r[0] + 1, lambda r: r[1]],
                                 (None, None))
        assert project((1, "x")) == (2, "x")

    def test_count_normalization(self):
        project = make_projector([lambda r: r[0], lambda r: r[1]],
                                 (None, COUNT))
        assert project(("k", "alice")) == ("k", 1)
        assert project(("k", 7)) == ("k", 7)

    def test_min_no_normalization(self):
        project = make_projector([lambda r: r[0], lambda r: r[1]],
                                 (None, MIN))
        assert project(("k", 3)) == ("k", 3)
