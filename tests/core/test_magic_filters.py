"""Tests for the magic-set-style filter seeding of the optimizer."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ExecutionConfig, RaSQLContext
from repro.datagen import random_graph

TC_FROM = """
WITH recursive tc(Src, Dst) AS
  (SELECT Src, Dst FROM edge) UNION
  (SELECT tc.Src, edge.Dst FROM tc, edge WHERE tc.Dst = edge.Src)
SELECT Src, Dst FROM tc WHERE Src = {source}
"""

APSP_FROM = """
WITH recursive path(Src, Dst, min() AS Cost) AS
  (SELECT Src, Dst, Cost FROM edge) UNION
  (SELECT path.Src, edge.Dst, path.Cost + edge.Cost
   FROM path, edge WHERE path.Dst = edge.Src)
SELECT Src, Dst, Cost FROM path WHERE Src = {source}
"""

SSSP_FILTERED = """
WITH recursive path(Dst, min() AS Cost) AS
  (SELECT 1, 0) UNION
  (SELECT edge.Dst, path.Cost + edge.Cost
   FROM path, edge WHERE path.Dst = edge.Src)
SELECT Dst, Cost FROM path WHERE Dst = 3
"""

EDGES = random_graph(80, 320, seed=19)
EDGES_W = random_graph(80, 320, seed=19, weighted=True)


def run(sql, weighted=False, magic=True):
    ctx = RaSQLContext(num_workers=2,
                       config=ExecutionConfig(magic_filters=magic))
    if weighted:
        ctx.register_table("edge", ["Src", "Dst", "Cost"], EDGES_W)
    else:
        ctx.register_table("edge", ["Src", "Dst"], EDGES)
    result = ctx.sql(sql)
    return sorted(result.rows), ctx


class TestMagicFilters:
    def test_tc_results_unchanged(self):
        with_magic, _ = run(TC_FROM.format(source=5))
        without, _ = run(TC_FROM.format(source=5), magic=False)
        assert with_magic == without

    def test_tc_less_work(self):
        _, magic_ctx = run(TC_FROM.format(source=5))
        _, plain_ctx = run(TC_FROM.format(source=5), magic=False)
        assert (magic_ctx.metrics.get("shuffle_records")
                < plain_ctx.metrics.get("shuffle_records"))

    def test_apsp_preserved_aggregate_view(self):
        with_magic, _ = run(APSP_FROM.format(source=7), weighted=True)
        without, _ = run(APSP_FROM.format(source=7), weighted=True,
                         magic=False)
        assert with_magic == without

    def test_not_applied_to_unpreserved_column(self):
        # SSSP's Dst is derived from the edge side, not preserved from the
        # delta — seeding it would be unsound, so results must still match
        # the unfiltered run's subset.
        with_magic, magic_ctx = run(SSSP_FILTERED, weighted=True)
        without, plain_ctx = run(SSSP_FILTERED, weighted=True, magic=False)
        assert with_magic == without
        # And the optimizer must NOT have shrunk the work (same records).
        assert (magic_ctx.metrics.get("shuffle_records")
                == plain_ctx.metrics.get("shuffle_records"))

    def test_constant_base_rows_filtered(self):
        # A FROM-less base case on a preserved column: seeding filters the
        # constant rows themselves.
        sql = """
        WITH recursive r(X, Y) AS
          (SELECT 1, 1) UNION (SELECT 2, 2) UNION
          (SELECT r.X, r.Y + 1 FROM r, edge WHERE r.Y = edge.Src)
        SELECT X, Y FROM r WHERE X = 2
        """
        with_magic, _ = run(sql)
        without, _ = run(sql, magic=False)
        assert with_magic == without
        assert all(row[0] == 2 for row in with_magic)

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=79))
    def test_equivalence_property_over_sources(self, source):
        with_magic, _ = run(TC_FROM.format(source=source))
        without, _ = run(TC_FROM.format(source=source), magic=False)
        assert with_magic == without
