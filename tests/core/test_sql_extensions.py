"""Tests for the dialect conveniences: ORDER BY, LIMIT, BETWEEN, IN."""

import pytest

from repro import RaSQLContext
from repro.core.parser import parse, parse_query
from repro.errors import AnalysisError, ParseError


def make_ctx():
    ctx = RaSQLContext(num_workers=2)
    ctx.register_table("edge", ["Src", "Dst", "Cost"],
                       [(1, 2, 3.0), (2, 3, 1.0), (1, 3, 9.0), (3, 4, 2.0)])
    return ctx


class TestOrderByLimit:
    def test_order_by_column(self):
        result = make_ctx().sql("SELECT Src, Cost FROM edge ORDER BY Cost")
        assert [r[1] for r in result.rows] == [1.0, 2.0, 3.0, 9.0]

    def test_order_by_desc(self):
        result = make_ctx().sql("SELECT Cost FROM edge ORDER BY Cost DESC")
        assert [r[0] for r in result.rows] == [9.0, 3.0, 2.0, 1.0]

    def test_order_by_position(self):
        result = make_ctx().sql("SELECT Src, Cost FROM edge ORDER BY 2 ASC")
        assert [r[1] for r in result.rows] == [1.0, 2.0, 3.0, 9.0]

    def test_multi_key_order(self):
        result = make_ctx().sql(
            "SELECT Src, Dst FROM edge ORDER BY Src ASC, Dst DESC")
        assert result.rows == [(1, 3), (1, 2), (2, 3), (3, 4)]

    def test_limit(self):
        result = make_ctx().sql(
            "SELECT Cost FROM edge ORDER BY Cost DESC LIMIT 2")
        assert result.rows == [(9.0,), (3.0,)]

    def test_order_by_alias(self):
        result = make_ctx().sql(
            "SELECT Src + Dst AS total FROM edge ORDER BY total LIMIT 1")
        assert result.rows == [(3,)]

    def test_order_by_on_recursive_final_select(self):
        ctx = make_ctx()
        result = ctx.sql("""
        WITH recursive path(Dst, min() AS Cost) AS
          (SELECT 1, 0) UNION
          (SELECT edge.Dst, path.Cost + edge.Cost
           FROM path, edge WHERE path.Dst = edge.Src)
        SELECT Dst, Cost FROM path ORDER BY Cost DESC LIMIT 3
        """)
        assert len(result) == 3
        costs = [r[1] for r in result.rows]
        assert costs == sorted(costs, reverse=True)

    def test_order_by_unknown_column(self):
        with pytest.raises(AnalysisError, match="not in the output"):
            make_ctx().sql("SELECT Src FROM edge ORDER BY Nope")

    def test_order_by_position_out_of_range(self):
        with pytest.raises(AnalysisError, match="out of range"):
            make_ctx().sql("SELECT Src FROM edge ORDER BY 5")

    def test_order_by_rejected_inside_recursion(self):
        with pytest.raises(AnalysisError, match="ORDER BY/LIMIT"):
            make_ctx().sql("""
            WITH recursive r(Dst) AS
              (SELECT 1) UNION
              (SELECT edge.Dst FROM r, edge
               WHERE r.Dst = edge.Src ORDER BY Dst)
            SELECT Dst FROM r""")


class TestBetweenIn:
    def test_between_desugars(self):
        query = parse_query("SELECT Src FROM edge WHERE Cost BETWEEN 2 AND 4")
        assert "(2 <= Cost)" in query.where.to_sql()
        assert "(Cost <= 4)" in query.where.to_sql()

    def test_between_executes(self):
        result = make_ctx().sql(
            "SELECT Cost FROM edge WHERE Cost BETWEEN 2 AND 4 ORDER BY Cost")
        assert result.rows == [(2.0,), (3.0,)]

    def test_not_between(self):
        result = make_ctx().sql(
            "SELECT Cost FROM edge WHERE Cost NOT BETWEEN 2 AND 4 "
            "ORDER BY Cost")
        assert result.rows == [(1.0,), (9.0,)]

    def test_in_list(self):
        result = make_ctx().sql(
            "SELECT Src, Dst FROM edge WHERE Dst IN (2, 4) ORDER BY Dst")
        assert result.rows == [(1, 2), (3, 4)]

    def test_not_in(self):
        result = make_ctx().sql(
            "SELECT Dst FROM edge WHERE Dst NOT IN (2, 3)")
        assert result.rows == [(4,)]

    def test_in_inside_recursion(self):
        # Desugared to OR-equalities, so it works anywhere WHERE works.
        ctx = make_ctx()
        result = ctx.sql("""
        WITH recursive reach(Dst) AS
          (SELECT 1) UNION
          (SELECT edge.Dst FROM reach, edge
           WHERE reach.Dst = edge.Src AND edge.Dst IN (2, 3))
        SELECT Dst FROM reach
        """)
        assert sorted(result.rows) == [(1,), (2,), (3,)]

    def test_dangling_not_rejected(self):
        with pytest.raises(ParseError, match="BETWEEN or IN"):
            parse_query("SELECT Src FROM edge WHERE Cost NOT 3")

    def test_round_trip_with_order_limit(self):
        sql = "SELECT Src FROM edge ORDER BY Src DESC LIMIT 5"
        script = parse(sql)
        assert parse(script.to_sql()) == script
