"""Unit tests for the RaSQL tokenizer."""

import pytest

from repro.core.lexer import tokenize
from repro.errors import ParseError


def kinds_values(text):
    return [(t.kind, t.value) for t in tokenize(text) if t.kind != "EOF"]


class TestBasics:
    def test_keywords_recognized_case_insensitively(self):
        tokens = tokenize("select FROM")
        assert tokens[0].matches("KEYWORD", "SELECT")
        assert tokens[1].matches("KEYWORD", "from")

    def test_identifiers_preserve_case(self):
        assert kinds_values("waitFor") == [("IDENT", "waitFor")]

    def test_numbers_int_and_float(self):
        assert kinds_values("42 0.5 3.14") == [
            ("NUMBER", "42"), ("NUMBER", "0.5"), ("NUMBER", "3.14")]

    def test_string_literal(self):
        assert kinds_values("'hello'") == [("STRING", "hello")]

    def test_string_escape_doubles_quote(self):
        assert kinds_values("'it''s'") == [("STRING", "it's")]

    def test_unterminated_string_raises(self):
        with pytest.raises(ParseError, match="unterminated"):
            tokenize("'oops")

    def test_operators_longest_match(self):
        assert kinds_values("a<=b <> c >= d") == [
            ("IDENT", "a"), ("OP", "<="), ("IDENT", "b"), ("OP", "<>"),
            ("IDENT", "c"), ("OP", ">="), ("IDENT", "d")]

    def test_qualified_name_tokens(self):
        assert kinds_values("edge.Dst") == [
            ("IDENT", "edge"), ("OP", "."), ("IDENT", "Dst")]

    def test_number_then_dot_ident_not_float(self):
        # ``1.Dst`` should not eat the dot into the number.
        assert kinds_values("t1.Dst")[1] == ("OP", ".")


class TestComments:
    def test_line_comment_skipped(self):
        assert kinds_values("SELECT -- comment\n 1") == [
            ("KEYWORD", "SELECT"), ("NUMBER", "1")]

    def test_block_comment_skipped(self):
        assert kinds_values("SELECT /* hi\n there */ 1") == [
            ("KEYWORD", "SELECT"), ("NUMBER", "1")]

    def test_unterminated_block_comment(self):
        with pytest.raises(ParseError, match="block comment"):
            tokenize("SELECT /* nope")


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("SELECT\n  x")
        x = [t for t in tokens if t.kind == "IDENT"][0]
        assert (x.line, x.column) == (2, 3)

    def test_eof_token_present(self):
        assert tokenize("")[-1].kind == "EOF"

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("SELECT @")
