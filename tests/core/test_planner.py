"""Unit tests for physical planning: keys, terms, join strategies.

Includes the Figure 2 plan-shape checks: the clique plan (a) and the
physical fixpoint plan (b) for the BOM query must expose the paper's
structure through ``explain()``.
"""

import pytest

from repro.core.analyzer import analyze
from repro.core.catalog import Catalog
from repro.core.config import ExecutionConfig
from repro.core.optimizer import optimize
from repro.core.parser import parse
from repro.core.physical import (
    HashJoinStep,
    NestedLoopStep,
    SortMergeJoinStep,
    TotalizeStep,
)
from repro.core.planner import plan_clique
from repro.errors import PlanningError
from repro.queries.library import get_query


def planned(name, config=None, **params):
    spec = get_query(name)
    catalog = Catalog()
    for table, columns in spec.tables.items():
        catalog.register(table, columns)
    script = optimize(analyze(parse(spec.formatted(**params)), catalog))
    return plan_clique(script.cliques()[0], config or ExecutionConfig())


class TestPartitionKeys:
    def test_sssp_partitions_on_join_column(self):
        plan = planned("sssp", source=1)
        assert plan.view("path").partition_key_positions == (0,)  # Dst

    def test_tc_decomposed_partitions_on_preserved_column(self):
        plan = planned("tc")
        assert plan.decomposable
        assert plan.view("tc").partition_key_positions == (0,)  # Src

    def test_tc_global_partitions_on_join_column(self):
        plan = planned("tc", ExecutionConfig(decomposed_plans=False))
        assert not plan.decomposable
        assert plan.view("tc").partition_key_positions == (1,)  # Dst

    def test_company_control_keys_align_with_cross_join(self):
        plan = planned("company_control")
        # control.Com2 = cshares.ByCom: control keyed on Com2 (pos 1),
        # cshares on ByCom (pos 0).
        assert plan.view("control").partition_key_positions == (1,)
        assert plan.view("cshares").partition_key_positions == (0,)

    def test_aggregate_key_must_be_group_subset(self):
        # APSP global plan: join on Dst (a group column), never on Cost.
        plan = planned("apsp", ExecutionConfig(decomposed_plans=False))
        positions = plan.view("path").partition_key_positions
        assert set(positions) <= {0, 1}


class TestTermShapes:
    def test_single_recursive_ref_one_term(self):
        plan = planned("sssp", source=1)
        assert len(plan.terms) == 1
        assert plan.terms[0].delta_view == "path"

    def test_copartitioned_hash_join_is_default(self):
        plan = planned("sssp", source=1)
        steps = plan.terms[0].steps
        assert any(isinstance(s, HashJoinStep)
                   and s.source == "base_partition" for s in steps)

    def test_sort_merge_when_configured(self):
        plan = planned("sssp", ExecutionConfig(join_strategy="sort_merge"),
                       source=1)
        assert any(isinstance(s, SortMergeJoinStep)
                   for s in plan.terms[0].steps)

    def test_broadcast_when_forced(self):
        plan = planned("sssp", ExecutionConfig(broadcast_bases=True),
                       source=1)
        steps = plan.terms[0].steps
        assert any(isinstance(s, HashJoinStep) and s.source == "broadcast"
                   for s in steps)

    def test_same_generation_multi_base_broadcast(self):
        # SG joins the delta with two base scans: the second scan cannot
        # be co-partitioned with the intermediate result.
        plan = planned("same_generation")
        sources = [s.source for s in plan.terms[0].steps
                   if isinstance(s, HashJoinStep)]
        assert sources.count("broadcast") >= 1

    def test_theta_join_nested_loop(self):
        plan = planned("interval_coalesce")
        assert any(isinstance(s, NestedLoopStep)
                   for s in plan.terms[0].steps)

    def test_mutual_recursion_cross_terms_with_correction(self):
        plan = planned("company_control")
        cshares_terms = [t for t in plan.terms if t.view == "cshares"]
        # δcontrol⋈cshares, control⋈δcshares, and the negated δ⋈δ.
        assert len(cshares_terms) == 3
        assert sum(t.negate for t in cshares_terms) == 1
        negated = next(t for t in cshares_terms if t.negate)
        assert any(isinstance(s, HashJoinStep) and s.source == "delta"
                   for s in negated.steps)

    def test_min_max_mutual_recursion_no_correction(self):
        catalog = Catalog()
        catalog.register("e", ("S", "D", "W"))
        script = optimize(analyze(parse("""
        WITH recursive a(X, min() AS V) AS
          (SELECT S, W FROM e) UNION
          (SELECT b.Y, a.V FROM a, b WHERE a.X = b.Y),
        recursive b(Y) AS (SELECT X FROM a WHERE V < 5)
        SELECT X, V FROM a"""), catalog))
        plan = plan_clique(script.cliques()[0], ExecutionConfig())
        a_terms = [t for t in plan.terms if t.view == "a"]
        assert len(a_terms) == 2  # min absorbs the overlap, no δ⋈δ term
        assert not any(t.negate for t in a_terms)


class TestValueModes:
    def test_filter_on_sum_column_totalizes(self):
        plan = planned("company_control")
        control_terms = [t for t in plan.terms if t.view == "control"]
        assert any(isinstance(s, TotalizeStep)
                   for t in control_terms for s in t.steps)

    def test_linear_propagation_keeps_increments(self):
        plan = planned("count_paths", source=1)
        assert not any(isinstance(s, TotalizeStep)
                       for t in plan.terms for s in t.steps)

    def test_mixed_use_rejected(self):
        catalog = Catalog()
        catalog.register("e", ("S", "D"))
        script = optimize(analyze(parse("""
        WITH recursive r(X, sum() AS V) AS
          (SELECT S, 1 FROM e) UNION
          (SELECT e.D, r.V FROM r, e WHERE r.X = e.S AND r.V > 2)
        SELECT X, V FROM r"""), catalog))
        with pytest.raises(PlanningError, match="filters on and propagates"):
            plan_clique(script.cliques()[0], ExecutionConfig())


class TestFigure2PlanShape:
    """The BOM plan must match the structure of Figure 2."""

    def test_clique_plan_shape(self):
        spec = get_query("bom")
        catalog = Catalog()
        for table, columns in spec.tables.items():
            catalog.register(table, columns)
        script = optimize(analyze(parse(spec.sql), catalog))
        text = script.explain()
        # Figure 2(a): the Recursive Clique with base and recursive rules,
        # the recursive mark point, and the join condition.
        assert "RecursiveClique waitfor" in text
        assert "ScanRecRelation waitfor" in text
        assert "Scan assbl" in text
        assert "Scan basic" in text
        assert "max(Days)" in text

    def test_physical_plan_shape(self):
        plan = planned("bom")
        text = plan.explain()
        # Figure 2(b): the FixPoint operator over a hash join whose build
        # side is the base relation.
        assert "FixPoint" in text
        assert "HashJoin" in text
        assert "delta(waitfor)" in text


class TestBaseRules:
    def test_constant_base_rule(self):
        plan = planned("sssp", source=9)
        constant_rules = [b for b in plan.base_rules if b.term is None]
        assert constant_rules[0].constant_rows == ((9, 0),)

    def test_scan_driven_base_rule(self):
        plan = planned("cc")
        driven = [b for b in plan.base_rules if b.term is not None]
        assert driven[0].driving_relation == "edge"

    def test_party_attendance_rule_distribution(self):
        # cntfriends is defined purely from its clique sibling: its only
        # rule is recursive, so the clique's sole base rule seeds attend
        # from the organizer table.  (The count() normalization of the
        # name-valued contributions is exercised end to end in
        # tests/integration/test_queries.py.)
        plan = planned("party_attendance")
        assert [b.view for b in plan.base_rules] == ["attend"]
        assert any(t.view == "cntfriends" for t in plan.terms)
