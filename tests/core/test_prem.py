"""Unit tests for the PreM checker (Section 3, Appendix G)."""

import pytest

from repro import RaSQLContext
from repro.core.prem import check_prem, prem_checking_query
from repro.errors import AnalysisError, PreMViolationError
from repro.queries.library import get_query

EDGES_W = ([(1, 2, 1), (2, 3, 2), (1, 3, 5), (3, 4, 1), (4, 2, 1)])

#: A deliberately non-PreM query: min over ``10 - Cost`` is not
#: pre-mappable because discarding the larger cost can discard the row
#: that minimizes after the non-monotonic transform.
NON_PREM = """
WITH recursive path(Dst, min() AS Cost) AS
  (SELECT 1, 0) UNION
  (SELECT edge.Dst, 10 - path.Cost
   FROM path, edge WHERE path.Dst = edge.Src)
SELECT Dst, Cost FROM path
"""


class TestStepwiseChecker:
    def test_sssp_prem_holds(self):
        report = check_prem(get_query("sssp").formatted(source=1),
                            {"edge": (["Src", "Dst", "Cost"], EDGES_W)})
        assert report.holds

    def test_bom_prem_holds(self):
        report = check_prem(
            get_query("bom").sql,
            {"assbl": (["Part", "SPart"],
                       [("a", "b"), ("a", "c"), ("b", "d")]),
             "basic": (["Part", "Days"], [("d", 5), ("c", 2)])})
        assert report.holds
        assert report.reached_fixpoint

    def test_cc_prem_holds(self):
        report = check_prem(
            get_query("cc_labels").sql,
            {"edge": (["Src", "Dst"], [(1, 2), (2, 3), (3, 1), (4, 5)])})
        assert report.holds

    def test_apsp_prem_holds(self):
        report = check_prem(get_query("apsp").sql,
                            {"edge": (["Src", "Dst", "Cost"], EDGES_W)})
        assert report.holds

    def test_non_prem_query_flagged(self):
        report = check_prem(
            NON_PREM,
            {"edge": (["Src", "Dst", "Cost"],
                      [(1, 2, 1), (1, 3, 1), (3, 2, 1), (2, 4, 1)])})
        assert not report.holds
        assert report.failed_step is not None
        assert report.counterexample

    def test_non_prem_query_raises_when_asked(self):
        with pytest.raises(PreMViolationError):
            check_prem(
                NON_PREM,
                {"edge": (["Src", "Dst", "Cost"],
                          [(1, 2, 1), (1, 3, 1), (3, 2, 1), (2, 4, 1)])},
                raise_on_violation=True)

    def test_budget_reported_when_unaggregated_runs_long(self):
        # Cyclic graph: the un-aggregated state grows for many steps.
        report = check_prem(get_query("sssp").formatted(source=1),
                            {"edge": (["Src", "Dst", "Cost"], EDGES_W)},
                            max_steps=3)
        assert report.holds
        assert report.steps_checked == 3

    def test_rejects_non_aggregated_queries(self):
        with pytest.raises(AnalysisError):
            check_prem(get_query("tc").sql,
                       {"edge": (["Src", "Dst"], [(1, 2)])})

    def test_trace_records_every_step(self):
        report = check_prem(get_query("sssp").formatted(source=1),
                            {"edge": (["Src", "Dst", "Cost"], EDGES_W)},
                            max_steps=4)
        assert len(report.trace) == report.steps_checked
        assert all(entry.matched for entry in report.trace)
        # The un-aggregated fact set grows monotonically.
        facts = [entry.unaggregated_facts for entry in report.trace]
        assert facts == sorted(facts)

    def test_trace_marks_violation_step(self):
        report = check_prem(
            NON_PREM,
            {"edge": (["Src", "Dst", "Cost"],
                      [(1, 2, 1), (1, 3, 1), (3, 2, 1), (2, 4, 1)])})
        assert not report.trace[-1].matched
        assert report.trace[-1].step == report.failed_step
        text = report.format_trace()
        assert "VIOLATED" in text


class TestAppendixGRewrite:
    def test_rewrite_structure(self):
        rewritten = prem_checking_query(get_query("apsp").sql)
        assert "all_path" in rewritten
        # The twin's recursion must go through the twin, the aggregated
        # view's recursion through the twin too.
        assert rewritten.count("all_path") >= 3

    def test_rewritten_query_same_result(self):
        original = get_query("sssp").formatted(source=1)
        rewritten = prem_checking_query(original)
        results = []
        for sql in (original, rewritten):
            ctx = RaSQLContext()
            # Acyclic data: the un-aggregated twin must terminate.
            ctx.register_table("edge", ["Src", "Dst", "Cost"],
                               [(1, 2, 1), (2, 3, 2), (1, 3, 5), (3, 4, 1)])
            results.append(sorted(ctx.sql(sql).rows))
        assert results[0] == results[1]

    def test_rewrite_requires_aggregated_view(self):
        with pytest.raises(AnalysisError):
            prem_checking_query(get_query("tc").sql)

    def test_rewrite_requires_with_query(self):
        with pytest.raises(AnalysisError):
            prem_checking_query("SELECT 1")
