"""Unit tests for semantic analysis: cliques, mark points, validation."""

import pytest

from repro.core.analyzer import analyze
from repro.core.catalog import Catalog
from repro.core.logical import CliquePlan, DerivedViewPlan, RecursiveScanNode, ScanNode
from repro.core.optimizer import optimize
from repro.core.parser import parse
from repro.errors import AnalysisError
from repro.queries.library import get_query


def catalog_for(spec):
    catalog = Catalog()
    for table, columns in spec.tables.items():
        catalog.register(table, columns)
    return catalog


def analyzed(name, **params):
    spec = get_query(name)
    return analyze(parse(spec.formatted(**params)), catalog_for(spec))


class TestCliqueDetection:
    def test_single_view_clique(self):
        script = analyzed("sssp", source=1)
        cliques = script.cliques()
        assert len(cliques) == 1
        assert cliques[0].view_names == ("path",)

    def test_mutual_recursion_one_clique(self):
        script = analyzed("company_control")
        cliques = script.cliques()
        assert len(cliques) == 1
        assert set(cliques[0].view_names) == {"cshares", "control"}

    def test_party_attendance_clique(self):
        script = analyzed("party_attendance")
        assert set(script.cliques()[0].view_names) == {"attend", "cntfriends"}

    def test_create_view_is_derived_unit(self):
        script = analyzed("interval_coalesce")
        assert isinstance(script.units[0], DerivedViewPlan)
        assert script.units[0].name == "lstart"
        assert isinstance(script.units[1], CliquePlan)

    def test_plain_with_view_not_a_clique(self):
        catalog = Catalog()
        catalog.register("t", ("X",))
        script = analyze(parse(
            "WITH v(X) AS (SELECT X FROM t) SELECT X FROM v"), catalog)
        assert isinstance(script.units[0], DerivedViewPlan)


class TestMarkPoints:
    def test_recursive_reference_becomes_mark_point(self):
        script = analyzed("sssp", source=1)
        view = script.cliques()[0].views[0]
        assert len(view.base_rules) == 1
        assert len(view.recursive_rules) == 1
        rule = view.recursive_rules[0]
        kinds = [type(n) for n in rule.join.inputs]
        assert RecursiveScanNode in kinds
        assert ScanNode in kinds

    def test_base_rule_constant_rows(self):
        script = analyzed("sssp", source=7)
        view = script.cliques()[0].views[0]
        assert view.base_rules[0].constant_rows == ((7, 0),)

    def test_same_generation_two_base_scans_one_recursive(self):
        script = analyzed("same_generation")
        rule = script.cliques()[0].views[0].recursive_rules[0]
        recs = rule.recursive_inputs()
        assert len(recs) == 1
        assert len(rule.join.inputs) == 3

    def test_cross_view_recursive_reference(self):
        script = analyzed("company_control")
        clique = script.cliques()[0]
        cshares_rules = clique.view("cshares").recursive_rules
        assert len(cshares_rules) == 1
        # Both control and cshares references are recursive mark points.
        assert len(cshares_rules[0].recursive_inputs()) == 2


class TestImplicitGroupBy:
    def test_aggregate_head_positions(self):
        script = analyzed("bom")
        view = script.cliques()[0].views[0]
        assert view.group_positions == (0,)
        assert view.aggregate_positions == (1,)
        assert view.aggregates[1].name == "max"

    def test_no_aggregate_all_group(self):
        script = analyzed("tc")
        view = script.cliques()[0].views[0]
        assert view.group_positions == (0, 1)
        assert not view.has_aggregates


class TestValidation:
    def test_avg_in_recursion_rejected(self):
        catalog = Catalog()
        catalog.register("t", ("X", "V"))
        with pytest.raises(AnalysisError, match="avg"):
            analyze(parse("""
            WITH recursive r(X, avg() AS V) AS (SELECT X, V FROM t)
            SELECT X FROM r"""), catalog)

    def test_arity_mismatch_rejected(self):
        catalog = Catalog()
        catalog.register("t", ("X", "Y"))
        with pytest.raises(AnalysisError, match="columns"):
            analyze(parse("""
            WITH recursive r(X) AS (SELECT X, Y FROM t)
            SELECT X FROM r"""), catalog)

    def test_unknown_table_rejected(self):
        with pytest.raises(AnalysisError, match="unknown table"):
            analyze(parse("SELECT X FROM missing"), Catalog())

    def test_unknown_column_rejected(self):
        catalog = Catalog()
        catalog.register("t", ("X",))
        with pytest.raises(AnalysisError, match="unknown column"):
            analyze(parse("""
            WITH recursive r(X) AS (SELECT Zap FROM t) UNION (SELECT r.X FROM r, t WHERE r.X = t.X)
            SELECT X FROM r"""), catalog)

    def test_no_base_case_rejected(self):
        catalog = Catalog()
        catalog.register("t", ("X",))
        with pytest.raises(AnalysisError, match="base case"):
            analyze(parse("""
            WITH recursive r(X) AS (SELECT r.X FROM r, t WHERE r.X = t.X)
            SELECT X FROM r"""), catalog)

    def test_group_by_inside_recursion_rejected(self):
        catalog = Catalog()
        catalog.register("t", ("X",))
        with pytest.raises(AnalysisError, match="GROUP BY"):
            analyze(parse("""
            WITH recursive r(X) AS (SELECT X FROM t GROUP BY X)
            SELECT X FROM r"""), catalog)

    def test_explicit_aggregate_in_branch_rejected(self):
        catalog = Catalog()
        catalog.register("t", ("X",))
        with pytest.raises(AnalysisError, match="implicit group-by"):
            analyze(parse("""
            WITH recursive r(X, max() AS M) AS (SELECT X, max(X) FROM t)
            SELECT X FROM r"""), catalog)


class TestOptimizer:
    def test_equi_conjuncts_extracted(self):
        script = optimize(analyzed("sssp", source=1))
        rule = script.cliques()[0].views[0].recursive_rules[0]
        assert len(rule.join.equi_conjuncts) == 1
        assert rule.join.residual == []

    def test_filter_pushdown_to_scan(self):
        catalog = Catalog()
        catalog.register("e", ("S", "D", "W"))
        script = optimize(analyze(parse("""
        WITH recursive r(D) AS (SELECT 1) UNION
          (SELECT e.D FROM r, e WHERE r.D = e.S AND e.W > 5)
        SELECT D FROM r"""), catalog))
        rule = script.cliques()[0].views[0].recursive_rules[0]
        scan = [n for n in rule.join.inputs if isinstance(n, ScanNode)][0]
        assert scan.filter is not None
        assert "W" in scan.filter.to_sql()
        assert rule.join.residual == []

    def test_filter_on_recursive_ref_stays_residual(self):
        # Company Control: ``Tot > 50`` applies to the recursive cshares.
        script = optimize(analyzed("company_control"))
        control = script.cliques()[0].view("control")
        rule = (control.base_rules + control.recursive_rules)[0]
        assert len(rule.join.residual) == 1

    def test_constant_folding(self):
        catalog = Catalog()
        catalog.register("t", ("X",))
        script = optimize(analyze(parse("""
        WITH recursive r(X) AS (SELECT X FROM t) UNION
          (SELECT r.X + 1 + 1 FROM r, t WHERE r.X = t.X AND 1 = 1)
        SELECT X FROM r"""), catalog))
        rule = script.cliques()[0].views[0].recursive_rules[0]
        # ``1 = 1`` folded away entirely.
        assert rule.join.residual == []

    def test_explain_mentions_clique(self):
        script = optimize(analyzed("bom"))
        text = script.explain()
        assert "RecursiveRelation waitfor" in text
        assert "max(Days)" in text
        assert "ScanRecRelation" in text
