"""Tests for the Datalog front end (parser + translation + execution)."""

import pytest

from repro import RaSQLContext
from repro.baselines import serial
from repro.datagen import random_graph
from repro.datalog import datalog_to_sql, parse_datalog, run_datalog
from repro.datalog.parser import Constant, Variable
from repro.errors import AnalysisError, ParseError

TC = """
  tc(X, Y) <- edge(X, Y).
  tc(X, Z) <- tc(X, Y), edge(Y, Z).
  ?- tc(X, Y).
"""

SSSP = """
  path(1, 0).
  path(Y, min<C>) <- path(X, D), edge(X, Y, W), C = D + W.
  ?- path(X, C).
"""


def graph_ctx(weighted=False, n=40, m=150, seed=2):
    ctx = RaSQLContext(num_workers=2)
    edges = random_graph(n, m, seed=seed, weighted=weighted)
    if weighted:
        edges = [(a, b, float(w)) for a, b, w in edges]
        ctx.register_table("edge", ["Src", "Dst", "Cost"], edges)
    else:
        ctx.register_table("edge", ["Src", "Dst"], edges)
    return ctx, edges


class TestParser:
    def test_rules_and_facts(self):
        program = parse_datalog(TC)
        assert len(program.rules) == 2
        assert program.query.predicate == "tc"
        assert program.idb_predicates() == ["tc"]
        assert program.edb_predicates() == {"edge"}

    def test_fact_terms_ground(self):
        program = parse_datalog("p(1, 'x'). q(Y) <- p(Y, _).")
        fact = program.rules[0]
        assert fact.is_fact
        assert fact.head_args[0].term == Constant(1)
        assert fact.head_args[1].term == Constant("x")

    def test_non_ground_fact_rejected(self):
        with pytest.raises(ParseError, match="ground"):
            parse_datalog("p(X).")

    def test_aggregate_annotations(self):
        program = parse_datalog(
            "p(X, min<C>) <- q(X, C). p(X, mmin<C>) <- r(X, C).")
        assert program.rules[0].head_args[1].aggregate == "min"
        assert program.rules[1].head_args[1].aggregate == "min"  # mmin alias

    def test_comments_and_strings(self):
        program = parse_datalog("""
          % a comment
          p('it''s', 2.5).
        """)
        assert program.rules[0].head_args[0].term == Constant("it's")
        assert program.rules[0].head_args[1].term == Constant(2.5)

    def test_lowercase_names_are_constants(self):
        program = parse_datalog("p(alice) <- q(alice, X), r(X).")
        assert program.rules[0].head_args[0].term == Constant("alice")
        assert program.rules[0].atoms[0].terms[1] == Variable("X")

    def test_arithmetic_precedence(self):
        program = parse_datalog("p(C) <- q(A, B), C = A + B * 2.")
        assignment = program.rules[0].constraints[0]
        assert assignment.right.op == "+"
        assert assignment.right.right.op == "*"

    def test_empty_program_rejected(self):
        with pytest.raises(ParseError, match="empty"):
            parse_datalog("% nothing")


class TestTranslation:
    def test_tc_sql_shape(self):
        sql = datalog_to_sql(TC, lambda p: ["Src", "Dst"])
        assert "WITH recursive tc" in sql
        # The shared variable Y joins the recursive ref to the edge scan.
        assert "t0.Y = t1.Src" in sql.replace("(", "").replace(")", "")

    def test_aggregate_becomes_head_column(self):
        sql = datalog_to_sql(SSSP, lambda p: ["Src", "Dst", "Cost"])
        assert "min() AS" in sql

    def test_unbound_variable_rejected(self):
        with pytest.raises(AnalysisError, match="unbound"):
            datalog_to_sql("p(X, Y) <- q(X).", lambda p: ["A"])

    def test_arity_mismatch_rejected(self):
        with pytest.raises(AnalysisError, match="arity"):
            datalog_to_sql("p(X) <- edge(X).", lambda p: ["Src", "Dst"])

    def test_conflicting_aggregates_rejected(self):
        with pytest.raises(AnalysisError, match="conflicting"):
            datalog_to_sql("""
              p(X, min<C>) <- q(X, C).
              p(X, sum<C>) <- p(X, C), q(X, _).
            """, lambda p: ["A", "B"])


class TestExecution:
    def test_tc_matches_oracle(self):
        ctx, edges = graph_ctx(n=20, m=45)
        result = run_datalog(ctx, TC)
        assert set(result.rows) == serial.transitive_closure(edges)

    def test_sssp_matches_oracle(self):
        ctx, edges = graph_ctx(weighted=True)
        result = run_datalog(ctx, SSSP)
        assert result.to_dict() == serial.sssp(edges, 1)

    def test_datalog_equals_sql_surface(self):
        """The two surfaces must compile to the same answers."""
        from repro.queries import get_query

        ctx, edges = graph_ctx(weighted=True)
        via_datalog = sorted(run_datalog(ctx, SSSP).rows)
        via_sql = sorted(ctx.sql(get_query("sssp").formatted(source=1)).rows)
        assert via_datalog == via_sql

    def test_point_query_constant(self):
        ctx, edges = graph_ctx(n=20, m=45)
        result = run_datalog(ctx, """
          tc(X, Y) <- edge(X, Y).
          tc(X, Z) <- tc(X, Y), edge(Y, Z).
          ?- tc(3, Y).
        """)
        expected = {b for a, b in serial.transitive_closure(edges) if a == 3}
        assert {y for (y,) in result.rows} == expected

    def test_management_with_mcount(self):
        report = [(2, 1), (3, 1), (4, 2), (5, 2)]
        ctx = RaSQLContext(num_workers=2)
        ctx.register_table("report", ["Emp", "Mgr"], report)
        result = run_datalog(ctx, """
          empCount(E, mcount<N>) <- report(E, _), N = 1.
          empCount(M, mcount<N>) <- empCount(E, N), report(E, M).
          ?- empCount(M, N).
        """)
        assert dict(result.rows) == serial.management_counts(report)

    def test_same_generation_with_inequality(self):
        rel = [(1, 2), (1, 3), (2, 4), (3, 5)]
        ctx = RaSQLContext(num_workers=2)
        ctx.register_table("rel", ["Parent", "Child"], rel)
        result = run_datalog(ctx, """
          sg(X, Y) <- rel(P, X), rel(P, Y), X != Y.
          sg(X, Y) <- rel(A, X), sg(A, B), rel(B, Y).
          ?- sg(X, Y).
        """)
        assert set(result.rows) == {(2, 3), (3, 2), (4, 5), (5, 4)}

    def test_default_query_is_last_predicate(self):
        ctx, edges = graph_ctx(n=10, m=20)
        result = run_datalog(ctx, """
          tc(X, Y) <- edge(X, Y).
          tc(X, Z) <- tc(X, Y), edge(Y, Z).
        """)
        assert set(result.rows) == serial.transitive_closure(edges)

    def test_chained_assignments(self):
        ctx, _ = graph_ctx(weighted=True, n=6, m=10)
        result = run_datalog(ctx, """
          p(Y, min<C>) <- edge(X, Y, W), D = W * 2, C = D + 1.
          ?- p(Y, C).
        """)
        assert all(cost == int(cost) or True for _, cost in result.rows)
        assert len(result.rows) > 0
