"""Unit tests for query admission control."""

import pytest

from repro.core.governor import QueryGovernor
from repro.engine.metrics import MetricsRegistry
from repro.errors import AdmissionRejectedError


class TestAdmission:
    def test_admits_up_to_max_concurrent_without_queueing(self):
        governor = QueryGovernor(max_concurrent=2,
                                 metrics=MetricsRegistry())
        t1 = governor.admit("q1")
        t2 = governor.admit("q2")
        assert not t1.queued and not t2.queued
        assert governor.metrics.get("queries_admitted") == 2
        assert governor.metrics.get("queries_queued") == 0

    def test_queues_when_slots_full_and_charges_wait(self):
        metrics = MetricsRegistry()
        governor = QueryGovernor(max_concurrent=1, max_queue=2,
                                 queue_wait_s=0.5, metrics=metrics)
        governor.admit("q1")
        t0 = metrics.sim_time
        ticket = governor.admit("q2")
        assert ticket.queued
        assert metrics.sim_time == pytest.approx(t0 + 0.5)
        assert metrics.get("queries_queued") == 1
        # The next queued query waits behind the first: double the charge.
        governor.admit("q3")
        assert metrics.sim_time == pytest.approx(t0 + 0.5 + 1.0)

    def test_rejects_beyond_queue_capacity(self):
        metrics = MetricsRegistry()
        governor = QueryGovernor(max_concurrent=1, max_queue=1,
                                 metrics=metrics)
        governor.admit("q1")
        governor.admit("q2")
        with pytest.raises(AdmissionRejectedError) as info:
            governor.admit("q3")
        assert info.value.reason == "concurrency"
        assert "max_queue" in str(info.value)
        assert metrics.get("queries_rejected") == 1

    def test_rejects_over_reserved_memory(self):
        governor = QueryGovernor(max_reserved_bytes=1000,
                                 metrics=MetricsRegistry())
        governor.admit("q1", estimated_bytes=800)
        with pytest.raises(AdmissionRejectedError) as info:
            governor.admit("q2", estimated_bytes=300)
        assert info.value.reason == "memory"
        assert info.value.reserved_bytes == 800
        assert "max_reserved_bytes" in str(info.value)

    def test_release_frees_slot(self):
        governor = QueryGovernor(max_concurrent=1, max_queue=0)
        ticket = governor.admit("q1")
        governor.release(ticket)
        second = governor.admit("q2")
        assert not second.queued

    def test_release_is_idempotent(self):
        governor = QueryGovernor(max_concurrent=1)
        ticket = governor.admit("q1")
        governor.release(ticket)
        governor.release(ticket)
        assert governor.reserved_bytes == 0
        assert len(governor.active) == 0

    def test_works_without_metrics(self):
        governor = QueryGovernor(max_concurrent=1, max_queue=1)
        governor.admit("q1")
        ticket = governor.admit("q2")  # queued, no clock to charge
        assert ticket.queued


class TestFIFORelease:
    """Release must dequeue waiters into freed slots, FIFO, re-checking
    the memory cap — the burst-then-drain accounting regression."""

    def test_burst_then_drain_keeps_occupancy_consistent(self):
        metrics = MetricsRegistry()
        governor = QueryGovernor(max_concurrent=2, max_queue=3,
                                 metrics=metrics)
        slotted = [governor.admit(f"q{i}") for i in range(2)]
        queued = [governor.admit(f"q{i}") for i in range(2, 5)]
        assert governor.report()["active"] == 2
        assert governor.report()["waiting"] == 3
        assert all(t.waiting for t in queued)

        # Releasing a slot promotes exactly the queue head, FIFO.
        governor.release(slotted[0])
        assert governor.report()["active"] == 2
        assert governor.report()["waiting"] == 2
        assert not queued[0].waiting and queued[0].queued
        assert queued[1].waiting and queued[2].waiting
        assert metrics.get("queries_promoted") == 1

        # Draining everything leaves no phantom occupancy behind.
        for ticket in slotted[1:] + queued:
            governor.release(ticket)
        assert governor.report()["active"] == 0
        assert governor.report()["waiting"] == 0
        assert governor.reserved_bytes == 0
        assert metrics.get("queries_promoted") == 3
        # A fresh admit gets a real slot, not a stale queue position.
        assert not governor.admit("fresh").queued

    def test_promotion_is_fifo_not_lifo(self):
        governor = QueryGovernor(max_concurrent=1, max_queue=3)
        first = governor.admit("first")
        a = governor.admit("a")
        b = governor.admit("b")
        governor.release(first)
        assert not a.waiting
        assert b.waiting

    def test_release_of_waiting_ticket_dequeues_it(self):
        governor = QueryGovernor(max_concurrent=1, max_queue=2)
        holder = governor.admit("holder")
        waiter = governor.admit("waiter")
        other = governor.admit("other")
        governor.release(waiter)  # gave up while queued
        assert governor.report()["waiting"] == 1
        governor.release(holder)
        assert not other.waiting  # promoted past the abandoned waiter
        assert governor.report()["active"] == 1

    def test_promotion_rechecks_memory_cap(self):
        governor = QueryGovernor(max_concurrent=2, max_queue=2,
                                 max_reserved_bytes=1000)
        big = governor.admit("big", estimated_bytes=600)
        other = governor.admit("other", estimated_bytes=100)
        heavy = governor.admit("heavy", estimated_bytes=300)  # queued
        assert heavy.waiting
        # Freeing the small slot is not enough: 600 + 300 fits, promote.
        governor.release(other)
        assert not heavy.waiting
        governor.release(big)
        governor.release(heavy)
        assert governor.reserved_bytes == 0

    def test_promotion_blocked_by_memory_keeps_fifo_order(self):
        governor = QueryGovernor(max_concurrent=2, max_queue=2,
                                 max_reserved_bytes=1000,
                                 queue_wait_s=0)
        a = governor.admit("a", estimated_bytes=500)
        b = governor.admit("b", estimated_bytes=400)
        c = governor.admit("c", estimated_bytes=90)  # queued behind slots
        governor.release(b)
        # 500 + 90 = 590 fits: head promoted even after a memory re-check.
        assert not c.waiting
        governor.release(a)
        governor.release(c)
        assert governor.report()["active"] == 0


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_concurrent": 0},
        {"max_queue": -1},
        {"max_reserved_bytes": 0},
        {"queue_wait_s": -0.1},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            QueryGovernor(**kwargs)

    def test_report_shape(self):
        governor = QueryGovernor(max_concurrent=3, max_queue=2)
        governor.admit("q1", estimated_bytes=10)
        report = governor.report()
        assert report["active"] == 1
        assert report["reserved_bytes"] == 10
        assert report["max_concurrent"] == 3
