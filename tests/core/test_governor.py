"""Unit tests for query admission control."""

import pytest

from repro.core.governor import QueryGovernor
from repro.engine.metrics import MetricsRegistry
from repro.errors import AdmissionRejectedError


class TestAdmission:
    def test_admits_up_to_max_concurrent_without_queueing(self):
        governor = QueryGovernor(max_concurrent=2,
                                 metrics=MetricsRegistry())
        t1 = governor.admit("q1")
        t2 = governor.admit("q2")
        assert not t1.queued and not t2.queued
        assert governor.metrics.get("queries_admitted") == 2
        assert governor.metrics.get("queries_queued") == 0

    def test_queues_when_slots_full_and_charges_wait(self):
        metrics = MetricsRegistry()
        governor = QueryGovernor(max_concurrent=1, max_queue=2,
                                 queue_wait_s=0.5, metrics=metrics)
        governor.admit("q1")
        t0 = metrics.sim_time
        ticket = governor.admit("q2")
        assert ticket.queued
        assert metrics.sim_time == pytest.approx(t0 + 0.5)
        assert metrics.get("queries_queued") == 1
        # The next queued query waits behind the first: double the charge.
        governor.admit("q3")
        assert metrics.sim_time == pytest.approx(t0 + 0.5 + 1.0)

    def test_rejects_beyond_queue_capacity(self):
        metrics = MetricsRegistry()
        governor = QueryGovernor(max_concurrent=1, max_queue=1,
                                 metrics=metrics)
        governor.admit("q1")
        governor.admit("q2")
        with pytest.raises(AdmissionRejectedError) as info:
            governor.admit("q3")
        assert info.value.reason == "concurrency"
        assert "max_queue" in str(info.value)
        assert metrics.get("queries_rejected") == 1

    def test_rejects_over_reserved_memory(self):
        governor = QueryGovernor(max_reserved_bytes=1000,
                                 metrics=MetricsRegistry())
        governor.admit("q1", estimated_bytes=800)
        with pytest.raises(AdmissionRejectedError) as info:
            governor.admit("q2", estimated_bytes=300)
        assert info.value.reason == "memory"
        assert info.value.reserved_bytes == 800
        assert "max_reserved_bytes" in str(info.value)

    def test_release_frees_slot(self):
        governor = QueryGovernor(max_concurrent=1, max_queue=0)
        ticket = governor.admit("q1")
        governor.release(ticket)
        second = governor.admit("q2")
        assert not second.queued

    def test_release_is_idempotent(self):
        governor = QueryGovernor(max_concurrent=1)
        ticket = governor.admit("q1")
        governor.release(ticket)
        governor.release(ticket)
        assert governor.reserved_bytes == 0
        assert len(governor.active) == 0

    def test_works_without_metrics(self):
        governor = QueryGovernor(max_concurrent=1, max_queue=1)
        governor.admit("q1")
        ticket = governor.admit("q2")  # queued, no clock to charge
        assert ticket.queued


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_concurrent": 0},
        {"max_queue": -1},
        {"max_reserved_bytes": 0},
        {"queue_wait_s": -0.1},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            QueryGovernor(**kwargs)

    def test_report_shape(self):
        governor = QueryGovernor(max_concurrent=3, max_queue=2)
        governor.admit("q1", estimated_bytes=10)
        report = governor.report()
        assert report["active"] == 1
        assert report["reserved_bytes"] == 10
        assert report["max_concurrent"] == 3
