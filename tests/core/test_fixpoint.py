"""Unit tests for the fixpoint operator's mechanics and modes."""

import pytest

from repro import ExecutionConfig, RaSQLContext
from repro.errors import FixpointNotReachedError, PlanningError
from repro.queries.library import get_query

EDGES = [(1, 2, 1.0), (2, 3, 2.0), (1, 3, 5.0), (3, 4, 1.0), (4, 2, 1.0)]
SSSP_EXPECTED = [(1, 0), (2, 1.0), (3, 3.0), (4, 4.0)]


def sssp_ctx(config=None, **kwargs):
    ctx = RaSQLContext(config=config, **kwargs)
    ctx.register_table("edge", ["Src", "Dst", "Cost"], EDGES)
    return ctx


class TestIterationAccounting:
    def test_iterations_recorded(self):
        ctx = sssp_ctx()
        ctx.sql(get_query("sssp").formatted(source=1))
        assert ctx.last_run.iterations >= 3
        assert ctx.metrics.get("iterations") == ctx.last_run.iterations

    def test_delta_history_shrinks_to_zero(self):
        ctx = sssp_ctx()
        ctx.sql(get_query("sssp").formatted(source=1))
        history = next(iter(ctx.last_run.delta_history.values()))
        assert history[0] >= 1
        # Final recorded delta precedes the empty round that stops the loop.
        assert all(count > 0 for count in history)

    def test_max_iterations_enforced(self):
        config = ExecutionConfig(max_iterations=2)
        ctx = sssp_ctx(config)
        with pytest.raises(FixpointNotReachedError) as info:
            ctx.sql(get_query("sssp").formatted(source=1))
        assert info.value.iterations == 2
        assert info.value.partial_result is not None


class TestStageAccounting:
    def test_stage_combination_halves_iteration_stages(self):
        stages = {}
        for combine in (True, False):
            config = ExecutionConfig(stage_combination=combine,
                                     decomposed_plans=False)
            ctx = sssp_ctx(config)
            ctx.sql(get_query("sssp").formatted(source=1))
            stages[combine] = ctx.metrics.get("stages")
        # Two stages per iteration vs one (plus shared setup/base stages).
        assert stages[False] > stages[True]

    def test_partition_aware_no_remote_fetches(self):
        ctx = sssp_ctx()
        ctx.sql(get_query("sssp").formatted(source=1))
        assert ctx.metrics.get("remote_fetches") == 0

    def test_default_scheduler_fetches_remotely(self):
        ctx = sssp_ctx(scheduler="default")
        ctx.sql(get_query("sssp").formatted(source=1))
        assert ctx.metrics.get("remote_fetches") > 0

    def test_partial_aggregation_reduces_shuffle(self):
        records = {}
        for partial in (True, False):
            config = ExecutionConfig(partial_aggregation=partial)
            ctx = RaSQLContext(num_workers=2, config=config)
            # A dense graph where many same-key contributions collapse.
            edges = [(a, b, 1.0) for a in range(8) for b in range(8) if a != b]
            ctx.register_table("edge", ["Src", "Dst", "Cost"], edges)
            ctx.sql(get_query("sssp").formatted(source=0))
            records[partial] = ctx.metrics.get("shuffle_records")
        assert records[True] < records[False]

    def test_broadcast_compression_reduces_bytes(self):
        nbytes = {}
        for compress in (True, False):
            config = ExecutionConfig(broadcast_bases=True,
                                     broadcast_compression=compress)
            ctx = sssp_ctx(config)
            ctx.sql(get_query("sssp").formatted(source=1))
            nbytes[compress] = ctx.metrics.get("broadcast_bytes")
        assert nbytes[True] < nbytes[False]


class TestModes:
    def test_naive_rejects_sum_views(self):
        config = ExecutionConfig(evaluation="naive")
        ctx = RaSQLContext(config=config)
        ctx.register_table("edge", ["Src", "Dst"], [(1, 2)])
        with pytest.raises(PlanningError, match="naive"):
            ctx.sql(get_query("count_paths").formatted(source=1))

    def test_naive_runs_more_work(self):
        """Naive re-derives everything each round: more shuffle records."""
        records = {}
        for mode in ("dsn", "naive"):
            config = ExecutionConfig(evaluation=mode, codegen=False)
            ctx = sssp_ctx(config)
            ctx.sql(get_query("sssp").formatted(source=1))
            records[mode] = ctx.metrics.get("shuffle_records")
        assert records["naive"] > records["dsn"]

    def test_stratified_diverges_on_cycles(self):
        config = ExecutionConfig(evaluation="stratified", max_iterations=30)
        ctx = sssp_ctx(config)
        with pytest.raises(FixpointNotReachedError):
            ctx.sql(get_query("sssp").formatted(source=1))

    def test_stratified_slower_than_endo_on_dags(self):
        """Figure 1's effect: the stratified run enumerates far more facts."""
        dag = [(a, b, 1.0) for a in range(10) for b in range(a + 1, 10)]
        facts = {}
        for mode in ("dsn", "stratified"):
            config = ExecutionConfig(evaluation=mode, max_iterations=500)
            ctx = RaSQLContext(config=config)
            ctx.register_table("edge", ["Src", "Dst", "Cost"], dag)
            ctx.sql(get_query("sssp").formatted(source=0))
            facts[mode] = ctx.metrics.get("shuffle_records")
        assert facts["stratified"] > 2 * facts["dsn"]


class TestDecomposedExecution:
    def test_tc_runs_decomposed_with_three_stages(self):
        ctx = RaSQLContext()
        ctx.register_table("edge", ["Src", "Dst"],
                           [(a, b) for a, b, _ in EDGES])
        ctx.sql(get_query("tc").sql)
        # setup + base + one decomposed stage; crucially constant in the
        # iteration count.
        assert ctx.metrics.get("stages") == 3

    def test_decomposed_has_no_iteration_shuffle(self):
        ctx = RaSQLContext()
        ctx.register_table("edge", ["Src", "Dst"],
                           [(a, b) for a, b, _ in EDGES])
        ctx.sql(get_query("tc").sql)
        decomposed_records = ctx.metrics.get("shuffle_records")

        ctx2 = RaSQLContext(config=ExecutionConfig(decomposed_plans=False))
        ctx2.register_table("edge", ["Src", "Dst"],
                            [(a, b) for a, b, _ in EDGES])
        ctx2.sql(get_query("tc").sql)
        assert decomposed_records < ctx2.metrics.get("shuffle_records")

    def test_decomposed_apsp_with_aggregate(self):
        ctx = RaSQLContext()
        ctx.register_table("edge", ["Src", "Dst", "Cost"], EDGES)
        result = sorted(ctx.sql(get_query("apsp").sql).rows)
        ctx2 = RaSQLContext(config=ExecutionConfig(decomposed_plans=False))
        ctx2.register_table("edge", ["Src", "Dst", "Cost"], EDGES)
        assert result == sorted(ctx2.sql(get_query("apsp").sql).rows)


class TestImmutableStateAblation:
    def test_results_identical_state_copied(self):
        for use_setrdd in (True, False):
            config = ExecutionConfig(use_setrdd=use_setrdd)
            ctx = sssp_ctx(config)
            result = sorted(ctx.sql(get_query("sssp").formatted(source=1)).rows)
            assert result == SSSP_EXPECTED


class TestAccountingRegressions:
    def test_iterate_return_annotations_are_tuples(self):
        """Both iteration drivers return (datasets, delta_total) tuples."""
        from repro.core.fixpoint import FixpointOperator

        for fn in (FixpointOperator._iterate_combined,
                   FixpointOperator._iterate_two_stage):
            annotation = fn.__annotations__["return"]
            assert annotation.startswith("tuple["), (fn.__name__, annotation)

    def test_base_delta_attributed_to_producing_workers(self, monkeypatch):
        """The initial exchange must credit each fixpoint-base task's real
        worker, not funnel every view's output through worker 0."""
        from repro.core.fixpoint import FixpointOperator

        captured = {}
        original = FixpointOperator._exchange_outputs

        def spy(self, per_view_buckets, source_workers=None):
            if "base" not in captured:
                captured["base"] = (
                    {view: dict(buckets)
                     for view, buckets in per_view_buckets.items()},
                    dict(source_workers or {}))
            return original(self, per_view_buckets, source_workers)

        monkeypatch.setattr(FixpointOperator, "_exchange_outputs", spy)
        ctx = RaSQLContext(num_workers=4)
        ctx.register_table("edge", ["Src", "Dst"],
                           [(i, i + 1) for i in range(8)])
        ctx.sql(get_query("cc_labels").sql)

        buckets, workers = captured["base"]
        # Pre-fix: every view funneled through {0: 0}.
        assert len(workers) >= 2
        assert set(workers.values()) != {0}
        # One shuffle source per base task, each on its scheduled worker.
        for view_buckets in buckets.values():
            for source in view_buckets:
                assert source in workers

    def test_constant_base_rows_attributed_to_driver(self, monkeypatch):
        """Constant base rules (SELECT 1, 0) ship from the driver source."""
        from repro.core.fixpoint import FixpointOperator

        captured = {}
        original = FixpointOperator._exchange_outputs

        def spy(self, per_view_buckets, source_workers=None):
            if "base" not in captured:
                captured["base"] = dict(source_workers or {})
            return original(self, per_view_buckets, source_workers)

        monkeypatch.setattr(FixpointOperator, "_exchange_outputs", spy)
        ctx = sssp_ctx()
        ctx.sql(get_query("sssp").formatted(source=1))
        workers = captured["base"]
        assert workers.get(FixpointOperator._DRIVER_SOURCE) == 0
