"""Unit tests for the durable-checkpoint store and blob format."""

import json
import os

import pytest

from repro import RaSQLContext
from repro.core.checkpoint import (
    CheckpointStore,
    catalog_fingerprint,
    make_query_id,
)
from repro.core.config import ExecutionConfig
from repro.engine.serialization import dump_blob, load_blob, rows_checksum
from repro.errors import (
    CheckpointCorruptionError,
    CheckpointError,
    CheckpointNotFoundError,
)

pytestmark = pytest.mark.resilience


# ----------------------------------------------------------------------
# blob format
# ----------------------------------------------------------------------


def test_blob_round_trip(tmp_path):
    path = str(tmp_path / "x.ckpt")
    payload = {"iteration": 4, "delta": [9, 3, 1],
               "rows": [(1, "a"), (2, "b")]}
    nbytes = dump_blob(path, payload)
    assert nbytes > 0 and os.path.getsize(path) > 0
    assert load_blob(path) == payload


def test_blob_write_is_atomic(tmp_path):
    path = str(tmp_path / "x.ckpt")
    dump_blob(path, {"v": 1})
    dump_blob(path, {"v": 2})  # replaces, never truncates in place
    assert load_blob(path) == {"v": 2}
    assert not os.path.exists(path + ".tmp")


@pytest.mark.parametrize("mangle", ["flip", "truncate", "garbage"])
def test_corrupted_blob_is_refused(tmp_path, mangle):
    path = str(tmp_path / "x.ckpt")
    dump_blob(path, {"iteration": 7, "rows": list(range(100))})
    raw = open(path, "rb").read()
    if mangle == "flip":
        mangled = raw[:-3] + bytes([raw[-3] ^ 0xFF]) + raw[-2:]
    elif mangle == "truncate":
        mangled = raw[: len(raw) // 2]
    else:
        mangled = b"not a checkpoint at all"
    open(path, "wb").write(mangled)
    # Hash mismatches raise CheckpointCorruptionError; a file that is
    # not a blob at all raises the base CheckpointError.
    expected = (CheckpointError if mangle == "garbage"
                else CheckpointCorruptionError)
    with pytest.raises(expected):
        load_blob(path)


def test_rows_checksum_is_order_insensitive():
    rows = [(1, "a"), (2, "b"), (3, "c")]
    assert rows_checksum(rows) == rows_checksum(list(reversed(rows)))
    assert rows_checksum(rows) != rows_checksum(rows[:-1])


# ----------------------------------------------------------------------
# ids and fingerprints
# ----------------------------------------------------------------------


def test_make_query_id_is_whitespace_insensitive():
    a = make_query_id("SELECT  x\n FROM   t")
    assert a == make_query_id("SELECT x FROM t")
    assert a != make_query_id("SELECT y FROM t")
    assert a.startswith("q") and len(a) == 13


def test_catalog_fingerprint_tracks_data_not_row_order():
    ctx = RaSQLContext(num_workers=2)
    ctx.register_table("edge", ["Src", "Dst"], [(1, 2), (2, 3)])
    before = catalog_fingerprint(ctx.catalog)

    ctx2 = RaSQLContext(num_workers=2)
    ctx2.register_table("edge", ["Src", "Dst"], [(2, 3), (1, 2)])
    assert catalog_fingerprint(ctx2.catalog) == before

    ctx.catalog.append_rows("edge", [(3, 4)])
    assert catalog_fingerprint(ctx.catalog) != before


# ----------------------------------------------------------------------
# store lifecycle
# ----------------------------------------------------------------------


def _begin(store, qid="q0123456789ab"):
    return store.begin(qid, sql="SELECT 1", config=ExecutionConfig(
        checkpoint_interval=2, checkpoint_dir=store.root),
        fingerprint="f" * 16)


def test_store_lifecycle_keeps_only_latest_blob(tmp_path):
    store = CheckpointStore(str(tmp_path))
    qid = "q0123456789ab"
    _begin(store, qid)
    assert store.has_resumable(qid)  # in-progress even before a blob
    assert store.load_resume_state(store.load_manifest(qid)) is None

    store.save_iteration(qid, 0, 2, {"iteration": 2, "x": "a"})
    store.save_iteration(qid, 0, 4, {"iteration": 4, "x": "b"})
    blobs = [f for f in os.listdir(tmp_path / qid) if f.endswith(".ckpt")]
    assert blobs == ["unit-0-iter-4.ckpt"]

    state = store.load_resume_state(store.load_manifest(qid))
    assert state["unit"] == 0 and state["payload"]["iteration"] == 4

    store.mark_complete(qid)
    assert not store.has_resumable(qid)
    assert not [f for f in os.listdir(tmp_path / qid)
                if f.endswith(".ckpt")]
    manifest = store.load_manifest(qid)
    assert manifest["status"] == "complete"


def test_missing_and_tampered_manifest(tmp_path):
    store = CheckpointStore(str(tmp_path))
    with pytest.raises(CheckpointNotFoundError):
        store.load_manifest("qdeadbeef0000")

    qid = "q0123456789ab"
    _begin(store, qid)
    path = tmp_path / qid / "manifest.json"
    wrapped = json.loads(path.read_text())
    wrapped["manifest"]["catalog_fingerprint"] = "0" * 16  # crc now stale
    path.write_text(json.dumps(wrapped))
    fresh = CheckpointStore(str(tmp_path))  # no in-memory cache
    with pytest.raises(CheckpointError):
        fresh.load_manifest(qid)
    assert not fresh.has_resumable(qid)


def test_blob_iteration_must_match_manifest(tmp_path):
    store = CheckpointStore(str(tmp_path))
    qid = "q0123456789ab"
    _begin(store, qid)
    store.save_iteration(qid, 0, 2, {"iteration": 2})
    # Overwrite the blob with a payload claiming a different iteration.
    dump_blob(store.blob_path(qid, "unit-0-iter-2.ckpt"), {"iteration": 9})
    with pytest.raises(CheckpointError):
        store.load_resume_state(store.load_manifest(qid))


# ----------------------------------------------------------------------
# config knobs
# ----------------------------------------------------------------------


def test_checkpoint_config_validation():
    assert not ExecutionConfig().checkpointing
    assert not ExecutionConfig(checkpoint_interval=4).checkpointing
    assert not ExecutionConfig(checkpoint_dir="/tmp/x").checkpointing
    assert ExecutionConfig(checkpoint_interval=4,
                           checkpoint_dir="/tmp/x").checkpointing
    with pytest.raises(ValueError):
        ExecutionConfig(checkpoint_interval=-1)
