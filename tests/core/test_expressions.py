"""Unit + property tests for expression resolution and compilation,
including CASE WHEN and interpreted-vs-generated agreement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RaSQLContext
from repro.core import ast_nodes as ast
from repro.core.expressions import (
    Layout,
    compile_expr,
    conjoin,
    fold_constants,
    split_conjuncts,
)
from repro.core.parser import Parser, parse_query
from repro.errors import AnalysisError


def expr_of(text: str) -> ast.Expr:
    return Parser(text).parse_expr()


LAYOUT = Layout([("t", ("A", "B")), ("u", ("C",))])


class TestLayout:
    def test_qualified_resolution(self):
        assert LAYOUT.slot_of(ast.ColumnRef("B", "t")) == 1
        assert LAYOUT.slot_of(ast.ColumnRef("C", "u")) == 2

    def test_unqualified_unique(self):
        assert LAYOUT.slot_of(ast.ColumnRef("C")) == 2

    def test_duplicate_binding_rejected(self):
        with pytest.raises(AnalysisError, match="duplicate"):
            Layout([("t", ("A",)), ("T", ("B",))])

    def test_binding_of_slot(self):
        assert LAYOUT.binding_of_slot(0) == "t"
        assert LAYOUT.binding_of_slot(2) == "u"
        with pytest.raises(AnalysisError):
            LAYOUT.binding_of_slot(9)


class TestCompile:
    def test_arithmetic(self):
        fn = compile_expr(expr_of("t.A + u.C * 2"), LAYOUT)
        assert fn((1, 0, 10)) == 21

    def test_boolean_short_circuit(self):
        fn = compile_expr(expr_of("t.A > 0 OR u.C / t.A > 1"), LAYOUT)
        # Division by zero on the right is never reached when left is true.
        assert fn((1, 0, 5)) is True

    def test_case_when(self):
        fn = compile_expr(expr_of(
            "CASE WHEN t.A > 10 THEN 'big' WHEN t.A > 5 THEN 'mid' "
            "ELSE 'small' END"), LAYOUT)
        assert fn((20, 0, 0)) == "big"
        assert fn((7, 0, 0)) == "mid"
        assert fn((1, 0, 0)) == "small"

    def test_case_without_else_yields_none(self):
        fn = compile_expr(expr_of("CASE WHEN t.A > 0 THEN 1 END"), LAYOUT)
        assert fn((0, 0, 0)) is None

    def test_aggregate_rejected(self):
        with pytest.raises(AnalysisError, match="not allowed"):
            compile_expr(expr_of("max(t.A)"), LAYOUT)


class TestFolding:
    def test_arithmetic_folds(self):
        folded = fold_constants(expr_of("1 + 2 * 3"))
        assert folded == ast.Literal(7)

    def test_boolean_folds(self):
        assert fold_constants(expr_of("1 = 1 AND 2 > 3")) == ast.Literal(False)

    def test_division_by_zero_left_for_runtime(self):
        folded = fold_constants(expr_of("1 / 0"))
        assert isinstance(folded, ast.BinaryOp)

    def test_case_arms_folded(self):
        folded = fold_constants(expr_of(
            "CASE WHEN t.A > 1 + 1 THEN 2 * 3 END"))
        assert folded.whens[0][1] == ast.Literal(6)

    @given(st.integers(-50, 50), st.integers(-50, 50))
    @settings(max_examples=30, deadline=None)
    def test_folding_preserves_value(self, a, b):
        expr = expr_of(f"({a} + {b}) * 2 - {a}")
        folded = fold_constants(expr)
        assert isinstance(folded, ast.Literal)
        assert folded.value == (a + b) * 2 - a


class TestConjuncts:
    def test_split_and_rejoin(self):
        expr = expr_of("t.A = 1 AND t.B = 2 AND u.C = 3")
        parts = split_conjuncts(expr)
        assert len(parts) == 3
        rebuilt = conjoin(parts)
        fn = compile_expr(rebuilt, LAYOUT)
        assert fn((1, 2, 3)) is True
        assert fn((1, 2, 4)) is False

    def test_empty(self):
        assert split_conjuncts(None) == []
        assert conjoin([]) is None


class TestCaseEndToEnd:
    def test_case_in_final_select(self):
        ctx = RaSQLContext(num_workers=2)
        ctx.register_table("edge", ["Src", "Dst", "Cost"],
                           [(1, 2, 1.0), (2, 3, 8.0)])
        result = ctx.sql("""
            SELECT Dst, CASE WHEN Cost > 5 THEN 'slow' ELSE 'fast' END
            FROM edge ORDER BY Dst
        """)
        assert result.rows == [(2, "fast"), (3, "slow")]

    def test_case_inside_recursion_with_codegen(self):
        # Road tolls: crossing into the 100s zone doubles the cost.
        query = """
        WITH recursive path(Dst, min() AS Cost) AS
          (SELECT 1, 0) UNION
          (SELECT edge.Dst,
                  path.Cost + CASE WHEN edge.Dst >= 100
                              THEN edge.Cost * 2 ELSE edge.Cost END
           FROM path, edge WHERE path.Dst = edge.Src)
        SELECT Dst, Cost FROM path
        """
        edges = [(1, 2, 1.0), (2, 100, 3.0), (100, 101, 5.0)]
        results = {}
        from repro import ExecutionConfig

        for codegen in (True, False):
            ctx = RaSQLContext(num_workers=2,
                               config=ExecutionConfig(codegen=codegen))
            ctx.register_table("edge", ["Src", "Dst", "Cost"], edges)
            results[codegen] = sorted(ctx.sql(query).rows)
        assert results[True] == results[False]
        assert results[True] == [(1, 0), (2, 1.0), (100, 7.0), (101, 17.0)]

    def test_case_round_trips(self):
        sql = ("SELECT CASE WHEN Src > 1 THEN 'a' ELSE 'b' END FROM edge")
        query = parse_query(sql)
        from repro.core.parser import parse

        assert parse(query.to_sql()).statements[0] == query
