"""Unit tests for decomposable-plan analysis (Section 7.2)."""

from repro.core.analyzer import analyze
from repro.core.catalog import Catalog
from repro.core.decompose import decompose_keys
from repro.core.optimizer import optimize
from repro.core.parser import parse
from repro.queries.library import get_query


def clique_for(name, **params):
    spec = get_query(name)
    catalog = Catalog()
    for table, columns in spec.tables.items():
        catalog.register(table, columns)
    script = optimize(analyze(parse(spec.formatted(**params)), catalog))
    return script.cliques()[0]


class TestDecomposability:
    def test_tc_is_decomposable_on_src(self):
        # The paper's canonical example: tc(X, Z) <- tc(X, Y), edge(Y, Z)
        # preserves X.
        keys = decompose_keys(clique_for("tc"))
        assert keys == {"tc": (0,)}

    def test_apsp_is_decomposable_on_src(self):
        keys = decompose_keys(clique_for("apsp"))
        assert keys == {"path": (0,)}

    def test_sssp_is_not_decomposable(self):
        # path's head key (Dst) comes from the edge side of the join.
        assert decompose_keys(clique_for("sssp", source=1)) is None

    def test_reach_is_not_decomposable(self):
        assert decompose_keys(clique_for("reach", source=1)) is None

    def test_cc_is_not_decomposable(self):
        assert decompose_keys(clique_for("cc")) is None

    def test_same_generation_is_not_decomposable(self):
        assert decompose_keys(clique_for("same_generation")) is None

    def test_mutual_recursion_is_not_decomposable(self):
        assert decompose_keys(clique_for("company_control")) is None

    def test_management_not_decomposable(self):
        # empCount's head key is report.Mgr, not the delta's Mgr.
        assert decompose_keys(clique_for("management")) is None
