"""Unit tests for the local relational executor."""

import pytest

from repro.core.executor import execute_select
from repro.core.parser import parse_query
from repro.errors import AnalysisError
from repro.relation import Relation


def run(sql, **tables):
    relations = {name.lower(): Relation(name, cols, rows)
                 for name, (cols, rows) in tables.items()}
    query = parse_query(sql)
    return execute_select(query, lambda n: relations[n.lower()])


EDGE = (("Src", "Dst"), [(1, 2), (2, 3), (1, 3), (3, 4)])


class TestProjectFilter:
    def test_projection(self):
        out = run("SELECT Dst, Src FROM edge", edge=EDGE)
        assert (2, 1) in out.rows
        assert len(out) == 4

    def test_where_filter(self):
        out = run("SELECT Src FROM edge WHERE Dst = 3", edge=EDGE)
        assert sorted(out.rows) == [(1,), (2,)]

    def test_arithmetic_projection(self):
        out = run("SELECT Src + Dst, Src * 2 FROM edge WHERE Src = 1 AND Dst = 2",
                  edge=EDGE)
        assert out.rows == [(3, 2)]

    def test_no_from_constant(self):
        out = run("SELECT 1, 'x'")
        assert out.rows == [(1, "x")]

    def test_select_distinct(self):
        out = run("SELECT Src FROM edge", edge=EDGE)
        assert len(out) == 4
        out = run("SELECT DISTINCT Src FROM edge", edge=EDGE)
        assert sorted(out.rows) == [(1,), (2,), (3,)]

    def test_qualified_and_alias(self):
        out = run("SELECT e.Dst FROM edge e WHERE e.Src = 1", edge=EDGE)
        assert sorted(out.rows) == [(2,), (3,)]

    def test_unknown_table(self):
        with pytest.raises(AnalysisError, match="unknown table"):
            run("SELECT x FROM nope")

    def test_ambiguous_column(self):
        with pytest.raises(AnalysisError, match="ambiguous"):
            run("SELECT Src FROM edge a, edge b", edge=EDGE)


class TestJoins:
    def test_equi_join(self):
        out = run("""SELECT a.Src, b.Dst FROM edge a, edge b
                     WHERE a.Dst = b.Src""", edge=EDGE)
        assert sorted(out.rows) == [(1, 3), (1, 4), (2, 4)]

    def test_three_way_join(self):
        out = run("""SELECT a.Src, c.Dst FROM edge a, edge b, edge c
                     WHERE a.Dst = b.Src AND b.Dst = c.Src""", edge=EDGE)
        assert sorted(out.rows) == [(1, 4)]

    def test_cross_join_counts(self):
        out = run("SELECT a.Src, b.Src FROM edge a, edge b", edge=EDGE)
        assert len(out) == 16

    def test_theta_join(self):
        out = run("""SELECT a.Src, b.Src FROM edge a, edge b
                     WHERE a.Src < b.Src AND a.Dst = b.Dst""", edge=EDGE)
        assert sorted(out.rows) == [(1, 2)]

    def test_self_join_interval_lstart(self):
        # The lstart view of Interval Coalesce (Example 6).
        out = run("""SELECT a.S FROM inter a, inter b
                     WHERE a.S <= b.E
                     GROUP BY a.S HAVING a.S = min(b.S)""",
                  inter=(("S", "E"), [(1, 4), (2, 5), (8, 10)]))
        # 1 starts an uncovered run; 8 starts the disjoint second run.
        assert sorted(out.rows) == [(1,), (8,)]


class TestAggregates:
    def test_global_aggregates(self):
        out = run("SELECT min(Src), max(Dst), count(*) FROM edge", edge=EDGE)
        assert out.rows == [(1, 4, 4)]

    def test_group_by(self):
        out = run("SELECT Src, count(*) FROM edge GROUP BY Src", edge=EDGE)
        assert sorted(out.rows) == [(1, 2), (2, 1), (3, 1)]

    def test_group_by_max(self):
        out = run("SELECT Src, max(Dst) FROM edge GROUP BY Src", edge=EDGE)
        assert sorted(out.rows) == [(1, 3), (2, 3), (3, 4)]

    def test_count_distinct(self):
        out = run("SELECT count(distinct Src) FROM edge", edge=EDGE)
        assert out.rows == [(3,)]

    def test_sum_and_avg(self):
        out = run("SELECT sum(Dst), avg(Dst) FROM edge", edge=EDGE)
        assert out.rows == [(12, 3.0)]

    def test_having(self):
        out = run("""SELECT Src, count(*) FROM edge GROUP BY Src
                     HAVING count(*) > 1""", edge=EDGE)
        assert out.rows == [(1, 2)]

    def test_empty_input_aggregate(self):
        out = run("SELECT count(*) FROM edge",
                  edge=(("Src", "Dst"), []))
        assert out.rows == []  # no groups, no rows (documented simplification)


class TestColumnNames:
    def test_alias_names_output(self):
        out = run("SELECT Src AS a, Dst b FROM edge", edge=EDGE)
        assert out.columns == ("a", "b")

    def test_default_names(self):
        out = run("SELECT Src, Src + 1 FROM edge", edge=EDGE)
        assert out.columns == ("Src", "_c1")
