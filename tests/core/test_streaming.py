"""Tests for incremental view maintenance under insertions."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ExecutionConfig, RaSQLContext
from repro.baselines import serial
from repro.core.streaming import IncrementalView
from repro.errors import AnalysisError, PlanningError
from repro.queries import get_query


def make_view(query, tables, config=None):
    ctx = RaSQLContext(num_workers=2, config=config)
    for name, (columns, rows) in tables.items():
        ctx.register_table(name, columns, rows)
    return IncrementalView(ctx, query)


class TestSSSPIncremental:
    EDGES = [(1, 2, 4.0), (2, 3, 2.0), (1, 3, 9.0)]

    def view(self):
        return make_view(get_query("sssp").formatted(source=1),
                         {"edge": (["Src", "Dst", "Cost"], list(self.EDGES))})

    def test_initial_state_matches_batch(self):
        view = self.view()
        assert view.result().to_dict() == serial.sssp(self.EDGES, 1)

    def test_insert_improves_distances(self):
        view = self.view()
        iterations = view.insert("edge", [(1, 3, 1.0), (3, 4, 1.0)])
        assert iterations > 0
        expected = serial.sssp(self.EDGES + [(1, 3, 1.0), (3, 4, 1.0)], 1)
        assert view.result().to_dict() == expected

    def test_disconnected_insert_is_noop(self):
        view = self.view()
        before = view.result().to_dict()
        assert view.insert("edge", [(50, 51, 1.0)]) == 0
        assert view.result().to_dict() == before

    def test_empty_insert(self):
        view = self.view()
        assert view.insert("edge", []) == 0

    def test_repeated_inserts_accumulate(self):
        view = self.view()
        edges = list(self.EDGES)
        for batch in ([(3, 4, 1.0)], [(4, 5, 1.0)], [(5, 3, 0.5)]):
            view.insert("edge", batch)
            edges += batch
            assert view.result().to_dict() == serial.sssp(edges, 1)

    def test_schema_validated(self):
        view = self.view()
        with pytest.raises(AnalysisError, match="schema"):
            view.insert("edge", [(1, 2)])

    def test_unknown_table_rejected(self):
        view = self.view()
        with pytest.raises(AnalysisError, match="not read"):
            view.insert("nodes", [(1,)])


class TestOtherSemantics:
    def test_count_paths_sum_increments(self):
        dag = [(1, 2), (2, 4)]
        view = make_view(get_query("count_paths").formatted(source=1),
                         {"edge": (["Src", "Dst"], list(dag))})
        view.insert("edge", [(1, 3), (3, 4)])
        expected = serial.count_paths(dag + [(1, 3), (3, 4)], 1)
        assert view.result().to_dict() == {k: v for k, v in expected.items()
                                           if v}

    def test_tc_set_semantics(self):
        view = make_view(get_query("tc").sql,
                         {"edge": (["Src", "Dst"], [(1, 2)])})
        view.insert("edge", [(2, 3), (3, 4)])
        assert set(view.result().rows) == serial.transitive_closure(
            [(1, 2), (2, 3), (3, 4)])

    def test_company_control_threshold_crossing(self):
        # The insert pushes a's holdings of c over 50, creating new
        # control and new inherited shares — the mutual-recursion path.
        shares = [("a", "b", 60), ("b", "c", 30)]
        view = make_view(get_query("company_control").sql,
                         {"shares": (["By", "Of", "Percent"], list(shares))})
        view.insert("shares", [("a", "c", 30), ("c", "d", 51)])
        expected = serial.company_control(
            shares + [("a", "c", 30), ("c", "d", 51)])
        got = {(a, b): t for a, b, t in view.result().rows}
        assert set(got) == set(expected)
        for pair in expected:
            assert got[pair] == pytest.approx(expected[pair])

    def test_bom_max_updates(self):
        view = make_view(get_query("bom").sql, {
            "assbl": (["Part", "SPart"], [("car", "wheel")]),
            "basic": (["Part", "Days"], [("wheel", 2)])})
        view.insert("assbl", [("car", "engine"), ("engine", "piston")])
        view.insert("basic", [("piston", 9)])
        assert view.result().to_dict()["car"] == 9

    def test_same_generation_self_join_inserts(self):
        # SG's base rule self-joins rel: the delta x delta pair (new
        # siblings) must be derived, which requires updating the cached
        # join sides before evaluating maintenance terms.
        view = make_view(get_query("same_generation").sql,
                         {"rel": (["Parent", "Child"], [(1, 2)])})
        view.insert("rel", [(1, 3)])
        assert {(2, 3), (3, 2)} <= set(view.result().rows)


class TestResultMemoization:
    """result() runs the final SELECT once per view state, not per call."""

    def view(self):
        return make_view(get_query("sssp").formatted(source=1),
                         {"edge": (["Src", "Dst", "Cost"],
                                   [(1, 2, 4.0), (2, 3, 2.0)])})

    def test_repeated_reads_do_no_executor_work(self):
        view = self.view()
        first = view.result()
        second = view.result()
        assert view.result_evaluations == 1
        # Same snapshot object: concurrent readers between inserts all
        # observe one consistent relation.
        assert second is first

    def test_insert_invalidates_the_snapshot(self):
        view = self.view()
        view.result()
        view.insert("edge", [(1, 3, 1.0)])
        updated = view.result()
        assert view.result_evaluations == 2
        assert updated.to_dict() == serial.sssp(
            [(1, 2, 4.0), (2, 3, 2.0), (1, 3, 1.0)], 1)

    def test_noop_repair_still_invalidates(self):
        # The repair derives nothing (disconnected edge, 0 iterations)
        # but the base table changed, so the memo must still drop: the
        # final stratum could in principle scan the base table directly.
        view = self.view()
        view.result()
        assert view.insert("edge", [(50, 51, 1.0)]) == 0
        view.result()
        assert view.result_evaluations == 2

    def test_rejected_insert_keeps_the_snapshot(self):
        view = self.view()
        first = view.result()
        with pytest.raises(AnalysisError):
            view.insert("edge", [(1, 2)])  # schema mismatch
        with pytest.raises(AnalysisError):
            view.insert("nodes", [(1,)])   # not read by the view
        assert view.insert("edge", []) == 0
        assert view.result() is first
        assert view.result_evaluations == 1


class TestRestrictions:
    def test_requires_single_clique(self):
        ctx = RaSQLContext(num_workers=2)
        ctx.register_table("inter", ["S", "E"], [(1, 2)])
        with pytest.raises(AnalysisError, match="one recursive clique"):
            IncrementalView(ctx, get_query("interval_coalesce").sql)

    def test_requires_shuffle_hash(self):
        ctx = RaSQLContext(num_workers=2,
                           config=ExecutionConfig(join_strategy="sort_merge"))
        ctx.register_table("edge", ["Src", "Dst"], [(1, 2)])
        with pytest.raises(PlanningError, match="shuffle_hash"):
            IncrementalView(ctx, get_query("tc").sql)

    def test_view_relation_accessor(self):
        view = make_view(get_query("tc").sql,
                         {"edge": (["Src", "Dst"], [(1, 2)])})
        assert view.view_relation("tc").rows == [(1, 2)]
        with pytest.raises(KeyError):
            view.view_relation("nope")


class TestBatchEquivalenceProperty:
    """Incremental == from-scratch, for any split of the edge stream."""

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.tuples(st.integers(0, 8), st.integers(0, 8),
                              st.integers(1, 9)), min_size=1, max_size=24),
           st.data())
    def test_sssp_any_split(self, raw_edges, data):
        edges = [(a, b, float(w)) for a, b, w in raw_edges if a != b]
        if not edges:
            return
        cut = data.draw(st.integers(min_value=1, max_value=len(edges)))
        initial, stream = edges[:cut], edges[cut:]

        view = make_view(get_query("sssp").formatted(source=0),
                         {"edge": (["Src", "Dst", "Cost"], initial)})
        for row in stream:
            view.insert("edge", [row])

        ctx = RaSQLContext(num_workers=2)
        ctx.register_table("edge", ["Src", "Dst", "Cost"], edges)
        batch = ctx.sql(get_query("sssp").formatted(source=0))
        assert view.result().to_dict() == batch.to_dict()
