"""Unit tests for whole-pipeline code generation (Section 7.3)."""

import pytest

from repro.core.analyzer import analyze
from repro.core.catalog import Catalog
from repro.core.codegen import generate_term_function
from repro.core.config import ExecutionConfig
from repro.core.optimizer import optimize
from repro.core.parser import parse
from repro.core.planner import plan_clique
from repro.queries.library import ALL_QUERIES, get_query


def planned(name, config=None, **params):
    spec = get_query(name)
    catalog = Catalog()
    for table, columns in spec.tables.items():
        catalog.register(table, columns)
    script = optimize(analyze(parse(spec.formatted(**params)), catalog))
    return plan_clique(script.cliques()[0],
                       config or ExecutionConfig(codegen=False))


class TestGeneration:
    def test_sssp_term_generates(self):
        plan = planned("sssp", source=1)
        term = plan.terms[0]
        fn = generate_term_function(term, plan.views[term.view].aggregates)
        assert fn is not None
        source = fn._generated_source
        assert "def _term" in source
        assert "base_partitions" in source

    def test_generated_source_is_fused(self):
        """One function, no intermediate list per step: the join, filter
        and projection all appear inside the delta loop."""
        plan = planned("sssp", source=1)
        term = plan.terms[0]
        fn = generate_term_function(term, plan.views[term.view].aggregates)
        source = fn._generated_source
        assert source.count("def ") == 1
        assert "_append((" in source

    def test_sort_merge_not_fused(self):
        plan = planned("sssp", ExecutionConfig(join_strategy="sort_merge",
                                               codegen=False), source=1)
        term = plan.terms[0]
        fn = generate_term_function(term, plan.views[term.view].aggregates)
        assert fn is None

    @pytest.mark.parametrize("spec", ALL_QUERIES, ids=lambda s: s.name)
    def test_full_corpus_coverage(self, spec):
        """Every recursive term of every library query must fuse."""
        catalog = Catalog()
        for table, columns in spec.tables.items():
            catalog.register(table, columns)
        script = optimize(analyze(parse(spec.formatted(source=1)), catalog))
        for clique in script.cliques():
            plan = plan_clique(clique, ExecutionConfig(codegen=True))
            for term in plan.terms:
                assert term.codegen_fn is not None, spec.name


class TestEquivalence:
    """Generated code must equal the interpreted pipeline — checked on
    whole-query outputs in tests/integration/test_equivalences.py; here we
    check single-term outputs directly."""

    def test_term_outputs_match(self):
        from repro.core.physical import TermRuntime, pad_row
        from repro.core.physical import make_slots_key
        from repro.engine.joins import build_hash_table

        plan = planned("sssp", source=1)
        term = plan.terms[0]
        fn = generate_term_function(term, plan.views[term.view].aggregates)

        edges = [(1, 2, 5.0), (2, 3, 1.0), (1, 3, 9.0)]
        base_plan = plan.base_plans[0]
        padded = [pad_row(e, base_plan.offset, base_plan.arity)
                  for e in edges]
        table = build_hash_table(padded, make_slots_key(base_plan.build_slots))

        runtime = TermRuntime()
        runtime.base_partitions[base_plan.step_id] = [table]

        delta = [(1, 0.0), (2, 5.0)]
        interpreted = sorted(term.evaluate(delta, 0, runtime))
        generated = sorted(fn(delta, 0, runtime))
        assert interpreted == generated
        # (1,0)⋈(1,2,5) -> (2,5); (1,0)⋈(1,3,9) -> (3,9); (2,5)⋈(2,3,1) -> (3,6)
        assert interpreted == [(2, 5.0), (3, 6.0), (3, 9.0)]
