"""Every public error in ``repro.errors``, raised through a user path.

Errors are part of the API surface: each test here drives a *user-visible*
entry point (``RaSQLContext.sql``, the CLI, ``check_prem``, a cluster
stage) into the failure and asserts that the resulting exception carries
actionable context — the attributes and message fragments an operator
would need to fix the problem without reading engine source.
"""

import pytest

from repro import ExecutionConfig, MemoryConfig, QueryGovernor, RaSQLContext
from repro.__main__ import main as cli_main
from repro.baselines.sql_loop import SQLLoopEngine
from repro.core.prem import check_prem
from repro.engine.cluster import Cluster, StageTask
from repro.engine.faults import FailureInjector, FaultToleranceConfig
from repro.errors import (
    AdmissionRejectedError,
    AnalysisError,
    ExecutionError,
    FaultInjectionError,
    FixpointNotReachedError,
    MemoryBudgetExceededError,
    NoHealthyWorkersError,
    ParseError,
    PlanningError,
    PreMViolationError,
    QueryDeadlineExceededError,
    RaSQLError,
    TaskRetryExhaustedError,
)
from repro.queries.library import get_query
from repro.relation import Relation

EDGES = [(1, 2, 1.0), (2, 3, 2.0), (1, 3, 5.0), (3, 4, 1.0), (4, 2, 1.0)]

NON_PREM = """
WITH recursive path(Dst, min() AS Cost) AS
  (SELECT 1, 0) UNION
  (SELECT edge.Dst, 10 - path.Cost
   FROM path, edge WHERE path.Dst = edge.Src)
SELECT Dst, Cost FROM path
"""


def sssp_ctx(**kwargs):
    ctx = RaSQLContext(num_workers=4, **kwargs)
    ctx.register_table("edge", ["Src", "Dst", "Cost"], EDGES)
    return ctx


def sssp_query():
    return get_query("sssp").formatted(source=1)


class TestHierarchy:
    """One base class to catch them all; execution faults share a branch."""

    @pytest.mark.parametrize("error_class", [
        ParseError, AnalysisError, PlanningError, ExecutionError,
        FixpointNotReachedError, MemoryBudgetExceededError,
        QueryDeadlineExceededError, AdmissionRejectedError,
        FaultInjectionError, TaskRetryExhaustedError,
        NoHealthyWorkersError, PreMViolationError,
    ])
    def test_everything_is_a_rasql_error(self, error_class):
        assert issubclass(error_class, RaSQLError)

    @pytest.mark.parametrize("error_class", [
        FixpointNotReachedError, MemoryBudgetExceededError,
        QueryDeadlineExceededError, TaskRetryExhaustedError,
        NoHealthyWorkersError,
    ])
    def test_runtime_faults_are_execution_errors(self, error_class):
        assert issubclass(error_class, ExecutionError)

    def test_except_rasqlerror_catches_a_query_failure(self):
        ctx = sssp_ctx()
        with pytest.raises(RaSQLError):
            ctx.sql("SELEKT * FROM edge")


class TestParseError:
    def test_carries_position_of_the_offending_token(self):
        ctx = sssp_ctx()
        with pytest.raises(ParseError) as info:
            ctx.sql("SELECT Src FROM edge WHERE WHERE")
        error = info.value
        assert error.line is not None and error.column is not None
        assert f"line {error.line}" in str(error)


class TestAnalysisError:
    def test_unknown_table_lists_registered_names(self):
        ctx = sssp_ctx()
        with pytest.raises(AnalysisError) as info:
            ctx.sql("SELECT * FROM nosuch")
        message = str(info.value)
        assert "nosuch" in message
        assert "edge" in message  # tells the user what *is* available


class TestPlanningError:
    def test_naive_mode_rejects_sum_views_with_reason(self):
        ctx = RaSQLContext(num_workers=2,
                           config=ExecutionConfig(evaluation="naive"))
        ctx.register_table("edge", ["Src", "Dst"],
                           [(src, dst) for src, dst, _ in EDGES])
        with pytest.raises(PlanningError, match="naive"):
            ctx.sql(get_query("count_paths").formatted(source=1))


class TestFixpointNotReachedError:
    def test_message_names_budget_and_last_delta(self):
        ctx = sssp_ctx(config=ExecutionConfig(max_iterations=2))
        with pytest.raises(FixpointNotReachedError) as info:
            ctx.sql(sssp_query())
        error = info.value
        assert error.iterations == 2
        assert "2 iterations" in str(error)
        assert "delta" in str(error)
        assert error.partial_result is not None

    def test_sql_loop_honours_execution_config_budget(self):
        """Satellite: the Figure 10 baselines read the same
        ``ExecutionConfig.max_iterations`` knob as the fixpoint operator."""
        cluster = Cluster(num_workers=2)
        engine = SQLLoopEngine(
            cluster, "sn", config=ExecutionConfig(max_iterations=2))
        tables = {"edge": Relation("edge", ["Src", "Dst", "Cost"], EDGES)}
        with pytest.raises(FixpointNotReachedError) as info:
            engine.run(sssp_query(), tables)
        message = str(info.value)
        assert "iteration budget of 2" in message
        assert "delta" in message
        assert "max_iterations" in message  # points at the fix


class TestMemoryBudgetExceededError:
    def test_impossible_budget_reports_shortfall(self):
        ctx = sssp_ctx(memory_config=MemoryConfig(worker_budget_bytes=8))
        with pytest.raises(MemoryBudgetExceededError) as info:
            ctx.sql(sssp_query())
        error = info.value
        assert error.budget_bytes == 8
        assert error.requested_bytes > error.budget_bytes
        assert error.worker >= 0
        assert "budget" in str(error)


class TestQueryDeadlineExceededError:
    def test_carries_deadline_stage_and_partial_trace(self):
        ctx = sssp_ctx()
        with pytest.raises(QueryDeadlineExceededError) as info:
            ctx.sql(sssp_query(),
                    config=ExecutionConfig(deadline_seconds=1e-6))
        error = info.value
        assert error.sim_time > error.deadline_seconds
        assert error.stage
        assert error.partial_trace is not None
        assert "deadline" in str(error)

    def test_cli_exit_code_3(self, tmp_path, capsys):
        table = tmp_path / "edge.csv"
        table.write_text("Src,Dst,Cost\n" + "\n".join(
            f"{src},{dst},{cost}" for src, dst, cost in EDGES))
        code = cli_main(["--table", f"edge={table}",
                         "-q", sssp_query(), "--timeout", "1e-6"])
        assert code == 3
        assert "deadline" in capsys.readouterr().err


class TestAdmissionRejectedError:
    def test_memory_rejection_names_reason_and_label(self):
        ctx = sssp_ctx(governor=QueryGovernor(max_reserved_bytes=1))
        with pytest.raises(AdmissionRejectedError) as info:
            ctx.sql(sssp_query())
        error = info.value
        assert error.reason == "memory"
        assert error.label
        assert "max_reserved_bytes" in str(error)


class TestTaskRetryExhaustedError:
    def test_persistent_failure_reports_stage_and_attempts(self):
        ctx = sssp_ctx(
            fault_config=FaultToleranceConfig(max_task_retries=1))
        ctx.inject_faults(FailureInjector(
            "shufflemap", point="before", times=100, persistent=True))
        with pytest.raises(TaskRetryExhaustedError) as info:
            ctx.sql(sssp_query())
        error = info.value
        assert error.stage == "fixpoint-shufflemap"
        assert error.attempts == 2
        assert "max_task_retries" in str(error)


class TestNoHealthyWorkersError:
    def test_losing_the_last_worker(self):
        cluster = Cluster(num_workers=1)
        with pytest.raises(NoHealthyWorkersError):
            cluster.lose_worker(0)


class TestFaultInjectionError:
    def test_replaying_a_mutating_task_without_hooks(self):
        cluster = Cluster(num_workers=2)
        cluster.inject_failures(FailureInjector("work", point="after"))
        state = {"value": 0}
        task = StageTask(
            0, [], lambda: state.__setitem__("value", state["value"] + 1),
            mutating=True)  # declared mutating, but no snapshot/restore
        with pytest.raises(FaultInjectionError):
            cluster.run_stage("work", [task])


class TestPreMViolationError:
    def test_non_prem_query_reports_the_failing_iteration(self):
        with pytest.raises(PreMViolationError) as info:
            check_prem(NON_PREM,
                       {"edge": (["Src", "Dst", "Cost"], EDGES)},
                       raise_on_violation=True)
        assert info.value.iteration >= 0


class TestContextValidation:
    """Satellite: constructor misuse fails fast with a clear message,
    not deep inside partitioning arithmetic."""

    @pytest.mark.parametrize("num_workers", [0, -1, 2.5, "4"])
    def test_bad_num_workers(self, num_workers):
        with pytest.raises(ValueError, match="num_workers"):
            RaSQLContext(num_workers=num_workers)

    @pytest.mark.parametrize("num_partitions", [0, -3, 1.5])
    def test_bad_num_partitions(self, num_partitions):
        with pytest.raises(ValueError, match="num_partitions"):
            RaSQLContext(num_workers=2, num_partitions=num_partitions)

    def test_valid_arguments_still_accepted(self):
        ctx = RaSQLContext(num_workers=2, num_partitions=8)
        assert ctx.cluster.num_workers == 2

    @pytest.mark.parametrize("kwargs", [
        {"max_iterations": 0},
        {"deadline_seconds": 0},
        {"deadline_seconds": -1.0},
    ])
    def test_execution_config_rejects_nonpositive_limits(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionConfig(**kwargs)
