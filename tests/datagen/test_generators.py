"""Unit tests for the workload generators."""

import collections

import pytest

from repro.datagen import (
    REAL_GRAPHS,
    gn_graph,
    grid_graph,
    proxy_graph,
    random_graph,
    random_tree,
    rmat_graph,
    tree_tables,
)


class TestRMAT:
    def test_edge_count_is_10x_vertices(self):
        edges = rmat_graph(256)
        assert len(edges) == 2560

    def test_weights_in_range(self):
        edges = rmat_graph(128, weighted=True)
        assert all(0 <= w < 100 for _, _, w in edges)

    def test_vertex_ids_in_range(self):
        edges = rmat_graph(100)
        assert all(0 <= a < 100 and 0 <= b < 100 for a, b in edges)

    def test_deterministic_per_seed(self):
        assert rmat_graph(64, seed=5) == rmat_graph(64, seed=5)
        assert rmat_graph(64, seed=5) != rmat_graph(64, seed=6)

    def test_skewed_degrees(self):
        """RMAT's defining property: a heavy-tailed degree distribution."""
        edges = rmat_graph(1024)
        degrees = collections.Counter(src for src, _ in edges)
        mean = len(edges) / len(degrees)
        assert max(degrees.values()) > 5 * mean

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            rmat_graph(1)


class TestSynthetic:
    def test_grid_edge_count(self):
        # (k+1)^2 vertices, 2*k*(k+1) edges.
        assert len(grid_graph(150)) == 2 * 150 * 151

    def test_gn_density(self):
        edges = gn_graph(1000, 3, seed=1)
        assert len(edges) == pytest.approx(1000, rel=0.05)

    def test_tree_is_a_tree(self):
        tree = random_tree(height=6, seed=4)
        children = [child for _, child in tree.edges]
        assert len(children) == len(set(children))  # one parent each
        assert tree.num_nodes == len(tree.edges) + 1

    def test_tree_max_nodes_respected(self):
        tree = random_tree(height=10, seed=4, max_nodes=500)
        assert tree.num_nodes <= 500

    def test_tree_tables_shapes(self):
        tree = random_tree(height=4, seed=2)
        tables = tree_tables(tree)
        assert len(tables["assbl"][1]) == len(tree.edges)
        assert len(tables["basic"][1]) == len(tree.leaves)
        assert {m for m, _ in tables["sales"][1]} >= {
            p for p, _ in tables["assbl"][1]}

    def test_random_graph_acyclic(self):
        edges = random_graph(30, 60, seed=1, acyclic=True)
        assert all(a < b for a, b in edges)


class TestRealWorldProxies:
    def test_density_preserved(self):
        for name, spec in REAL_GRAPHS.items():
            edges = proxy_graph(name, scale_divisor=20000, seed=1)
            got_density = len(edges) / max(1, spec.vertices // 20000)
            assert got_density == pytest.approx(spec.density, rel=0.2), name

    def test_twitter_more_skewed_than_livejournal(self):
        def max_in_degree_ratio(name):
            edges = proxy_graph(name, scale_divisor=20000, seed=1)
            indeg = collections.Counter(dst for _, dst in edges)
            return max(indeg.values()) / (len(edges) / len(indeg))

        assert max_in_degree_ratio("twitter") > max_in_degree_ratio("livejournal")

    def test_weighted_variant(self):
        edges = proxy_graph("orkut", scale_divisor=50000, weighted=True)
        assert all(len(edge) == 3 for edge in edges)
