"""Unit tests for the Relation/Schema public types."""

import pytest

from repro.relation import Relation, Schema


class TestSchema:
    def test_case_insensitive_lookup(self):
        schema = Schema(("Src", "Dst"))
        assert schema.index_of("src") == 0
        assert schema.index_of("DST") == 1

    def test_contains(self):
        schema = Schema(("Part", "Days"))
        assert "part" in schema
        assert "cost" not in schema

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Schema(("A", "a"))

    def test_unknown_column(self):
        with pytest.raises(KeyError):
            Schema(("A",)).index_of("B")


class TestRelation:
    def test_rows_coerced_to_tuples(self):
        relation = Relation("t", ["A", "B"], [[1, 2], (3, 4)])
        assert relation.rows == [(1, 2), (3, 4)]

    def test_arity_checked(self):
        with pytest.raises(ValueError, match="schema"):
            Relation("t", ["A", "B"], [(1,)])

    def test_column_extraction(self):
        relation = Relation("t", ["A", "B"], [(1, "x"), (2, "y")])
        assert relation.column("b") == ["x", "y"]

    def test_distinct(self):
        relation = Relation("t", ["A"], [(1,), (1,), (2,)])
        assert sorted(relation.distinct().rows) == [(1,), (2,)]

    def test_to_dict_two_columns_only(self):
        assert Relation("t", ["K", "V"], [(1, 9)]).to_dict() == {1: 9}
        with pytest.raises(ValueError):
            Relation("t", ["A"], [(1,)]).to_dict()

    def test_same_rows_multiset(self):
        left = Relation("a", ["X"], [(1,), (1,), (2,)])
        assert left.same_rows([(2,), (1,), (1,)])
        assert not left.same_rows([(1,), (2,)])

    def test_show_truncates(self):
        relation = Relation("t", ["A"], [(i,) for i in range(30)])
        text = relation.show(limit=3)
        assert "30 rows total" in text

    def test_len_and_iter(self):
        relation = Relation("t", ["A"], [(1,), (2,)])
        assert len(relation) == 2
        assert list(relation) == [(1,), (2,)]
