"""Type-fidelity edge cases for the diff canonicalizer and backends.

An oracle is only as good as its equality notion: every engine-specific
presentation quirk that leaks through canonicalization is a false
positive waiting to page someone.  Each quirk named in the issue is
pinned here — NULLs, SQLite REAL ``1.0`` vs Python ``1``, empty base
relations, duplicate-row multisets, case-insensitive column matching —
as a unit test, independent of the full differential suite.
"""

import pytest

from repro import RaSQLContext
from repro.compile import (
    SQLiteBackend,
    canonical_rows,
    canonical_value,
    diff_query,
    match_columns,
    multiset_diff,
)
from repro.relation import Relation


class TestCanonicalValue:
    def test_integral_float_demotes_to_int(self):
        # SQLite reports sum()/arithmetic results as REAL; the engine's
        # Python executor keeps ints.  1.0 and 1 must compare equal.
        assert canonical_value(1.0) == 1
        assert isinstance(canonical_value(1.0), int)

    def test_fractional_float_survives(self):
        assert canonical_value(2.5) == 2.5

    def test_rounding_bridges_accumulation_order(self):
        # 0.1 + 0.2 != 0.3 bitwise; both canonicalize to 0.3.
        assert canonical_value(0.1 + 0.2) == canonical_value(0.3)

    def test_bool_becomes_int(self):
        # SQLite has no boolean storage class; TRUE comes back as 1.
        assert canonical_value(True) == 1
        assert canonical_value(False) == 0
        assert not isinstance(canonical_value(True), bool)

    def test_null_and_strings_pass_through(self):
        assert canonical_value(None) is None
        assert canonical_value("a  b") == "a  b"


class TestCanonicalRows:
    def test_sorted_deterministically_with_nulls(self):
        # repr-keyed sort gives NULLs a stable place on both sides —
        # engines disagree on NULL ordering, canonical space must not.
        rows = [(None, 2), (1, None), (1, 2)]
        assert (canonical_rows(rows)
                == canonical_rows(list(reversed(rows))))

    def test_duplicates_are_preserved(self):
        assert canonical_rows([(1,), (1,)]) == [(1,), (1,)]

    def test_projection_reorders_columns(self):
        assert canonical_rows([(1, "a")], projection=(1, 0)) == [("a", 1)]

    def test_real_vs_int_rows_compare_equal(self):
        assert canonical_rows([(1.0, 2.0)]) == canonical_rows([(1, 2)])


class TestMatchColumns:
    def test_case_insensitive_against_relation_schema(self):
        relation = Relation("edge", ["Src", "Dst"], [(1, 2)])
        assert match_columns(relation.columns, ["DST", "src"]) == (1, 0)

    def test_duplicate_names_pair_positionally(self):
        # The executor suffixes duplicates, but raw backend cursors may
        # report ("Src", "Src"); duplicates must pair up 1:1.
        assert match_columns(["Src", "Src"], ["src", "SRC"]) == (0, 1)

    def test_missing_column_raises(self):
        with pytest.raises(KeyError, match="Cost"):
            match_columns(["Src", "Cost"], ["Src", "Dst"])

    def test_arity_mismatch_raises(self):
        with pytest.raises(ValueError, match="column count"):
            match_columns(["Src"], ["Src", "Dst"])


class TestMultisetDiff:
    def test_equal_multisets_diff_empty(self):
        rows = [(1,), (1,), (2,)]
        assert multiset_diff(rows, list(rows)) == ([], [])

    def test_duplicate_count_mismatch_is_a_divergence(self):
        # Bag semantics: {1, 1} != {1} even though the sets match.
        missing, extra = multiset_diff([(1,), (1,)], [(1,)])
        assert missing == [(1,)]
        assert extra == []

    def test_reports_both_directions(self):
        missing, extra = multiset_diff([(1,)], [(2,), (2,)])
        assert missing == [(1,)]
        assert extra == [(2,), (2,)]


class TestBackendTypeFidelity:
    def test_sqlite_real_arithmetic_matches_engine_ints(self):
        # Through the whole pipeline: edge costs are ints, SQLite sums
        # them as INTEGER but path costs go through + — the canonical
        # space absorbs whatever affinity surfaces.
        ctx = RaSQLContext(num_workers=2)
        ctx.register_table("edge", ["Src", "Dst", "Cost"],
                           [(0, 1, 1.0), (1, 2, 2.0)])
        from repro.queries.library import get_query
        report = diff_query(ctx, get_query("sssp").formatted(source=0))
        assert report.equal, report.summary()

    def test_null_cells_round_trip(self):
        backend = SQLiteBackend()
        backend.load_relation(Relation("t", ["A", "B"],
                                       [(1, None), (None, "x")]))
        _, rows = backend.execute("SELECT A, B FROM t")
        assert (canonical_rows(rows)
                == canonical_rows([(1, None), (None, "x")]))
        backend.close()

    def test_reserved_word_columns_round_trip(self):
        # The shares table's By/Of columns are SQL keywords; loading and
        # querying them must work via quoting.
        backend = SQLiteBackend()
        backend.load_relation(Relation("shares", ["By", "Of", "Percent"],
                                       [("a", "b", 60)]))
        columns, rows = backend.execute('SELECT "By", "Of" FROM shares')
        assert columns == ["By", "Of"]
        assert rows == [("a", "b")]
        backend.close()

    def test_empty_base_relation_loads_and_scans(self):
        backend = SQLiteBackend()
        backend.load_relation(Relation("edge", ["Src", "Dst"], []))
        _, rows = backend.execute("SELECT * FROM edge")
        assert rows == []
        backend.close()


class TestEmptyInputSemantics:
    """Engine semantics the emitter must reproduce on empty inputs."""

    def test_global_aggregate_over_empty_input_yields_zero_rows(self):
        # SQL returns one all-NULL row for SELECT count(...) over
        # nothing; the engine returns zero rows.  The emitted HAVING
        # guard reconciles them — checked end-to-end on empty tables.
        ctx = RaSQLContext(num_workers=2)
        ctx.register_table("edge", ["Src", "Dst"], [])
        from repro.queries.library import get_query
        report = diff_query(ctx, get_query("cc").sql)
        assert report.engine_rows == 0
        assert report.equal, report.summary()

    def test_constant_base_rule_with_empty_edges_agrees(self):
        ctx = RaSQLContext(num_workers=2)
        ctx.register_table("edge", ["Src", "Dst", "Cost"], [])
        from repro.queries.library import get_query
        report = diff_query(ctx, get_query("sssp").formatted(source=0))
        assert report.engine_rows == 1  # just the source at cost 0
        assert report.equal, report.summary()
