"""Perf-smoke guard: the compiler stays off the non-differential path.

The emitter, backends, and differential harness are diagnostic tooling.
Importing them costs module-init time and — worse — would tempt coupling
into the hot planning/execution path.  This test runs a normal engine
query in a clean interpreter and asserts ``repro.compile`` was never
imported; CI's perf-smoke job runs it alongside the benchmarks.
"""

import subprocess
import sys

import pytest

pytestmark = pytest.mark.differential

FAST_PATH_PROBE = """
import sys
from repro import RaSQLContext

ctx = RaSQLContext(num_workers=2)
ctx.register_table("edge", ["Src", "Dst"], [(0, 1), (1, 2)])
result = ctx.sql(
    "WITH recursive tc(Src, Dst) AS"
    " (SELECT Src, Dst FROM edge) UNION"
    " (SELECT tc.Src, edge.Dst FROM tc, edge WHERE tc.Dst = edge.Src)"
    " SELECT Src, Dst FROM tc")
assert len(result.rows) == 3

leaked = sorted(m for m in sys.modules if m.startswith("repro.compile"))
assert not leaked, f"compile subsystem imported on the fast path: {leaked}"

# __main__'s dispatch must also be lazy: importing the CLI module alone
# must not drag the compiler in.
import repro.__main__  # noqa: F401
leaked = sorted(m for m in sys.modules if m.startswith("repro.compile"))
assert not leaked, f"CLI import leaked the compile subsystem: {leaked}"
print("fast path clean")
"""


def test_engine_query_never_imports_compile_subsystem():
    proc = subprocess.run(
        [sys.executable, "-c", FAST_PATH_PROBE],
        capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0, proc.stderr
    assert "fast path clean" in proc.stdout
