"""Unit tests for the WITH RECURSIVE emitter.

Covers the transformation rules directly — twin forms, linearity
admissibility, name-collision handling, dialect quoting — plus exact
snapshots of the BigQuery emitter, which has no executing backend and is
string-tested only.
"""

import pytest

from repro import RaSQLContext
from repro.compile import (
    BIGQUERY,
    SQLiteBackend,
    compile_sql,
    get_dialect,
)
from repro.errors import InexpressibleQueryError
from repro.queries.library import get_query


def make_context(**tables):
    ctx = RaSQLContext(num_workers=2)
    defaults = {"edge": (("Src", "Dst"), [(0, 1), (1, 2)])}
    defaults.update(tables)
    for name, (columns, rows) in defaults.items():
        ctx.register_table(name, list(columns), rows)
    return ctx


def compile_text(ctx, sql, **kwargs):
    return compile_sql(ctx, sql, **kwargs).sql


class TestInexpressible:
    def test_mutual_recursion_raises_with_diagnostic(self):
        ctx = RaSQLContext(num_workers=2)
        for name, columns in get_query("company_control").tables.items():
            ctx.register_table(name, list(columns), [])
        with pytest.raises(InexpressibleQueryError) as exc_info:
            compile_sql(ctx, get_query("company_control").sql)
        assert exc_info.value.reason == "mutual-recursion"
        assert "cshares" in str(exc_info.value)

    def test_affine_sum_contribution_raises(self):
        # f.S + 1 is affine, not homogeneous-linear: the derivation-bag
        # twin would add the constant once per path, the engine once per
        # aggregated tuple.
        ctx = make_context()
        query = """
WITH recursive f(X, sum() AS S) AS
  (SELECT 0, 1) UNION
  (SELECT edge.Dst, f.S + 1 FROM f, edge WHERE f.X = edge.Src)
SELECT X, S FROM f
"""
        with pytest.raises(InexpressibleQueryError) as exc_info:
            compile_sql(ctx, query)
        assert exc_info.value.reason == "non-linear-accumulator"

    def test_constant_sum_contribution_raises(self):
        # A contribution that ignores the incoming aggregate fires per
        # aggregated tuple in the engine but per derivation row in the
        # twin — also inexpressible.
        ctx = make_context()
        query = """
WITH recursive f(X, sum() AS S) AS
  (SELECT 0, 1) UNION
  (SELECT edge.Dst, 1 FROM f, edge WHERE f.X = edge.Src)
SELECT X, S FROM f
"""
        with pytest.raises(InexpressibleQueryError) as exc_info:
            compile_sql(ctx, query)
        assert exc_info.value.reason == "non-linear-accumulator"

    def test_predicate_on_sum_column_raises(self):
        ctx = make_context()
        query = """
WITH recursive f(X, sum() AS S) AS
  (SELECT 0, 1) UNION
  (SELECT edge.Dst, f.S FROM f, edge
   WHERE f.X = edge.Src AND f.S < 100)
SELECT X, S FROM f
"""
        with pytest.raises(InexpressibleQueryError) as exc_info:
            compile_sql(ctx, query)
        assert exc_info.value.reason == "aggregate-in-predicate"

    def test_linear_forms_are_accepted(self):
        ctx = make_context()
        for contribution in ("f.S", "f.S * 2", "2 * f.S", "f.S / 2",
                             "-f.S", "(f.S * 3) / 2"):
            query = f"""
WITH recursive f(X, sum() AS S) AS
  (SELECT 0, 1) UNION
  (SELECT edge.Dst, {contribution} FROM f, edge WHERE f.X = edge.Src)
SELECT X, S FROM f
"""
            compiled = compile_sql(ctx, query)
            assert compiled.twins[0][2] == "bag"

    def test_min_twin_allows_predicates_on_aggregate_column(self):
        # interval_coalesce's shape: lattice aggregates delegate
        # admissibility to PreM, not to linearity.
        ctx = make_context(
            inter=(("S", "E"), [(1, 4), (2, 5)]))
        compiled = compile_sql(ctx, get_query("interval_coalesce").sql)
        assert compiled.twins[0][2] == "set"


class TestTwinEmission:
    def test_min_twin_uses_union_and_depth_guard(self):
        ctx = make_context(
            edge=(("Src", "Dst", "Cost"), [(0, 1, 2)]))
        compiled = compile_sql(ctx, get_query("sssp").formatted(source=0),
                               depth_bound=9)
        assert compiled.twins == (("path", "all_path", "set"),)
        assert compiled.depth_bound == 9
        assert " UNION ALL " not in compiled.sql
        assert "_depth < 9" in compiled.sql
        assert "min(Cost)" in compiled.sql

    def test_count_twin_uses_union_all_and_sum_fold(self):
        ctx = make_context(report=(("Emp", "Mgr"), [(2, 1)]))
        compiled = compile_sql(ctx, get_query("management").sql)
        assert compiled.twins == (("empCount", "all_empCount", "bag"),)
        assert " UNION ALL " in compiled.sql
        # count() folds as sum of per-branch-normalized contributions.
        assert "sum(Cnt)" in compiled.sql
        assert "TYPEOF" in compiled.sql  # the colref branch normalizes

    def test_provably_numeric_contribution_skips_normalization(self):
        ctx = make_context()
        query = """
WITH recursive f(X, count() AS C) AS
  (SELECT 0, 1) UNION
  (SELECT edge.Dst, f.C FROM f, edge WHERE f.X = edge.Src)
SELECT X, C FROM f
"""
        compiled = compile_sql(ctx, query)
        # Base contribution (literal 1) needs no CASE; only the
        # recursive colref branch gets one.
        assert compiled.sql.count("TYPEOF") == 1

    def test_twin_name_collision_bumps_suffix(self):
        # A *referenced* base table already named all_path must not be
        # shadowed by the twin CTE.
        ctx = make_context(
            all_path=(("Dst", "Cost"), [(0, 0)]),
            edge=(("Src", "Dst", "Cost"), [(0, 1, 2)]))
        query = """
WITH recursive path(Dst, min() AS Cost) AS
  (SELECT Dst, Cost FROM all_path) UNION
  (SELECT edge.Dst, path.Cost + edge.Cost
   FROM path, edge WHERE path.Dst = edge.Src)
SELECT Dst, Cost FROM path
"""
        compiled = compile_sql(ctx, query)
        assert compiled.twins == (("path", "all_path_1", "set"),)
        assert "all_path_1(Dst, Cost, _depth)" in compiled.sql

    def test_depth_column_collision_bumps_suffix(self):
        ctx = make_context()
        query = """
WITH recursive p(_depth, min() AS C) AS
  (SELECT 0, 0) UNION
  (SELECT edge.Dst, p.C + 1 FROM p, edge WHERE p._depth = edge.Src)
SELECT _depth, C FROM p
"""
        compiled = compile_sql(ctx, query)
        assert "_depth_1" in compiled.sql

    def test_non_aggregated_view_gets_no_twin(self):
        ctx = make_context()
        compiled = compile_sql(ctx, get_query("tc").sql)
        assert compiled.twins == ()
        assert compiled.depth_bound is None
        assert "_depth" not in compiled.sql


class TestRendering:
    def test_magic_filter_pushdown_is_compiled_faithfully(self):
        # The emitter lowers the OPTIMIZED plan: the final WHERE's
        # constant must appear inside the base rule of the CTE.
        ctx = make_context()
        query = get_query("tc").sql.replace(
            "SELECT Src, Dst FROM tc", "SELECT Src, Dst FROM tc "
                                       "WHERE Src = 0")
        with_magic = compile_text(ctx, query)
        without_magic = compile_text(
            ctx, query, config=ctx.config.but(magic_filters=False))
        assert with_magic != without_magic
        assert "Src = 0" in with_magic.split("SELECT Src, Dst FROM tc")[0]

    def test_reserved_word_columns_are_quoted_and_execute(self):
        ctx = make_context(
            shares=(("By", "Of", "Percent"), [("a", "b", 60),
                                              ("b", "c", 70)]))
        compiled = compile_sql(
            ctx, "SELECT By, Of FROM shares WHERE Percent > 65")
        assert '"By"' in compiled.sql
        backend = SQLiteBackend()
        backend.load(ctx.catalog)
        _, rows = backend.execute(compiled.sql)
        assert rows == [("b", "c")]
        backend.close()

    def test_final_duplicate_output_columns_get_suffixes(self):
        ctx = make_context()
        compiled = compile_sql(
            ctx, "SELECT a.Src, b.Src FROM edge a, edge b")
        assert compiled.columns == ("Src", "Src_1")

    def test_empty_aggregate_guard_is_emitted(self):
        ctx = make_context()
        compiled = compile_sql(ctx, get_query("cc").sql)
        assert "HAVING count(*) > 0" in compiled.sql

    def test_derived_view_branches_are_distinct_union(self):
        ctx = make_context(inter=(("S", "E"), [(1, 4)]))
        compiled = compile_sql(ctx, get_query("interval_coalesce").sql)
        assert "lstart(T)" in compiled.sql
        assert "SELECT DISTINCT" in compiled.sql

    def test_unknown_dialect_raises(self):
        with pytest.raises(KeyError, match="postgres"):
            get_dialect("postgres")


class TestBigQuerySnapshots:
    """The BigQuery dialect has no executing backend: the emitted text
    itself is the contract, snapshot-tested so drift is deliberate."""

    def test_sssp_snapshot(self):
        ctx = make_context(edge=(("Src", "Dst", "Cost"), []))
        compiled = compile_sql(ctx, get_query("sssp").formatted(source=0),
                               dialect=BIGQUERY, depth_bound=64)
        assert compiled.sql == (
            "WITH RECURSIVE\n"
            "all_path(Dst, Cost, _depth) AS (\n"
            "  SELECT 0, 0, 0"
            " UNION "
            "SELECT edge.Dst, (path.Cost + edge.Cost), path._depth + 1"
            " FROM all_path AS path,"
            " (SELECT DISTINCT Src, Dst, Cost FROM edge) AS edge"
            " WHERE path._depth < 64 AND path.Dst = edge.Src\n"
            "),\n"
            "path(Dst, Cost) AS (\n"
            "  SELECT Dst, min(Cost) AS Cost FROM all_path GROUP BY Dst\n"
            ")\n"
            "SELECT Dst, Cost FROM path")

    def test_management_snapshot_uses_safe_cast(self):
        ctx = make_context(report=(("Emp", "Mgr"), []))
        compiled = compile_sql(ctx, get_query("management").sql,
                               dialect=BIGQUERY, depth_bound=32)
        assert compiled.sql == (
            "WITH RECURSIVE\n"
            "all_empCount(Mgr, Cnt, _depth) AS (\n"
            "  SELECT report.Emp, 1, 0"
            " FROM (SELECT DISTINCT Emp, Mgr FROM report) AS report"
            " UNION ALL "
            "SELECT report.Mgr,"
            " CASE WHEN SAFE_CAST(empCount.Cnt AS FLOAT64) IS NULL"
            " THEN 1 ELSE empCount.Cnt END,"
            " empCount._depth + 1"
            " FROM all_empCount AS empCount,"
            " (SELECT DISTINCT Emp, Mgr FROM report) AS report"
            " WHERE empCount._depth < 32 AND empCount.Mgr = report.Emp\n"
            "),\n"
            "empCount(Mgr, Cnt) AS (\n"
            "  SELECT Mgr, sum(Cnt) AS Cnt FROM all_empCount GROUP BY Mgr\n"
            ")\n"
            "SELECT Mgr, Cnt FROM empCount")

    def test_bigquery_quotes_with_backticks(self):
        ctx = make_context(shares=(("By", "Of", "Percent"), []))
        compiled = compile_sql(ctx, "SELECT By, Of FROM shares",
                               dialect=BIGQUERY)
        assert "`By`" in compiled.sql
        assert '"By"' not in compiled.sql

    def test_snapshot_notes_flag_emit_only_status(self):
        ctx = make_context()
        compiled = compile_sql(ctx, get_query("tc").sql, dialect=BIGQUERY)
        assert any("snapshot-only" in note for note in compiled.notes)
