"""Cross-engine differential oracle over the whole query library.

Every library query is compiled to standard ``WITH RECURSIVE`` SQL and
executed on sqlite3 (and DuckDB when installed), then diffed row-for-row
against the engine under each interesting config — an independent oracle
that knows nothing about the engine's fixpoint machinery, kernels, or
join strategies.  A query is either *expressible* (and must agree
exactly, with the twin fixpoint converged and PreM admissibility not
violated) or *inexpressible* with a documented diagnostic; the partition
itself is pinned so a new library query must be classified on arrival.
"""

import pytest

from repro import ExecutionConfig, RaSQLContext
from repro.compile import (
    DuckDBBackend,
    diff_query,
    duckdb_available,
)
from repro.errors import InexpressibleQueryError
from repro.queries.library import ALL_QUERIES, get_query
from tests.integration.test_chaos import QUERY_SETUPS, make_context_factory

pytestmark = pytest.mark.differential

#: Queries single-assignment WITH RECURSIVE cannot express, with the
#: diagnostic reason the compiler must raise.  Everything else in the
#: library MUST be expressible — a new library query fails the partition
#: test until classified.
INEXPRESSIBLE = {
    "party_attendance": "mutual-recursion",
    "company_control": "mutual-recursion",
}

EXPRESSIBLE = sorted(set(QUERY_SETUPS) - set(INEXPRESSIBLE))

#: The config axes the oracle sweeps: each one swaps a different layer of
#: the engine (kernel fast paths, adaptive join choice, plan
#: decomposition, join algorithm) whose bugs an internal-only test could
#: inherit on both sides of its own comparison.  ``evaluation="naive"``
#: is deliberately absent: the engine rejects it for sum/count
#: aggregates (it would double-count), so it cannot sweep the library.
CONFIGS = {
    "default": ExecutionConfig(),
    "kernels_off": ExecutionConfig(kernels=False, adaptive_joins=False),
    "decomposed_off": ExecutionConfig(decomposed_plans=False),
    "sort_merge": ExecutionConfig(join_strategy="sort_merge"),
}


def setup_for(query_name):
    _, make_query = QUERY_SETUPS[query_name]
    return make_context_factory(query_name)(), make_query()


def test_library_partition_is_total():
    covered = set(EXPRESSIBLE) | set(INEXPRESSIBLE)
    library = {spec.name for spec in ALL_QUERIES}
    assert covered == library, (
        "library queries missing a differential classification: "
        f"{sorted(library ^ covered)}")
    assert not set(EXPRESSIBLE) & set(INEXPRESSIBLE)


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("query_name", EXPRESSIBLE)
def test_sqlite_oracle_agrees(query_name, config_name):
    ctx, sql = setup_for(query_name)
    report = diff_query(ctx, sql, config=CONFIGS[config_name],
                        label=query_name)
    assert report.equal, report.summary()
    assert report.converged is not False, (
        f"{query_name}: twin fixpoint not converged at depth bound "
        f"{report.depth_bound}")
    assert not report.prem.startswith("violated"), report.prem


@pytest.mark.parametrize("query_name", sorted(INEXPRESSIBLE))
def test_inexpressible_queries_diagnose(query_name):
    spec = get_query(query_name)
    ctx = RaSQLContext(num_workers=2)
    for table, columns in spec.tables.items():
        ctx.register_table(table, list(columns), [])
    with pytest.raises(InexpressibleQueryError) as exc_info:
        diff_query(ctx, spec.sql, label=query_name)
    assert exc_info.value.reason == INEXPRESSIBLE[query_name]


@pytest.mark.skipif(not duckdb_available(),
                    reason="optional duckdb package not installed")
@pytest.mark.parametrize("query_name", EXPRESSIBLE)
def test_duckdb_oracle_agrees(query_name):
    from repro.compile import DUCKDB
    ctx, sql = setup_for(query_name)
    report = diff_query(ctx, sql, backend=DuckDBBackend(),
                        dialect=DUCKDB, label=query_name)
    assert report.equal, report.summary()
    assert report.converged is not False


def test_divergence_report_is_actionable():
    ctx, sql = setup_for("tc")
    report = diff_query(ctx, sql, label="tc")
    assert report.equal
    assert "tc" in report.summary()
    assert "WITH RECURSIVE" in report.sql
    assert report.columns
    assert report.first_divergence is None
