"""Integration tests: every system wrapper agrees on every algorithm."""

import pytest

from repro.baselines import serial
from repro.baselines.systems import (
    BigDatalogSystem,
    COSTSystem,
    GAPParallelSystem,
    GAPSerialSystem,
    GiraphSystem,
    GraphXSystem,
    MyriaSystem,
    RaSQLSystem,
    SparkSQLNaiveSystem,
    SparkSQLSNSystem,
    Workload,
)
from repro.datagen import random_graph, random_tree, tree_tables

EDGES_W = random_graph(80, 320, seed=11, weighted=True)
EDGES = [(a, b) for a, b, _ in EDGES_W]
GRAPH_TABLES_W = {"edge": (["Src", "Dst", "Cost"], EDGES_W)}
GRAPH_TABLES = {"edge": (["Src", "Dst"], EDGES)}

DISTRIBUTED = [RaSQLSystem, BigDatalogSystem, GiraphSystem, GraphXSystem,
               MyriaSystem]


def normalize(result, algorithm):
    output = result.output
    if algorithm == "sssp":
        if hasattr(output, "to_dict"):
            return output.to_dict()
        return dict(output)
    if algorithm == "cc":
        if hasattr(output, "to_dict"):
            return output.to_dict()
        return dict(output)
    if algorithm == "reach":
        if hasattr(output, "rows"):
            return {row[0] for row in output.rows}
        return {v for v, flag in output.items() if flag}
    raise AssertionError(algorithm)


class TestDistributedSystemsAgree:
    @pytest.mark.parametrize("system_cls", DISTRIBUTED,
                             ids=lambda c: c.name)
    def test_sssp(self, system_cls):
        result = system_cls(num_workers=4).run(
            Workload("sssp", GRAPH_TABLES_W, source=0))
        assert normalize(result, "sssp") == serial.sssp(EDGES_W, 0)
        assert result.sim_seconds > 0

    @pytest.mark.parametrize("system_cls", DISTRIBUTED,
                             ids=lambda c: c.name)
    def test_cc(self, system_cls):
        result = system_cls(num_workers=4).run(Workload("cc", GRAPH_TABLES))
        assert normalize(result, "cc") == serial.connected_components(EDGES)

    @pytest.mark.parametrize("system_cls", DISTRIBUTED,
                             ids=lambda c: c.name)
    def test_reach(self, system_cls):
        result = system_cls(num_workers=4).run(
            Workload("reach", GRAPH_TABLES, source=0))
        assert normalize(result, "reach") == serial.reach(EDGES, 0)


class TestComplexAnalyticsSystems:
    TREE = tree_tables(random_tree(height=4, seed=7, max_nodes=300))

    @pytest.mark.parametrize("system_cls",
                             [RaSQLSystem, GraphXSystem,
                              SparkSQLSNSystem, SparkSQLNaiveSystem],
                             ids=lambda c: c.name)
    def test_management(self, system_cls):
        report = self.TREE["report"][1]
        result = system_cls(num_workers=4).run(
            Workload("management", {"report": self.TREE["report"]}))
        expected = serial.management_counts(report)
        output = result.output
        got = (output.to_dict() if hasattr(output, "to_dict")
               else dict(output))
        assert got == expected

    @pytest.mark.parametrize("system_cls",
                             [RaSQLSystem, GraphXSystem,
                              SparkSQLSNSystem, SparkSQLNaiveSystem],
                             ids=lambda c: c.name)
    def test_delivery(self, system_cls):
        assbl = self.TREE["assbl"][1]
        basic = self.TREE["basic"][1]
        result = system_cls(num_workers=4).run(Workload(
            "delivery", {"assbl": self.TREE["assbl"],
                         "basic": self.TREE["basic"]}))
        expected = serial.bom_waitfor(assbl, basic)
        output = result.output
        got = (output.to_dict() if hasattr(output, "to_dict")
               else dict(output))
        assert got == expected

    @pytest.mark.parametrize("system_cls",
                             [RaSQLSystem, GraphXSystem,
                              SparkSQLSNSystem, SparkSQLNaiveSystem],
                             ids=lambda c: c.name)
    def test_mlm(self, system_cls):
        sales = self.TREE["sales"][1]
        sponsor = self.TREE["sponsor"][1]
        result = system_cls(num_workers=4).run(Workload(
            "mlm", {"sales": self.TREE["sales"],
                    "sponsor": self.TREE["sponsor"]}))
        expected = serial.mlm_bonus(sales, sponsor)
        output = result.output
        got = (output.to_dict() if hasattr(output, "to_dict")
               else dict(output))
        assert set(got) == set(expected)
        for key in expected:
            assert got[key] == pytest.approx(expected[key])


class TestSerialSystems:
    def test_gap_serial_cc_undirected(self):
        result = GAPSerialSystem().run(Workload("cc", GRAPH_TABLES))
        assert result.output == serial.undirected_components(EDGES)

    def test_cost_faster_than_gap(self):
        gap = GAPSerialSystem().run(Workload("sssp", GRAPH_TABLES_W, source=0))
        cost = COSTSystem().run(Workload("sssp", GRAPH_TABLES_W, source=0))
        # Same wall work, larger modeled speedup constant.
        assert cost.sim_seconds <= gap.sim_seconds

    def test_parallel_faster_than_serial(self):
        serial_run = GAPSerialSystem().run(
            Workload("sssp", GRAPH_TABLES_W, source=0))
        parallel_run = GAPParallelSystem().run(
            Workload("sssp", GRAPH_TABLES_W, source=0))
        assert parallel_run.sim_seconds < serial_run.sim_seconds


class TestExpectedPerformanceShape:
    """The headline Section 8 relationships at small scale."""

    def test_rasql_beats_graphx(self):
        rasql = RaSQLSystem(num_workers=4).run(
            Workload("sssp", GRAPH_TABLES_W, source=0))
        graphx = GraphXSystem(num_workers=4).run(
            Workload("sssp", GRAPH_TABLES_W, source=0))
        assert graphx.sim_seconds > rasql.sim_seconds

    def test_rasql_beats_bigdatalog(self):
        rasql = RaSQLSystem(num_workers=4).run(
            Workload("sssp", GRAPH_TABLES_W, source=0))
        bigdatalog = BigDatalogSystem(num_workers=4).run(
            Workload("sssp", GRAPH_TABLES_W, source=0))
        assert bigdatalog.sim_seconds > rasql.sim_seconds

    def test_sn_beats_naive(self):
        # Large enough that semi-naive's advantage (~1.2x here) clears
        # the measured-CPU jitter in the sim clock; at a 600-node tree
        # the ~4% margin is inside the noise floor and flakes.
        tree = tree_tables(random_tree(height=7, seed=3, max_nodes=2500))
        sn = SparkSQLSNSystem(num_workers=4).run(
            Workload("management", {"report": tree["report"]}))
        naive = SparkSQLNaiveSystem(num_workers=4).run(
            Workload("management", {"report": tree["report"]}))
        assert naive.sim_seconds > sn.sim_seconds
        # The structural claim behind the clock, pinned deterministically:
        # naive reships full totals every round, semi-naive only deltas.
        assert (naive.metrics["shuffle_bytes"]
                > 2 * sn.metrics["shuffle_bytes"])
