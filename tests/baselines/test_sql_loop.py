"""Unit tests for the Spark-SQL-Naive/SN loop baselines."""

import pytest

from repro.baselines import serial
from repro.baselines.sql_loop import SQLLoopEngine
from repro.engine.cluster import Cluster
from repro.errors import AnalysisError
from repro.queries.library import get_query
from repro.relation import Relation


def run(mode, query, **tables):
    cluster = Cluster(num_workers=4)
    relations = {name.lower(): Relation(name, cols, rows)
                 for name, (cols, rows) in tables.items()}
    engine = SQLLoopEngine(cluster, mode)
    result = engine.run(query, relations)
    return result, cluster


REPORT = [(2, 1), (3, 1), (4, 2), (5, 2), (6, 4), (7, 6)]


class TestCorrectness:
    @pytest.mark.parametrize("mode", ["naive", "sn"])
    def test_management(self, mode):
        result, _ = run(mode, get_query("management").sql,
                        report=(["Emp", "Mgr"], REPORT))
        assert dict(result.relation.rows) == serial.management_counts(REPORT)

    @pytest.mark.parametrize("mode", ["naive", "sn"])
    def test_mlm(self, mode):
        sales = [(1, 100.0), (2, 200.0), (3, 300.0), (4, 50.0)]
        sponsor = [(1, 2), (2, 3), (1, 4)]
        result, _ = run(mode, get_query("mlm_bonus").sql,
                        sales=(["M", "P"], sales),
                        sponsor=(["M1", "M2"], sponsor))
        expected = serial.mlm_bonus(sales, sponsor)
        got = dict(result.relation.rows)
        assert set(got) == set(expected)
        for member in expected:
            assert got[member] == pytest.approx(expected[member])

    @pytest.mark.parametrize("mode", ["naive", "sn"])
    def test_delivery(self, mode):
        assbl = [("car", "engine"), ("car", "wheel"), ("engine", "piston"),
                 ("engine", "valve")]
        basic = [("piston", 3), ("valve", 7), ("wheel", 2)]
        result, _ = run(mode, get_query("bom").sql,
                        assbl=(["Part", "SPart"], assbl),
                        basic=(["Part", "Days"], basic))
        assert dict(result.relation.rows) == serial.bom_waitfor(assbl, basic)

    def test_sibling_contributions_not_collapsed(self):
        # Two siblings each counting 1 must yield 2 for the parent — the
        # case that requires derivation provenance under set semantics.
        report = [(2, 1), (3, 1)]
        result, _ = run("sn", get_query("management").sql,
                        report=(["Emp", "Mgr"], report))
        assert dict(result.relation.rows)[1] == 2


class TestCostShape:
    def test_naive_ships_more_than_sn(self):
        from repro.datagen import random_tree, tree_tables

        tables = tree_tables(random_tree(height=5, seed=2, max_nodes=400))
        shipped = {}
        for mode in ("naive", "sn"):
            result, cluster = run(mode, get_query("management").sql,
                                  report=tables["report"])
            shipped[mode] = cluster.metrics.get("shuffle_bytes")
        assert shipped["naive"] > shipped["sn"]

    def test_rejects_multi_view_queries(self):
        with pytest.raises(AnalysisError):
            run("sn", get_query("company_control").sql,
                shares=(["By", "Of", "Percent"], [("a", "b", 60)]))

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            SQLLoopEngine(Cluster(num_workers=1), "bogus")
