"""Unit tests for the single-threaded reference algorithms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import serial


@st.composite
def graphs(draw, weighted=False):
    n = draw(st.integers(min_value=2, max_value=20))
    pairs = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=60))
    edges = sorted({(a, b) for a, b in pairs if a != b})
    if weighted:
        return [(a, b, (a * 7 + b) % 9 + 1) for a, b in edges]
    return edges


class TestReach:
    def test_chain(self):
        assert serial.reach([(1, 2), (2, 3)], 1) == {1, 2, 3}

    def test_unreachable(self):
        assert serial.reach([(1, 2), (5, 6)], 1) == {1, 2}

    def test_cycle(self):
        assert serial.reach([(1, 2), (2, 1)], 1) == {1, 2}


class TestSSSP:
    def test_picks_cheaper_path(self):
        edges = [(1, 2, 1), (2, 3, 1), (1, 3, 5)]
        assert serial.sssp(edges, 1)[3] == 2

    @settings(max_examples=25, deadline=None)
    @given(graphs(weighted=True))
    def test_matches_networkx(self, edges):
        import networkx as nx

        g = nx.DiGraph()
        g.add_weighted_edges_from(edges)
        if 0 not in g:
            g.add_node(0)
        expected = nx.single_source_dijkstra_path_length(g, 0)
        assert serial.sssp(edges, 0) == expected


class TestComponents:
    def test_directed_label_propagation(self):
        # 3 -> 1: label 1 reaches nothing upstream.
        labels = serial.connected_components([(3, 1), (1, 2)])
        assert labels == {3: 3, 1: 1, 2: 1}

    @settings(max_examples=25, deadline=None)
    @given(graphs())
    def test_undirected_matches_networkx(self, edges):
        import networkx as nx

        g = nx.Graph()
        g.add_edges_from(edges)
        expected = {}
        for component in nx.connected_components(g):
            label = min(component)
            for node in component:
                expected[node] = label
        assert serial.undirected_components(edges) == expected


class TestTransitiveClosure:
    @settings(max_examples=25, deadline=None)
    @given(graphs())
    def test_matches_networkx(self, edges):
        import networkx as nx

        g = nx.DiGraph()
        g.add_edges_from(edges)
        expected = set()
        for node in g:
            for target in nx.descendants(g, node):
                expected.add((node, target))
            if g.has_edge(node, node):
                expected.add((node, node))
        # nx.descendants excludes self unless reachable via cycle; handle
        # cycles: a node reaching itself through a cycle.
        for node in g:
            if any(node in nx.descendants(g, s)
                   for s in g.successors(node)) or g.has_edge(node, node):
                expected.add((node, node))
        assert serial.transitive_closure(edges) == expected


class TestCountPaths:
    def test_diamond(self):
        edges = [(1, 2), (1, 3), (2, 4), (3, 4)]
        assert serial.count_paths(edges, 1)[4] == 2

    def test_rejects_cycles(self):
        import pytest

        with pytest.raises(ValueError):
            serial.count_paths([(1, 2), (2, 1)], 1)


class TestCoalesce:
    def test_touching_intervals_merge(self):
        assert serial.coalesce_intervals([(1, 3), (3, 5)]) == [(1, 5)]

    def test_disjoint_stay_apart(self):
        assert serial.coalesce_intervals([(1, 2), (4, 5)]) == [(1, 2), (4, 5)]

    def test_contained(self):
        assert serial.coalesce_intervals([(1, 10), (2, 3)]) == [(1, 10)]


class TestHierarchies:
    def test_bom_max_of_subparts(self):
        days = serial.bom_waitfor([("a", "b"), ("a", "c")],
                                  [("b", 4), ("c", 9)])
        assert days["a"] == 9

    def test_management_chain(self):
        # 3 reports to 2 reports to 1; the root (1) is not itself an
        # employee so it gets no base 1 — Cnt(1) = Cnt(2) = 2.
        counts = serial.management_counts([(2, 1), (3, 2)])
        assert counts == {3: 1, 2: 2, 1: 2}

    def test_mlm_halving(self):
        bonus = serial.mlm_bonus([(1, 0.0), (2, 100.0)], [(1, 2)])
        assert bonus[2] == 10.0
        assert bonus[1] == 5.0

    def test_company_control_majority(self):
        totals = serial.company_control([("a", "b", 51), ("b", "c", 60)])
        assert totals[("a", "c")] == 60

    def test_company_control_combined_holdings(self):
        totals = serial.company_control(
            [("a", "b", 60), ("b", "c", 30), ("a", "c", 30)])
        assert totals[("a", "c")] == 60  # 30 direct + b's 30

    def test_party_threshold(self):
        attending = serial.party_attendance(
            ["o1", "o2", "o3"],
            [("o1", "x"), ("o2", "x"), ("o3", "x"), ("o1", "y")])
        assert attending == {"o1", "o2", "o3", "x"}
