"""Unit tests for the vertex-centric engine and its profiles."""

import pytest

from repro.baselines import algorithms, serial
from repro.baselines.pregel import (
    GIRAPH_PROFILE,
    GRAPHX_PROFILE,
    PregelEngine,
    PregelProfile,
)
from repro.datagen import random_graph
from repro.engine.cluster import Cluster

EDGES_W = [(1, 2, 1.0), (2, 3, 2.0), (1, 3, 5.0), (3, 4, 1.0), (4, 2, 1.0)]
EDGES = [(a, b) for a, b, _ in EDGES_W]


def run(edges, program, profile=GIRAPH_PROFILE, context=None, workers=4):
    cluster = Cluster(num_workers=workers)
    engine = PregelEngine(cluster, profile)
    result = engine.run(edges, program, context)
    return result, cluster


class TestGraphPrograms:
    @pytest.mark.parametrize("profile", [GIRAPH_PROFILE, GRAPHX_PROFILE],
                             ids=lambda p: p.name)
    def test_sssp(self, profile):
        result, _ = run(EDGES_W, algorithms.sssp_program(1), profile)
        assert result.values == serial.sssp(EDGES_W, 1)

    @pytest.mark.parametrize("profile", [GIRAPH_PROFILE, GRAPHX_PROFILE],
                             ids=lambda p: p.name)
    def test_cc(self, profile):
        result, _ = run(EDGES, algorithms.cc_program(), profile)
        assert result.values == serial.connected_components(EDGES)

    def test_reach(self):
        result, _ = run(EDGES, algorithms.reach_program(1))
        visited = {v for v, flag in result.values.items() if flag}
        assert visited == serial.reach(EDGES, 1)

    def test_random_graph_sssp(self):
        edges = random_graph(60, 240, seed=9, weighted=True)
        result, _ = run(edges, algorithms.sssp_program(0))
        assert result.values == serial.sssp(edges, 0)


class TestTreePrograms:
    def test_management(self):
        report = [(2, 1), (3, 1), (4, 2), (5, 2), (6, 4)]
        result, _ = run(report, algorithms.management_program(),
                        context={"employees": {e for e, _ in report}})
        assert result.values == serial.management_counts(report)

    def test_mlm(self):
        sales = [(1, 100.0), (2, 200.0), (3, 300.0)]
        sponsor_edges = [(2, 1), (3, 2)]  # member -> sponsor
        result, _ = run(sponsor_edges, algorithms.mlm_program(),
                        context={"profit": dict(sales)})
        expected = serial.mlm_bonus(sales, [(b, a) for a, b in sponsor_edges])
        assert {k: pytest.approx(v) for k, v in expected.items()} == result.values

    def test_delivery(self):
        assbl = [("car", "engine"), ("car", "wheel"), ("engine", "piston")]
        leaf_days = {"piston": 3, "wheel": 2}
        edges = [(child, parent) for parent, child in assbl]
        result, _ = run(edges, algorithms.delivery_program(),
                        context={"leaf_days": leaf_days})
        assert result.values == serial.bom_waitfor(assbl, leaf_days.items())


class TestProfiles:
    def test_graphx_runs_more_stages_than_giraph(self):
        counts = {}
        for profile in (GIRAPH_PROFILE, GRAPHX_PROFILE):
            _, cluster = run(EDGES_W, algorithms.sssp_program(1), profile)
            counts[profile.name] = cluster.metrics.get("stages")
        assert counts["graphx"] > 2 * counts["giraph"]

    def test_graphx_slower_in_sim_time(self):
        times = {}
        edges = random_graph(150, 600, seed=3, weighted=True)
        for profile in (GIRAPH_PROFILE, GRAPHX_PROFILE):
            _, cluster = run(edges, algorithms.sssp_program(0), profile)
            times[profile.name] = cluster.metrics.sim_time
        assert times["graphx"] > times["giraph"]

    def test_supersteps_match_bfs_depth(self):
        chain = [(i, i + 1) for i in range(10)]
        result, _ = run(chain, algorithms.reach_program(0))
        assert result.supersteps == 10

    def test_custom_profile(self):
        profile = PregelProfile(name="custom", stages_per_superstep=2)
        result, cluster = run(EDGES, algorithms.cc_program(), profile)
        assert result.values == serial.connected_components(EDGES)
        assert cluster.metrics.get("stages") >= 2 * result.supersteps
