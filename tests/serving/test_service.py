"""Unit tests for the multi-tenant query service.

Covers the serving contract piece by piece: results match the plain
``ctx.sql`` path, caches hit and invalidate on the catalog epochs,
governor tickets die on every completion path (success, analysis
errors, deadline aborts, admission rejections), per-session counters
accumulate, and served views answer concurrent readers from one
memoized snapshot.
"""

import pytest

from repro import ExecutionConfig, QueryGovernor, RaSQLContext
from repro.baselines import serial
from repro.errors import (
    AdmissionRejectedError,
    AnalysisError,
    ParseError,
    QueryDeadlineExceededError,
)
from repro.queries import get_query
from repro.serving import QueryService, normalize_sql
from repro.serving.cache import _LRUCache

pytestmark = pytest.mark.serving

EDGES = [(1, 2, 4.0), (2, 3, 2.0), (1, 3, 9.0), (3, 4, 1.0)]
SSSP = get_query("sssp").formatted(source=1)
TC = get_query("tc").sql


def make_service(**kwargs):
    ctx = RaSQLContext(num_workers=2)
    ctx.register_table("edge", ["Src", "Dst", "Cost"], list(EDGES))
    return QueryService(ctx, **kwargs)


class TestSubmitAndResults:
    def test_sql_matches_direct_context_execution(self):
        service = make_service()
        future = service.session("alice").sql(SSSP)
        assert not future.done
        service.drain()

        reference = RaSQLContext(num_workers=2)
        reference.register_table("edge", ["Src", "Dst", "Cost"], list(EDGES))
        assert (sorted(future.result().rows)
                == sorted(reference.sql(SSSP).rows))

    def test_pending_future_refuses_result(self):
        service = make_service()
        future = service.session("alice").sql(SSSP)
        with pytest.raises(RuntimeError, match="pending"):
            future.result()
        service.drain()
        future.result()

    def test_insert_applies_to_catalog(self):
        service = make_service()
        future = service.session("alice").insert("edge", [(4, 5, 2.0)])
        service.drain()
        assert future.result() == 1
        assert (4, 5, 2.0) in service.ctx.catalog.get("edge").rows

    def test_drain_returns_futures_in_finish_order(self):
        service = make_service(scheduler="fifo")
        session = service.session("alice")
        futures = [session.sql(SSSP), session.sql(TC)]
        finished = service.drain()
        assert finished == futures
        assert service.execution_order == [f.request_id for f in futures]


class TestCaches:
    """Cache behavior is order-sensitive, so these pin the FIFO driver."""

    def test_result_cache_serves_repeated_statement(self):
        service = make_service(scheduler="fifo")
        session = service.session("alice")
        first, second = session.sql(SSSP), session.sql(SSSP)
        service.drain()
        assert first.source == "executed"
        assert second.source == "result_cache"
        # Snapshot consistency: cached readers share the relation.
        assert second.result() is first.result()
        assert session.counters.get("result_cache_hits") == 1

    def test_whitespace_insensitive_cache_key(self):
        service = make_service(scheduler="fifo")
        session = service.session("alice")
        reformatted = "\n  ".join(SSSP.split())
        assert normalize_sql(reformatted) == normalize_sql(SSSP)
        futures = [session.sql(SSSP), session.sql(reformatted)]
        service.drain()
        assert futures[1].source == "result_cache"

    def test_insert_invalidates_result_cache_not_plan_cache(self):
        service = make_service(scheduler="fifo")
        session = service.session("alice")
        session.sql(SSSP)
        session.insert("edge", [(4, 9, 1.0)])
        after = session.sql(SSSP)
        service.drain()
        # Data epoch moved: re-executed, and the answer sees the new edge.
        assert after.source == "executed"
        expected = serial.sssp(EDGES + [(4, 9, 1.0)], 1)
        assert after.result().to_dict() == expected
        # Schema epoch did not move: the plan was reused.
        assert service.plan_cache.hits == 1

    def test_schema_change_invalidates_plan_cache(self):
        service = make_service()
        session = service.session("alice")
        session.sql(SSSP)
        service.drain()
        service.ctx.register_table("edge", ["Src", "Dst", "Cost"],
                                   list(EDGES))
        retry = session.sql(SSSP)
        service.drain()
        assert retry.source == "executed"
        assert service.plan_cache.hits == 0
        assert service.plan_cache.misses == 2

    def test_lru_bounds_and_counters(self):
        cache = _LRUCache(capacity=2)
        cache.store("a", 1)
        cache.store("b", 2)
        cache.store("c", 3)  # evicts "a"
        assert cache.lookup("a") == (False, None)
        assert cache.lookup("c") == (True, 3)
        assert cache.report() == {"entries": 2, "hits": 1, "misses": 1,
                                  "evictions": 1, "hit_rate": 0.5}


class TestTicketLifecycle:
    def governor_is_idle(self, service):
        report = service.ctx.governor.report()
        return report["active"] == 0 and report["waiting"] == 0

    def test_tickets_released_after_drain(self):
        service = make_service()
        session = service.session("alice")
        for _ in range(3):
            session.sql(SSSP)
        assert service.ctx.governor.report()["active"] > 0
        service.drain()
        assert self.governor_is_idle(service)

    def test_analysis_error_releases_ticket(self):
        service = make_service()
        future = service.session("alice").sql("SELECT X FROM nope")
        service.drain()
        assert isinstance(future.error, AnalysisError)
        with pytest.raises(AnalysisError):
            future.result()
        assert self.governor_is_idle(service)

    def test_parse_error_releases_ticket(self):
        service = make_service()
        future = service.session("alice").sql("WITH recursive (((")
        service.drain()
        assert isinstance(future.error, ParseError)
        assert self.governor_is_idle(service)

    def test_deadline_abort_releases_ticket(self):
        service = make_service()
        strict = ExecutionConfig(deadline_seconds=1e-9)
        future = service.session("alice").sql(TC, config=strict)
        ok = service.session("alice").sql(SSSP)
        service.drain()
        assert isinstance(future.error, QueryDeadlineExceededError)
        assert ok.ok
        assert self.governor_is_idle(service)

    def test_admission_rejection_fails_future_without_leaking(self):
        ctx = RaSQLContext(
            num_workers=2,
            governor=QueryGovernor(max_concurrent=1, max_queue=1))
        ctx.register_table("edge", ["Src", "Dst", "Cost"], list(EDGES))
        service = QueryService(ctx)
        session = service.session("alice")
        admitted = session.sql(SSSP)   # takes the slot
        queued = session.sql(SSSP)     # fills the queue
        rejected = session.sql(SSSP)   # beyond capacity
        # The rejection resolves at submit time, error attached.
        assert rejected.done and isinstance(rejected.error,
                                            AdmissionRejectedError)
        assert rejected.source == "rejected"
        service.drain()
        assert admitted.ok and queued.ok
        assert queued.queued
        assert self.governor_is_idle(service)
        assert session.counters.get("rejected") == 1

    def test_queued_requests_wait_for_promotion(self):
        ctx = RaSQLContext(
            num_workers=2,
            governor=QueryGovernor(max_concurrent=1, max_queue=4))
        ctx.register_table("edge", ["Src", "Dst", "Cost"], list(EDGES))
        service = QueryService(ctx, scheduler="seeded", seed=3)
        session = service.session("alice")
        futures = [session.sql(SSSP) for _ in range(4)]
        service.drain()
        # One slot: the seeded scheduler had no freedom, FIFO order holds.
        assert service.execution_order == [f.request_id for f in futures]
        assert all(f.ok for f in futures)


class TestSessions:
    def test_per_session_counters(self):
        service = make_service()
        alice, bob = service.session("alice"), service.session("bob")
        alice.sql(SSSP)
        alice.sql(SSSP)
        bob.sql(TC)
        service.drain()
        assert alice.report()["submitted"] == 2
        assert alice.report()["completed"] == 2
        assert alice.report()["sql_queries"] == 2
        assert alice.report()["result_cache_hits"] == 1
        assert bob.report()["submitted"] == 1
        assert alice.report()["latency_s"] > 0
        # Scoped counters live in the shared registry under the prefix.
        assert service.ctx.metrics.get("session.bob.submitted") == 1

    def test_session_identity_is_stable(self):
        service = make_service()
        assert service.session("alice") is service.session("alice")

    def test_explain_analyze_reports_admission_and_session(self):
        service = make_service()
        service.session("alice").sql(SSSP)
        service.drain()
        report = service.ctx.last_run.explain_analyze()
        assert "admission: immediate" in report
        assert "session: alice" in report


class TestServedViews:
    def make_served(self, **kwargs):
        service = make_service(**kwargs)
        service.create_view("dist", SSSP)
        return service

    def test_concurrent_readers_share_one_snapshot(self):
        service = self.make_served()
        futures = [service.session(f"c{i}").read_view("dist")
                   for i in range(4)]
        service.drain()
        relations = [f.result() for f in futures]
        assert all(r is relations[0] for r in relations)
        # First read evaluated; the rest were snapshot hits.
        assert [f.source for f in futures].count("view_snapshot") == 3
        assert service.view("dist").snapshot_hits == 3

    def test_insert_through_service_maintains_view(self):
        service = self.make_served(scheduler="fifo")
        before = service.session("w").read_view("dist")
        service.session("w").insert("edge", [(4, 5, 1.0)])
        after = service.session("w").read_view("dist")
        service.drain()
        assert before.result().to_dict() == serial.sssp(EDGES, 1)
        assert after.result().to_dict() == serial.sssp(
            EDGES + [(4, 5, 1.0)], 1)
        assert after.result() is not before.result()
        assert service.view("dist").maintenance_inserts == 1

    def test_unknown_view_rejected_at_submit(self):
        service = self.make_served()
        with pytest.raises(AnalysisError, match="no served view"):
            service.session("alice").read_view("nope")

    def test_duplicate_view_name_rejected(self):
        service = self.make_served()
        with pytest.raises(AnalysisError, match="already served"):
            service.create_view("dist", SSSP)

    def test_view_report(self):
        service = self.make_served()
        service.session("a").read_view("dist")
        service.session("b").read_view("dist")
        service.drain()
        report = service.report()
        assert report["views"]["dist"]["reads"] == 2
        assert report["views"]["dist"]["snapshot_hits"] == 1
        assert report["views"]["dist"]["tables"] == ["edge"]


class TestValidation:
    def test_bad_scheduler_rejected(self):
        with pytest.raises(ValueError, match="scheduler"):
            make_service(scheduler="preemptive")

    def test_catalog_append_rows_validates_schema(self):
        service = make_service()
        future = service.session("a").insert("edge", [(1, 2)])
        service.drain()
        assert isinstance(future.error, AnalysisError)
        report = service.ctx.governor.report()
        assert report["active"] == 0 and report["waiting"] == 0
