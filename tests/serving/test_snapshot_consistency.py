"""Snapshot epochs under racing inserts: pre- or post-, never torn.

Every insert bumps ``catalog.data_version``, so a drained workload
defines a ladder of *epochs*: epoch ``e`` is the catalog with the first
``e`` inserts (in ``execution_order``) applied.  The consistency claim
for the serving tier is that every read — ad-hoc SQL, a ResultCache
hit, a ServedView read — answers from exactly the epoch at which the
scheduler ran it.  A "torn" answer (some rows pre-insert, some post-)
would match *no* rung of the ladder, so the positional differential
below also proves snapshot isolation, not just eventual agreement.
"""

import pytest

from repro import QueryGovernor, RaSQLContext
from repro.serving import QueryService

pytestmark = [pytest.mark.serving, pytest.mark.resilience]

EDGES = [(0, 1), (1, 2), (2, 3), (3, 4), (1, 5)]
#: Each insert extends reachability, so every epoch's answer differs.
INSERTS = [[(4, 6)], [(6, 7), (7, 8)], [(5, 9)]]

TC = """
WITH recursive tc(Src, Dst) AS
  (SELECT Src, Dst FROM edge) UNION
  (SELECT tc.Src, edge.Dst FROM tc, edge WHERE tc.Dst = edge.Src)
SELECT Src, Dst FROM tc
"""


def fresh_context():
    ctx = RaSQLContext(num_workers=2)
    ctx.register_table("edge", ["Src", "Dst"], list(EDGES))
    return ctx


def make_service(seed):
    ctx = fresh_context()
    ctx.governor = QueryGovernor(max_concurrent=16, max_queue=16,
                                 metrics=ctx.metrics)
    service = QueryService(ctx, scheduler="seeded", seed=seed)
    service.create_view("reach", TC)
    return service


def epoch_ladder(service, ops, futures):
    """Walk ``execution_order`` serially; the scheduler may have run the
    inserts in any order, so the ladder is built from the *recorded*
    interleaving: per read request the expected rows at its epoch, plus
    the full set of rungs that existed at any point of the run."""
    by_id = {f.request_id: op for op, f in zip(ops, futures)}
    ctx = fresh_context()
    expected, rungs, memo = {}, [], {}

    def rung():
        version = ctx.catalog.data_version
        if version not in memo:
            memo[version] = sorted(ctx.sql(TC).rows)
            rungs.append(memo[version])
        return memo[version]

    rung()
    for request_id in service.execution_order:
        op = by_id[request_id]
        if op[0] == "insert":
            ctx.catalog.append_rows("edge", op[1])
        else:
            expected[request_id] = rung()
    rung()
    return expected, rungs


def run_workload(seed):
    """Interleave reads with the insert ladder under a seeded scheduler."""
    service = make_service(seed)
    ops, futures = [], []
    deck = list(INSERTS)
    for i in range(9):
        session = service.session(f"s{i % 2}")
        if i % 3 == 2 and deck:
            rows = deck.pop(0)
            ops.append(("insert", rows))
            futures.append(session.insert("edge", rows))
        elif i % 2 == 0:
            ops.append(("view_read", None))
            futures.append(session.read_view("reach"))
        else:
            ops.append(("sql", TC))
            futures.append(session.sql(TC))
    service.drain()
    assert all(f.ok for f in futures), [f.error for f in futures]
    return service, ops, futures


@pytest.mark.parametrize("seed", [0, 3, 11])
def test_every_read_lands_on_exactly_its_epoch(seed):
    service, ops, futures = run_workload(seed)
    expected, _ = epoch_ladder(service, ops, futures)
    for op, future in zip(ops, futures):
        if op[0] == "insert":
            continue
        got = sorted(future.result().rows)
        assert got == expected[future.request_id], (
            f"request #{future.request_id} ({op[0]}, source="
            f"{future.source}) answered from the wrong epoch — or from "
            f"a torn mix matching no epoch at all")


@pytest.mark.parametrize("seed", [0, 3, 11])
def test_no_answer_is_torn(seed):
    """Weaker but direct: every observed answer is *some* rung."""
    service, ops, futures = run_workload(seed)
    _, rungs = epoch_ladder(service, ops, futures)
    rung_set = {tuple(r) for r in rungs}
    for op, future in zip(ops, futures):
        if op[0] != "insert":
            assert tuple(sorted(future.result().rows)) in rung_set


def test_result_cache_is_epoch_keyed():
    """A hit serves its own epoch; an insert forces a fresh computation."""
    service = make_service(seed=0)
    session = service.session("a")

    first = session.sql(TC)
    service.drain()
    again = session.sql(TC)
    service.drain()
    assert first.source == "executed" and again.source == "result_cache"
    assert sorted(again.result().rows) == sorted(first.result().rows)

    session.insert("edge", INSERTS[0])
    service.drain()
    after = session.sql(TC)
    service.drain()
    # data_version moved: the stale entry is unreachable by key.
    assert after.source == "executed"
    assert sorted(after.result().rows) != sorted(first.result().rows)

    ctx = fresh_context()
    ctx.catalog.append_rows("edge", INSERTS[0])
    assert sorted(after.result().rows) == sorted(ctx.sql(TC).rows)


def test_served_view_reads_straddle_an_insert_cleanly():
    service = make_service(seed=0)
    session = service.session("a")
    before = session.read_view("reach")
    service.drain()
    session.insert("edge", INSERTS[0])
    service.drain()
    after = session.read_view("reach")
    service.drain()

    pre = fresh_context()
    post = fresh_context()
    post.catalog.append_rows("edge", INSERTS[0])
    assert sorted(before.result().rows) == sorted(pre.sql(TC).rows)
    assert sorted(after.result().rows) == sorted(post.sql(TC).rows)
