"""Service crash recovery, retries, circuit breaking, typed payloads.

The serving-tier half of the durability layer: the WAL round-trips and
tolerates torn tails, a killed-and-restarted :class:`QueryService`
replays to the same answers a clean serial execution gives, transient
failures retry with *seeded* backoff (replay-twice-identical), repeat
failures trip a per-shape circuit breaker, and every typed error
reaches :meth:`QueryFuture.result` with its payload intact.
"""

import random

import pytest

from repro import ExecutionConfig, MemoryConfig, QueryGovernor, RaSQLContext
from repro.chaos import make_service_schedule, run_service_with_chaos
from repro.engine.faults import FailureInjector, FaultToleranceConfig, RecoveryManager
from repro.errors import (
    AdmissionRejectedError,
    AnalysisError,
    CircuitOpenError,
    MemoryBudgetExceededError,
    QueryDeadlineExceededError,
    TaskRetryExhaustedError,
    WALError,
)
from repro.serving import CircuitBreaker, QueryService, RetryPolicy, WriteAheadLog

pytestmark = [pytest.mark.serving, pytest.mark.resilience]

TC = """
WITH recursive tc(Src, Dst) AS
  (SELECT Src, Dst FROM edge) UNION
  (SELECT tc.Src, edge.Dst FROM tc, edge WHERE tc.Dst = edge.Src)
SELECT Src, Dst FROM tc
"""
CNT = """
WITH recursive hops(Dst, min() AS D) AS
  (SELECT 0, 0) UNION
  (SELECT edge.Dst, hops.D + 1 FROM hops, edge WHERE hops.Dst = edge.Src)
SELECT Dst, D FROM hops
"""
EDGES = [(i, i + 1) for i in range(18)] + [(4, 2)]
SPARE = [(18 + i, 19 + i) for i in range(8)]


def make_context(**kwargs):
    ctx = RaSQLContext(num_workers=4, seed=13, **kwargs)
    ctx.register_table("edge", ["Src", "Dst"], list(EDGES))
    return ctx


# ----------------------------------------------------------------------
# WAL format
# ----------------------------------------------------------------------


class TestWriteAheadLog:
    def test_round_trip_and_seq_continuation(self, tmp_path):
        path = str(tmp_path / "w.wal")
        wal = WriteAheadLog(path)
        assert wal.append({"type": "header"}) == 0
        assert wal.append({"type": "submit", "request_id": 1}) == 1
        wal.close()

        reopened = WriteAheadLog(path)
        assert reopened.seq == 2  # continues, never rewinds
        reopened.append({"type": "complete", "request_id": 1})
        reopened.close()

        records, truncated = WriteAheadLog.read(path)
        assert truncated == 0
        assert [r["type"] for r in records] == ["header", "submit",
                                                "complete"]
        assert [r["seq"] for r in records] == [0, 1, 2]

    def test_torn_tail_is_dropped_not_fatal(self, tmp_path):
        path = str(tmp_path / "w.wal")
        wal = WriteAheadLog(path)
        wal.append({"type": "header"})
        wal.append({"type": "submit", "request_id": 1})
        wal.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"crc": "feedfacecafef00d", "rec": {"seq": 2, "ty')
        records, truncated = WriteAheadLog.read(path)
        assert len(records) == 2 and truncated == 1

    def test_tampered_record_stops_replay(self, tmp_path):
        path = str(tmp_path / "w.wal")
        wal = WriteAheadLog(path)
        wal.append({"type": "header"})
        wal.append({"type": "submit", "request_id": 1})
        wal.close()
        lines = open(path).read().splitlines()
        lines[1] = lines[1].replace('"request_id": 1', '"request_id": 9')
        open(path, "w").write("\n".join(lines) + "\n")
        records, truncated = WriteAheadLog.read(path)
        assert len(records) == 1 and truncated == 1

    def test_missing_wal(self, tmp_path):
        with pytest.raises(WALError):
            WriteAheadLog.read(str(tmp_path / "absent.wal"))


# ----------------------------------------------------------------------
# killed service vs serial replay
# ----------------------------------------------------------------------


@pytest.mark.timeout(180)
@pytest.mark.parametrize("seed", [1, 8])
def test_killed_service_matches_serial_replay(tmp_path, seed):
    ops = make_service_schedule(seed, [TC, CNT], "reach", "edge", SPARE,
                                num_ops=8)
    report = run_service_with_chaos(
        make_context, ops, view_name="reach", view_sql=TC,
        wal_path=str(tmp_path / "svc.wal"),
        checkpoint_dir=str(tmp_path / "ckpt"),
        seed=seed, kill_after_requests=2, corruptions=1)
    assert report.matches, report.summary()
    assert report.compared > 0


@pytest.mark.timeout(120)
def test_recover_replays_views_inserts_and_backlog(tmp_path):
    wal = str(tmp_path / "svc.wal")
    ctx = make_context()
    service = QueryService(ctx, scheduler="fifo", wal_path=wal)
    service.create_view("reach", TC)
    alice = service.session("alice")
    service.submit_insert(alice, "edge", [SPARE[0]])
    pending_sql = service.submit(alice, CNT)
    pending_read = service.submit_view_read(alice, "reach")
    service.step()  # the insert executes; sql + read stay in flight

    # Model the crash: the process dies, in-memory state is gone.
    recovered_ctx = make_context()
    recovered = QueryService.recover(recovered_ctx, wal)
    assert recovered.execution_order == [1]
    assert sorted(recovered.recovered_futures) == [2, 3]
    # The pre-crash insert was re-applied before the backlog runs.
    assert len(recovered_ctx.catalog.get("edge").rows) == len(EDGES) + 1
    finished = recovered.drain()
    assert [f.request_id for f in finished] == [2, 3]
    assert all(f.ok for f in finished)

    # Differential: the recovered answers equal a clean serial run.
    serial = make_context()
    serial.catalog.append_rows("edge", [SPARE[0]])
    assert (sorted(recovered.recovered_futures[2].result().rows)
            == sorted(serial.sql(CNT).rows))
    assert (sorted(recovered.recovered_futures[3].result().rows)
            == sorted(serial.sql(TC).rows))
    # The futures the dead process handed out are still undrainable —
    # recovery resolves the *recovered* futures, not the old objects.
    assert not pending_sql.done and not pending_read.done


@pytest.mark.timeout(60)
def test_recover_refuses_a_drifted_bootstrap_catalog(tmp_path):
    wal = str(tmp_path / "svc.wal")
    QueryService(make_context(), wal_path=wal)
    drifted = make_context()
    drifted.catalog.append_rows("edge", [SPARE[0]])  # out-of-band change
    with pytest.raises(WALError, match="bootstrap"):
        QueryService.recover(drifted, wal)


@pytest.mark.timeout(60)
def test_recover_requires_a_header(tmp_path):
    path = str(tmp_path / "svc.wal")
    wal = WriteAheadLog(path)
    wal.append({"type": "submit", "request_id": 1})
    wal.close()
    with pytest.raises(WALError, match="header"):
        QueryService.recover(make_context(), path)


# ----------------------------------------------------------------------
# typed error payloads through QueryFuture.result()
# ----------------------------------------------------------------------


class TestTypedErrorPayloads:
    def test_deadline_error_carries_partial_trace(self):
        ctx = make_context()
        service = QueryService(ctx, scheduler="fifo")
        future = service.submit(
            service.session("a"), TC,
            config=ctx.config.but(deadline_seconds=0.05))
        service.drain()
        with pytest.raises(QueryDeadlineExceededError) as info:
            future.result()
        assert info.value.partial_trace is not None
        assert info.value.sim_time >= info.value.deadline_seconds

    def test_memory_error_carries_budget_payload(self):
        ctx = make_context(memory_config=MemoryConfig(worker_budget_bytes=8))
        service = QueryService(ctx, scheduler="fifo")
        future = service.submit(service.session("a"), TC)
        service.drain()
        with pytest.raises(MemoryBudgetExceededError) as info:
            future.result()
        assert info.value.requested_bytes > info.value.budget_bytes == 8

    def test_admission_rejection_carries_retry_after(self):
        ctx = make_context()
        ctx.governor = QueryGovernor(max_concurrent=1, max_queue=0,
                                     metrics=ctx.metrics)
        service = QueryService(ctx, scheduler="fifo")
        a = service.session("a")
        service.submit(a, TC)
        shed = service.submit(a, CNT)
        assert shed.done and shed.source == "rejected"
        with pytest.raises(AdmissionRejectedError) as info:
            shed.result()
        assert info.value.reason == "concurrency"
        assert info.value.retry_after_s > 0

    def test_memory_rejection_retry_after(self):
        governor = QueryGovernor(max_reserved_bytes=1)
        with pytest.raises(AdmissionRejectedError) as info:
            governor.admit("big", estimated_bytes=10_000)
        assert info.value.reason == "memory"
        assert info.value.retry_after_s > 0


# ----------------------------------------------------------------------
# retries: bounded, seeded, replay-identical
# ----------------------------------------------------------------------


class TestRetries:
    def _service_with_persistent_failure(self):
        ctx = make_context()
        ctx.inject_faults(FailureInjector(
            "fixpoint", point="before", times=1000, persistent=True))
        return ctx, QueryService(ctx, scheduler="fifo")

    def test_transient_exhaustion_is_retried_then_surfaced(self):
        ctx, service = self._service_with_persistent_failure()
        future = service.submit(service.session("a"), TC)
        service.drain()
        # Both service-level retries consumed, original error surfaced.
        assert ctx.metrics.snapshot()["serving_retries"] == 2
        with pytest.raises(TaskRetryExhaustedError):
            future.result()
        breakdown = [e.label for e in ctx.metrics.events()]
        assert "retry-backoff" in breakdown

    def test_retry_backoff_draws_are_seeded_and_replayable(self):
        def draws(seed):
            policy = RetryPolicy(rng=random.Random(seed))
            return [policy.backoff_s(attempt) for attempt in range(6)]

        assert draws(7) == draws(7)  # replay-twice-identical
        assert draws(7) != draws(8)  # and actually jittered
        grow = draws(7)
        assert all(b >= RetryPolicy().base_backoff_s * (2 ** i)
                   for i, b in enumerate(grow))

    def test_recovery_manager_jitter_is_seeded_not_wallclock(self):
        config = FaultToleranceConfig(backoff_jitter=0.5)

        def seconds(seed):
            manager = RecoveryManager(config, rng=random.Random(seed))
            return [manager.backoff_seconds(0.1, a) for a in range(1, 6)]

        assert seconds(3) == seconds(3)
        assert seconds(3) != seconds(4)
        # jitter=0 (the default) keeps the historical schedule exactly.
        plain = RecoveryManager(FaultToleranceConfig(),
                                rng=random.Random(3))
        legacy = RecoveryManager(FaultToleranceConfig())
        for attempt in range(1, 6):
            assert (plain.backoff_seconds(0.1, attempt)
                    == legacy.backoff_seconds(0.1, attempt))

    def test_service_error_counters_replay_identically(self):
        def discrete():
            ctx, service = self._service_with_persistent_failure()
            future = service.submit(service.session("a"), TC)
            service.drain()
            snap = ctx.metrics.snapshot()
            return (type(future.error).__name__,
                    snap["serving_retries"], snap["task_failures"])

        assert discrete() == discrete()


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def test_state_machine(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=10.0)
        for _ in range(2):
            breaker.record_failure("q", now=0.0)
        breaker.check("q", now=0.0)  # still closed
        breaker.record_failure("q", now=0.0)
        assert breaker.state("q") == "open"
        with pytest.raises(CircuitOpenError) as info:
            breaker.check("q", now=4.0)
        assert info.value.retry_after_s == pytest.approx(6.0)
        breaker.check("q", now=10.0)  # cooldown elapsed: half-open probe
        assert breaker.state("q") == "half_open"
        breaker.record_failure("q", now=10.0)  # probe failed: re-open
        assert breaker.state("q") == "open"
        breaker.check("q", now=20.0)
        breaker.record_success("q")
        assert breaker.state("q") == "closed"
        assert breaker.report() == {}

    def test_failing_shape_is_shed_then_probed(self):
        ctx = make_context()
        service = QueryService(
            ctx, scheduler="fifo",
            circuit_breaker=CircuitBreaker(failure_threshold=2,
                                           cooldown_s=5.0))
        session = service.session("a")
        bad = "SELECT Nope FROM missing_table"
        for _ in range(2):
            future = service.submit(session, bad)
            service.drain()
            assert isinstance(future.error, AnalysisError)
        shed = service.submit(session, "SELECT  Nope FROM   missing_table")
        service.drain()  # same shape after normalization: shed at the door
        with pytest.raises(CircuitOpenError) as info:
            shed.result()
        assert info.value.retry_after_s > 0
        assert ctx.metrics.snapshot()["serving_circuit_shed"] == 1
        # A *different* shape is unaffected by the open circuit.
        ok = service.submit(session, TC)
        service.drain()
        assert ok.ok
        ctx.metrics.advance(5.0, label="idle")
        probe = service.submit(session, bad)
        service.drain()  # half-open probe reaches the analyzer again
        assert isinstance(probe.error, AnalysisError)
        # normalize_sql is whitespace- (not case-) folding: the key is
        # the single-spaced statement, and the failed probe re-opens it.
        assert service.breaker.state(bad) == "open"
