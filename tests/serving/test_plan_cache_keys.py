"""Stale-plan keying audit for :meth:`PlanCache.key`.

``PlanCache`` folds only ``config.magic_filters`` into its key.  That is
correct exactly as long as ``magic_filters`` is the *only* config knob
that changes the output of :meth:`RaSQLContext.analyze_query` (parse →
analyze → optimize) — every other knob is consumed later, by physical
planning and execution.  This suite proves the invariant differentially:
it flips **every** ``ExecutionConfig`` field, renders the analyzed
script both ways, and asserts

- a knob that changes the analyzed plan must change the cache key
  (otherwise a cached plan would be served stale — the bug class), and
- the key must not over-discriminate on knobs that don't (that would
  silently halve the hit rate).

The flip-value table is exhaustive by construction: a new config field
without an entry fails the suite immediately, forcing the author to
decide whether it belongs in the key.
"""

import dataclasses

import pytest

from repro import ExecutionConfig, RaSQLContext
from repro.serving.cache import PlanCache

pytestmark = pytest.mark.serving

#: One non-default value per field.  ``None`` entries are not allowed —
#: every field must be flippable, so additions to ExecutionConfig are
#: forced through this audit.
FLIP_VALUES = {
    "evaluation": "naive",
    "stage_combination": False,
    "join_strategy": "sort_merge",
    "broadcast_bases": True,
    "broadcast_compression": False,
    "decomposed_plans": False,
    "codegen": False,
    "partial_aggregation": False,
    "use_setrdd": False,
    "magic_filters": False,
    "kernels": False,
    "adaptive_joins": False,
    "kernel_min_rows": 0,
    "columnar_batches": False,
    "max_iterations": 7,
    "deadline_seconds": 123.0,
    "checkpoint_interval": 4,
    "checkpoint_dir": "/tmp/rasql-plan-key-audit",
    "backend": "process",
}

#: A query whose analyzed plan is magic_filters-sensitive: the final
#: SELECT's equality constant is pushed into the recursion's base rules,
#: so flipping the knob visibly changes ``analyzed.explain()``.
QUERY = """
WITH recursive tc(Src, Dst) AS
  (SELECT Src, Dst FROM edge) UNION
  (SELECT tc.Src, edge.Dst FROM tc, edge
   WHERE tc.Dst = edge.Src)
SELECT Src, Dst FROM tc WHERE Src = 0
"""


def make_context():
    ctx = RaSQLContext(num_workers=2)
    ctx.register_table("edge", ["Src", "Dst"],
                       [(0, 1), (1, 2), (2, 3), (3, 1)])
    return ctx


def field_names():
    return [f.name for f in dataclasses.fields(ExecutionConfig)]


def test_flip_table_covers_every_config_field():
    assert sorted(FLIP_VALUES) == sorted(field_names()), (
        "ExecutionConfig grew a field without a FLIP_VALUES entry; add "
        "one and decide whether PlanCache.key must include the new knob")


def test_every_flip_value_actually_flips():
    base = ExecutionConfig()
    for name, value in FLIP_VALUES.items():
        assert getattr(base, name) != value, (
            f"FLIP_VALUES[{name!r}] equals the default; the flip is a "
            f"no-op and the audit would vacuously pass")
        base.but(**{name: value})  # must also be a *valid* value


@pytest.mark.parametrize("field_name", sorted(FLIP_VALUES))
def test_no_config_knob_leaks_through_plan_cache_key(field_name):
    """If flipping the knob changes the analyzed plan, the key must
    change; a cached script analyzed under the old knob would otherwise
    be served — and executed — for the new one."""
    ctx = make_context()
    cache = PlanCache()
    base = ExecutionConfig()
    flipped = base.but(**{field_name: FLIP_VALUES[field_name]})

    plan_base = ctx.analyze_query(QUERY, base).explain()
    plan_flipped = ctx.analyze_query(QUERY, flipped).explain()

    key_base = cache.key(QUERY, ctx.catalog, base)
    key_flipped = cache.key(QUERY, ctx.catalog, flipped)
    if plan_base != plan_flipped:
        assert key_base != key_flipped, (
            f"{field_name} changes the analyzed plan but not the "
            f"PlanCache key: a stale plan would be served")
    else:
        assert key_base == key_flipped, (
            f"{field_name} does not affect the analyzed plan; keying on "
            f"it needlessly fragments the cache")


def test_magic_filters_is_the_knob_that_matters():
    """The documented status quo, pinned: magic_filters is (today) the
    only knob that reaches analyze/optimize output."""
    ctx = make_context()
    base = ExecutionConfig()
    sensitive = [name for name in sorted(FLIP_VALUES)
                 if ctx.analyze_query(QUERY, base).explain()
                 != ctx.analyze_query(
                     QUERY, base.but(**{name: FLIP_VALUES[name]})).explain()]
    assert sensitive == ["magic_filters"]


def test_magic_filter_pushdown_visibly_changes_this_plan():
    """Guards the audit's sensitivity: if this query ever stops being
    magic_filters-sensitive, the leak test above would trivially pass
    for the one knob it exists to check."""
    ctx = make_context()
    on = ctx.analyze_query(QUERY, ExecutionConfig()).explain()
    off = ctx.analyze_query(
        QUERY, ExecutionConfig(magic_filters=False)).explain()
    assert on != off
