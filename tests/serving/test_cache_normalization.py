"""Regression tests: ``normalize_sql`` must be quote-aware.

The original implementation collapsed whitespace with ``sql.split()``
and chopped terminators with ``rstrip(";")`` — both blind to string
literals, so ``WHERE name = 'a  b'`` and ``WHERE name = 'a b'`` keyed
identically (the caches served the wrong cached answer) and a trailing
``';'`` *inside* a literal was eaten.  Each collision is pinned here,
first at the key level, then end-to-end through the service's result
cache; these tests fail on the old implementation.
"""

import pytest

from repro import RaSQLContext
from repro.serving import QueryService, normalize_sql
from repro.serving.cache import PlanCache, ResultCache

pytestmark = pytest.mark.serving


class TestLiteralPreservation:
    def test_whitespace_inside_string_literal_is_significant(self):
        # The original bug: both collapsed to "... = 'a b'".
        assert (normalize_sql("SELECT * FROM t WHERE name = 'a  b'")
                != normalize_sql("SELECT * FROM t WHERE name = 'a b'"))

    def test_newlines_inside_string_literal_are_significant(self):
        assert (normalize_sql("SELECT 'line1\nline2'")
                != normalize_sql("SELECT 'line1 line2'"))

    def test_trailing_semicolon_inside_literal_survives(self):
        # The original bug: rstrip(";") turned 'x;' into 'x'.
        assert normalize_sql("SELECT 'x;'") == "SELECT 'x;'"
        assert (normalize_sql("SELECT 'x;'")
                != normalize_sql("SELECT 'x'"))

    def test_statement_terminator_after_literal_still_stripped(self):
        assert normalize_sql("SELECT 'x;';") == "SELECT 'x;'"
        assert normalize_sql("SELECT 'x' ;  ; ") == "SELECT 'x'"

    def test_doubled_quote_escape_stays_inside_literal(self):
        # 'it''s  ok' is ONE literal; the doubled quote must not end it
        # early and expose the inner whitespace to collapsing.
        assert (normalize_sql("SELECT 'it''s  ok'")
                == "SELECT 'it''s  ok'")
        assert (normalize_sql("SELECT 'a''b'")
                != normalize_sql("SELECT 'a' 'b'"))

    def test_quoted_identifier_whitespace_is_significant(self):
        assert (normalize_sql('SELECT "my  col" FROM t')
                != normalize_sql('SELECT "my col" FROM t'))

    def test_unterminated_literal_keys_stably(self):
        # The parser will reject it; normalization must neither crash
        # nor collide it with the terminated spelling.
        assert (normalize_sql("SELECT 'oops")
                != normalize_sql("SELECT 'oops'"))
        assert normalize_sql("SELECT 'a;  b") == "SELECT 'a;  b"


class TestNormalizationStillNormalizes:
    """The fix must not lose the hit rate the cache exists for."""

    def test_reformatting_outside_literals_hits_same_key(self):
        compact = "SELECT a, b FROM t WHERE a = 'x  y' AND b = 1"
        reformatted = ("SELECT   a,\n\t b\nFROM t\n"
                       "  WHERE a = 'x  y'\n    AND b = 1\n;")
        assert normalize_sql(compact) == normalize_sql(reformatted)

    def test_trailing_terminators_and_whitespace_stripped(self):
        assert normalize_sql("  SELECT 1 ;; ;\n") == "SELECT 1"
        assert normalize_sql("SELECT 1") == normalize_sql("SELECT 1;")

    def test_interior_statement_separator_is_kept(self):
        script = "CREATE VIEW v(X) AS (SELECT 1); SELECT X FROM v"
        assert ";" in normalize_sql(script)


class TestCacheKeys:
    def test_plan_and_result_keys_differ_across_literal_collision(self):
        ctx = RaSQLContext(num_workers=2)
        ctx.register_table("t", ["Name"], [("a  b",), ("a b",)])
        catalog, config = ctx.catalog, ctx.config
        wide = "SELECT Name FROM t WHERE Name = 'a  b'"
        narrow = "SELECT Name FROM t WHERE Name = 'a b'"
        assert (PlanCache().key(wide, catalog, config)
                != PlanCache().key(narrow, catalog, config))
        assert (ResultCache().key(wide, catalog, config)
                != ResultCache().key(narrow, catalog, config))


class TestEndToEnd:
    """The user-visible symptom: the service served the wrong rows."""

    def test_result_cache_does_not_cross_serve_literal_variants(self):
        ctx = RaSQLContext(num_workers=2)
        ctx.register_table("people", ["Name"], [("a  b",), ("a b",)])
        service = QueryService(ctx, scheduler="fifo")
        session = service.session("alice")
        wide = session.sql("SELECT Name FROM people WHERE Name = 'a  b'")
        narrow = session.sql("SELECT Name FROM people WHERE Name = 'a b'")
        service.drain()
        assert narrow.source == "executed"  # old code: "result_cache"
        assert wide.result().rows == [("a  b",)]
        assert narrow.result().rows == [("a b",)]

    def test_result_cache_does_not_cross_serve_trailing_literal(self):
        ctx = RaSQLContext(num_workers=2)
        ctx.register_table("people", ["Name"], [("x;",), ("x",)])
        service = QueryService(ctx, scheduler="fifo")
        session = service.session("alice")
        semi = session.sql("SELECT Name FROM people WHERE Name = 'x;'")
        bare = session.sql("SELECT Name FROM people WHERE Name = 'x'")
        service.drain()
        assert bare.source == "executed"
        assert semi.result().rows == [("x;",)]
        assert bare.result().rows == [("x",)]
