"""Interleaving differentials: concurrent sessions vs serial replay.

The serving driver is cooperative and its interleaving is chosen by a
seeded scheduler, so every concurrent run has a *serial witness*: replay
the recorded ``execution_order`` one request at a time on a fresh
context (plain ``ctx.sql`` for statements, ``catalog.append_rows`` plus
a fresh ``IncrementalView.insert`` for inserts, ``view.result()`` for
reads) and every answer must be bit-exact with what the service handed
its clients — caches, snapshots and admission queueing must be
semantically invisible.  The error-path tests interleave admission
rejections and deadline aborts into the mix and check the governor ends
idle, i.e. no completion path leaks its ticket.
"""

import pytest

from repro import ExecutionConfig, QueryGovernor, RaSQLContext
from repro.core.streaming import IncrementalView
from repro.errors import AdmissionRejectedError, QueryDeadlineExceededError
from repro.queries import get_query
from repro.serving import QueryService

pytestmark = pytest.mark.serving

EDGES = [(1, 2, 4.0), (2, 3, 2.0), (1, 3, 9.0), (3, 4, 1.0), (4, 6, 5.0)]
SSSP = get_query("sssp").formatted(source=1)
TC = get_query("tc").sql
REACH = get_query("reach").formatted(source=1)

#: A mixed workload: view reads racing inserts racing ad-hoc SQL, spread
#: round-robin over three sessions by ``submit_ops``.
OPS = [
    ("view_read", "dist"),
    ("sql", SSSP),
    ("sql", TC),
    ("insert", "edge", [(4, 5, 1.0)]),
    ("view_read", "dist"),
    ("sql", SSSP),
    ("insert", "edge", [(5, 6, 2.0), (6, 7, 3.0)]),
    ("view_read", "dist"),
    ("sql", REACH),
    ("sql", TC),
]


def fresh_context(**kwargs):
    ctx = RaSQLContext(num_workers=2, **kwargs)
    ctx.register_table("edge", ["Src", "Dst", "Cost"], list(EDGES))
    return ctx


def make_service(scheduler="seeded", seed=0):
    # Roomy governor: every ticket holds a slot at submit, so the seeded
    # scheduler has full freedom to permute the backlog.
    ctx = fresh_context(governor=QueryGovernor(max_concurrent=16,
                                               max_queue=16))
    service = QueryService(ctx, scheduler=scheduler, seed=seed)
    service.create_view("dist", SSSP)
    return service


def submit_ops(service, ops):
    futures = []
    for i, op in enumerate(ops):
        session = service.session(f"s{i % 3}")
        if op[0] == "sql":
            futures.append(session.sql(op[1]))
        elif op[0] == "view_read":
            futures.append(session.read_view(op[1]))
        else:
            futures.append(session.insert(op[1], op[2]))
    return futures


def serial_replay(ops, futures, execution_order):
    """Replay the recorded interleaving serially; {request_id: answer}."""
    ctx = fresh_context()
    view = IncrementalView(ctx, SSSP)
    by_id = {f.request_id: op for op, f in zip(ops, futures)}
    answers = {}
    for request_id in execution_order:
        op = by_id[request_id]
        if op[0] == "sql":
            answers[request_id] = sorted(ctx.sql(op[1]).rows)
        elif op[0] == "view_read":
            answers[request_id] = sorted(view.result().rows)
        else:
            table, rows = op[1], op[2]
            ctx.catalog.append_rows(table, rows)
            view.insert(table, rows)
            answers[request_id] = len(rows)
    return answers


class TestSerialReplayDifferential:
    @pytest.mark.parametrize("seed", [0, 1, 7, 13])
    def test_seeded_interleaving_matches_serial_replay(self, seed):
        service = make_service(seed=seed)
        futures = submit_ops(service, OPS)
        service.drain()
        assert all(f.ok for f in futures)
        assert len(service.execution_order) == len(OPS)

        expected = serial_replay(OPS, futures, service.execution_order)
        for op, future in zip(OPS, futures):
            want = expected[future.request_id]
            if op[0] == "insert":
                assert future.result() == want
            else:
                assert sorted(future.result().rows) == want, (
                    f"request #{future.request_id} {future.label!r} "
                    f"(source={future.source}) diverged from serial replay")

    def test_fifo_matches_serial_replay_too(self):
        service = make_service(scheduler="fifo")
        futures = submit_ops(service, OPS)
        service.drain()
        expected = serial_replay(OPS, futures, service.execution_order)
        for op, future in zip(OPS, futures):
            if op[0] == "insert":
                assert future.result() == expected[future.request_id]
            else:
                assert (sorted(future.result().rows)
                        == expected[future.request_id])


class TestSchedulerDeterminism:
    def run_once(self, scheduler, seed):
        service = make_service(scheduler=scheduler, seed=seed)
        futures = submit_ops(service, OPS)
        service.drain()
        return service, futures

    def test_same_seed_reproduces_execution_order_and_sources(self):
        first, first_futures = self.run_once("seeded", 7)
        second, second_futures = self.run_once("seeded", 7)
        assert first.execution_order == second.execution_order
        assert ([f.source for f in first_futures]
                == [f.source for f in second_futures])
        for a, b in zip(first_futures, second_futures):
            if a.kind == "insert":
                assert a.result() == b.result()
            else:
                assert sorted(a.result().rows) == sorted(b.result().rows)

    def test_seeds_actually_permute_the_backlog(self):
        orders = {tuple(self.run_once("seeded", seed)[0].execution_order)
                  for seed in (0, 1, 7, 13)}
        assert len(orders) > 1, "seeded scheduler never deviated from FIFO"

    def test_fifo_order_is_submission_order(self):
        service, futures = self.run_once("fifo", 0)
        assert service.execution_order == [f.request_id for f in futures]


class TestErrorPathsUnderInterleaving:
    def governor_is_idle(self, service):
        report = service.ctx.governor.report()
        return report["active"] == 0 and report["waiting"] == 0

    def test_rejections_and_deadlines_release_every_ticket(self):
        ctx = fresh_context(
            governor=QueryGovernor(max_concurrent=2, max_queue=2))
        service = QueryService(ctx, scheduler="seeded", seed=5)
        session = service.session("a")
        strict = ExecutionConfig(deadline_seconds=1e-9)

        admitted = [session.sql(SSSP),
                    session.sql(TC, config=strict),  # will abort on deadline
                    session.sql(SSSP),               # queued
                    session.sql(REACH)]              # queued
        rejected = [session.sql(SSSP) for _ in range(2)]  # beyond capacity

        for future in rejected:
            assert future.done and future.source == "rejected"
            assert isinstance(future.error, AdmissionRejectedError)

        service.drain()
        assert isinstance(admitted[1].error, QueryDeadlineExceededError)
        for future in (admitted[0], admitted[2], admitted[3]):
            assert future.ok
        # Queued tickets were promoted (FIFO) and ran despite the failure
        # ahead of them, and nothing leaked a slot or reserved memory.
        assert admitted[2].queued and admitted[3].queued
        assert self.governor_is_idle(service)
        assert service.ctx.governor.report()["reserved_bytes"] == 0
        assert session.counters.get("rejected") == 2
        # "failed" counts every errored completion: both rejections plus
        # the deadline abort.
        assert session.counters.get("failed") == 3
        assert session.counters.get("completed") == 3

    def test_failed_requests_do_not_poison_the_replay(self):
        """Ops that error mutate nothing: survivors still replay exactly."""
        ctx = fresh_context(
            governor=QueryGovernor(max_concurrent=8, max_queue=8))
        service = QueryService(ctx, scheduler="seeded", seed=3)
        service.create_view("dist", SSSP)
        futures = submit_ops(service, OPS)
        strict = ExecutionConfig(deadline_seconds=1e-9)
        doomed = service.session("s0").sql(TC, config=strict)
        service.drain()

        assert isinstance(doomed.error, QueryDeadlineExceededError)
        survivors = [rid for rid in service.execution_order
                     if rid != doomed.request_id]
        expected = serial_replay(OPS, futures, survivors)
        for op, future in zip(OPS, futures):
            if op[0] == "insert":
                assert future.result() == expected[future.request_id]
            else:
                assert (sorted(future.result().rows)
                        == expected[future.request_id])
        assert self.governor_is_idle(service)
