"""Quickstart: your first recursive-aggregate query.

Runs the paper's flagship example — single-source shortest paths written
as four lines of SQL with ``min()`` in the recursive view head — and shows
the compiled plan and execution statistics.

    python examples/quickstart.py
"""

from repro import RaSQLContext

SSSP = """
WITH recursive path(Dst, min() AS Cost) AS
  (SELECT 1, 0) UNION
  (SELECT edge.Dst, path.Cost + edge.Cost
   FROM path, edge
   WHERE path.Dst = edge.Src)
SELECT Dst, Cost FROM path
"""


def main():
    ctx = RaSQLContext(num_workers=4)
    ctx.register_table("edge", ["Src", "Dst", "Cost"], [
        (1, 2, 4.0), (1, 3, 1.0), (3, 2, 2.0),
        (2, 4, 5.0), (3, 4, 8.0), (4, 5, 1.0), (5, 2, 1.0),
    ])

    print("Query plan")
    print("----------")
    print(ctx.explain(SSSP))

    result = ctx.sql(SSSP)
    print("\nShortest paths from node 1")
    print(result.sorted().show())

    stats = ctx.last_run
    print(f"\nfixpoint iterations : {stats.iterations}")
    print(f"delta sizes per round: {list(stats.delta_history.values())[0]}")
    print(f"simulated cluster s  : {stats.sim_time:.4f}")
    print(f"stages / shuffled rows: {int(stats.metrics['stages'])} / "
          f"{int(stats.metrics.get('shuffle_records', 0))}")


if __name__ == "__main__":
    main()
