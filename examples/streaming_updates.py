"""Incremental views: recursive aggregates over a growing graph.

The paper's future work points at "continuous queries on streaming data"
(Section 10).  Monotone insertions make this natural for RaSQL: new base
facts are just more delta.  This example maintains single-source shortest
paths over a road network while new road segments open, comparing the
incremental repair cost against recomputing from scratch.

    python examples/streaming_updates.py
"""

import random

from repro import RaSQLContext
from repro.baselines import serial
from repro.core.streaming import IncrementalView
from repro.datagen import random_graph
from repro.queries import get_query


def main():
    rng = random.Random(29)
    edges = random_graph(400, 1_600, seed=29, weighted=True)
    stream = [(rng.randrange(400), rng.randrange(400), rng.randint(1, 20))
              for _ in range(30)]
    stream = [(a, b, float(w)) for a, b, w in stream if a != b]

    ctx = RaSQLContext(num_workers=4)
    ctx.register_table("edge", ["Src", "Dst", "Cost"], edges)
    query = get_query("sssp").formatted(source=0)

    view = IncrementalView(ctx, query)
    print(f"initial graph: {len(edges)} edges, "
          f"{len(view.result())} reachable nodes, "
          f"{view.iterations} fixpoint iterations\n")

    all_edges = list(edges)
    incremental_sim = 0.0
    scratch_sim = 0.0
    repaired = 0
    for i, segment in enumerate(stream, 1):
        before = ctx.metrics.sim_time
        iterations = view.insert("edge", [segment])
        incremental_sim += ctx.metrics.sim_time - before
        all_edges.append(segment)
        repaired += iterations

        # What a batch system would pay for the same freshness.
        scratch = RaSQLContext(num_workers=4)
        scratch.register_table("edge", ["Src", "Dst", "Cost"], all_edges)
        scratch.sql(query)
        scratch_sim += scratch.metrics.sim_time

    # Exactness after the whole stream.
    assert view.result().to_dict() == serial.sssp(all_edges, 0)
    print(f"streamed {len(stream)} segments:")
    print(f"  incremental repair : {incremental_sim:7.3f} sim s "
          f"({repaired} repair iterations total)")
    print(f"  recompute-per-event: {scratch_sim:7.3f} sim s")
    print(f"  -> incremental maintenance is "
          f"{scratch_sim / incremental_sim:.1f}x cheaper, with identical "
          "results (verified against Dijkstra)")


if __name__ == "__main__":
    main()
