"""Bill of Materials: the paper's running example (Section 2, Q1 vs Q2).

Builds a random assembly hierarchy, then runs

- Q1, the SQL:99-stratified version (recursion first, ``max`` after), and
- Q2, the RaSQL endo-max version (``max()`` inside the recursive head),

verifies they agree — the PreM guarantee — and shows why Q2 is the one
you want: far fewer facts derived and shuffled.

    python examples/bill_of_materials.py
"""

from repro import RaSQLContext
from repro.datagen import random_tree
from repro.queries import get_query


def main():
    tree = random_tree(height=7, seed=3, max_nodes=3_000)
    assbl = tree.edges
    basic = [(leaf, (leaf * 37) % 28 + 1) for leaf in tree.leaves]
    print(f"assembly hierarchy: {tree.num_nodes} parts, "
          f"{len(basic)} basic parts\n")

    results = {}
    for label, query in (("Q1 (stratified)", "bom_stratified"),
                         ("Q2 (endo-max)", "bom")):
        ctx = RaSQLContext(num_workers=4)
        ctx.register_table("assbl", ["Part", "SPart"], assbl)
        ctx.register_table("basic", ["Part", "Days"], basic)
        result = ctx.sql(get_query(query).sql)
        results[label] = dict(result.rows)
        print(f"{label:16s}: {len(result)} parts resolved, "
              f"{int(ctx.last_run.metrics.get('shuffle_records', 0)):7d} "
              f"rows shuffled, {ctx.last_run.sim_time:.3f} sim s")

    assert results["Q1 (stratified)"] == results["Q2 (endo-max)"], \
        "PreM guarantees Q1 and Q2 agree"
    print("\nQ1 == Q2 on every part (the PreM equivalence of Section 3)")

    root_days = results["Q2 (endo-max)"][0]
    print(f"the full assembly (part 0) is ready after {root_days} days")


if __name__ == "__main__":
    main()
