"""Point queries: magic-filter seeding and the execution profiler.

Recursive queries are often asked about *one* entity — "what does company
C000 control?", "what can node 5 reach?".  When the filtered column passes
unchanged through the recursion, the optimizer seeds the fixpoint with the
constant instead of computing everything and filtering at the end (a
lightweight magic-sets rewrite).  This example shows the rewrite's effect
and reads the per-label time profile.

    python examples/point_queries.py
"""

from repro import ExecutionConfig, RaSQLContext
from repro.datagen import random_graph

POINT_TC = """
WITH recursive tc(Src, Dst) AS
  (SELECT Src, Dst FROM edge) UNION
  (SELECT tc.Src, edge.Dst FROM tc, edge WHERE tc.Dst = edge.Src)
SELECT Src, Dst FROM tc WHERE Src = 5 ORDER BY Dst LIMIT 10
"""


def main():
    edges = random_graph(1_500, 6_000, seed=41)
    runs = {}
    for label, magic in (("seeded (magic filters)", True),
                         ("full closure, filter last", False)):
        ctx = RaSQLContext(num_workers=4,
                           config=ExecutionConfig(magic_filters=magic))
        ctx.register_table("edge", ["Src", "Dst"], edges)
        result = ctx.sql(POINT_TC)
        runs[label] = (result, ctx)
        print(f"{label:28s}: {ctx.last_run.sim_time:7.3f} sim s, "
              f"{int(ctx.last_run.metrics.get('shuffle_records', 0)):8d} "
              "rows shuffled")

    seeded, full = (runs["seeded (magic filters)"][0],
                    runs["full closure, filter last"][0])
    assert sorted(seeded.rows) == sorted(full.rows)
    print("\nidentical answers; first rows reachable from node 5:")
    print(seeded.show(limit=10))

    print("\nprofile of the seeded run:")
    print(runs["seeded (magic filters)"][1].last_run.profile_report())


if __name__ == "__main__":
    main()
