"""PreM validation (Section 3, Appendix G): test before you push.

Before replacing a stratified query with its aggregate-in-recursion
version, users should check the PreM property holds.  This example runs
the GPtest-style workflow on two queries:

1. SSSP with ``min()`` — PreM holds, the push is sound;
2. a deliberately broken variant whose cost transform is non-monotonic —
   the checker pinpoints the first fixpoint step where
   γ(T(I)) ≠ γ(T(γ(I))) and shows the offending group.

It also prints the Appendix G source-level rewrite (the un-aggregated
twin view) for the sound query.

    python examples/prem_validation.py
"""

from repro.core.prem import check_prem, prem_checking_query
from repro.queries import get_query

EDGES = [(1, 2, 1), (2, 3, 2), (1, 3, 5), (3, 4, 1), (4, 2, 1)]
TABLES = {"edge": (["Src", "Dst", "Cost"], EDGES)}

NON_PREM = """
WITH recursive path(Dst, min() AS Cost) AS
  (SELECT 1, 0) UNION
  (SELECT edge.Dst, 10 - path.Cost
   FROM path, edge WHERE path.Dst = edge.Src)
SELECT Dst, Cost FROM path
"""


def main():
    sssp = get_query("sssp").formatted(source=1)

    print("1. SSSP with min() in recursion")
    report = check_prem(sssp, TABLES)
    print(f"   {report}\n")

    print("2. Appendix G rewrite of SSSP (the PreM-checking query):")
    for line in prem_checking_query(sssp).splitlines():
        print("   " + line)
    print()

    print("3. A non-PreM query (min over the non-monotonic 10 - Cost):")
    report = check_prem(NON_PREM, TABLES)
    print(f"   {report}")
    print("   -> keep this one stratified; pushing the aggregate would "
          "change its meaning")


if __name__ == "__main__":
    main()
