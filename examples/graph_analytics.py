"""Graph analytics on an RMAT graph: REACH, CC, SSSP (Section 8 workloads).

Generates a scaled RMAT graph, runs the three Section 8 queries through
the full engine, verifies each answer against an independent
single-threaded oracle, and compares the optimized execution against the
engine with the paper's optimizations disabled.

    python examples/graph_analytics.py
"""

from repro import ExecutionConfig, RaSQLContext
from repro.baselines import serial
from repro.datagen import rmat_graph
from repro.queries import get_query


def run_query(config, edges, name, source=None, weighted=True):
    ctx = RaSQLContext(num_workers=4, config=config)
    if weighted:
        ctx.register_table("edge", ["Src", "Dst", "Cost"], edges)
    else:
        ctx.register_table("edge", ["Src", "Dst"], [e[:2] for e in edges])
    spec = get_query(name)
    sql = spec.formatted(source=source) if source is not None else spec.sql
    result = ctx.sql(sql)
    return result, ctx


def main():
    edges = rmat_graph(2_000, seed=11, weighted=True)
    print(f"RMAT graph: 2000 vertices, {len(edges)} edges\n")

    optimized = ExecutionConfig()
    unoptimized = ExecutionConfig(stage_combination=False, codegen=False,
                                  partial_aggregation=False,
                                  decomposed_plans=False)

    # --- REACH ---------------------------------------------------------
    result, ctx = run_query(optimized, edges, "reach", source=0,
                            weighted=False)
    reachable = {row[0] for row in result.rows}
    assert reachable == serial.reach([e[:2] for e in edges], 0)
    print(f"REACH : {len(reachable)} vertices reachable from 0 "
          f"({ctx.last_run.iterations} iterations, "
          f"{ctx.last_run.sim_time:.3f} sim s)")

    # --- CC ------------------------------------------------------------
    result, ctx = run_query(optimized, edges, "cc", weighted=False)
    print(f"CC    : {result.rows[0][0]} distinct component labels "
          f"({ctx.last_run.sim_time:.3f} sim s)")

    # --- SSSP, optimized vs unoptimized ---------------------------------
    times = {}
    for label, config in (("optimized", optimized),
                          ("unoptimized", unoptimized)):
        result, ctx = run_query(config, edges, "sssp", source=0)
        assert result.to_dict() == serial.sssp(edges, 0)
        times[label] = ctx.last_run.sim_time
        print(f"SSSP  : {len(result)} distances [{label}] "
              f"{times[label]:.3f} sim s")
    print(f"\noptimizations give {times['unoptimized'] / times['optimized']:.2f}x "
          "on SSSP (stage combination + codegen + partial aggregation)")


if __name__ == "__main__":
    main()
