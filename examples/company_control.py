"""Company Control: mutual recursion with sum() (Example 8, Section 4).

The Mumick-Pirahesh-Ramakrishnan query: a company controls another when it
(directly or through controlled companies) holds a majority of its shares.
Two mutually recursive views — ``cshares`` (a sum view) and ``control``
(a filter over cshares' running totals) — exercise the engine's hardest
paths: cross-term delta expansion, the δ⋈δ inclusion-exclusion correction,
and increment-vs-total semantics for the ``Tot > 50`` filter.

    python examples/company_control.py
"""

import random

from repro import RaSQLContext
from repro.baselines import serial
from repro.queries import get_query


def make_share_network(num_companies: int, seed: int = 17):
    """Random ownership network with some deliberate control chains."""
    rng = random.Random(seed)
    shares = []
    companies = [f"C{i:03d}" for i in range(num_companies)]
    # A guaranteed control chain: C000 -> C001 -> C002 -> ...
    for i in range(min(6, num_companies - 1)):
        shares.append((companies[i], companies[i + 1], 51 + rng.randrange(20)))
    # Background cross-holdings.
    for _ in range(num_companies * 3):
        a, b = rng.sample(companies, 2)
        shares.append((a, b, rng.randrange(5, 30)))
    return shares


def main():
    shares = make_share_network(40)
    print(f"share network: {len(shares)} holdings over 40 companies\n")

    ctx = RaSQLContext(num_workers=4)
    ctx.register_table("shares", ["By", "Of", "Percent"], shares)
    result = ctx.sql(get_query("company_control").sql)

    totals = {(a, b): t for a, b, t in result.rows}
    reference = serial.company_control(shares)
    assert set(totals) == set(reference)
    for pair, expected in reference.items():
        assert abs(totals[pair] - expected) < 1e-9, pair
    print("engine result matches the independent fixpoint oracle")

    controlled = sorted((a, b) for (a, b), t in totals.items() if t > 50)
    print(f"\n{len(controlled)} control relationships, e.g.:")
    for a, b in controlled[:8]:
        print(f"  {a} controls {b} ({totals[(a, b)]:.0f}%)")
    print(f"\nfixpoint iterations: {ctx.last_run.iterations} "
          f"(mutual recursion over views "
          f"{list(ctx.last_run.clique_iterations)[0]})")


if __name__ == "__main__":
    main()
