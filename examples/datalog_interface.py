"""The Datalog face: same fixpoint core, BigDatalog-style surface.

RaSQL descends from BigDatalog (SIGMOD 2016), which exposed the same
aggregates-in-recursion through Datalog with monotonic aggregates.  This
example runs classic programs through `repro.datalog`, shows the RaSQL
they translate to, and verifies both surfaces agree.

    python examples/datalog_interface.py
"""

from repro import RaSQLContext
from repro.baselines import serial
from repro.datagen import random_graph
from repro.datalog import datalog_to_sql, run_datalog
from repro.queries import get_query

SSSP_DATALOG = """
  % single-source shortest paths from node 1
  path(1, 0).
  path(Y, min<C>) <- path(X, D), edge(X, Y, W), C = D + W.
  ?- path(X, C).
"""

TRIANGLE_COUNT = """
  % same-generation cousins over a parent relation
  sg(X, Y) <- rel(P, X), rel(P, Y), X != Y.
  sg(X, Y) <- rel(A, X), sg(A, B), rel(B, Y).
  ?- sg(X, Y).
"""


def main():
    edges = [(a, b, float(w)) for a, b, w in
             random_graph(200, 800, seed=23, weighted=True)]
    ctx = RaSQLContext(num_workers=4)
    ctx.register_table("edge", ["Src", "Dst", "Cost"], edges)

    print("Datalog program:")
    print(SSSP_DATALOG)
    print("translates to RaSQL:")
    print(datalog_to_sql(SSSP_DATALOG, lambda p: ["Src", "Dst", "Cost"]))

    via_datalog = run_datalog(ctx, SSSP_DATALOG)
    via_sql = ctx.sql(get_query("sssp").formatted(source=1))
    assert sorted(via_datalog.rows) == sorted(via_sql.rows)
    assert via_datalog.to_dict() == serial.sssp(edges, 1)
    print(f"\nboth surfaces agree: {len(via_datalog)} shortest distances, "
          "verified against Dijkstra")

    rel = [(1, 2), (1, 3), (2, 4), (2, 5), (3, 6)]
    ctx2 = RaSQLContext(num_workers=4)
    ctx2.register_table("rel", ["Parent", "Child"], rel)
    cousins = run_datalog(ctx2, TRIANGLE_COUNT)
    print(f"\nsame-generation pairs over a family tree: "
          f"{sorted(cousins.rows)}")


if __name__ == "__main__":
    main()
