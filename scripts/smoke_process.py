"""Manual smoke: one TC query, process vs simulated, rows must match."""
import random
import sys
import time

from repro import RaSQLContext
from repro.core.config import ExecutionConfig
from repro.queries.library import get_query


def random_graph(n, m, seed):
    rng = random.Random(seed)
    edges = set()
    while len(edges) < m:
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            edges.add((a, b))
    return sorted(edges)


def run(backend):
    cfg = ExecutionConfig(backend=backend, kernel_min_rows=0)
    ctx = RaSQLContext(num_workers=4, config=cfg)
    ctx.register_table("edge", ("Src", "Dst"), random_graph(24, 60, seed=5))
    t0 = time.perf_counter()
    result = ctx.sql(get_query("tc").sql)
    wall = time.perf_counter() - t0
    rows = sorted(result.rows)
    info = ctx.last_run
    ctx.close()
    return rows, info, wall


if __name__ == "__main__":
    sim_rows, sim_info, sim_wall = run("simulated")
    proc_rows, proc_info, proc_wall = run("process")
    print(f"simulated: {len(sim_rows)} rows, iters={sim_info.iterations}, "
          f"wall={sim_wall:.2f}s")
    print(f"process:   {len(proc_rows)} rows, iters={proc_info.iterations}, "
          f"wall={proc_wall:.2f}s")
    print("supervision:", {k: v for k, v in
                           proc_info.supervision_summary().items() if v})
    if sim_rows != proc_rows:
        print("MISMATCH")
        only_sim = set(sim_rows) - set(proc_rows)
        only_proc = set(proc_rows) - set(sim_rows)
        print("only sim:", sorted(only_sim)[:10])
        print("only proc:", sorted(only_proc)[:10])
        sys.exit(1)
    if sim_info.iterations != proc_info.iterations:
        print("ITERATION MISMATCH")
        sys.exit(1)
    print("MATCH")
