"""Table 1: parameters of the real-world graphs and their proxies.

Documents the substitution: for each graph the original vertex/edge
counts from the paper, the proxy's scaled counts, and the degree-skew
measurements the Figure 9 analysis relies on (max in-degree over mean).
"""

import collections

from repro.datagen import REAL_GRAPHS, proxy_graph

from harness import REAL_GRAPH_DIVISOR, once, report


def test_table1_real_world_graphs(benchmark):
    def experiment():
        rows = []
        skews = {}
        for name, spec in REAL_GRAPHS.items():
            edges = proxy_graph(name, scale_divisor=REAL_GRAPH_DIVISOR,
                                seed=7)
            vertices = {v for edge in edges for v in edge}
            indegrees = collections.Counter(dst for _, dst in edges)
            mean_in = len(edges) / max(1, len(indegrees))
            skew = max(indegrees.values()) / mean_in
            skews[name] = skew
            rows.append([name, spec.vertices, spec.edges,
                         len(vertices), len(edges),
                         round(len(edges) / max(1, len(vertices)), 1),
                         round(spec.density, 1), round(skew, 1)])
        return rows, skews

    rows, skews = once(benchmark, experiment)
    report("table1",
           f"Table 1: Real World Graphs and their 1/{REAL_GRAPH_DIVISOR} "
           "proxies",
           ["graph", "orig_vertices", "orig_edges", "proxy_vertices",
            "proxy_edges", "proxy_density", "orig_density", "proxy_skew"],
           rows,
           notes="proxies preserve density and the skew *ordering* "
                 "(twitter most skewed), the properties Figure 9 leans on")

    # Density preserved within 25% and skew ordering preserved.
    for row in rows:
        assert abs(row[5] - row[6]) / row[6] < 0.25, row[0]
    assert skews["twitter"] == max(skews.values())
