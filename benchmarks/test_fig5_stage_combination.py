"""Figure 5: effect of stage combination (Section 7.1).

Paper shape: fusing Reduce(i)+Map(i+1) into one ShuffleMap stage gives
3x–5x on REACH (no aggregate, iteration work is small so per-stage
scheduling dominates) and 1.5x–2x on CC/SSSP, across RMAT-16M..128M
(scaled sweep here).
"""

import pytest

from repro import ExecutionConfig
from repro.baselines.systems import RaSQLSystem

from harness import (
    RMAT_SIZES,
    dump_trace,
    once,
    report,
    rmat_label,
    rmat_tables,
    run_system,
)

QUERIES = ["cc", "reach", "sssp"]


def test_fig5_stage_combination(benchmark):
    def experiment():
        rows = []
        ratios = {}
        traces = {}
        largest = max(RMAT_SIZES)
        for n in RMAT_SIZES:
            tables = rmat_tables(n)
            for query in QUERIES:
                times = {}
                for combined in (True, False):
                    config = ExecutionConfig(stage_combination=combined,
                                             decomposed_plans=False)
                    result = run_system(
                        RaSQLSystem, query, tables,
                        source=0 if query in ("reach", "sssp") else None,
                        config=config)
                    times[combined] = result.sim_seconds
                    if n == largest:
                        label = "combined" if combined else "twostage"
                        traces[f"{query}-{label}"] = result.trace
                rows.append([rmat_label(n), query.upper(),
                             times[True], times[False],
                             times[False] / times[True]])
                ratios[(n, query)] = times[False] / times[True]
        return rows, ratios, traces

    rows, ratios, traces = once(benchmark, experiment)
    for label, trace in traces.items():
        dump_trace("fig5", trace, label=label)
    report("fig5", "Figure 5: Effect of Stage Combination (sim seconds)",
           ["dataset", "query", "with_combination", "without", "speedup"],
           rows,
           notes="paper: 3x-5x on REACH, 1.5x-2x on CC/SSSP")

    largest = max(RMAT_SIZES)
    # Shape: combination always wins, and wins most on REACH.
    for (n, query), ratio in ratios.items():
        assert ratio > 1.0, (n, query, ratio)
    reach_ratio = ratios[(largest, "reach")]
    assert reach_ratio > 1.3
    assert ratios[(largest, "cc")] > 1.1
    assert ratios[(largest, "sssp")] > 1.1
