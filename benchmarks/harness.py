"""Shared benchmark harness for the Section 8 experiments.

Every benchmark regenerates one table or figure of the paper: same systems,
same workloads, same sweep structure, with sizes scaled down ~1000x for a
single-process Python run (recorded per-benchmark and in DESIGN.md).  The
reported metric is the simulated cluster time in seconds — the analog of
the paper's "Time (s)" axes — and each benchmark writes its table to
``benchmarks/results/`` so EXPERIMENTS.md can cite the numbers.

Set ``RASQL_BENCH_SCALE=large`` to extend the sweeps (slower, closer to
the paper's upper sizes).
"""

from __future__ import annotations

import functools
import json
import os
import pathlib
import time

from repro.baselines.systems import Workload
from repro.datagen import proxy_table, rmat_graph

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SCALE = os.environ.get("RASQL_BENCH_SCALE", "default")

#: The paper sweeps RMAT-1M..128M; the default here sweeps the same
#: doubling grid at 1/1000 scale over the first four points.
RMAT_SIZES = ([1_000, 2_000, 4_000, 8_000] if SCALE == "default"
              else [1_000, 2_000, 4_000, 8_000, 16_000, 32_000])

#: Tree sizes for Figure 10 (paper: 40M/80M/160M/300M nodes, height 10-13).
TREE_SIZES = ([4_000, 8_000, 16_000, 30_000] if SCALE == "default"
              else [4_000, 8_000, 16_000, 30_000, 60_000])

#: Real-graph proxies (Table 1 scaled; see repro.datagen.realworld).
REAL_GRAPH_DIVISOR = 2_000 if SCALE == "default" else 500

NUM_WORKERS = 4


def rmat_label(n: int) -> str:
    """Label a scaled size the way the paper labels the original sweep."""
    return f"RMAT-{n // 1000}K"


@functools.lru_cache(maxsize=None)
def rmat_tables(n: int, weighted: bool = True) -> dict:
    edges = rmat_graph(n, seed=7, weighted=weighted)
    columns = ["Src", "Dst", "Cost"] if weighted else ["Src", "Dst"]
    return {"edge": (columns, edges)}


@functools.lru_cache(maxsize=None)
def real_graph_tables(name: str, weighted: bool = True) -> dict:
    columns, rows = proxy_table(name, scale_divisor=REAL_GRAPH_DIVISOR,
                                seed=7, weighted=weighted)
    return {"edge": (columns, rows)}


def run_system(system_cls, algorithm: str, tables: dict, source=None,
               num_workers: int = NUM_WORKERS, **system_kwargs):
    """Instantiate a system, run one workload, return its SystemResult."""
    system = system_cls(num_workers=num_workers, **system_kwargs)
    return system.run(Workload(algorithm, tables, source=source))


def format_table(title: str, headers: list[str],
                 rows: list[list]) -> str:
    """Render an aligned text table in the style of the paper's figures."""
    def fmt(value):
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [max(len(headers[i]), *(len(r[i]) for r in cells)) if cells
              else len(headers[i])
              for i in range(len(headers))]
    lines = [title, "=" * len(title),
             "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
             "  ".join("-" * w for w in widths)]
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def report(figure_id: str, title: str, headers: list[str],
           rows: list[list], notes: str = "") -> str:
    """Print and persist one experiment's table."""
    text = format_table(title, headers, rows)
    if notes:
        text += "\n" + notes
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{figure_id}.txt").write_text(text + "\n")
    print("\n" + text)
    return text


def dump_trace(figure_id: str, trace: dict | None,
               label: str | None = None) -> pathlib.Path | None:
    """Persist one run's span-tree trace next to the figure's table.

    ``trace`` is the serialized span tree from ``RunInfo.trace`` /
    ``SystemResult.trace`` (see ``repro.engine.tracing``); the artifact
    lands at ``benchmarks/results/<figure_id>[.<label>].trace.json`` so
    every benchmark can ship the raw per-iteration evidence behind its
    summary table.  Returns the path, or ``None`` when no trace was
    recorded (non-RaSQL systems, tracing disabled).
    """
    if not trace:
        return None
    RESULTS_DIR.mkdir(exist_ok=True)
    stem = figure_id if label is None else f"{figure_id}.{label}"
    path = RESULTS_DIR / f"{stem}.trace.json"
    path.write_text(json.dumps(trace, indent=2) + "\n")
    return path


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic end-to-end runs (and some take
    seconds), so one round is the appropriate setting; the interesting
    numbers are the simulated-time tables the experiment reports.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def speedup(slow: float, fast: float) -> str:
    """Human-readable ratio for the summary notes."""
    if fast <= 0:
        return "inf"
    return f"{slow / fast:.2f}x"
