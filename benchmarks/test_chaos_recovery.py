"""Recovery overhead vs failure rate (Section 6.1's recovery claim).

The paper argues the SetRDD design keeps recovery cheap: the cached
all-relation partitions double as checkpoints, so a failure replays only
the current stage.  This experiment quantifies that on SSSP over an RMAT
graph by sweeping the number of injected faults per run — from none, to
several task deaths, to task deaths plus a mid-fixpoint worker loss —
and reporting the simulated-time overhead, the extra task attempts, and
the time the recovery machinery itself charged.

Every run is checked bit-exact against the fault-free result; a chaos
run that diverged would invalidate the row (and the claim).
"""

import pytest

from harness import NUM_WORKERS, dump_trace, once, report, rmat_tables
from repro import RaSQLContext
from repro.chaos import ChaosSchedule, make_schedule, run_with_chaos
from repro.engine.faults import FailureInjector, WorkerLossInjector
from repro.queries import get_query

GRAPH_SIZE = 2_000
SEED = 23

#: (label, schedule builder) — increasing failure rates.
SWEEP = [
    ("no faults", lambda: ChaosSchedule(seed=SEED)),
    ("2 task deaths", lambda: make_schedule(
        SEED, num_workers=NUM_WORKERS, task_deaths=2, worker_losses=0)),
    ("6 task deaths", lambda: ChaosSchedule(seed=SEED, injectors=[
        FailureInjector("fixpoint", task_index=i % NUM_WORKERS, times=1,
                        point="after" if i % 2 else "before")
        for i in range(6)])),
    ("6 deaths + worker loss", lambda: ChaosSchedule(seed=SEED, injectors=[
        FailureInjector("fixpoint", task_index=i % NUM_WORKERS, times=1,
                        point="after" if i % 2 else "before")
        for i in range(6)
    ] + [WorkerLossInjector("fixpoint", worker=None, at_task=1,
                            skip_matches=2)])),
]


def make_context():
    ctx = RaSQLContext(num_workers=NUM_WORKERS)
    for name, (columns, rows) in rmat_tables(GRAPH_SIZE).items():
        ctx.register_table(name, columns, rows)
    return ctx


@pytest.mark.benchmark(group="chaos-recovery")
def test_recovery_overhead_vs_failure_rate(benchmark):
    query = get_query("sssp").formatted(source=0)

    def run():
        rows = []
        last_trace = None
        for label, build_schedule in SWEEP:
            result = run_with_chaos(query, make_context, build_schedule())
            assert result.matches, f"{label}: chaos run diverged"
            task_fired, losses_fired = result.schedule.injected_counts()
            rows.append([
                label,
                task_fired + losses_fired,
                result.counters["task_attempts"],
                result.counters["cache_invalidated_partitions"],
                result.chaos_sim_time,
                result.overhead_seconds,
                result.counters["recovery_seconds"],
            ])
            last_trace = result.trace
        return rows, last_trace

    rows, trace = once(benchmark, run)
    report(
        "chaos_recovery",
        f"Recovery overhead vs failure rate (SSSP, RMAT-{GRAPH_SIZE // 1000}K, "
        f"{NUM_WORKERS} workers)",
        ["schedule", "faults", "attempts", "invalidated",
         "sim_time_s", "overhead_s", "recovery_s"],
        rows,
        notes="All rows verified bit-exact against the fault-free run; "
              "overhead_s is chaos minus clean simulated time, recovery_s "
              "the portion the cost model charged to recovery "
              "(wasted attempts, backoff, detection, re-derivation).")
    dump_trace("chaos_recovery", trace, label="worker-loss")
