"""Make the shared harness importable from every benchmark module."""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))
