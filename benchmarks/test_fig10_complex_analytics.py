"""Figure 10: complex data analytics — Delivery, Management, MLM.

Paper setup: trees of height 10-13 with 40M-300M nodes (5-10 children per
node, 20-60% leaf probability), comparing RaSQL against GraphX and the
Spark-SQL-SN / Spark-SQL-Naive driver loops.  Paper shape:

- RaSQL at least 2x faster than GraphX, growing to 4x-6x at the largest
  size;
- SQL-SN ~2x faster than SQL-Naive but still 4x+ behind RaSQL — the
  point being that simulating semi-naive with iterative SQL statements
  cannot recover the fixpoint operator's scheduling/caching/shuffling
  optimizations.

Tree sizes here follow the same sweep scaled ~10000x (see DESIGN.md).
"""

from repro.baselines.systems import (
    GraphXSystem,
    RaSQLSystem,
    SparkSQLNaiveSystem,
    SparkSQLSNSystem,
    Workload,
)
from repro.datagen import random_tree, tree_tables

from harness import TREE_SIZES, once, report

SYSTEMS = [RaSQLSystem, GraphXSystem, SparkSQLSNSystem, SparkSQLNaiveSystem]

WORKLOAD_TABLES = {
    "delivery": ("assbl", "basic"),
    "management": ("report",),
    "mlm": ("sales", "sponsor"),
}


def test_fig10_complex_analytics(benchmark):
    def experiment():
        times: dict[tuple, float] = {}
        for size in TREE_SIZES:
            height = 10 + TREE_SIZES.index(size)  # paper: heights 10-13
            tree = random_tree(height=height, seed=13, max_nodes=size)
            tables = tree_tables(tree, seed=13)
            for algorithm, table_names in WORKLOAD_TABLES.items():
                workload_tables = {t: tables[t] for t in table_names}
                for system_cls in SYSTEMS:
                    result = system_cls(num_workers=4).run(
                        Workload(algorithm, workload_tables))
                    times[(algorithm, size, system_cls.name)] = (
                        result.sim_seconds)
        return times

    times = once(benchmark, experiment)

    for algorithm in WORKLOAD_TABLES:
        rows = [[f"N-{size//1000}K"]
                + [times[(algorithm, size, s.name)] for s in SYSTEMS]
                for size in TREE_SIZES]
        report(f"fig10_{algorithm}",
               f"Figure 10 ({algorithm}): RaSQL vs GraphX vs SQL loops "
               "(sim seconds)",
               ["dataset"] + [s.name for s in SYSTEMS], rows,
               notes="paper: RaSQL >=2x GraphX (4x-6x at the largest); "
                     "SQL-SN ~2x SQL-Naive; both SQL loops 4x+ behind RaSQL")

    largest = max(TREE_SIZES)
    for algorithm in WORKLOAD_TABLES:
        rasql = times[(algorithm, largest, "rasql")]
        naive = times[(algorithm, largest, "spark-sql-naive")]
        sn = times[(algorithm, largest, "spark-sql-sn")]
        graphx = times[(algorithm, largest, "graphx")]
        assert rasql < graphx, algorithm
        assert rasql < sn, algorithm
        assert sn < naive, algorithm
