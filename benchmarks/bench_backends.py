"""Wall-clock A/B benchmark: process backend vs simulated; BENCH_7.json.

Runs the headline RMAT-graph queries (tc, cc, sssp — the Section 8
experiments) twice per trial — on the simulated single-interpreter
backend (the deterministic oracle) and on the supervised real-process
worker pool — interleaved so machine drift hits both sides equally,
keeps the best-of-N minimum of both wall and CPU clocks, and asserts
bit-exact rows and identical iteration counts inline.  Both contexts
are built once per query so the process pool is warm (spawned, imports
done) before the first timed sample; what is measured is steady-state
query latency, not interpreter spawn cost.

Modes:

    python benchmarks/bench_backends.py             # full run -> "full"
    python benchmarks/bench_backends.py --quick     # small run -> "quick"
    python benchmarks/bench_backends.py --quick --check BENCH_7.json
    python benchmarks/bench_backends.py --columnar  # -> BENCH_8.json
    python benchmarks/bench_backends.py --columnar --check BENCH_8.json

``--check`` re-measures and fails (exit 1) unless the process backend
beats the simulated backend's wall clock on every headline query —
**when more than one CPU core is available**.  Real parallelism cannot
outrun a single interpreter on a single core (four workers time-slice
one core and pay pickling on top), so on 1-core boxes the gate verifies
bit-exactness and prints a visible skip for the speedup assertion; the
committed BENCH_7.json records whatever the producing machine honestly
measured, along with its core count.  CI runs this on multi-core
runners, where the speedup gate is live.

``--columnar`` A/Bs the *columnar batch wire* instead: both sides run
the process backend, one with `ColumnBatch` IPC (the default), one with
`--no-columnar` row pickles, same pair-interleaved GC-controlled
timing.  Results land in BENCH_8.json.  Its ``--check`` gate is
core-count independent (same backend on both sides): cc's shipped task
payload bytes must be at least 5x smaller with columnar on, and no
headline query's wall clock may regress more than 10%.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import pathlib
import sys
import time

from repro import ExecutionConfig, RaSQLContext
from repro.datagen import rmat_graph
from repro.queries.library import get_query

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_7.json"
COLUMNAR_OUT = REPO_ROOT / "BENCH_8.json"

NUM_WORKERS = 4

#: The queries the gate enforces — the library's long-running RMAT
#: workloads, where per-iteration work is large enough to amortise the
#: process backend's serialization overhead.
HEADLINE = ("tc", "cc", "sssp")


def cpu_cores() -> int:
    """Cores actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _edge(rows, weighted=False):
    columns = ("Src", "Dst", "Cost") if weighted else ("Src", "Dst")
    return {"edge": (columns, rows)}


def workloads(quick: bool):
    """Ordered ``name -> (tables, sql)`` for the headline queries."""
    sssp_n, cc_n, tc_n = (2_000, 2_000, 300) if quick else (8_000, 8_000, 600)
    return {
        "tc": (_edge(rmat_graph(tc_n, seed=7, weighted=False)),
               get_query("tc").sql),
        "cc": (_edge(rmat_graph(cc_n, seed=7, weighted=False)),
               get_query("cc").sql),
        "sssp": (_edge(rmat_graph(sssp_n, seed=7, weighted=True), True),
                 get_query("sssp").formatted(source=0)),
    }


def make_context(tables, backend, **config_kwargs):
    ctx = RaSQLContext(num_workers=NUM_WORKERS,
                       config=ExecutionConfig(backend=backend,
                                              **config_kwargs))
    for name, (columns, rows) in tables.items():
        ctx.register_table(name, columns, rows)
    return ctx


def timed_sql(ctx, sql):
    wall = time.perf_counter()
    cpu = time.process_time()
    result = ctx.sql(sql)
    wall = time.perf_counter() - wall
    cpu = time.process_time() - cpu
    return sorted(result.rows, key=repr), ctx.last_run.iterations, wall, cpu


def bench_query(name, tables, sql, best_of):
    """Paired simulated/process timing on warm contexts.

    One sample = one simulated run immediately followed by one process
    run, with the collector paused across the pair, so slow machine
    drift and GC pauses hit both sides equally (see the committed
    methodology note in bench_kernels.run_batch).
    """
    sim_ctx = make_context(tables, "simulated")
    proc_ctx = make_context(tables, "process")
    try:
        if not proc_ctx.cluster.backend.remote_ready():
            raise SystemExit(f"{name}: process pool failed to spawn")
        # Warm-up pair: worker imports, term compilation, session paths.
        rows_sim, iters_sim, _, _ = timed_sql(sim_ctx, sql)
        rows_proc, iters_proc, _, _ = timed_sql(proc_ctx, sql)

        sim = {"wall": float("inf"), "cpu": float("inf")}
        proc = {"wall": float("inf"), "cpu": float("inf")}
        for _ in range(best_of):
            gc.collect()
            gc.disable()
            try:
                rows_sim, iters_sim, wall_s, cpu_s = timed_sql(sim_ctx, sql)
                rows_proc, iters_proc, wall_p, cpu_p = timed_sql(proc_ctx,
                                                                 sql)
            finally:
                gc.enable()
            sim["wall"] = min(sim["wall"], wall_s)
            sim["cpu"] = min(sim["cpu"], cpu_s)
            proc["wall"] = min(proc["wall"], wall_p)
            proc["cpu"] = min(proc["cpu"], cpu_p)
            if rows_proc != rows_sim:
                raise SystemExit(f"{name}: process backend changed "
                                 "result rows")
            if iters_proc != iters_sim:
                raise SystemExit(f"{name}: iteration count diverged "
                                 f"({iters_proc} vs {iters_sim})")
        supervision = proc_ctx.last_run.supervision_summary()
        if supervision["process_tasks_shipped"] == 0:
            raise SystemExit(f"{name}: no tasks reached the worker pool "
                             "(plan fell back to driver-local execution)")
        if supervision["process_backend_degradations"]:
            raise SystemExit(f"{name}: process run degraded to the "
                             "simulated oracle mid-benchmark")
    finally:
        proc_ctx.close()
    return {
        "wall_simulated_s": round(sim["wall"], 4),
        "wall_process_s": round(proc["wall"], 4),
        "cpu_simulated_s": round(sim["cpu"], 4),
        "cpu_process_s": round(proc["cpu"], 4),
        "speedup": round(sim["wall"] / max(proc["wall"], 1e-9), 3),
        "iterations": iters_proc,
        "bit_exact": True,
        "rows": len(rows_proc),
        "tasks_shipped": int(supervision["process_tasks_shipped"]),
        "payload_bytes": int(supervision["process_payload_bytes"]),
    }


def bench_columnar_query(name, tables, sql, best_of):
    """Paired columnar-on/columnar-off timing, both on the process pool.

    Same methodology as :func:`bench_query` (interleaved pairs, GC
    paused across each pair, best-of-N minimum), plus per-run wire
    accounting: the driver's ``process_payload_bytes`` /
    ``process_task_messages`` counter deltas around one timed run give
    the bytes and pipe sends of exactly one query on each side.
    """
    on_ctx = make_context(tables, "process")
    off_ctx = make_context(tables, "process", columnar_batches=False)

    def wire_delta(ctx, fn):
        metrics = ctx.cluster.metrics
        before_bytes = metrics.get("process_payload_bytes")
        before_msgs = metrics.get("process_task_messages")
        out = fn()
        return out, (int(metrics.get("process_payload_bytes")
                         - before_bytes),
                     int(metrics.get("process_task_messages")
                         - before_msgs))

    try:
        for ctx, side in ((on_ctx, "columnar"), (off_ctx, "row-wire")):
            if not ctx.cluster.backend.remote_ready():
                raise SystemExit(f"{name}: {side} process pool failed "
                                 "to spawn")
        # Warm-up pair: worker imports, term compilation, session paths.
        rows_on, iters_on, _, _ = timed_sql(on_ctx, sql)
        rows_off, iters_off, _, _ = timed_sql(off_ctx, sql)

        on = {"wall": float("inf"), "cpu": float("inf")}
        off = {"wall": float("inf"), "cpu": float("inf")}
        for _ in range(best_of):
            gc.collect()
            gc.disable()
            try:
                (rows_on, iters_on, wall_on, cpu_on), wire_on = \
                    wire_delta(on_ctx, lambda: timed_sql(on_ctx, sql))
                (rows_off, iters_off, wall_off, cpu_off), wire_off = \
                    wire_delta(off_ctx, lambda: timed_sql(off_ctx, sql))
            finally:
                gc.enable()
            on["wall"] = min(on["wall"], wall_on)
            on["cpu"] = min(on["cpu"], cpu_on)
            off["wall"] = min(off["wall"], wall_off)
            off["cpu"] = min(off["cpu"], cpu_off)
            if rows_on != rows_off:
                raise SystemExit(f"{name}: columnar wire changed "
                                 "result rows")
            if iters_on != iters_off:
                raise SystemExit(f"{name}: iteration count diverged "
                                 f"({iters_on} vs {iters_off})")
        for ctx, side in ((on_ctx, "columnar"), (off_ctx, "row-wire")):
            supervision = ctx.last_run.supervision_summary()
            if supervision["process_tasks_shipped"] == 0:
                raise SystemExit(f"{name}: no tasks reached the {side} "
                                 "worker pool")
            if supervision["process_backend_degradations"]:
                raise SystemExit(f"{name}: {side} run degraded to the "
                                 "simulated oracle mid-benchmark")
    finally:
        on_ctx.close()
        off_ctx.close()
    payload_on, messages_on = wire_on
    payload_off, messages_off = wire_off
    return {
        "wall_columnar_s": round(on["wall"], 4),
        "wall_rows_s": round(off["wall"], 4),
        "cpu_columnar_s": round(on["cpu"], 4),
        "cpu_rows_s": round(off["cpu"], 4),
        "wall_ratio": round(on["wall"] / max(off["wall"], 1e-9), 3),
        "payload_bytes_columnar": payload_on,
        "payload_bytes_rows": payload_off,
        "payload_reduction": round(payload_off / max(payload_on, 1), 2),
        "task_messages_columnar": messages_on,
        "task_messages_rows": messages_off,
        "iterations": iters_on,
        "bit_exact": True,
        "rows": len(rows_on),
    }


def measure_columnar(quick: bool, best_of: int) -> dict:
    results = {}
    for name, (tables, sql) in workloads(quick).items():
        results[name] = bench_columnar_query(name, tables, sql, best_of)
        r = results[name]
        print(f"{name:6s} columnar={r['wall_columnar_s']:.3f}s "
              f"rows={r['wall_rows_s']:.3f}s "
              f"payload {r['payload_bytes_rows']}B -> "
              f"{r['payload_bytes_columnar']}B "
              f"({r['payload_reduction']:.1f}x smaller)")
    return {"best_of": best_of, "num_workers": NUM_WORKERS,
            "cores": cpu_cores(), "queries": results}


def check_columnar(section: dict) -> int:
    """Gate: columnar wire must shrink cc's payload >=5x and must not
    cost more than 10% wall clock on any headline query.

    Same-backend comparison, so — unlike the BENCH_7 speedup gate — it
    holds on single-core boxes too.
    """
    failures = []
    cc_reduction = section["queries"]["cc"]["payload_reduction"]
    status = "ok" if cc_reduction >= 5.0 else "TOO SMALL"
    print(f"check cc      payload reduction={cc_reduction:.1f}x "
          f"(need >=5x)  {status}")
    if cc_reduction < 5.0:
        failures.append("cc payload")
    for name in HEADLINE:
        ratio = section["queries"][name]["wall_ratio"]
        status = "ok" if ratio <= 1.10 else "REGRESSED"
        print(f"check {name:6s} columnar/rows wall ratio={ratio:.3f} "
              f"(limit 1.10)  {status}")
        if ratio > 1.10:
            failures.append(f"{name} wall")
    if failures:
        print(f"columnar gate failures: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0


def measure(quick: bool, best_of: int) -> dict:
    results = {}
    for name, (tables, sql) in workloads(quick).items():
        results[name] = bench_query(name, tables, sql, best_of)
        r = results[name]
        print(f"{name:6s} simulated={r['wall_simulated_s']:.3f}s "
              f"process={r['wall_process_s']:.3f}s "
              f"speedup={r['speedup']:.2f}x "
              f"({r['tasks_shipped']} tasks shipped)")
    return {"best_of": best_of, "num_workers": NUM_WORKERS,
            "cores": cpu_cores(), "queries": results}


def check(section: dict) -> int:
    """Gate: process must beat simulated wall clock — on multi-core.

    Bit-exactness and iteration parity were already asserted inline by
    ``measure`` (a mismatch is an immediate SystemExit), so by the time
    we get here correctness holds; this gate is purely about speed.
    """
    cores = section["cores"]
    if cores <= 1:
        print(f"check: only {cores} CPU core available — real processes "
              "cannot beat a single interpreter on a single core; "
              "SKIPPING the speedup gate (bit-exactness verified).")
        return 0
    failures = []
    for name in HEADLINE:
        got = section["queries"][name]["speedup"]
        status = "ok" if got > 1.0 else "SLOWER"
        print(f"check {name:6s} ({cores} cores) "
              f"process-vs-simulated speedup={got:.2f}x  {status}")
        if got <= 1.0:
            failures.append(name)
    if failures:
        print("process backend slower than simulated on: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small graphs, fewer trials (CI perf smoke)")
    parser.add_argument("--best-of", type=int, default=None,
                        help="trials per query (default: 3, quick: 2)")
    parser.add_argument("--columnar", action="store_true",
                        help="A/B the columnar batch wire (process backend "
                             "on both sides) into BENCH_8.json")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="results file to update (default: BENCH_7.json; "
                             "BENCH_8.json with --columnar)")
    parser.add_argument("--check", type=pathlib.Path, metavar="BASELINE",
                        nargs="?", const=DEFAULT_OUT,
                        help="re-measure and enforce the gate instead of "
                             "updating --out")
    args = parser.parse_args(argv)
    best_of = args.best_of or (2 if args.quick else 3)
    mode = "quick" if args.quick else "full"

    if args.columnar:
        section = measure_columnar(args.quick, best_of)
        if args.check is not None:
            return check_columnar(section)
    else:
        section = measure(args.quick, best_of)
        if args.check is not None:
            return check(section)

    path = args.out or (COLUMNAR_OUT if args.columnar else DEFAULT_OUT)
    existing = json.loads(path.read_text()) if path.exists() else {}
    existing[mode] = section
    path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path} [{mode}] (cores={section['cores']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
