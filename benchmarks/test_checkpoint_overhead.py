"""Checkpoint overhead vs interval (durability experiment).

Durable fixpoint checkpoints buy kill-and-resume at the price of
serializing the recursion state every ``checkpoint_interval``
iterations.  This experiment quantifies that price — SSSP over an RMAT
graph, sweeping the interval — and pins the contract the serving tier
relies on: at the default interval the simulated-time overhead stays
under 10%, and with checkpointing off the feature costs exactly
nothing (no counters, no writes, no time).

Checkpointing forces ``decomposed_plans=False`` (iteration-granular
snapshots need the one-clique barrier), so the baseline runs with the
same plan shape — the table isolates the *durability* cost, not the
plan-choice delta.
"""

import pytest

from harness import NUM_WORKERS, dump_trace, once, report, rmat_tables
from repro import RaSQLContext
from repro.core.config import DEFAULT_CHECKPOINT_INTERVAL
from repro.queries import get_query

GRAPH_SIZE = 2_000

#: Sweep from every-iteration (worst case) past the default; ``None``
#: is the checkpoint-off baseline.
INTERVALS = [1, 2, DEFAULT_CHECKPOINT_INTERVAL, 8]

#: The durability contract: at the default interval, simulated-time
#: overhead vs the same-plan baseline stays below this fraction.
MAX_DEFAULT_OVERHEAD = 0.10


def make_context():
    ctx = RaSQLContext(num_workers=NUM_WORKERS)
    for name, (columns, rows) in rmat_tables(GRAPH_SIZE).items():
        ctx.register_table(name, columns, rows)
    return ctx


@pytest.mark.benchmark(group="checkpoint-overhead")
def test_checkpoint_overhead_vs_interval(benchmark, tmp_path):
    query = get_query("sssp").formatted(source=0)

    def run():
        baseline_ctx = make_context()
        baseline_cfg = baseline_ctx.config.but(decomposed_plans=False)
        baseline = baseline_ctx.sql(query, config=baseline_cfg)
        baseline_time = baseline_ctx.last_run.sim_time
        assert all(v == 0 for v in
                   baseline_ctx.last_run.checkpoint_summary().values()), \
            "checkpoint-off run paid durability counters"

        rows = [["off", "-", 0, 0, baseline_time, 0.0, "-"]]
        last_trace = None
        for interval in INTERVALS:
            ctx = make_context()
            cfg = ctx.config.but(checkpoint_interval=interval,
                                 checkpoint_dir=str(tmp_path / str(interval)))
            result = ctx.sql(query, config=cfg)
            assert sorted(result.rows) == sorted(baseline.rows), \
                f"interval {interval}: results diverged under checkpointing"
            summary = ctx.last_run.checkpoint_summary()
            sim_time = ctx.last_run.sim_time
            overhead = (sim_time - baseline_time) / baseline_time
            rows.append([
                f"every {interval}",
                ctx.last_run.query_id,
                int(summary["checkpoint_writes"]),
                int(summary["checkpoint_bytes"]),
                sim_time,
                sim_time - baseline_time,
                f"{overhead:.1%}",
            ])
            if interval == DEFAULT_CHECKPOINT_INTERVAL:
                assert overhead < MAX_DEFAULT_OVERHEAD, (
                    f"default interval {interval} costs {overhead:.1%} "
                    f"simulated time, above the {MAX_DEFAULT_OVERHEAD:.0%} "
                    f"durability budget")
                last_trace = ctx.last_run.trace
        return rows, last_trace

    rows, trace = once(benchmark, run)
    report(
        "checkpoint_overhead",
        f"Checkpoint overhead vs interval (SSSP, RMAT-{GRAPH_SIZE // 1000}K, "
        f"{NUM_WORKERS} workers)",
        ["interval", "query_id", "writes", "bytes", "sim_time_s",
         "overhead_s", "overhead"],
        rows,
        notes="All rows verified bit-exact against the checkpoint-off "
              "baseline (same plan shape: checkpointing pins "
              "decomposed_plans=False, so the baseline does too). The "
              f"default interval ({DEFAULT_CHECKPOINT_INTERVAL}) must stay "
              f"under {MAX_DEFAULT_OVERHEAD:.0%} simulated-time overhead.")
    dump_trace("checkpoint_overhead", trace, label="default-interval")
