"""Serving-layer benchmark: thousands of clients; writes BENCH_6.json.

Drives the multi-tenant query service (``repro.serving``) with the
seeded mixed workload — ~70% served-view reads, ~25% SQL split between
hot repeated statements and a pooled set, ~5% inserts — from a large
population of named client sessions, and records the scorecard:

- p50/p99/mean **simulated** end-to-end latency (submit → finish,
  admission queue time included), overall and per request kind;
- plan-cache, result-cache, and view-snapshot hit rates;
- admission traffic (queued / rejected counts).

Latencies are simulated-clock readings; the cost model folds measured
task CPU seconds in (``CostModel.cpu_scale``), so repeated runs agree
to ~milliseconds rather than bit-for-bit.  Everything else — the op
stream, the scheduler's interleaving, every result row — is exactly
reproducible from the seed.

Modes:

    python benchmarks/bench_serving.py             # full -> "full"
    python benchmarks/bench_serving.py --quick     # small -> "quick"
    python benchmarks/bench_serving.py --quick --check BENCH_6.json

``--check`` re-runs and fails (exit 1) when the service degrades against
the committed baseline: requests failing, cache hit rates falling, or
p99 simulated latency inflating beyond tolerance.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.serving import run_workload

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_6.json"

#: (clients, requests) per mode.  Full mode satisfies the "thousands of
#: simulated clients" bar; quick is the CI perf-smoke size.
SCALE = {"full": (1200, 2400), "quick": (150, 450)}
SEED = 7

#: --check tolerances.
P99_TOLERANCE = 0.25          # p99 may inflate by at most 25%
HIT_RATE_SLACK = 0.10         # absolute slack on cache hit rates


def measure(mode: str) -> dict:
    clients, requests = SCALE[mode]
    wall = time.perf_counter()
    summary = run_workload(clients=clients, requests=requests, seed=SEED,
                           quick=(mode == "quick"))
    summary["wall_s"] = round(time.perf_counter() - wall, 2)
    overall = summary["latency"]["overall"]
    cache = summary["cache"]
    print(f"{mode}: {requests} requests / {clients} clients in "
          f"{summary['wall_s']}s wall, {summary['sim_time_s']}s simulated")
    print(f"  latency p50={overall['p50_s']:.4f}s p99={overall['p99_s']:.4f}s")
    print(f"  plan cache {cache['plan']['hit_rate']:.1%}, result cache "
          f"{cache['result']['hit_rate']:.1%}, view snapshots "
          f"{cache['view_snapshot_hit_rate']:.1%}")
    print(f"  queued={summary['queued']} rejected={summary['rejected']} "
          f"failed={summary['failed']}")
    return summary


def check(section: dict, baseline_path: pathlib.Path, mode: str) -> int:
    baseline = json.loads(baseline_path.read_text()).get(mode)
    if baseline is None:
        print(f"check: baseline {baseline_path} has no '{mode}' section",
              file=sys.stderr)
        return 1
    failures = []

    def gauge(name, got, ok, detail):
        status = "ok" if ok else "REGRESSED"
        print(f"check {name:28s} {detail}  {status}")
        if not ok:
            failures.append(name)

    gauge("completed", section["completed"],
          section["completed"] == section["requests"],
          f"{section['completed']}/{section['requests']} requests")
    p99, base_p99 = (section["latency"]["overall"]["p99_s"],
                     baseline["latency"]["overall"]["p99_s"])
    gauge("p99_latency", p99, p99 <= base_p99 * (1 + P99_TOLERANCE),
          f"baseline={base_p99:.4f}s measured={p99:.4f}s "
          f"ceiling={base_p99 * (1 + P99_TOLERANCE):.4f}s")
    for name, got, base in (
            ("plan_cache_hit_rate", section["cache"]["plan"]["hit_rate"],
             baseline["cache"]["plan"]["hit_rate"]),
            ("result_cache_hit_rate", section["cache"]["result"]["hit_rate"],
             baseline["cache"]["result"]["hit_rate"]),
            ("view_snapshot_hit_rate",
             section["cache"]["view_snapshot_hit_rate"],
             baseline["cache"]["view_snapshot_hit_rate"])):
        gauge(name, got, got >= base - HIT_RATE_SLACK,
              f"baseline={base:.1%} floor={base - HIT_RATE_SLACK:.1%} "
              f"measured={got:.1%}")
    if failures:
        print(f"serving regression in: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller population (CI perf smoke)")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help="results file to update (default: BENCH_6.json)")
    parser.add_argument("--check", type=pathlib.Path, metavar="BASELINE",
                        help="compare against a committed baseline instead "
                             "of updating --out")
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"
    section = measure(mode)

    if args.check:
        return check(section, args.check, mode)

    existing = (json.loads(args.out.read_text())
                if args.out.exists() else {})
    existing[mode] = section
    args.out.write_text(json.dumps(existing, indent=2) + "\n")
    print(f"wrote {args.out} [{mode}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
