"""Figure 8: five-system comparison on the RMAT sweep.

Paper shape (REACH/CC/SSSP over RMAT-1M..128M, log-log):

- RaSQL is fastest on REACH and within ~10% of the fastest on CC/SSSP at
  the larger sizes;
- Giraph tracks RaSQL closely (well-tuned, but pays Hadoop job startup);
- GraphX is 4x-8x slower than RaSQL;
- Myria is fastest on the *small* sizes (minimal per-stage overhead) but
  scales poorly and falls behind as data grows — the curves cross;
- BigDatalog sits between RaSQL and GraphX.

The sweep here is the same doubling grid scaled ~1000x (see DESIGN.md).
One source vertex and one run per point (the paper averages 5x5; the
determinism of the simulated clock makes repetition unnecessary except
for CPU noise, which min-of-2 absorbs in the ablation figures).
"""

from repro.baselines.systems import (
    BigDatalogSystem,
    GiraphSystem,
    GraphXSystem,
    MyriaSystem,
    RaSQLSystem,
)

from harness import RMAT_SIZES, once, report, rmat_label, rmat_tables, run_system

SYSTEMS = [RaSQLSystem, BigDatalogSystem, GraphXSystem, GiraphSystem,
           MyriaSystem]
QUERIES = ["reach", "cc", "sssp"]


def test_fig8_systems_on_rmat(benchmark):
    def experiment():
        times: dict[tuple, float] = {}
        for n in RMAT_SIZES:
            tables = rmat_tables(n)
            for query in QUERIES:
                for system_cls in SYSTEMS:
                    result = run_system(
                        system_cls, query, tables,
                        source=0 if query in ("reach", "sssp") else None)
                    times[(query, n, system_cls.name)] = result.sim_seconds
        return times

    times = once(benchmark, experiment)

    for query in QUERIES:
        rows = []
        for n in RMAT_SIZES:
            rows.append([rmat_label(n)]
                        + [times[(query, n, s.name)] for s in SYSTEMS])
        report(f"fig8_{query}",
               f"Figure 8 ({query.upper()}): system comparison on RMAT "
               "(sim seconds)",
               ["dataset"] + [s.name for s in SYSTEMS], rows,
               notes="paper: RaSQL fastest or within 10%; GraphX 4x-8x "
                     "slower; Myria wins small, lags large")

    largest, smallest = max(RMAT_SIZES), min(RMAT_SIZES)
    for query in QUERIES:
        rasql_large = times[(query, largest, "rasql")]
        # GraphX well behind RaSQL at scale (paper 4x-8x; at this scale
        # the reproduction lands 1.5x-3x — see EXPERIMENTS.md).
        assert times[(query, largest, "graphx")] > 1.5 * rasql_large, query
        # RaSQL clearly ahead of BigDatalog ("huge improvements").
        assert times[(query, largest, "bigdatalog")] > 1.3 * rasql_large, query
        # Giraph tracks RaSQL ("performs similar to RaSQL on CC and SSSP").
        giraph_ratio = times[(query, largest, "giraph")] / rasql_large
        assert 0.5 < giraph_ratio < 2.5, (query, giraph_ratio)
        # Myria's crossover: relatively better at the smallest size than
        # at the largest (ratio to RaSQL grows with size).
        myria_small_ratio = (times[(query, smallest, "myria")]
                             / times[(query, smallest, "rasql")])
        myria_large_ratio = (times[(query, largest, "myria")]
                             / times[(query, largest, "rasql")])
        assert myria_large_ratio > myria_small_ratio, query
        # Myria is the fastest system at the smallest size.
        fastest_small = min(times[(query, smallest, s.name)]
                            for s in SYSTEMS)
        assert times[(query, smallest, "myria")] <= fastest_small + 1e-9, query
