"""Wall-clock A/B benchmark for the kernel layer; writes BENCH_5.json.

Runs every library query twice per trial — kernels+adaptive joins OFF
(the reference interpreter paths) and ON (the default) — interleaved so
machine drift hits both sides equally, keeps the best-of-N minimum of
both wall and CPU clocks, and asserts bit-exact rows and identical
iteration counts inline.  The headline queries additionally record a
columnar-batches on/off pair inside the kernels-on configuration
(``wall_columnar_s`` / ``wall_no_columnar_s`` / ``columnar_ratio``).  Headline inputs are the RMAT graphs the
Section 8 experiments use; the remaining queries run on the library's
canonical small tables, where the point is the bit-exactness assertion
rather than the (noise-dominated) timing.

Modes:

    python benchmarks/bench_kernels.py             # full run -> "full"
    python benchmarks/bench_kernels.py --quick     # small run -> "quick"
    python benchmarks/bench_kernels.py --quick --check BENCH_5.json

``--check`` re-measures and fails (exit 1) if a headline query's
speedup fell more than 25% below the committed baseline's matching
section, guarding the kernels against silent perf regressions in CI.
It also enforces the small-query dispatch gate
(``ExecutionConfig.kernel_min_rows``): the tiny-input queries that
regressed under PR-5's kernel layer (``same_generation`` 0.75x,
``bom_stratified`` 0.68x) must stay at parity with the reference loops
(>= 0.9x absolute, allowing sub-millisecond timing noise around the
gated 1.0x).
"""

from __future__ import annotations

import argparse
import gc
import json
import pathlib
import random
import sys
import time

from repro import ExecutionConfig, RaSQLContext
from repro.datagen import rmat_graph
from repro.queries.library import get_query

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_5.json"

REFERENCE = ExecutionConfig(kernels=False, adaptive_joins=False)
#: Kernels on, columnar batch layer off — the "off" side of the columnar
#: A/B dimension recorded for the headline queries (see measure()).
NO_COLUMNAR = ExecutionConfig(columnar_batches=False)
NUM_WORKERS = 4

#: Queries whose speedup the ``--check`` gate enforces.  The rest of the
#: library runs on tiny canonical tables where timing is pure noise.
HEADLINE = ("tc", "cc", "sssp")

REGRESSION_TOLERANCE = 0.25

#: Tiny-input queries the size gate must keep at reference-loop parity.
#: With the gate active both sides run the same code, so the true ratio
#: is 1.0; the floor leaves room for sub-millisecond timing noise.
SMALL_GATED = ("same_generation", "bom_stratified")
SMALL_GATED_FLOOR = 0.9


def random_graph(n, m, seed, weighted=False, acyclic=False):
    rng = random.Random(seed)
    edges = set()
    while len(edges) < m:
        a, b = rng.randrange(n), rng.randrange(n)
        if a == b:
            continue
        if acyclic and a > b:
            a, b = b, a
        edges.add((a, b))
    if weighted:
        return [(a, b, rng.randint(1, 10)) for a, b in sorted(edges)]
    return sorted(edges)


def _edge(rows, weighted=False):
    columns = ("Src", "Dst", "Cost") if weighted else ("Src", "Dst")
    return {"edge": (columns, rows)}


def _bom_tables():
    assbl = [("car", "engine"), ("car", "wheel"), ("car", "frame"),
             ("engine", "piston"), ("engine", "valve"), ("wheel", "rim"),
             ("frame", "beam"), ("beam", "bolt")]
    basic = [("piston", 3), ("valve", 7), ("rim", 2), ("bolt", 4)]
    return {"assbl": (("Part", "SPart"), assbl),
            "basic": (("Part", "Days"), basic)}


def _mlm_tables():
    sales = [(i, 50.0 * (i + 1)) for i in range(1, 9)]
    sponsor = [(1, 2), (1, 3), (2, 4), (2, 5), (3, 6), (5, 7), (6, 8)]
    return {"sales": (("M", "P"), sales), "sponsor": (("M1", "M2"), sponsor)}


def workloads(quick: bool):
    """Ordered ``name -> (tables, sql)`` covering the whole library."""
    sssp_n, cc_n, tc_n = (2_000, 2_000, 300) if quick else (8_000, 8_000, 600)
    small = random_graph(24, 60, seed=5)
    return {
        "tc": (_edge(rmat_graph(tc_n, seed=7, weighted=False)),
               get_query("tc").sql),
        "cc": (_edge(rmat_graph(cc_n, seed=7, weighted=False)),
               get_query("cc").sql),
        "sssp": (_edge(rmat_graph(sssp_n, seed=7, weighted=True), True),
                 get_query("sssp").formatted(source=0)),
        "reach": (_edge(rmat_graph(cc_n, seed=7, weighted=False)),
                  get_query("reach").formatted(source=0)),
        "cc_labels": (_edge(small), get_query("cc_labels").sql),
        "count_paths": (_edge(random_graph(24, 60, seed=5, acyclic=True)),
                        get_query("count_paths").formatted(source=0)),
        "apsp": (_edge(random_graph(12, 30, seed=5, weighted=True), True),
                 get_query("apsp").sql),
        "same_generation": (
            {"rel": (("Parent", "Child"),
                     [(1, 2), (1, 3), (2, 4), (2, 5), (3, 6), (4, 7)])},
            get_query("same_generation").sql),
        "bom": (_bom_tables(), get_query("bom").sql),
        "bom_stratified": (_bom_tables(), get_query("bom_stratified").sql),
        "management": (
            {"report": (("Emp", "Mgr"),
                        [(2, 1), (3, 1), (4, 2), (5, 2), (6, 4), (7, 6),
                         (8, 3)])},
            get_query("management").sql),
        "mlm_bonus": (_mlm_tables(), get_query("mlm_bonus").sql),
        "interval_coalesce": (
            {"inter": (("S", "E"),
                       [(1, 4), (2, 5), (4, 8), (10, 12), (11, 15),
                        (20, 21), (21, 25)])},
            get_query("interval_coalesce").sql),
        "party_attendance": (
            {"organizer": (("OrgName",), [("ann",)]),
             "friend": (("Pname", "Fname"),
                        [("ann", "bob"), ("ann", "cat"), ("ann", "dan"),
                         ("bob", "cat"), ("cat", "dan"), ("bob", "eve"),
                         ("cat", "eve"), ("dan", "eve")])},
            get_query("party_attendance").sql),
        "company_control": (
            {"shares": (("By", "Of", "Percent"),
                        [("a", "b", 60), ("b", "c", 30), ("a", "c", 30),
                         ("c", "d", 51), ("b", "e", 20), ("c", "e", 40)])},
            get_query("company_control").sql),
    }


def run_once(tables, sql, config):
    ctx = RaSQLContext(num_workers=NUM_WORKERS)
    for name, (columns, rows) in tables.items():
        ctx.register_table(name, columns, rows)
    wall = time.perf_counter()
    cpu = time.process_time()
    result = ctx.sql(sql, config=config)
    wall = time.perf_counter() - wall
    cpu = time.process_time() - cpu
    return (sorted(result.rows, key=repr), ctx.last_run.iterations,
            wall, cpu)


def run_batch(tables, sql, best_of, repeat,
              config_off=REFERENCE, config_on=None):
    """Paired off/on timing: ``best_of`` samples of ``repeat`` run pairs.

    Sub-10ms queries are noise-dominated when timed singly — the min of
    N single runs compares two draws from overlapping distributions and
    lands on either side of the true ratio.  Two countermeasures, both
    per sample: the off and on runs alternate at *run* granularity so
    slow machine drift hits both sides of a sample equally, and the
    collector is paused (collected at each sample boundary) so multi-ms
    GC pauses don't land on one side of a 2ms-per-run comparison.
    Batching then shrinks the residual variance ~sqrt(repeat)-fold,
    which is what lets the ``--check`` gate hold tiny-query parity to a
    tight floor.
    """
    on = {"wall": float("inf"), "cpu": float("inf")}
    off = {"wall": float("inf"), "cpu": float("inf")}
    for _ in range(best_of):
        gc.collect()
        gc.disable()
        try:
            wall_off = cpu_off = wall_on = cpu_on = 0.0
            for _ in range(repeat):
                rows_off, iters_off, wall, cpu = run_once(tables, sql,
                                                          config_off)
                wall_off += wall
                cpu_off += cpu
                rows_on, iters_on, wall, cpu = run_once(tables, sql,
                                                        config_on)
                wall_on += wall
                cpu_on += cpu
        finally:
            gc.enable()
        off["wall"] = min(off["wall"], wall_off / repeat)
        off["cpu"] = min(off["cpu"], cpu_off / repeat)
        on["wall"] = min(on["wall"], wall_on / repeat)
        on["cpu"] = min(on["cpu"], cpu_on / repeat)
        if rows_on != rows_off:
            raise SystemExit(f"{name_of(sql)}: kernels changed result rows")
        if iters_on != iters_off:
            raise SystemExit(f"{name_of(sql)}: iteration count diverged "
                             f"({iters_on} vs {iters_off})")
    return off, on, rows_on, iters_on


def name_of(sql: str) -> str:
    return " ".join(sql.split())[:60]


def gate_engaged(tables, sql) -> bool:
    """Did the size gate route this query off the kernel paths?"""
    ctx = RaSQLContext(num_workers=NUM_WORKERS)
    for name, (columns, rows) in tables.items():
        ctx.register_table(name, columns, rows)
    ctx.sql(sql)
    return ctx.last_run.metrics.get("kernel_small_input_gate", 0) > 0


def bench_query(name, tables, sql, best_of, repeat=1):
    off, on, rows_on, iters_on = run_batch(tables, sql, best_of, repeat)
    return {
        "wall_off_s": round(off["wall"], 4),
        "wall_on_s": round(on["wall"], 4),
        "cpu_off_s": round(off["cpu"], 4),
        "cpu_on_s": round(on["cpu"], 4),
        "speedup": round(off["wall"] / max(on["wall"], 1e-9), 3),
        "cpu_speedup": round(off["cpu"] / max(on["cpu"], 1e-9), 3),
        "iterations": iters_on,
        "bit_exact": True,
        "rows": len(rows_on),
    }


#: Per-sample batch size for the tiny canonical-table queries; the
#: RMAT-graph headline queries are long enough to time singly.
SMALL_QUERY_REPEAT = 40
BATCH_THRESHOLD = ("tc", "cc", "sssp", "reach")


def measure(quick: bool, best_of: int) -> dict:
    results = {}
    for name, (tables, sql) in workloads(quick).items():
        repeat = 1 if name in BATCH_THRESHOLD else SMALL_QUERY_REPEAT
        results[name] = bench_query(name, tables, sql, best_of,
                                    repeat=repeat)
        if name in SMALL_GATED:
            # Parity evidence: the size gate routed the kernels-on side
            # onto the reference loops, so both timed sides ran the same
            # code and the true ratio is 1.0 by construction — the
            # measured speedup samples that constant through timing
            # noise.
            results[name]["gate_engaged"] = gate_engaged(tables, sql)
        if name in HEADLINE:
            # Second A/B dimension: columnar batches on/off inside the
            # kernels-on configuration (same pairing + GC discipline;
            # bit-exactness asserted by run_batch as usual).  Simulated
            # backend, so this records the execution-path cost of the
            # batch layer; the wire-side numbers live in BENCH_8.json
            # (bench_backends.py --columnar).
            coff, con, _, _ = run_batch(tables, sql, best_of, repeat,
                                        config_off=NO_COLUMNAR)
            results[name]["wall_no_columnar_s"] = round(coff["wall"], 4)
            results[name]["wall_columnar_s"] = round(con["wall"], 4)
            results[name]["columnar_ratio"] = round(
                con["wall"] / max(coff["wall"], 1e-9), 3)
            print(f"{name:18s} columnar={con['wall']:.3f}s "
                  f"no-columnar={coff['wall']:.3f}s "
                  f"ratio={results[name]['columnar_ratio']:.2f}x")
        print(f"{name:18s} off={results[name]['wall_off_s']:.3f}s "
              f"on={results[name]['wall_on_s']:.3f}s "
              f"speedup={results[name]['speedup']:.2f}x "
              f"(cpu {results[name]['cpu_speedup']:.2f}x)")
    return {"best_of": best_of, "num_workers": NUM_WORKERS,
            "queries": results}


def check(section: dict, baseline_path: pathlib.Path, mode: str) -> int:
    baseline = json.loads(baseline_path.read_text()).get(mode)
    if baseline is None:
        print(f"check: baseline {baseline_path} has no '{mode}' section",
              file=sys.stderr)
        return 1
    failures = []
    for name in HEADLINE:
        expected = baseline["queries"][name]["speedup"]
        got = section["queries"][name]["speedup"]
        floor = expected * (1 - REGRESSION_TOLERANCE)
        status = "ok" if got >= floor else "REGRESSED"
        print(f"check {name:6s} baseline={expected:.2f}x floor={floor:.2f}x "
              f"measured={got:.2f}x  {status}")
        if got < floor:
            failures.append(name)
    for name in SMALL_GATED:
        got = section["queries"][name]["speedup"]
        engaged = section["queries"][name].get("gate_engaged", False)
        ok = got >= SMALL_GATED_FLOOR and engaged
        status = "ok" if ok else "REGRESSED"
        print(f"check {name:16s} gate floor={SMALL_GATED_FLOOR:.2f}x "
              f"measured={got:.2f}x gate_engaged={engaged}  {status}")
        if not ok:
            failures.append(name)
    if failures:
        print(f"perf regression (> {REGRESSION_TOLERANCE:.0%}) in: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small graphs, fewer trials (CI perf smoke)")
    parser.add_argument("--best-of", type=int, default=None,
                        help="trials per query (default: 5, quick: 3)")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help="results file to update (default: BENCH_5.json)")
    parser.add_argument("--check", type=pathlib.Path, metavar="BASELINE",
                        help="compare headline speedups against a committed "
                             "baseline instead of updating --out")
    args = parser.parse_args(argv)

    best_of = args.best_of or (3 if args.quick else 5)
    mode = "quick" if args.quick else "full"
    section = measure(args.quick, best_of)

    if args.check:
        return check(section, args.check, mode)

    existing = (json.loads(args.out.read_text())
                if args.out.exists() else {})
    existing[mode] = section
    args.out.write_text(json.dumps(existing, indent=2) + "\n")
    print(f"wrote {args.out} [{mode}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
