"""Wall-clock A/B benchmark for the kernel layer; writes BENCH_5.json.

Runs every library query twice per trial — kernels+adaptive joins OFF
(the reference interpreter paths) and ON (the default) — interleaved so
machine drift hits both sides equally, keeps the best-of-N minimum of
both wall and CPU clocks, and asserts bit-exact rows and identical
iteration counts inline.  Headline inputs are the RMAT graphs the
Section 8 experiments use; the remaining queries run on the library's
canonical small tables, where the point is the bit-exactness assertion
rather than the (noise-dominated) timing.

Modes:

    python benchmarks/bench_kernels.py             # full run -> "full"
    python benchmarks/bench_kernels.py --quick     # small run -> "quick"
    python benchmarks/bench_kernels.py --quick --check BENCH_5.json

``--check`` re-measures and fails (exit 1) if a headline query's
speedup fell more than 25% below the committed baseline's matching
section, guarding the kernels against silent perf regressions in CI.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
import time

from repro import ExecutionConfig, RaSQLContext
from repro.datagen import rmat_graph
from repro.queries.library import get_query

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_5.json"

REFERENCE = ExecutionConfig(kernels=False, adaptive_joins=False)
NUM_WORKERS = 4

#: Queries whose speedup the ``--check`` gate enforces.  The rest of the
#: library runs on tiny canonical tables where timing is pure noise.
HEADLINE = ("tc", "cc", "sssp")

REGRESSION_TOLERANCE = 0.25


def random_graph(n, m, seed, weighted=False, acyclic=False):
    rng = random.Random(seed)
    edges = set()
    while len(edges) < m:
        a, b = rng.randrange(n), rng.randrange(n)
        if a == b:
            continue
        if acyclic and a > b:
            a, b = b, a
        edges.add((a, b))
    if weighted:
        return [(a, b, rng.randint(1, 10)) for a, b in sorted(edges)]
    return sorted(edges)


def _edge(rows, weighted=False):
    columns = ("Src", "Dst", "Cost") if weighted else ("Src", "Dst")
    return {"edge": (columns, rows)}


def _bom_tables():
    assbl = [("car", "engine"), ("car", "wheel"), ("car", "frame"),
             ("engine", "piston"), ("engine", "valve"), ("wheel", "rim"),
             ("frame", "beam"), ("beam", "bolt")]
    basic = [("piston", 3), ("valve", 7), ("rim", 2), ("bolt", 4)]
    return {"assbl": (("Part", "SPart"), assbl),
            "basic": (("Part", "Days"), basic)}


def _mlm_tables():
    sales = [(i, 50.0 * (i + 1)) for i in range(1, 9)]
    sponsor = [(1, 2), (1, 3), (2, 4), (2, 5), (3, 6), (5, 7), (6, 8)]
    return {"sales": (("M", "P"), sales), "sponsor": (("M1", "M2"), sponsor)}


def workloads(quick: bool):
    """Ordered ``name -> (tables, sql)`` covering the whole library."""
    sssp_n, cc_n, tc_n = (2_000, 2_000, 300) if quick else (8_000, 8_000, 600)
    small = random_graph(24, 60, seed=5)
    return {
        "tc": (_edge(rmat_graph(tc_n, seed=7, weighted=False)),
               get_query("tc").sql),
        "cc": (_edge(rmat_graph(cc_n, seed=7, weighted=False)),
               get_query("cc").sql),
        "sssp": (_edge(rmat_graph(sssp_n, seed=7, weighted=True), True),
                 get_query("sssp").formatted(source=0)),
        "reach": (_edge(rmat_graph(cc_n, seed=7, weighted=False)),
                  get_query("reach").formatted(source=0)),
        "cc_labels": (_edge(small), get_query("cc_labels").sql),
        "count_paths": (_edge(random_graph(24, 60, seed=5, acyclic=True)),
                        get_query("count_paths").formatted(source=0)),
        "apsp": (_edge(random_graph(12, 30, seed=5, weighted=True), True),
                 get_query("apsp").sql),
        "same_generation": (
            {"rel": (("Parent", "Child"),
                     [(1, 2), (1, 3), (2, 4), (2, 5), (3, 6), (4, 7)])},
            get_query("same_generation").sql),
        "bom": (_bom_tables(), get_query("bom").sql),
        "bom_stratified": (_bom_tables(), get_query("bom_stratified").sql),
        "management": (
            {"report": (("Emp", "Mgr"),
                        [(2, 1), (3, 1), (4, 2), (5, 2), (6, 4), (7, 6),
                         (8, 3)])},
            get_query("management").sql),
        "mlm_bonus": (_mlm_tables(), get_query("mlm_bonus").sql),
        "interval_coalesce": (
            {"inter": (("S", "E"),
                       [(1, 4), (2, 5), (4, 8), (10, 12), (11, 15),
                        (20, 21), (21, 25)])},
            get_query("interval_coalesce").sql),
        "party_attendance": (
            {"organizer": (("OrgName",), [("ann",)]),
             "friend": (("Pname", "Fname"),
                        [("ann", "bob"), ("ann", "cat"), ("ann", "dan"),
                         ("bob", "cat"), ("cat", "dan"), ("bob", "eve"),
                         ("cat", "eve"), ("dan", "eve")])},
            get_query("party_attendance").sql),
        "company_control": (
            {"shares": (("By", "Of", "Percent"),
                        [("a", "b", 60), ("b", "c", 30), ("a", "c", 30),
                         ("c", "d", 51), ("b", "e", 20), ("c", "e", 40)])},
            get_query("company_control").sql),
    }


def run_once(tables, sql, config):
    ctx = RaSQLContext(num_workers=NUM_WORKERS)
    for name, (columns, rows) in tables.items():
        ctx.register_table(name, columns, rows)
    wall = time.perf_counter()
    cpu = time.process_time()
    result = ctx.sql(sql, config=config)
    wall = time.perf_counter() - wall
    cpu = time.process_time() - cpu
    return (sorted(result.rows, key=repr), ctx.last_run.iterations,
            wall, cpu)


def bench_query(name, tables, sql, best_of):
    on = {"wall": float("inf"), "cpu": float("inf")}
    off = {"wall": float("inf"), "cpu": float("inf")}
    for _ in range(best_of):
        rows_off, iters_off, wall, cpu = run_once(tables, sql, REFERENCE)
        off["wall"] = min(off["wall"], wall)
        off["cpu"] = min(off["cpu"], cpu)
        rows_on, iters_on, wall, cpu = run_once(tables, sql, None)
        on["wall"] = min(on["wall"], wall)
        on["cpu"] = min(on["cpu"], cpu)
        if rows_on != rows_off:
            raise SystemExit(f"{name}: kernels changed the result rows")
        if iters_on != iters_off:
            raise SystemExit(f"{name}: iteration count diverged "
                             f"({iters_on} vs {iters_off})")
    return {
        "wall_off_s": round(off["wall"], 4),
        "wall_on_s": round(on["wall"], 4),
        "cpu_off_s": round(off["cpu"], 4),
        "cpu_on_s": round(on["cpu"], 4),
        "speedup": round(off["wall"] / max(on["wall"], 1e-9), 3),
        "cpu_speedup": round(off["cpu"] / max(on["cpu"], 1e-9), 3),
        "iterations": iters_on,
        "bit_exact": True,
        "rows": len(rows_on),
    }


def measure(quick: bool, best_of: int) -> dict:
    results = {}
    for name, (tables, sql) in workloads(quick).items():
        results[name] = bench_query(name, tables, sql, best_of)
        print(f"{name:18s} off={results[name]['wall_off_s']:.3f}s "
              f"on={results[name]['wall_on_s']:.3f}s "
              f"speedup={results[name]['speedup']:.2f}x "
              f"(cpu {results[name]['cpu_speedup']:.2f}x)")
    return {"best_of": best_of, "num_workers": NUM_WORKERS,
            "queries": results}


def check(section: dict, baseline_path: pathlib.Path, mode: str) -> int:
    baseline = json.loads(baseline_path.read_text()).get(mode)
    if baseline is None:
        print(f"check: baseline {baseline_path} has no '{mode}' section",
              file=sys.stderr)
        return 1
    failures = []
    for name in HEADLINE:
        expected = baseline["queries"][name]["speedup"]
        got = section["queries"][name]["speedup"]
        floor = expected * (1 - REGRESSION_TOLERANCE)
        status = "ok" if got >= floor else "REGRESSED"
        print(f"check {name:6s} baseline={expected:.2f}x floor={floor:.2f}x "
              f"measured={got:.2f}x  {status}")
        if got < floor:
            failures.append(name)
    if failures:
        print(f"perf regression (> {REGRESSION_TOLERANCE:.0%}) in: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small graphs, fewer trials (CI perf smoke)")
    parser.add_argument("--best-of", type=int, default=None,
                        help="trials per query (default: 5, quick: 3)")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help="results file to update (default: BENCH_5.json)")
    parser.add_argument("--check", type=pathlib.Path, metavar="BASELINE",
                        help="compare headline speedups against a committed "
                             "baseline instead of updating --out")
    args = parser.parse_args(argv)

    best_of = args.best_of or (3 if args.quick else 5)
    mode = "quick" if args.quick else "full"
    section = measure(args.quick, best_of)

    if args.check:
        return check(section, args.check, mode)

    existing = (json.loads(args.out.read_text())
                if args.out.exists() else {})
    existing[mode] = section
    args.out.write_text(json.dumps(existing, indent=2) + "\n")
    print(f"wrote {args.out} [{mode}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
