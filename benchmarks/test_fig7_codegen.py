"""Figure 7: effect of whole-stage code generation (Section 7.3).

Paper shape: 10%–20% on CC and SSSP, less visible overall because the
workloads are shuffle-bound, not compute-bound.  Measured on the pure
recursive iteration time (data loading excluded), as the paper does.
"""

from repro import ExecutionConfig
from repro.baselines.systems import RaSQLSystem, Workload

from harness import RMAT_SIZES, once, report, rmat_label, rmat_tables

QUERIES = ["cc", "reach", "sssp"]


def test_fig7_code_generation(benchmark):
    def experiment():
        rows = []
        ratios = {}
        for n in RMAT_SIZES:
            tables = rmat_tables(n)
            for query in QUERIES:
                times = {}
                for codegen in (True, False):
                    config = ExecutionConfig(codegen=codegen,
                                             decomposed_plans=False)
                    system = RaSQLSystem(num_workers=4, config=config)
                    result = system.run(Workload(
                        query, tables,
                        source=0 if query in ("reach", "sssp") else None,
                        include_load=False))
                    times[codegen] = result.sim_seconds
                rows.append([rmat_label(n), query.upper(), times[True],
                             times[False], times[False] / times[True]])
                ratios[(n, query)] = times[False] / times[True]
        return rows, ratios

    rows, ratios = once(benchmark, experiment)
    report("fig7", "Figure 7: Effect of Code Generation (sim seconds, "
           "iteration time only)",
           ["dataset", "query", "with_codegen", "without", "speedup"], rows,
           notes="paper: 10%-20% for CC and SSSP; smaller than the other "
                 "optimizations because the queries are IO-bound")

    largest = max(RMAT_SIZES)
    # Shape: codegen helps on the largest size for the aggregate queries,
    # and the effect stays modest (well under the 1.5x-5x of Figures 5/6).
    assert ratios[(largest, "cc")] > 1.02
    assert ratios[(largest, "sssp")] > 1.02
