"""Figure 9: systems on the real-world graphs (Table 1), plus GAP-serial.

Paper shape: on the skewed real graphs RaSQL ranks 1st on 9 of 12
system×query cells and 2nd on the rest; it beats Giraph by ~2x on REACH
and SSSP (better handling of skew via its partitioning); GraphX closes to
1.5x-2x of Giraph but stays behind RaSQL; GAP-serial is competitive on
the small graphs and hopeless on twitter (100x behind on SSSP).

The graphs are scaled power-law proxies that preserve each original's
density and skew ordering (see repro.datagen.realworld).
"""

from repro.baselines.systems import (
    BigDatalogSystem,
    GAPSerialSystem,
    GiraphSystem,
    GraphXSystem,
    MyriaSystem,
    RaSQLSystem,
    Workload,
)

from harness import REAL_GRAPH_DIVISOR, once, real_graph_tables, report, run_system

GRAPHS = ["livejournal", "orkut", "arabic", "twitter"]
DISTRIBUTED = [RaSQLSystem, BigDatalogSystem, GraphXSystem, GiraphSystem,
               MyriaSystem]
QUERIES = ["reach", "cc", "sssp"]


def test_fig9_real_world_graphs(benchmark):
    def experiment():
        times: dict[tuple, float] = {}
        for name in GRAPHS:
            tables = real_graph_tables(name)
            for query in QUERIES:
                for system_cls in DISTRIBUTED:
                    result = run_system(
                        system_cls, query, tables,
                        source=0 if query in ("reach", "sssp") else None)
                    times[(query, name, system_cls.name)] = result.sim_seconds
                serial_result = GAPSerialSystem().run(
                    Workload(query, tables, source=0))
                times[(query, name, "gap-serial")] = serial_result.sim_seconds
        return times

    times = once(benchmark, experiment)

    columns = [s.name for s in DISTRIBUTED] + ["gap-serial"]
    for query in QUERIES:
        rows = [[name] + [times[(query, name, c)] for c in columns]
                for name in GRAPHS]
        report(f"fig9_{query}",
               f"Figure 9 ({query.upper()}): real-world graph proxies, "
               f"scale 1/{REAL_GRAPH_DIVISOR} (sim seconds)",
               ["graph"] + columns, rows,
               notes="paper: RaSQL 1st on 9/12 cells, ~2x over Giraph on "
                     "REACH/SSSP via better skew handling")

    # Rank shape: count cells where RaSQL is first or second.
    first_or_second = 0
    cells = 0
    for query in QUERIES:
        for name in GRAPHS:
            cells += 1
            ranked = sorted(
                (times[(query, name, s.name)] for s in DISTRIBUTED))
            if times[(query, name, "rasql")] <= ranked[1] + 1e-9:
                first_or_second += 1
    assert first_or_second >= cells - 2, f"RaSQL top-2 in {first_or_second}/{cells}"

    # GraphX stays behind RaSQL on the skewed graphs.
    for name in GRAPHS:
        assert (times[("sssp", name, "graphx")]
                > times[("sssp", name, "rasql")]), name
