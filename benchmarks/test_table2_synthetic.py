"""Table 2 (Appendix E): synthetic graph parameters with TC/SG sizes.

The paper lists, per synthetic graph, the vertex/edge counts and the
cardinality of the TC and SG results — the point being that these queries
produce outputs "many orders of magnitude larger than the input dataset".
The reproduction regenerates the table on the scaled family and asserts
that amplification (|TC| / |edges|) holds.
"""

from repro.baselines.systems import RaSQLSystem, Workload
from repro.datagen import gn_graph, grid_graph, random_tree

from harness import once, report


def _tree_rel(max_nodes):
    tree = random_tree(height=6, seed=21, max_nodes=max_nodes)
    return [(parent, child) for parent, child in tree.edges]


DATASETS = {
    # name: (vertices-ish label source, edges list)
    "Tree6": _tree_rel(500),
    "Grid15": grid_graph(15),
    "Grid25": grid_graph(25),
    "G1K-3": gn_graph(1_000, 3, seed=21),
    "G1K-2.5": gn_graph(1_000, 2.5, seed=21),
}


def test_table2_synthetic_graph_parameters(benchmark):
    def experiment():
        rows = []
        stats = {}
        for name, edges in DATASETS.items():
            vertices = {v for edge in edges for v in edge}
            tc_tables = {"edge": (["Src", "Dst"], edges)}
            sg_tables = {"rel": (["Parent", "Child"], edges)}
            tc = RaSQLSystem(num_workers=4).run(Workload("tc", tc_tables))
            sg = RaSQLSystem(num_workers=4).run(Workload("sg", sg_tables))
            tc_size = len(tc.output)
            sg_size = len(sg.output)
            rows.append([name, len(vertices), len(edges), tc_size, sg_size])
            stats[name] = (len(edges), tc_size, sg_size)
        return rows, stats

    rows, stats = once(benchmark, experiment)
    report("table2", "Table 2: Parameters of Synthetic Graphs (scaled)",
           ["name", "vertices", "edges", "TC", "SG"], rows,
           notes="paper: TC/SG outputs dwarf the inputs (e.g. Grid250: "
                 "125K edges -> 1.0e9 TC tuples; Tree11: 71K edges -> "
                 "2.1e9 SG tuples)")

    # Amplification shape: grids blow up TC, trees blow up SG.
    for grid in ("Grid15", "Grid25"):
        edges, tc_size, _ = stats[grid]
        assert tc_size > 20 * edges, grid
    tree_edges, _, tree_sg = stats["Tree6"]
    assert tree_sg > 10 * tree_edges
