"""Figure 1: stratified queries vs RaSQL's aggregates-in-recursion.

Paper numbers (16-node cluster): RaSQL-SSSP 10s, RaSQL-CC 14s,
Stratified-CC 1200s, Stratified-SSSP 360s* where * marks that only the
meaningful iterations are counted because the stratified SSSP never
terminates on a cyclic graph.

Expected shape here: both stratified runs are orders of magnitude slower
(the recursion enumerates every path/label combination before the
aggregate prunes), and stratified SSSP hits the iteration cap.
"""

from repro import ExecutionConfig, RaSQLContext
from repro.datagen import rmat_graph
from repro.errors import FixpointNotReachedError
from repro.queries.library import get_query

from harness import NUM_WORKERS, once, report, speedup

#: Small cyclic graph: the stratified blow-up grows with the number of
#: distinct (node, cost)/(node, label) facts, so the gap widens with size;
#: 600 vertices already shows the order-of-magnitude separation.
GRAPH_SIZE = 600
STRATIFIED_SSSP_CAP = 12


def _run(query_name: str, evaluation: str, edges, weighted: bool,
         max_iterations: int = 100_000):
    config = ExecutionConfig(evaluation=evaluation,
                             max_iterations=max_iterations)
    ctx = RaSQLContext(num_workers=NUM_WORKERS, config=config)
    if weighted:
        ctx.load_table("edge", ["Src", "Dst", "Cost"], edges)
    else:
        ctx.load_table("edge", ["Src", "Dst"], [e[:2] for e in edges])
    spec = get_query(query_name)
    capped = False
    try:
        ctx.sql(spec.formatted(source=0) if "{source}" in spec.sql
                else spec.sql)
    except FixpointNotReachedError:
        capped = True
    return ctx.metrics.sim_time, capped


def test_fig1_stratified_vs_rasql(benchmark):
    edges = rmat_graph(GRAPH_SIZE, seed=7, weighted=True)

    def experiment():
        rows = []
        rasql_sssp, _ = _run("sssp", "dsn", edges, weighted=True)
        rasql_cc, _ = _run("cc_labels", "dsn", edges, weighted=False)
        strat_cc, _ = _run("cc_labels", "stratified", edges, weighted=False)
        strat_sssp, capped = _run("sssp", "stratified", edges, weighted=True,
                                  max_iterations=STRATIFIED_SSSP_CAP)
        rows.append(["RaSQL-SSSP", rasql_sssp, ""])
        rows.append(["RaSQL-CC", rasql_cc, ""])
        rows.append(["Stratified-SSSP", strat_sssp,
                     "* capped: does not terminate on cycles" if capped else ""])
        rows.append(["Stratified-CC", strat_cc, ""])
        return rows, rasql_sssp, rasql_cc, strat_sssp, strat_cc, capped

    rows, rasql_sssp, rasql_cc, strat_sssp, strat_cc, capped = once(
        benchmark, experiment)

    report("fig1", "Figure 1: Stratified Query vs. RaSQL (sim seconds)",
           ["program", "time_s", "note"], rows,
           notes=(f"stratified/RaSQL: CC {speedup(strat_cc, rasql_cc)}, "
                  f"SSSP {speedup(strat_sssp, rasql_sssp)} (paper: ~86x, ~36x*)"))

    # Shape assertions: the paper's orders-of-magnitude gap and the
    # non-termination footnote.
    assert capped, "stratified SSSP must hit the iteration cap on cycles"
    assert strat_cc > 5 * rasql_cc
    assert strat_sssp > 4 * rasql_sssp
