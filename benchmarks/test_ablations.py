"""Ablations for the design choices DESIGN.md calls out.

Not figures from the paper, but direct measurements of the individual
mechanisms Sections 6-7 motivate:

- partition-aware scheduling vs Spark's default hybrid policy (remote
  fetches and their cost) — Section 6.1;
- SetRDD vs immutable copy-on-union state — Section 6.1;
- map-side partial aggregation (shuffle volume) — Section 6.2.
"""

from repro import ExecutionConfig
from repro.baselines.systems import RaSQLSystem, Workload

from harness import once, report, rmat_tables

SIZE = 8_000


def test_ablation_partition_aware_scheduling(benchmark):
    tables = rmat_tables(SIZE)

    def experiment():
        results = {}
        for scheduler in ("partition_aware", "default"):
            system = RaSQLSystem(num_workers=4, scheduler=scheduler,
                                 config=ExecutionConfig(decomposed_plans=False))
            result = system.run(Workload("sssp", tables, source=0))
            results[scheduler] = result
        return results

    results = once(benchmark, experiment)
    rows = [[name, r.sim_seconds, r.metrics.get("remote_fetches", 0),
             r.metrics.get("remote_fetch_bytes", 0)]
            for name, r in results.items()]
    report("ablation_scheduling",
           "Ablation: partition-aware vs default scheduling (SSSP, RMAT-8K)",
           ["policy", "time_s", "remote_fetches", "remote_bytes"], rows,
           notes="Section 6.1: the default policy loses inter-iteration "
                 "locality; every miss re-fetches cached blocks remotely")

    aware, default = results["partition_aware"], results["default"]
    assert aware.metrics.get("remote_fetches", 0) == 0
    assert default.metrics.get("remote_fetches", 0) > 0
    assert default.sim_seconds > aware.sim_seconds


def test_ablation_setrdd(benchmark):
    # TC is the workload where the all-relation dwarfs the deltas, which
    # is exactly where rebuilding it each iteration (union().distinct()
    # over an immutable RDD) hurts.
    from repro.datagen import grid_graph

    tables = {"edge": (["Src", "Dst"], grid_graph(25))}

    def experiment():
        results = {}
        for mutable in (True, False):
            config = ExecutionConfig(use_setrdd=mutable,
                                     decomposed_plans=False)
            system = RaSQLSystem(num_workers=4, config=config)
            samples = [system.run(Workload("tc", tables)).sim_seconds
                       for _ in range(2)]
            results[mutable] = min(samples)
        return results

    results = once(benchmark, experiment)
    report("ablation_setrdd",
           "Ablation: SetRDD vs immutable copy-on-union state (TC, Grid25)",
           ["state", "time_s"],
           [["SetRDD (mutable)", results[True]],
            ["immutable union().distinct()", results[False]]],
           notes="Section 6.1: without SetRDD each iteration rebuilds and "
                 "repartitions the whole all-relation")

    assert results[False] > 1.1 * results[True]


def test_ablation_partial_aggregation(benchmark):
    tables = rmat_tables(SIZE)

    def experiment():
        results = {}
        for enabled in (True, False):
            config = ExecutionConfig(partial_aggregation=enabled,
                                     decomposed_plans=False)
            system = RaSQLSystem(num_workers=4, config=config)
            results[enabled] = system.run(Workload("sssp", tables, source=0))
        return results

    results = once(benchmark, experiment)
    rows = [[("on" if enabled else "off"), r.sim_seconds,
             int(r.metrics.get("shuffle_records", 0))]
            for enabled, r in results.items()]
    report("ablation_partial_agg",
           "Ablation: map-side partial aggregation (SSSP, RMAT-8K)",
           ["combine", "time_s", "shuffle_records"], rows,
           notes="Section 6.2: partial aggregation shrinks the shuffle")

    assert (results[True].metrics["shuffle_records"]
            < results[False].metrics["shuffle_records"])
