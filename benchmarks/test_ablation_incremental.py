"""Extension benchmark: incremental view maintenance vs recomputation.

Not a paper figure — it quantifies the Section 10 future-work direction
("continuous queries on streaming data") that `repro.core.streaming`
implements: after each inserted edge, compare repairing the maintained
SSSP view against recomputing it from scratch.
"""

from repro import RaSQLContext
from repro.core.streaming import IncrementalView
from repro.datagen import random_graph
from repro.queries import get_query

from harness import once, report

GRAPH_VERTICES = 600
GRAPH_EDGES = 2_400
STREAM_LENGTH = 20


def test_ablation_incremental_maintenance(benchmark):
    import random

    rng = random.Random(31)
    edges = random_graph(GRAPH_VERTICES, GRAPH_EDGES, seed=31, weighted=True)
    stream = []
    while len(stream) < STREAM_LENGTH:
        a, b = rng.randrange(GRAPH_VERTICES), rng.randrange(GRAPH_VERTICES)
        if a != b:
            stream.append((a, b, float(rng.randint(1, 20))))
    query = get_query("sssp").formatted(source=0)

    def experiment():
        ctx = RaSQLContext(num_workers=4)
        ctx.register_table("edge", ["Src", "Dst", "Cost"], edges)
        view = IncrementalView(ctx, query)
        incremental = 0.0
        all_edges = list(edges)
        scratch = 0.0
        for segment in stream:
            before = ctx.metrics.sim_time
            view.insert("edge", [segment])
            incremental += ctx.metrics.sim_time - before
            all_edges.append(segment)
            fresh = RaSQLContext(num_workers=4)
            fresh.register_table("edge", ["Src", "Dst", "Cost"], all_edges)
            fresh.sql(query)
            scratch += fresh.metrics.sim_time

        # Exactness of the maintained view against a final batch run.
        batch = RaSQLContext(num_workers=4)
        batch.register_table("edge", ["Src", "Dst", "Cost"], all_edges)
        expected = batch.sql(query).to_dict()
        assert view.result().to_dict() == expected
        return incremental, scratch

    incremental, scratch = once(benchmark, experiment)
    report("ablation_incremental",
           "Extension: incremental maintenance vs recompute-per-event "
           "(SSSP, 20-edge stream)",
           ["strategy", "total_sim_s", "per_event_s"],
           [["incremental repair", incremental, incremental / STREAM_LENGTH],
            ["recompute from scratch", scratch, scratch / STREAM_LENGTH]],
           notes="monotone insertions are just more delta: the repair "
                 "starts from the converged state")

    assert incremental < scratch / 2
