"""Table 3 (Appendix F): CC on the real graphs, single-machine vs cluster.

Paper numbers (seconds): COST 2/<1/14/200, GAP-serial 13/21/95/763,
GAP-parallel 11/18/93/309, RaSQL 17/19/64/108, GraphX 30/32/72/317,
Giraph 21/24/73/106 on livejournal/orkut/arabic/twitter.  Shape: the
single-threaded compiled implementations win the small graphs on low
overhead, but on twitter the distributed systems "scale up better and
clearly win"; COST beats GAP-serial because union-find does asymptotically
less work than GAP's label-propagation sweeps.

Reproduction method: measured times on 1/2000-scale proxies *plus a
documented projection to full scale* — serial time scales linearly with
the edge count, while a distributed run splits into fixed scheduling
overhead (does not scale) and data-dependent work (scales).  The
distributed systems run with the paper's 15 workers, and their task CPU is
scaled by 1/15 to model JVM-over-CPython execution, mirroring how the
serial baselines' constants model C++/Rust-over-CPython (all constants in
repro.baselines.serial / this file).
"""

from repro.baselines.systems import (
    COSTSystem,
    GAPParallelSystem,
    GAPSerialSystem,
    GiraphSystem,
    GraphXSystem,
    RaSQLSystem,
    Workload,
)
from repro.baselines import serial
from repro.datagen import REAL_GRAPHS
from repro.engine.metrics import CostModel

from harness import REAL_GRAPH_DIVISOR, once, real_graph_tables, report

GRAPHS = ["livejournal", "orkut", "arabic", "twitter"]
SERIAL_SYSTEMS = [COSTSystem, GAPSerialSystem, GAPParallelSystem]
DISTRIBUTED_SYSTEMS = [RaSQLSystem, GraphXSystem, GiraphSystem]

#: JVM (Spark/Giraph executors) over CPython for this workload class.
JVM_SPEEDUP = 15.0
PAPER_WORKERS = 15

_JVM_COST_MODEL = CostModel(cpu_scale=1.0 / JVM_SPEEDUP)


def _project_distributed(result) -> float:
    """Project a proxy measurement to full scale from its metrics:
    scheduling overhead is size-independent; bytes moved and task CPU
    scale with the edge count (iteration counts barely change on
    small-diameter social graphs)."""
    metrics = result.metrics
    fixed = (metrics.get("stages", 0) * 0.020
             + metrics.get("tasks", 0) * 0.002)
    nbytes = (metrics.get("shuffle_remote_bytes", 0)
              + metrics.get("load_bytes", 0)
              + metrics.get("broadcast_bytes", 0))
    network = nbytes / (125e6 * PAPER_WORKERS) * REAL_GRAPH_DIVISOR
    cpu = (metrics.get("task_cpu_seconds", 0) / PAPER_WORKERS / JVM_SPEEDUP
           * REAL_GRAPH_DIVISOR)
    return fixed + network + cpu


def _project_serial(result, full_edges: int) -> float:
    """Serial work scales linearly with edges and picks up the
    out-of-cache penalty of billion-edge working sets."""
    return (result.sim_seconds * REAL_GRAPH_DIVISOR
            * serial.out_of_cache_penalty(full_edges))


def test_table3_cc_benchmark(benchmark):
    def experiment():
        measured: dict[tuple, float] = {}
        projected: dict[tuple, float] = {}
        for name in GRAPHS:
            tables = real_graph_tables(name, weighted=False)
            full_edges = REAL_GRAPHS[name].edges
            for system_cls in SERIAL_SYSTEMS:
                result = system_cls().run(Workload("cc", tables))
                measured[(name, system_cls.name)] = result.sim_seconds
                projected[(name, system_cls.name)] = _project_serial(
                    result, full_edges)
            for system_cls in DISTRIBUTED_SYSTEMS:
                kwargs = ({"cost_model": _JVM_COST_MODEL}
                          if system_cls is RaSQLSystem else {})
                system = system_cls(num_workers=PAPER_WORKERS, **kwargs)
                system_result = system.run(Workload("cc", tables))
                measured[(name, system_cls.name)] = system_result.sim_seconds
                projected[(name, system_cls.name)] = _project_distributed(
                    system_result)
        return measured, projected

    measured, projected = once(benchmark, experiment)

    all_systems = SERIAL_SYSTEMS + DISTRIBUTED_SYSTEMS
    report("table3_measured",
           f"Table 3 (measured on 1/{REAL_GRAPH_DIVISOR} proxies, "
           "sim seconds)",
           ["graph"] + [s.name for s in all_systems],
           [[name] + [measured[(name, s.name)] for s in all_systems]
            for name in GRAPHS])
    report("table3",
           "Table 3: CC Benchmark, projected to full scale (seconds)",
           ["graph"] + [s.name for s in all_systems],
           [[name] + [projected[(name, s.name)] for s in all_systems]
            for name in GRAPHS],
           notes="paper: COST 2/<1/14/200, GAP-serial 13/21/95/763, "
                 "RaSQL 17/19/64/108, Giraph 21/24/73/106; serial wins "
                 "small graphs, distributed wins twitter, COST beats GAP")

    # Shape 1: serial implementations win the small graphs outright.
    small = "livejournal"
    assert measured[(small, "cost")] < measured[(small, "rasql")]
    assert measured[(small, "gap-serial")] < measured[(small, "rasql")]
    # Shape 2: at full scale the distributed engines beat GAP-serial on
    # twitter.
    big = "twitter"
    assert projected[(big, "rasql")] < projected[(big, "gap-serial")]
    assert projected[(big, "giraph")] < projected[(big, "gap-serial")]
    # Shape 3: COST's union-find beats GAP's label propagation everywhere.
    for name in GRAPHS:
        assert measured[(name, "cost")] < measured[(name, "gap-serial")], name
