"""Figure 11 (Appendix D): shuffle-hash join vs sort-merge join.

Paper shape: shuffle-hash always wins (the cached base-side hash table
amortizes across iterations while sort-merge re-sorts every delta), and
the gap widens with size — up to ~4x at RMAT-128M.  Measured on
iteration time (load excluded) under the reference configuration: the
paper adds whole-stage codegen rules for "shuffle-hash join with base
relation cached" and has none for sort-merge, and this reproduction
mirrors that (generated pipelines fuse hash probes only), which is part
of why the hash path wins.
"""

from repro import ExecutionConfig
from repro.baselines.systems import RaSQLSystem, Workload

from harness import once, report, rmat_label, rmat_tables

QUERIES = ["cc", "reach", "sssp"]
SIZES = [2_000, 4_000, 8_000, 16_000]


def test_fig11_shuffle_hash_vs_sort_merge(benchmark):
    def experiment():
        rows = []
        times = {}
        for n in SIZES:
            tables = rmat_tables(n)
            for query in QUERIES:
                for strategy in ("shuffle_hash", "sort_merge"):
                    config = ExecutionConfig(join_strategy=strategy,
                                             decomposed_plans=False)
                    system = RaSQLSystem(num_workers=4, config=config)
                    # Min of two runs: measured task CPU feeds the
                    # simulated clock, so de-noise like any wall benchmark.
                    samples = []
                    for _ in range(2):
                        result = system.run(Workload(
                            query, tables,
                            source=0 if query in ("reach", "sssp") else None,
                            include_load=False))
                        samples.append(result.sim_seconds)
                    times[(n, query, strategy)] = min(samples)
                rows.append([rmat_label(n), query.upper(),
                             times[(n, query, "shuffle_hash")],
                             times[(n, query, "sort_merge")],
                             times[(n, query, "sort_merge")]
                             / times[(n, query, "shuffle_hash")]])
        return rows, times

    rows, times = once(benchmark, experiment)
    report("fig11",
           "Figure 11: Shuffle-Hash Join vs Sort-Merge Join (sim seconds)",
           ["dataset", "query", "shuffle_hash", "sort_merge", "ratio"], rows,
           notes="paper: shuffle-hash always faster; gap grows with size "
                 "(sort-merge trades speed for memory/stability)")

    largest = max(SIZES)
    for query in QUERIES:
        assert (times[(largest, query, "sort_merge")]
                > times[(largest, query, "shuffle_hash")]), query

    def mean_ratio(n):
        return sum(times[(n, q, "sort_merge")] / times[(n, q, "shuffle_hash")]
                   for q in QUERIES) / len(QUERIES)

    assert mean_ratio(largest) > mean_ratio(min(SIZES)) * 0.9
