"""Figure 12 (Appendix F): scaling out the cluster, 1..15 workers.

Paper shape: TC and SG on the Appendix E synthetics speed up steadily with
workers — 15 workers gain ~7x (TC) / ~10x (SG) over the 2-worker setting.
This is the experiment the simulated clock exists for: within a stage,
workers run their tasks concurrently, so adding workers shrinks the
per-stage max while fixed overheads eventually flatten the curve.

Partitions are fixed at 16 across the sweep (the paper uses one partition
per core; fixing the partition count isolates the worker-count effect).
"""

from repro.baselines.systems import RaSQLSystem, Workload
from repro.datagen import grid_graph, random_tree

from harness import once, report

WORKERS = [1, 2, 4, 8, 15]
NUM_PARTITIONS = 16


def _sg_rel_from_tree(max_nodes: int):
    tree = random_tree(height=6, seed=21, max_nodes=max_nodes)
    return [(parent, child) for parent, child in tree.edges]


DATASETS = {
    "TC-Grid25": ("tc", {"edge": (["Src", "Dst"], grid_graph(25))}),
    "TC-Grid35": ("tc", {"edge": (["Src", "Dst"], grid_graph(35))}),
    "SG-Tree6": ("sg", {"rel": (["Parent", "Child"], _sg_rel_from_tree(500))}),
}


def test_fig12_scaling_out(benchmark):
    def experiment():
        times: dict[tuple, float] = {}
        for label, (algorithm, tables) in DATASETS.items():
            for workers in WORKERS:
                system = RaSQLSystem(num_workers=workers,
                                     num_partitions=NUM_PARTITIONS)
                # Min of three runs: per-task CPU is measured wall time,
                # and the scale-out curve is exactly the place where
                # scheduler jitter would otherwise mask the trend.
                times[(label, workers)] = min(
                    system.run(Workload(algorithm, tables)).sim_seconds
                    for _ in range(3))
        return times

    times = once(benchmark, experiment)

    rows = [[label] + [times[(label, w)] for w in WORKERS]
            for label in DATASETS]
    report("fig12", "Figure 12: Scaling-out Cluster Size (sim seconds)",
           ["dataset"] + [f"{w}w" for w in WORKERS], rows,
           notes="paper: 15 workers gain ~7x (TC) / ~10x (SG) over 2 workers")

    for label in DATASETS:
        # Monotone-ish speedup: 15 workers clearly beat 2 and 1.
        assert times[(label, 15)] < times[(label, 2)], label
        assert times[(label, 2)] < times[(label, 1)], label
        speedup_15_vs_2 = times[(label, 2)] / times[(label, 15)]
        assert speedup_15_vs_2 > 1.5, (label, speedup_15_vs_2)
