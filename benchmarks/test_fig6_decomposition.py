"""Figure 6: decomposed plans + broadcast compression (Section 7.2).

Paper setup: TC on Grid150/Grid250, G10K-3/G10K-2 and two large random
graphs N-40M/N-80M; three configurations — no optimization (global DSN
iterations), decomposed execution with plain broadcast (Spark ships the
built hash table, 2-3x larger than the rows), and decomposed execution
with compressed-rows broadcast.  Paper shape: decomposition gives
1.5x-2x; compression matters most on the graphs with large base
relations (~2x there).

Scaled datasets: Grid20/Grid30 for the grids, G800-3/G400-2 for the
Erdős–Rényi family, and two sparse random graphs standing in for N-40M/
N-80M (the originals' TC outputs exceed any single-process budget).
"""

from repro import ExecutionConfig
from repro.baselines.systems import RaSQLSystem

from harness import once, report, run_system
from repro.datagen import gn_graph, grid_graph, random_graph

DATASETS = [
    ("Grid20", grid_graph(20)),
    ("Grid30", grid_graph(30)),
    ("G800-3", gn_graph(800, 3, seed=5)),
    ("G400-2", gn_graph(400, 2, seed=5)),
    # Stand-ins for N-40M/N-80M: sparse acyclic graphs whose *base
    # relation* is large relative to the recursion, the regime where the
    # broadcast optimization pays (TC outputs stay bounded).
    ("N-40K", random_graph(40_000, 60_000, seed=5, acyclic=True)),
    ("N-80K", random_graph(80_000, 120_000, seed=5, acyclic=True)),
]

CONFIGS = {
    # Broadcast-hash without decomposition would still shuffle per
    # iteration; "none" is the fully global co-partitioned plan.
    "none": ExecutionConfig(decomposed_plans=False),
    "decompose": ExecutionConfig(decomposed_plans=True,
                                 broadcast_compression=False),
    "decompose+compress": ExecutionConfig(decomposed_plans=True,
                                          broadcast_compression=True),
}


def test_fig6_decomposition_and_compression(benchmark):
    def experiment():
        rows = []
        times: dict[tuple[str, str], float] = {}
        for name, edges in DATASETS:
            tables = {"edge": (["Src", "Dst"], edges)}
            for label, config in CONFIGS.items():
                # Min of two runs: the decomposed local fixpoints are pure
                # measured CPU, and the compress/no-compress gap on the
                # small grids sits at the measurement floor.
                times[(name, label)] = min(
                    run_system(RaSQLSystem, "tc", tables,
                               config=config).sim_seconds
                    for _ in range(2))
            rows.append([name,
                         times[(name, "decompose+compress")],
                         times[(name, "decompose")],
                         times[(name, "none")],
                         times[(name, "none")]
                         / times[(name, "decompose+compress")]])
        return rows, times

    rows, times = once(benchmark, experiment)
    report("fig6",
           "Figure 6: Effect of Decomposition and Compression on TC "
           "(sim seconds)",
           ["dataset", "decompose+compress", "decompose_only",
            "no_optimizations", "total_speedup"], rows,
           notes="paper: decomposition 1.5x-2x overall; compression "
                 "halves the remaining time on the large N graphs")

    for name, _ in DATASETS:
        # Decomposition always wins over the global plan...
        assert times[(name, "decompose")] < times[(name, "none")], name
        # ...and compression never meaningfully hurts (tiny graphs sit at
        # the measurement floor).
        assert (times[(name, "decompose+compress")]
                <= times[(name, "decompose")] * 1.15), name
    # Compression matters most where the broadcast base is largest.
    big = "N-80K"
    assert times[(big, "decompose+compress")] < times[(big, "decompose")]
