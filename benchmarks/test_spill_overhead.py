"""Spill overhead vs memory budget (resource-governance experiment).

Spark's unified memory manager degrades gracefully under pressure: when
storage memory runs out, cached blocks spill to disk and the job slows
down instead of failing.  This experiment quantifies the analogous
behaviour of the simulated tier — SSSP over an RMAT graph, sweeping the
per-worker budget as a fraction of the unconstrained run's high-water
mark — and reports the spill traffic and the simulated-time overhead at
each point.

Every constrained run is checked bit-exact against the unconstrained
result: spilling must cost time, never correctness.
"""

import pytest

from harness import NUM_WORKERS, dump_trace, once, report, rmat_tables
from repro import MemoryConfig, RaSQLContext
from repro.queries import get_query

GRAPH_SIZE = 2_000

#: RMAT graphs are power-law skewed, so with one partition per worker a
#: single base partition dominates the resident set and the budget floor
#: (largest segment + 1) swallows the sweep.  16 partitions keep every
#: segment well below the per-worker peak, like a real Spark job would.
NUM_PARTITIONS = 16

#: Budget sweep, as fractions of the unconstrained peak per-worker
#: resident set.  1.0 still fits (high-water is a max, not a sum of
#: concurrent peaks), the lower points force progressively more traffic.
FRACTIONS = [0.75, 0.5, 0.35]


def make_context(budget_bytes=None):
    memory_config = (MemoryConfig(worker_budget_bytes=budget_bytes)
                     if budget_bytes is not None else MemoryConfig())
    ctx = RaSQLContext(num_workers=NUM_WORKERS,
                       num_partitions=NUM_PARTITIONS,
                       memory_config=memory_config)
    for name, (columns, rows) in rmat_tables(GRAPH_SIZE).items():
        ctx.register_table(name, columns, rows)
    return ctx


@pytest.mark.benchmark(group="spill-overhead")
def test_spill_overhead_vs_budget_fraction(benchmark):
    query = get_query("sssp").formatted(source=0)

    def run():
        clean_ctx = make_context()
        clean = clean_ctx.sql(query)
        clean_time = clean_ctx.last_run.sim_time
        memory = clean_ctx.cluster.memory
        peak = max(memory.high_water_bytes(w) for w in range(NUM_WORKERS))
        floor = memory.max_segment_bytes() + 1

        rows = [["unlimited", peak, 0, 0, clean_time, 0.0, 0.0]]
        last_trace = None
        for fraction in FRACTIONS:
            # Never squeeze below the largest single segment: the sweep
            # measures degradation, not the hard-abort failure mode.
            budget = max(floor, int(fraction * peak))
            ctx = make_context(budget)
            result = ctx.sql(query)
            assert sorted(result.rows) == sorted(clean.rows), \
                f"budget fraction {fraction}: results diverged under spill"
            summary = ctx.last_run.memory_summary()
            sim_time = ctx.last_run.sim_time
            rows.append([
                f"{fraction:.2f} x peak",
                budget,
                int(summary["spill_events"] + summary["unspill_events"]),
                int(summary["spill_bytes"] + summary["unspill_bytes"]),
                sim_time,
                sim_time - clean_time,
                ctx.last_run.metrics.get("spill_seconds"),
            ])
            last_trace = ctx.last_run.trace
        return rows, last_trace

    rows, trace = once(benchmark, run)
    report(
        "spill_overhead",
        f"Spill overhead vs memory budget (SSSP, RMAT-{GRAPH_SIZE // 1000}K, "
        f"{NUM_WORKERS} workers)",
        ["budget", "bytes/worker", "spill_ops", "spill_traffic_B",
         "sim_time_s", "overhead_s", "disk_s"],
        rows,
        notes="All rows verified bit-exact against the unlimited-budget "
              "run; spill_ops counts evictions plus read-backs, disk_s the "
              "simulated disk time the cost model charged for them.")
    dump_trace("spill_overhead", trace, label="tightest-budget")
