"""Exception hierarchy for the RaSQL reproduction.

Every error raised by the library derives from :class:`RaSQLError`, so callers
can catch one type at the API boundary.  The sub-classes mirror the stages of
the compilation pipeline described in Section 5 of the paper: parsing,
analysis (reference resolution), planning, and fixpoint execution.
"""

from __future__ import annotations


class RaSQLError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ParseError(RaSQLError):
    """Raised when the RaSQL text cannot be tokenized or parsed.

    Carries the offending position so that front-ends can point at the
    character in the query string.
    """

    def __init__(self, message: str, position: int | None = None,
                 line: int | None = None, column: int | None = None):
        self.position = position
        self.line = line
        self.column = column
        location = ""
        if line is not None and column is not None:
            location = f" (line {line}, column {column})"
        super().__init__(message + location)


class AnalysisError(RaSQLError):
    """Raised when a parsed query fails semantic analysis.

    Examples: unknown table or column references, a recursive view whose
    sub-queries disagree on arity, or an aggregate that RaSQL does not
    support inside recursion (``avg`` — see Section 3 of the paper).
    """


class PlanningError(RaSQLError):
    """Raised when a valid logical plan cannot be turned into a physical one."""


class ExecutionError(RaSQLError):
    """Raised when a physical plan fails at run time."""


class FixpointNotReachedError(ExecutionError):
    """Raised when the fixpoint operator exceeds its iteration budget.

    This is the runtime manifestation of a non-terminating query, e.g. the
    stratified SSSP on a cyclic graph discussed around Figure 1 of the paper.
    The partial state is attached so tools (and the Figure 1 benchmark) can
    report how far the evaluation progressed.
    """

    def __init__(self, message: str, iterations: int, partial_result=None):
        self.iterations = iterations
        self.partial_result = partial_result
        super().__init__(message)


class MemoryBudgetExceededError(ExecutionError):
    """Raised when a worker's memory budget cannot be met even by spilling.

    The :class:`repro.engine.memory.MemoryManager` first spills
    least-recently-touched cached partitions to the simulated disk tier;
    this error fires only when the *working set* itself — the segment a
    running task just charged or touched — is larger than the per-worker
    budget, so no amount of spilling can fit it (Spark's executor OOM).
    """

    def __init__(self, message: str, worker: int, requested_bytes: int,
                 budget_bytes: int, resident_bytes: int,
                 spilled_bytes: int = 0):
        self.worker = worker
        self.requested_bytes = requested_bytes
        self.budget_bytes = budget_bytes
        self.resident_bytes = resident_bytes
        self.spilled_bytes = spilled_bytes
        super().__init__(message)


class QueryDeadlineExceededError(ExecutionError):
    """Raised when a query's simulated runtime passes its deadline.

    Checked cooperatively at stage boundaries, like Spark job
    cancellation: the stage that crossed the deadline completes, then
    the query aborts.  ``partial_trace`` carries the span tree recorded
    up to the abort (set by :meth:`repro.RaSQLContext.sql`), so EXPLAIN
    ANALYZE tooling can show how far the query got.
    """

    def __init__(self, message: str, deadline_seconds: float,
                 sim_time: float, stage: str = ""):
        self.deadline_seconds = deadline_seconds
        self.sim_time = sim_time
        self.stage = stage
        #: Span tree of the aborted query (attached at the API boundary).
        self.partial_trace: dict | None = None
        super().__init__(message)


class AdmissionRejectedError(RaSQLError):
    """Raised when the :class:`repro.core.governor.QueryGovernor` refuses
    a query: the concurrency slots (plus waiting room) are full, or the
    query's reserved memory would push total reservations past the
    cluster's budget.  ``retry_after_s`` is the governor's load-shedding
    hint (the ``Retry-After`` header of an HTTP 503): an estimate, from
    the current backlog, of when a resubmission could be admitted."""

    def __init__(self, message: str, label: str = "", reason: str = "",
                 active: int = 0, reserved_bytes: int = 0,
                 retry_after_s: float = 0.0):
        self.label = label
        self.reason = reason
        self.active = active
        self.reserved_bytes = reserved_bytes
        self.retry_after_s = retry_after_s
        super().__init__(message)


class CheckpointError(ExecutionError):
    """Raised when a fixpoint checkpoint cannot be written or used.

    Covers environmental failures (unwritable checkpoint dir) and
    semantic mismatches (resuming against a catalog whose data changed
    since the checkpoint was cut)."""


class CheckpointNotFoundError(CheckpointError):
    """Raised by :meth:`repro.RaSQLContext.resume` when no in-progress
    checkpoint exists for the requested query id — either the query was
    never run with checkpointing enabled, or it already completed and
    its iteration files were garbage-collected."""


class CheckpointCorruptionError(CheckpointError):
    """Raised when a checkpoint blob's content hash does not match its
    header.  Resuming from a torn or bit-flipped checkpoint would
    silently diverge from the clean run, so the loader refuses."""


class WALError(RaSQLError):
    """Raised when the serving write-ahead log cannot be replayed:
    the recovered catalog does not match the bootstrap fingerprint the
    WAL header recorded, or replaying an insert lands on a different
    ``Catalog.data_version`` than the original execution logged."""


class CircuitOpenError(RaSQLError):
    """Raised by the serving circuit breaker when a query shape has
    failed repeatedly and the breaker is shedding that shape's traffic.

    ``retry_after_s`` says when the breaker will let a probe through
    (half-open); resubmitting earlier fails immediately without
    touching the cluster."""

    def __init__(self, message: str, shape: str = "", failures: int = 0,
                 retry_after_s: float = 0.0):
        self.shape = shape
        self.failures = failures
        self.retry_after_s = retry_after_s
        super().__init__(message)


class DriverCrashError(RuntimeError):
    """An injected driver/service death (``DriverKillInjector``).

    Deliberately **not** a :class:`RaSQLError`: the serving layer's
    request loop catches ``RaSQLError`` and turns it into a failed
    future, but a driver crash must take the whole process down —
    nothing inside the service may absorb it.  Chaos harnesses catch it
    at the outermost level and model the restart."""


class FaultInjectionError(RaSQLError):
    """Raised when an injected failure cannot be recovered safely.

    The canonical case: an ``"after"``-point failure hits a task that
    mutates cached state but provides no snapshot/restore hooks — a
    replay would run against half-applied state and silently corrupt the
    result, so the cluster refuses instead of replaying.
    """


class TaskRetryExhaustedError(ExecutionError):
    """Raised when a task keeps failing past the per-task retry budget.

    Mirrors Spark's ``spark.task.maxFailures`` abort: after
    ``max_task_retries`` failed attempts the stage — and the query — is
    given up rather than retried forever.
    """

    def __init__(self, message: str, stage: str, task_index: int,
                 attempts: int):
        self.stage = stage
        self.task_index = task_index
        self.attempts = attempts
        super().__init__(message)


class NoHealthyWorkersError(ExecutionError):
    """Raised when worker loss would leave the cluster with no live worker."""


class PoisonTaskError(ExecutionError):
    """Raised when a task keeps killing its worker process (process backend).

    A task whose execution crashes the hosting OS worker ``poison_threshold``
    times (SIGKILL'd for hanging counts too) is quarantined instead of
    respawn-looping the pool — the Spark/YARN "poison pill" abort.  Like
    :class:`QueryDeadlineExceededError`, ``partial_trace`` carries the span
    tree recorded up to the abort (attached at the API boundary), so the
    crash site is debuggable from EXPLAIN ANALYZE output alone.
    """

    def __init__(self, message: str, stage: str = "", task_index: int = -1,
                 worker_kills: int = 0):
        self.stage = stage
        self.task_index = task_index
        self.worker_kills = worker_kills
        #: Span tree of the aborted query (attached at the API boundary).
        self.partial_trace: dict | None = None
        super().__init__(message)


class InexpressibleQueryError(RaSQLError):
    """Raised by :mod:`repro.compile` when an analyzed plan has no
    standard ``WITH RECURSIVE`` form.

    The two structural causes (Section 3 discussion): mutual recursion —
    a multi-view clique cannot be expressed as a chain of single-table
    recursive CTEs — and aggregate twin forms whose accumulator
    contribution is not homogeneous-linear in the recursive aggregate
    column, so replaying the derivation bag outside the recursion would
    double- or under-count.  ``view`` names the offending recursive view
    and ``reason`` is a stable machine-checkable tag
    (``"mutual-recursion"``, ``"non-linear-accumulator"``,
    ``"non-linear-recursion"``, ...).
    """

    def __init__(self, message: str, view: str = "", reason: str = ""):
        self.view = view
        self.reason = reason
        super().__init__(message)


class PreMViolationError(RaSQLError):
    """Raised by the PreM auto-validation tool when a query fails the check.

    The attached ``iteration`` is the first fixpoint step at which the
    aggregate-pushed evaluation diverged from its un-aggregated twin
    (Appendix G of the paper).
    """

    def __init__(self, message: str, iteration: int):
        self.iteration = iteration
        super().__init__(message)
