"""Parser for the Datalog-with-monotonic-aggregates surface.

Grammar (BigDatalog-flavoured)::

    program    := (fact | rule | query)*
    fact       := atom '.'
    rule       := head '<-' body '.'
    head       := pred '(' head_arg (',' head_arg)* ')'
    head_arg   := term | agg '<' term '>'          (min/max/sum/count,
                                                    mmin/mmax/msum/mcount)
    body       := literal (',' literal)*
    literal    := atom | comparison | assignment
    atom       := pred '(' term (',' term)* ')'
    comparison := term (=|!=|<>|<|<=|>|>=) expr
    assignment := VAR '=' expr                      (VAR unbound by atoms)
    expr       := arithmetic over terms (+ - * /)
    term       := VARIABLE (Upper) | number | 'string' | lowercase-constant
    query      := '?-' atom '.'

``%`` starts a comment.  Variables start with an uppercase letter or
underscore; lowercase identifiers are symbolic constants (strings).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import ParseError

AGGREGATE_NAMES = {"min", "max", "sum", "count",
                   "mmin", "mmax", "msum", "mcount"}

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+|%[^\n]*)
  | (?P<arrow><-|:-)
  | (?P<query>\?-)
  | (?P<op><=|>=|!=|<>|[=<>+\-*/(),.])
  | (?P<number>\d+(\.\d+)?)
  | (?P<string>'(?:[^']|'')*')
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
""", re.VERBOSE)


@dataclass(frozen=True)
class Variable:
    name: str


@dataclass(frozen=True)
class Constant:
    value: object


@dataclass(frozen=True)
class Arith:
    """An arithmetic expression tree over terms."""

    op: str
    left: object
    right: object


@dataclass(frozen=True)
class Atom:
    predicate: str
    terms: tuple


@dataclass(frozen=True)
class Comparison:
    op: str
    left: object
    right: object


@dataclass(frozen=True)
class HeadArg:
    term: object
    aggregate: str | None = None


@dataclass(frozen=True)
class Rule:
    head_predicate: str
    head_args: tuple[HeadArg, ...]
    atoms: tuple[Atom, ...]
    constraints: tuple[Comparison, ...]

    @property
    def is_fact(self) -> bool:
        return not self.atoms and not self.constraints


@dataclass
class DatalogProgram:
    rules: list[Rule] = field(default_factory=list)
    query: Atom | None = None

    def idb_predicates(self) -> list[str]:
        """Head predicates, in first-appearance order."""
        seen: list[str] = []
        for rule in self.rules:
            if rule.head_predicate not in seen:
                seen.append(rule.head_predicate)
        return seen

    def edb_predicates(self) -> set[str]:
        idb = set(self.idb_predicates())
        out: set[str] = set()
        for rule in self.rules:
            for atom in rule.atoms:
                if atom.predicate not in idb:
                    out.add(atom.predicate)
        return out


class _Tokens:
    def __init__(self, text: str):
        self.items: list[tuple[str, str]] = []
        position = 0
        while position < len(text):
            match = _TOKEN_RE.match(text, position)
            if match is None:
                raise ParseError(
                    f"datalog: unexpected character {text[position]!r}",
                    position)
            position = match.end()
            kind = match.lastgroup
            if kind != "ws":
                self.items.append((kind, match.group()))
        self.position = 0

    @property
    def current(self) -> tuple[str, str]:
        if self.position < len(self.items):
            return self.items[self.position]
        return ("eof", "")

    def advance(self) -> tuple[str, str]:
        token = self.current
        self.position += 1
        return token

    def accept(self, kind: str, value: str | None = None):
        current_kind, current_value = self.current
        if current_kind == kind and (value is None or current_value == value):
            return self.advance()
        return None

    def expect(self, kind: str, value: str | None = None):
        token = self.accept(kind, value)
        if token is None:
            raise ParseError(
                f"datalog: expected {value or kind!r}, found "
                f"{self.current[1] or 'end of input'!r}")
        return token


def _is_variable(name: str) -> bool:
    return name[0].isupper() or name[0] == "_"


def _parse_term(tokens: _Tokens):
    kind, value = tokens.current
    if kind == "number":
        tokens.advance()
        return Constant(float(value) if "." in value else int(value))
    if kind == "string":
        tokens.advance()
        return Constant(value[1:-1].replace("''", "'"))
    if kind == "name":
        tokens.advance()
        if _is_variable(value):
            return Variable(value)
        return Constant(value)
    raise ParseError(f"datalog: expected a term, found {value!r}")


def _parse_expr(tokens: _Tokens):
    """Arithmetic: term ((+|-|*|/) term)* with * / binding tighter."""
    def parse_factor():
        if tokens.accept("op", "("):
            inner = _parse_expr(tokens)
            tokens.expect("op", ")")
            return inner
        return _parse_term(tokens)

    def parse_product():
        left = parse_factor()
        while tokens.current == ("op", "*") or tokens.current == ("op", "/"):
            op = tokens.advance()[1]
            left = Arith(op, left, parse_factor())
        return left

    left = parse_product()
    while tokens.current == ("op", "+") or tokens.current == ("op", "-"):
        op = tokens.advance()[1]
        left = Arith(op, left, parse_product())
    return left


def _parse_atom(tokens: _Tokens, predicate: str) -> Atom:
    tokens.expect("op", "(")
    terms = [_parse_term(tokens)]
    while tokens.accept("op", ","):
        terms.append(_parse_term(tokens))
    tokens.expect("op", ")")
    return Atom(predicate, tuple(terms))


def _parse_head(tokens: _Tokens) -> tuple[str, tuple[HeadArg, ...]]:
    predicate = tokens.expect("name")[1]
    tokens.expect("op", "(")
    args: list[HeadArg] = []
    while True:
        kind, value = tokens.current
        if (kind == "name" and value.lower() in AGGREGATE_NAMES
                and tokens.items[tokens.position + 1] == ("op", "<")):
            tokens.advance()
            tokens.expect("op", "<")
            term = _parse_expr(tokens)
            tokens.expect("op", ">")
            normalized = {"mmin": "min", "mmax": "max", "msum": "sum",
                          "mcount": "count"}.get(value.lower(), value.lower())
            args.append(HeadArg(term, normalized))
        else:
            args.append(HeadArg(_parse_expr(tokens)))
        if not tokens.accept("op", ","):
            break
    tokens.expect("op", ")")
    return predicate, tuple(args)


_COMPARISON_OPS = {"=", "!=", "<>", "<", "<=", ">", ">="}


def _parse_body(tokens: _Tokens) -> tuple[tuple[Atom, ...], tuple[Comparison, ...]]:
    atoms: list[Atom] = []
    constraints: list[Comparison] = []
    while True:
        kind, value = tokens.current
        if kind == "name" and tokens.items[tokens.position + 1] == ("op", "("):
            tokens.advance()
            atoms.append(_parse_atom(tokens, value))
        else:
            left = _parse_expr(tokens)
            op_kind, op_value = tokens.current
            if op_kind != "op" or op_value not in _COMPARISON_OPS:
                raise ParseError(
                    f"datalog: expected a comparison, found {op_value!r}")
            tokens.advance()
            right = _parse_expr(tokens)
            constraints.append(Comparison(op_value, left, right))
        if not tokens.accept("op", ","):
            break
    return tuple(atoms), tuple(constraints)


def parse_datalog(text: str) -> DatalogProgram:
    """Parse a Datalog program into rules, facts and an optional query."""
    tokens = _Tokens(text)
    program = DatalogProgram()
    while tokens.current[0] != "eof":
        if tokens.accept("query"):
            predicate = tokens.expect("name")[1]
            program.query = _parse_atom(tokens, predicate)
            tokens.expect("op", ".")
            continue
        predicate, head_args = _parse_head(tokens)
        if tokens.accept("arrow"):
            atoms, constraints = _parse_body(tokens)
            program.rules.append(Rule(predicate, head_args, atoms,
                                      constraints))
        else:
            for arg in head_args:
                if not isinstance(arg.term, Constant) or arg.aggregate:
                    raise ParseError(
                        f"datalog: fact for {predicate!r} must be ground")
            program.rules.append(Rule(predicate, head_args, (), ()))
        tokens.expect("op", ".")
    if not program.rules:
        raise ParseError("datalog: empty program")
    return program
