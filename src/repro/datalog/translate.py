"""Datalog → RaSQL translation.

Each IDB predicate becomes a recursive view; each rule becomes one union
branch whose FROM list is the body atoms, with shared variables turned
into equi-join conjuncts, constant arguments into filters, and head
aggregate annotations into the view's aggregate columns.  Assignment
constraints (``C = D + W`` with ``C`` otherwise unbound) are substituted
into the head, which is how Datalog expresses the arithmetic that SQL
writes inline.

The result is an ordinary :class:`repro.core.ast_nodes.WithQuery`, so the
whole downstream pipeline — two-step analysis, optimization, the fixpoint
operator, codegen — is shared with the SQL surface verbatim.
"""

from __future__ import annotations

from repro.core import ast_nodes as ast
from repro.datalog.parser import (
    Arith,
    Atom,
    Comparison,
    Constant,
    DatalogProgram,
    HeadArg,
    Rule,
    Variable,
    parse_datalog,
)
from repro.errors import AnalysisError
from repro.relation import Relation


def _idb_columns(program: DatalogProgram, predicate: str) -> list[str]:
    """Column names for an IDB view: variable names from the first rule
    with a fully-named head, else positional ``c0..cn``."""
    for rule in program.rules:
        if rule.head_predicate != predicate:
            continue
        names = []
        for i, arg in enumerate(rule.head_args):
            if isinstance(arg.term, Variable):
                names.append(arg.term.name)
            else:
                names.append(f"c{i}")
        if len(set(n.lower() for n in names)) == len(names):
            return names
    arity = next(len(r.head_args) for r in program.rules
                 if r.head_predicate == predicate)
    return [f"c{i}" for i in range(arity)]


class _RuleTranslator:
    """Translate one rule's body and head into a SelectQuery."""

    def __init__(self, rule: Rule, schema_of, idb_columns):
        self.rule = rule
        self.schema_of = schema_of
        self.idb_columns = idb_columns
        #: variable name -> ColumnRef of its first binding occurrence
        self.bindings: dict[str, ast.ColumnRef] = {}
        self.conjuncts: list[ast.Expr] = []
        #: assignment substitutions: variable -> Datalog expression
        self.assignments: dict[str, object] = {}

    def translate(self) -> ast.SelectQuery:
        rule = self.rule
        if rule.is_fact:
            items = tuple(
                ast.SelectItem(ast.Literal(arg.term.value))
                for arg in rule.head_args)
            return ast.SelectQuery(items)

        from_tables = []
        for index, atom in enumerate(rule.atoms):
            binding = f"t{index}"
            from_tables.append(ast.TableRef(atom.predicate, binding))
            columns = self.schema_of(atom.predicate)
            if len(columns) != len(atom.terms):
                raise AnalysisError(
                    f"datalog: {atom.predicate!r} used with arity "
                    f"{len(atom.terms)}, declared {len(columns)}")
            for position, term in enumerate(atom.terms):
                column = ast.ColumnRef(columns[position], binding)
                if isinstance(term, Variable):
                    if term.name == "_":
                        continue
                    existing = self.bindings.get(term.name)
                    if existing is None:
                        self.bindings[term.name] = column
                    else:
                        self.conjuncts.append(
                            ast.BinaryOp("=", existing, column))
                else:
                    assert isinstance(term, Constant)
                    self.conjuncts.append(
                        ast.BinaryOp("=", column, ast.Literal(term.value)))

        # Split constraints into assignments (defining unbound vars) and
        # genuine filters; assignments may chain, so iterate to fixpoint.
        pending = list(rule.constraints)
        progress = True
        while progress:
            progress = False
            still_pending = []
            for constraint in pending:
                if (constraint.op == "="
                        and isinstance(constraint.left, Variable)
                        and constraint.left.name not in self.bindings
                        and constraint.left.name not in self.assignments
                        and self._resolvable(constraint.right)):
                    self.assignments[constraint.left.name] = constraint.right
                    progress = True
                else:
                    still_pending.append(constraint)
            pending = still_pending

        where = None
        for constraint in pending:
            expr = ast.BinaryOp(
                "<>" if constraint.op == "!=" else constraint.op,
                self._to_expr(constraint.left),
                self._to_expr(constraint.right))
            where = expr if where is None else ast.BinaryOp("AND", where, expr)
        for conjunct in self.conjuncts:
            where = conjunct if where is None else ast.BinaryOp(
                "AND", where, conjunct)

        items = tuple(ast.SelectItem(self._to_expr(arg.term))
                      for arg in rule.head_args)
        return ast.SelectQuery(items, tuple(from_tables), where)

    def _resolvable(self, term) -> bool:
        if isinstance(term, Variable):
            return term.name in self.bindings or term.name in self.assignments
        if isinstance(term, Arith):
            return self._resolvable(term.left) and self._resolvable(term.right)
        return True

    def _to_expr(self, term) -> ast.Expr:
        if isinstance(term, Variable):
            if term.name in self.bindings:
                return self.bindings[term.name]
            if term.name in self.assignments:
                return self._to_expr(self.assignments[term.name])
            raise AnalysisError(
                f"datalog: variable {term.name!r} is unbound in a rule "
                f"for {self.rule.head_predicate!r}")
        if isinstance(term, Constant):
            return ast.Literal(term.value)
        if isinstance(term, Arith):
            return ast.BinaryOp(term.op, self._to_expr(term.left),
                                self._to_expr(term.right))
        raise AnalysisError(f"datalog: cannot translate term {term!r}")


def translate(program: DatalogProgram, schema_of) -> ast.WithQuery:
    """Translate a parsed program; ``schema_of(pred)`` yields column names
    for EDB predicates (from the session catalog)."""
    idb = program.idb_predicates()
    idb_set = set(idb)
    columns_by_predicate = {p: _idb_columns(program, p) for p in idb}

    def lookup(predicate: str):
        if predicate in idb_set:
            return columns_by_predicate[predicate]
        return schema_of(predicate)

    views = []
    for predicate in idb:
        rules = [r for r in program.rules if r.head_predicate == predicate]
        aggregates = [None] * len(rules[0].head_args)
        for rule in rules:
            if len(rule.head_args) != len(aggregates):
                raise AnalysisError(
                    f"datalog: inconsistent arity for {predicate!r}")
            for i, arg in enumerate(rule.head_args):
                if arg.aggregate:
                    if aggregates[i] not in (None, arg.aggregate):
                        raise AnalysisError(
                            f"datalog: conflicting aggregates on column "
                            f"{i} of {predicate!r}")
                    aggregates[i] = arg.aggregate

        column_specs = tuple(
            ast.ColumnSpec(name, aggregate)
            for name, aggregate in zip(columns_by_predicate[predicate],
                                       aggregates))
        branches = tuple(
            _RuleTranslator(rule, lookup, columns_by_predicate).translate()
            for rule in rules)
        views.append(ast.ViewDef(predicate, column_specs, branches,
                                 recursive=True))

    final = _translate_query(program, columns_by_predicate, idb)
    return ast.WithQuery(tuple(views), final)


def _translate_query(program: DatalogProgram, columns_by_predicate,
                     idb: list[str]) -> ast.SelectQuery:
    query = program.query
    if query is None:
        predicate = idb[-1]
        columns = columns_by_predicate[predicate]
        return ast.SelectQuery(
            tuple(ast.SelectItem(ast.ColumnRef(c)) for c in columns),
            (ast.TableRef(predicate),))
    if query.predicate not in columns_by_predicate:
        raise AnalysisError(
            f"datalog: query predicate {query.predicate!r} is not defined")
    columns = columns_by_predicate[query.predicate]
    if len(query.terms) != len(columns):
        raise AnalysisError("datalog: query arity mismatch")
    items = []
    where = None
    for term, column in zip(query.terms, columns):
        ref = ast.ColumnRef(column)
        if isinstance(term, Constant):
            condition = ast.BinaryOp("=", ref, ast.Literal(term.value))
            where = condition if where is None else ast.BinaryOp(
                "AND", where, condition)
        else:
            items.append(ast.SelectItem(ref))
    if not items:  # fully ground query: boolean-style, return the row
        items = [ast.SelectItem(ast.ColumnRef(c)) for c in columns]
    return ast.SelectQuery(tuple(items), (ast.TableRef(query.predicate),),
                           where)


def datalog_to_sql(program_text: str, schema_of) -> str:
    """Translate Datalog source to the equivalent RaSQL text."""
    program = parse_datalog(program_text)
    return translate(program, schema_of).to_sql()


def run_datalog(ctx, program_text: str) -> Relation:
    """Parse, translate and execute a Datalog program on a session.

    EDB predicates must be registered tables on ``ctx``; their column
    names are taken from the catalog positionally.
    """
    program = parse_datalog(program_text)

    def schema_of(predicate: str):
        return list(ctx.catalog.schema_of(predicate))

    with_query = translate(program, schema_of)
    return ctx.sql(with_query.to_sql())
