"""A Datalog front end over the same fixpoint core.

RaSQL is the SQL face of a line of work whose previous system, BigDatalog
(SIGMOD 2016), exposed the same aggregates-in-recursion through Datalog
with monotonic aggregates.  This package closes the loop: classic Datalog
programs (with ``min<>``/``max<>``/``sum<>``/``count<>`` head annotations)
translate into the RaSQL AST and run through the identical analyzer,
optimizer, planner and fixpoint operator.

    from repro import RaSQLContext
    from repro.datalog import run_datalog

    ctx = RaSQLContext()
    ctx.register_table("edge", ["c0", "c1", "c2"], weighted_edges)
    result = run_datalog(ctx, '''
        path(1, 0).
        path(Y, min<C>) <- path(X, D), edge(X, Y, W), C = D + W.
        ?- path(X, C).
    ''')
"""

from repro.datalog.parser import DatalogProgram, parse_datalog
from repro.datalog.translate import datalog_to_sql, run_datalog

__all__ = ["DatalogProgram", "datalog_to_sql", "parse_datalog", "run_datalog"]
