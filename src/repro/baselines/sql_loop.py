"""Spark-SQL-Naive / Spark-SQL-SN — the Figure 10 loop baselines.

Spark SQL has no recursive CTE, so the paper hand-writes the recursion as
a driver loop of ordinary SQL statements ("a mix of the Scala loops and
Spark SQLs").  These baselines reproduce that: each iteration executes the
view's branch queries through the ordinary relational executor against
materialized relations, with

- **naive**: every iteration re-runs the recursive branches against the
  *entire* accumulated relation and re-distincts the union, and
- **sn**: a hand-simulated delta (new rows only feed the next round),

but none of the fixpoint-operator machinery: no mutable SetRDD (the
accumulated relation is rebuilt each round, as immutable DataFrames force),
no stage combination, no partition-aware caching, no map-side partial
aggregation — which is precisely why the paper finds them 4x+ slower than
RaSQL even when the delta sizes match.

For ``sum``/``count`` views, correctness under set semantics requires
derivation provenance (two children contributing the same value must not
collapse); the rewrite adds the standard ``(Level, ChildKey)`` columns a
Spark SQL author would add, and the final statement aggregates them away.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core import ast_nodes as ast
from repro.core.config import ExecutionConfig
from repro.core.executor import execute_select
from repro.core.parser import parse
from repro.engine.cluster import Cluster
from repro.engine.serialization import rows_size
from repro.errors import AnalysisError, FixpointNotReachedError
from repro.relation import Relation


@dataclass
class LoopResult:
    relation: Relation
    iterations: int


class SQLLoopEngine:
    """Iterative-SQL evaluation of a single-view recursive query."""

    def __init__(self, cluster: Cluster, mode: str = "sn",
                 max_iterations: int | None = None,
                 config: ExecutionConfig | None = None):
        """``config`` supplies the iteration budget (``max_iterations``)
        and the cooperative deadline (``deadline_seconds``) so baselines
        honour the same :class:`repro.core.config.ExecutionConfig` limits
        as the fixpoint operator; an explicit ``max_iterations`` wins."""
        if mode not in ("naive", "sn"):
            raise ValueError(f"unknown mode {mode!r}")
        self.cluster = cluster
        self.mode = mode
        self.config = config
        if max_iterations is not None:
            self.max_iterations = max_iterations
        elif config is not None:
            self.max_iterations = config.max_iterations
        else:
            self.max_iterations = 100_000

    # ------------------------------------------------------------------

    def run(self, query: str, tables: dict[str, Relation]) -> LoopResult:
        script = parse(query)
        with_query = next(
            (s for s in script.statements if isinstance(s, ast.WithQuery)),
            None)
        if with_query is None or len(with_query.views) != 1:
            raise AnalysisError(
                "the SQL-loop baselines support single-view WITH queries")
        view = with_query.views[0]

        aggregates = [c.aggregate for c in view.columns]
        accumulating = any(a in ("sum", "count") for a in aggregates)

        base_branches = []
        recursive_branches = []
        for branch in view.branches:
            if any(t.name.lower() == view.name.lower()
                   for t in branch.from_tables):
                recursive_branches.append(branch)
            else:
                base_branches.append(branch)
        if not base_branches or not recursive_branches:
            raise AnalysisError("need at least one base and one recursive branch")

        working_columns = list(view.column_names)
        if accumulating:
            working_columns += ["__Level", "__Origin"]

        def prepare(branch: ast.SelectQuery, is_base: bool) -> ast.SelectQuery:
            if not accumulating:
                return branch
            if is_base:
                # Origin = the contributing row itself.
                extra = (ast.SelectItem(ast.Literal(0), "__Level"),
                         ast.SelectItem(branch.items[0].expr, "__Origin"))
            else:
                # Origin passes through: two siblings contributing equal
                # values to the same ancestor must stay distinct rows.
                binding = next(t.binding for t in branch.from_tables
                               if t.name.lower() == view.name.lower())
                extra = (
                    ast.SelectItem(ast.BinaryOp(
                        "+", ast.ColumnRef("__Level", binding),
                        ast.Literal(1)), "__Level"),
                    ast.SelectItem(ast.ColumnRef("__Origin", binding),
                                   "__Origin"),
                )
            return ast.SelectQuery(branch.items + extra, branch.from_tables,
                                   branch.where, branch.group_by,
                                   branch.having, branch.distinct)

        prepared_base = [prepare(b, True) for b in base_branches]
        prepared_recursive = [prepare(b, False) for b in recursive_branches]

        def resolver(bound: Relation):
            def resolve(name: str) -> Relation:
                if name.lower() == view.name.lower():
                    return bound
                return tables[name.lower()]
            return resolve

        # --- base case -------------------------------------------------
        t0 = time.perf_counter()
        all_rows: set[tuple] = set()
        for branch in prepared_base:
            result = execute_select(branch, resolver(None), view.name)
            all_rows.update(result.rows)
        self._charge(time.perf_counter() - t0, all_rows, "sqlloop-base")
        delta_rows = set(all_rows)

        deadline_armed = False
        if (self.config is not None
                and self.config.deadline_seconds is not None
                and self.cluster.deadline is None):
            self.cluster.deadline = (self.cluster.metrics.sim_time
                                     + self.config.deadline_seconds)
            deadline_armed = True

        iterations = 0
        last_delta = len(delta_rows)
        try:
            while True:
                iterations += 1
                if iterations > self.max_iterations:
                    raise FixpointNotReachedError(
                        f"SQL loop exceeded its iteration budget of "
                        f"{self.max_iterations}: the last completed "
                        f"iteration ({iterations - 1}) still produced a "
                        f"delta of {last_delta} rows — raise "
                        f"ExecutionConfig.max_iterations or check the "
                        f"query for non-monotonic recursion",
                        iterations - 1)
                self.cluster.check_deadline(f"sqlloop-iter{iterations}")
                t0 = time.perf_counter()
                source = all_rows if self.mode == "naive" else delta_rows
                bound = Relation(view.name, working_columns, source)
                derived: set[tuple] = set()
                for branch in prepared_recursive:
                    result = execute_select(branch, resolver(bound), view.name)
                    derived.update(result.rows)
                fresh = derived - all_rows
                # Immutable accumulation: rebuild the full relation, as a
                # chain of DataFrame unions would.
                all_rows = set(all_rows) | fresh
                shipped = derived if self.mode == "naive" else fresh
                self._charge(time.perf_counter() - t0, shipped,
                             f"sqlloop-iter{iterations}")
                if not fresh:
                    break
                delta_rows = fresh
                last_delta = len(fresh)
        finally:
            if deadline_armed:
                self.cluster.deadline = None

        # --- final stratum ----------------------------------------------
        t0 = time.perf_counter()
        final_rows = self._final_aggregate(view, all_rows, accumulating)
        view_relation = Relation(view.name, view.column_names, final_rows)

        def final_resolve(name: str) -> Relation:
            if name.lower() == view.name.lower():
                return view_relation
            return tables[name.lower()]

        result = execute_select(with_query.final, final_resolve, "result")
        self._charge(time.perf_counter() - t0, result.rows, "sqlloop-final")
        return LoopResult(result, iterations)

    # ------------------------------------------------------------------

    @staticmethod
    def _final_aggregate(view: ast.ViewDef, rows: set[tuple],
                         accumulating: bool) -> list[tuple]:
        """Apply the head aggregates over the accumulated derivations."""
        aggregates = [c.aggregate for c in view.columns]
        if not any(aggregates):
            return list(rows)
        group_positions = [i for i, a in enumerate(aggregates) if a is None]
        agg_positions = [i for i, a in enumerate(aggregates) if a is not None]

        def fold(name, a, b):
            if name == "min":
                return min(a, b)
            if name == "max":
                return max(a, b)
            return a + b  # sum / count over contribution values

        grouped: dict[tuple, list] = {}
        for row in rows:
            key = tuple(row[i] for i in group_positions)
            values = [row[p] for p in agg_positions]
            state = grouped.get(key)
            if state is None:
                grouped[key] = values
            else:
                for i, position in enumerate(agg_positions):
                    state[i] = fold(aggregates[position], state[i], values[i])
        out = []
        arity = len(view.columns)
        for key, values in grouped.items():
            row = [None] * arity
            for position, value in zip(group_positions, key):
                row[position] = value
            for position, value in zip(agg_positions, values):
                row[position] = value
            out.append(tuple(row))
        return out

    def _charge(self, cpu_seconds: float, shipped_rows, label: str) -> None:
        """Account one driver-loop round as a cluster stage + shuffle."""
        cluster = self.cluster
        model = cluster.cost_model
        stage_time = (model.stage_overhead_s
                      + cpu_seconds * model.cpu_scale / cluster.num_workers)
        cluster.metrics.advance(stage_time, label=label)
        cluster.metrics.inc("stages")
        cluster.metrics.inc("tasks", cluster.num_partitions)
        nbytes = rows_size(shipped_rows)
        if nbytes:
            cluster.metrics.advance(
                model.transfer_seconds(nbytes, cluster.num_workers),
                label=label + "-shuffle")
            cluster.metrics.inc("shuffle_bytes", nbytes)
            cluster.metrics.inc("shuffle_records", len(shipped_rows))
