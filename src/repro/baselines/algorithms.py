"""Vertex programs for the Pregel baselines (Section 8's workloads).

Graph programs (Figure 8/9): REACH (BFS), CC (min-label propagation),
SSSP (Bellman-Ford relaxation).  Complex-analytics programs (Figure 10):
Delivery (max-propagation up the assembly tree), Management (subordinate
counting) and MLM (bonus accumulation) as increment propagation — the
standard encoding of these on vertex-centric systems.

Program contract (see :class:`repro.baselines.pregel.VertexProgram`):
``init``/``update`` return ``(stored_value, emit_seed)``; the engine sends
``emit(emit_seed, edge_payload)`` along each out-edge when the seed is not
``None``.  Min/max programs emit their improved value; sum programs store
the running total but emit the *increment*, which is what makes the
tree-structured Figure 10 workloads converge to the right totals.
"""

from __future__ import annotations

from repro.baselines.pregel import VertexProgram


def reach_program(source) -> VertexProgram:
    """BFS reachability: value is ``True`` once visited."""
    return VertexProgram(
        name="reach",
        init=lambda vertex, ctx: (True, True) if vertex == source
        else (None, None),
        combine=lambda a, b: a or b,
        update=lambda old, message: (None, None) if old else (True, True),
        emit=lambda seed, payload: True,
    )


def cc_program() -> VertexProgram:
    """Min-label propagation along directed edges (the CC query)."""
    return VertexProgram(
        name="cc",
        init=lambda vertex, ctx: (vertex, vertex),
        combine=min,
        update=lambda old, message: (message, message)
        if old is None or message < old else (None, None),
        emit=lambda seed, payload: seed,
    )


def sssp_program(source) -> VertexProgram:
    """Bellman-Ford relaxation; edge payload carries the weight."""
    return VertexProgram(
        name="sssp",
        init=lambda vertex, ctx: (0, 0) if vertex == source else (None, None),
        combine=min,
        update=lambda old, message: (message, message)
        if old is None or message < old else (None, None),
        emit=lambda seed, payload: seed + payload[0],
    )


def delivery_program() -> VertexProgram:
    """BOM days-till-delivery on a tree with edges child→parent.

    ``context['leaf_days']`` seeds the basic parts; parents adopt the max
    of their subparts' days (monotone max, so re-emission on improvement
    is safe).
    """
    def init(vertex, ctx):
        days = ctx["leaf_days"].get(vertex)
        return (days, days) if days is not None else (None, None)

    return VertexProgram(
        name="delivery",
        init=init,
        combine=max,
        update=lambda old, message: (message, message)
        if old is None or message > old else (None, None),
        emit=lambda seed, payload: seed,
    )


def management_program() -> VertexProgram:
    """Subordinate counting on a tree with edges employee→manager.

    ``context['employees']`` holds everyone who appears as an employee in
    the ``report`` relation — matching the query's base case, only they
    seed a 1 (a root manager starts unset).  Increments travel each upward
    edge exactly once, so the fixpoint equals the Management query's Cnt.
    """
    def init(vertex, ctx):
        if vertex in ctx["employees"]:
            return 1, 1
        return None, None

    return VertexProgram(
        name="management",
        init=init,
        combine=lambda a, b: a + b,
        update=lambda old, inc: ((old or 0) + inc, inc),
        emit=lambda seed, payload: seed,
    )


def mlm_program() -> VertexProgram:
    """MLM bonus on the sponsor tree (edges member→sponsor).

    ``context['profit']`` maps member → gross profit P; values start at
    0.1·P and increments halve at every upward hop.
    """
    def init(vertex, ctx):
        seed = ctx["profit"].get(vertex, 0.0) * 0.1
        return (seed, seed if seed else None)

    return VertexProgram(
        name="mlm",
        init=init,
        combine=lambda a, b: a + b,
        update=lambda old, inc: ((old or 0.0) + inc, inc),
        emit=lambda seed, payload: seed * 0.5,
    )
