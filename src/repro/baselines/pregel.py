"""A vertex-centric BSP engine — the Giraph / GraphX comparison systems.

Pregel-style computation: vertices hold values, supersteps alternate
message delivery / vertex update / message generation, and the computation
halts when no messages remain.  The engine runs on the same simulated
:class:`~repro.engine.cluster.Cluster` as the fixpoint operator, so the
cost accounting (stages, shuffles, worker skew) is directly comparable.

Two profiles reproduce the execution characteristics Section 8 reports:

- :data:`GIRAPH_PROFILE` — one fused stage per superstep, message
  combiners, cached adjacency, but a Hadoop-MapReduce job-startup cost.
  The paper finds Giraph "performs similar to RaSQL on CC and SSSP"
  thanks to such tuning.
- :data:`GRAPHX_PROFILE` — the paper observes "each iteration is split
  into 4 ShuffleMap stages in GraphX compared to 1 in RaSQL" and that its
  vertex-centric layer over RDDs rebuilds edge triplets instead of fusing
  operators.  The profile therefore executes the triplets join (vertex
  values × edges) as real per-superstep work plus the extra stages.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable

from repro.engine.cluster import Cluster, StageTask
from repro.engine.dataset import Partition
from repro.engine.partitioner import HashPartitioner


@dataclass(frozen=True)
class VertexProgram:
    """One algorithm expressed vertex-centrically.

    ``init(vertex, context) -> (value | None, emit_seed | None)``
        Initial vertex value and the seed to emit along out-edges.
    ``combine(a, b) -> message``
        Associative-commutative message combiner.
    ``update(old_value, combined) -> (new_value | None, emit_seed | None)``
        Fold the combined message into the value.  ``new_value`` of
        ``None`` keeps the old value; ``emit_seed`` of ``None`` halts the
        vertex for this superstep.  Min/max programs emit their improved
        value; sum programs emit the increment.
    ``emit(seed, edge_payload) -> message | None``
        Message for one outgoing edge; ``edge_payload`` is the edge's
        attribute tuple (weights etc.).
    """

    name: str
    init: Callable
    combine: Callable
    update: Callable
    emit: Callable


@dataclass(frozen=True)
class PregelProfile:
    """Execution profile distinguishing Giraph-like from GraphX-like."""

    name: str
    stages_per_superstep: int = 1
    use_combiners: bool = True
    rebuild_triplets: bool = False
    startup_stages: int = 0
    #: Multiplier on message wire size (RDD tuple overhead vs compact
    #: serialization).
    message_size_factor: float = 1.0


GIRAPH_PROFILE = PregelProfile(
    name="giraph",
    stages_per_superstep=1,
    use_combiners=True,
    rebuild_triplets=False,
    startup_stages=4,      # MapReduce job launch
    message_size_factor=1.0,
)

GRAPHX_PROFILE = PregelProfile(
    name="graphx",
    stages_per_superstep=4,
    use_combiners=True,    # GraphX has mergeMsg, but no map-side fusion
    rebuild_triplets=True,
    startup_stages=1,
    message_size_factor=1.5,
)


@dataclass
class PregelResult:
    values: dict
    supersteps: int


class PregelEngine:
    """Run a vertex program over a partitioned graph on a cluster."""

    def __init__(self, cluster: Cluster, profile: PregelProfile):
        self.cluster = cluster
        self.profile = profile

    def run(self, edges: list[tuple], program: VertexProgram,
            context: dict | None = None,
            max_supersteps: int = 100_000) -> PregelResult:
        """Execute to quiescence; ``edges`` are ``(src, dst, *payload)``.

        ``context`` is passed to ``program.init`` (e.g. the SSSP source, or
        per-vertex seed values for the complex-analytics workloads).
        """
        cluster = self.cluster
        n = cluster.num_partitions
        partitioner = HashPartitioner(n)
        context = context or {}

        # --- graph loading: adjacency co-partitioned with vertex state ---
        adjacency: list[dict] = [defaultdict(list) for _ in range(n)]
        vertices: list[set] = [set() for _ in range(n)]
        for edge in edges:
            src, dst = edge[0], edge[1]
            payload = edge[2:]
            pid = partitioner.partition_of(src)
            adjacency[pid][src].append((dst, payload))
            vertices[pid].add(src)
            vertices[partitioner.partition_of(dst)].add(dst)

        values: list[dict] = [{} for _ in range(n)]
        initial_messages: list[dict] = [defaultdict(list) for _ in range(n)]
        for pid in range(n):
            for vertex in vertices[pid]:
                value, seed = program.init(vertex, context)
                if value is not None:
                    values[pid][vertex] = value
                if seed is not None:
                    for dst, payload in adjacency[pid].get(vertex, ()):
                        message = program.emit(seed, payload)
                        if message is not None:
                            target = partitioner.partition_of(dst)
                            initial_messages[target][dst].append(message)

        # Job startup (Hadoop/Spark submission).
        for _ in range(self.profile.startup_stages):
            cluster.metrics.advance(cluster.cost_model.stage_overhead_s,
                                    label=f"{self.profile.name}-startup")
            cluster.metrics.inc("stages")

        inbox = self._exchange(initial_messages, partitioner)

        supersteps = 0
        while any(inbox[p] for p in range(n)):
            supersteps += 1
            if supersteps > max_supersteps:
                raise RuntimeError("pregel did not converge")
            inbox = self._superstep(inbox, values, adjacency, program,
                                    partitioner)
            cluster.metrics.inc("supersteps")

        merged: dict = {}
        for partition_values in values:
            merged.update(partition_values)
        return PregelResult(merged, supersteps)

    # ------------------------------------------------------------------

    def _superstep(self, inbox, values, adjacency, program, partitioner):
        cluster = self.cluster
        n = cluster.num_partitions
        profile = self.profile
        combine = program.combine
        update = program.update
        emit = program.emit

        def task_fn(pid):
            def run(_rows):
                local_values = values[pid]
                local_adjacency = adjacency[pid]
                outgoing: dict[int, dict] = defaultdict(lambda: defaultdict(list))

                if profile.rebuild_triplets:
                    # GraphX materializes the triplets view every superstep:
                    # a full join of vertex values with the edge RDD,
                    # allocating one (src, srcAttr, dst, attr) tuple per
                    # edge whose source carries a value — regardless of how
                    # few vertices are active.  This is the inefficiency
                    # Section 8 observes when "the direct translation of a
                    # GraphX program into raw RDDs loses important
                    # optimization chances".
                    triplets = [
                        (vertex, value, dst, payload)
                        for vertex, value in local_values.items()
                        for dst, payload in local_adjacency.get(vertex, ())
                    ]
                    del triplets

                for vertex, messages in inbox[pid].items():
                    combined = messages[0]
                    for message in messages[1:]:
                        combined = combine(combined, message)
                    old = local_values.get(vertex)
                    new, seed = update(old, combined)
                    if new is not None:
                        local_values[vertex] = new
                    if seed is None:
                        continue
                    for dst, payload in local_adjacency.get(vertex, ()):
                        message = emit(seed, payload)
                        if message is not None:
                            outgoing[partitioner.partition_of(dst)][dst].append(
                                message)

                if profile.use_combiners:
                    for target in outgoing.values():
                        for dst, messages in target.items():
                            if len(messages) > 1:
                                combined = messages[0]
                                for message in messages[1:]:
                                    combined = combine(combined, message)
                                target[dst] = [combined]
                return outgoing
            return run

        inbox_partitions = [
            Partition(p, [(k, tuple(v)) for k, v in inbox[p].items()],
                      cluster.worker_for_partition(p))
            for p in range(n)
        ]
        tasks = [StageTask(p, [inbox_partitions[p]], task_fn(p),
                           preferred_worker=cluster.worker_for_partition(p))
                 for p in range(n)]
        results = cluster.run_stage(f"{profile.name}-superstep", tasks)

        # Extra bookkeeping stages (GraphX's 4-stage iterations): real
        # stage-scheduling overhead plus a cheap pass over the inbox.
        for extra in range(profile.stages_per_superstep - 1):
            extra_tasks = [
                StageTask(p, [inbox_partitions[p]], lambda rows: len(rows),
                          preferred_worker=cluster.worker_for_partition(p))
                for p in range(n)
            ]
            cluster.run_stage(f"{profile.name}-bookkeeping{extra}", extra_tasks)

        new_messages: list[dict] = [defaultdict(list) for _ in range(n)]
        map_outputs = []
        for result in results:
            buckets: dict[int, list[tuple]] = defaultdict(list)
            for target_pid, per_vertex in result.output.items():
                for dst, messages in per_vertex.items():
                    new_messages[target_pid][dst].extend(messages)
                    buckets[target_pid].extend(
                        (dst, message) for message in messages)
            if profile.message_size_factor != 1.0:
                # Inflate accounted bytes for chatty serialization.
                for pid_bucket in buckets.values():
                    extra = int((profile.message_size_factor - 1.0)
                                * len(pid_bucket))
                    pid_bucket.extend(pid_bucket[:extra])
            map_outputs.append((result.worker, buckets))
        self.cluster.exchange(map_outputs, len(new_messages),
                              HashPartitioner(len(new_messages)))
        return new_messages

    def _exchange(self, messages, partitioner):
        """Charge the initial message distribution."""
        map_outputs = [(0, {pid: [(dst, m) for dst, ms in per.items()
                                  for m in ms]})
                       for pid, per in enumerate(messages)]
        self.cluster.exchange(map_outputs, len(messages), partitioner)
        return messages
