"""Single-threaded reference algorithms (the GAP / COST baselines).

The paper compares its distributed systems against the GAP benchmark suite
and McSherry's COST single-threaded implementations (Table 3, Figure 9).
These are idiomatic single-threaded Python versions of the same algorithms
over adjacency lists; they also serve as the correctness oracles for the
integration test suite, since they share no code with the fixpoint engine.

``GAP_SPEEDUP``/``COST_SPEEDUP`` model the constant-factor advantage of
the original C++/Rust implementations over Python, so Table 3's
cross-language comparison can be reproduced at the right ratios (the
*shape* — serial wins small, distributed wins large — comes from the real
measured times; the constants are documented, not hidden).
"""

from __future__ import annotations

import heapq
from collections import defaultdict, deque

#: C++ (GAP) and Rust (COST) single-thread speedups over CPython for these
#: pointer-chasing workloads; order-of-magnitude constants used only for
#: Table 3's cross-language rows.
GAP_SPEEDUP = 40.0
COST_SPEEDUP = 55.0


def out_of_cache_penalty(edge_count: int) -> float:
    """Slowdown of single-machine graph traversal once the working set
    leaves the cache hierarchy.

    Our proxies fit in L2/L3, where random access is nearly free; the
    originals (up to 1.5B edges) hit DRAM on almost every hop, which is the
    second reason — besides algorithm choice — that GAP-serial takes 763s
    on twitter.  Model: no penalty below ~10M edges, growing
    logarithmically to ~8x at billions (typical DRAM-vs-L2 latency ratios
    discounted by prefetching).  Used only when projecting Table 3/Figure 9
    serial measurements to full scale.
    """
    import math

    if edge_count <= 10_000_000:
        return 1.0
    growth = math.log(edge_count / 10_000_000) / math.log(150)
    return 1.0 + 7.0 * min(1.0, growth)


def adjacency(edges, weighted: bool = False) -> dict:
    """Build a forward adjacency list from an edge iterable."""
    adj: dict = defaultdict(list)
    if weighted:
        for src, dst, weight in edges:
            adj[src].append((dst, weight))
    else:
        for src, dst in edges:
            adj[src].append(dst)
    return adj


def reach(edges, source) -> set:
    """BFS reachability — the REACH query (Example 10)."""
    adj = adjacency(edges)
    seen = {source}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for neighbor in adj.get(node, ()):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return seen


def sssp(edges, source) -> dict:
    """Dijkstra single-source shortest paths — the SSSP query (Example 1).

    Requires non-negative weights, which all generators guarantee.
    """
    adj = adjacency(edges, weighted=True)
    dist = {source: 0}
    heap = [(0, source)]
    while heap:
        d, node = heapq.heappop(heap)
        if d > dist.get(node, float("inf")):
            continue
        for neighbor, weight in adj.get(node, ()):
            candidate = d + weight
            if candidate < dist.get(neighbor, float("inf")):
                dist[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))
    return dist


def connected_components(edges) -> dict:
    """Min-label propagation over the *directed* edges, exactly matching
    the CC query's semantics (Example 2).

    Note the paper's CC query propagates labels along directed edges from
    ``Src`` to ``Dst`` only, and only nodes appearing as ``Src`` seed
    labels; this oracle replicates that faithfully rather than computing
    undirected components.
    """
    adj = adjacency(edges)
    label = {src: src for src in adj}
    frontier = set(adj)
    while frontier:
        next_frontier = set()
        for node in frontier:
            if node not in label:
                continue
            for neighbor in adj.get(node, ()):
                candidate = label[node]
                if candidate < label.get(neighbor, float("inf")):
                    label[neighbor] = candidate
                    next_frontier.add(neighbor)
        frontier = next_frontier
    return label


def undirected_label_propagation(edges) -> dict:
    """Undirected connected components by iterative min-label propagation.

    This is (a Python rendition of) the algorithm the GAP benchmark's CC
    uses — repeated sweeps until no label changes — which is why GAP-serial
    loses so badly on twitter in Table 3 while COST's smarter union-find
    (see :func:`undirected_components`) fares better.
    """
    label: dict = {}
    adj = defaultdict(list)
    for src, dst in edges:
        adj[src].append(dst)
        adj[dst].append(src)
        label[src] = src
        label[dst] = dst
    changed = True
    while changed:
        changed = False
        for node, neighbors in adj.items():
            current = label[node]
            for neighbor in neighbors:
                if label[neighbor] < current:
                    current = label[neighbor]
            if current < label[node]:
                label[node] = current
                changed = True
    return label


def undirected_components(edges) -> dict:
    """Union-find connected components treating edges as undirected
    (the algorithm COST uses; also the CC oracle for Table 3)."""
    parent: dict = {}

    def find(x):
        root = x
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for src, dst in edges:
        ra, rb = find(src), find(dst)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)
    return {node: find(node) for node in parent}


def transitive_closure(edges) -> set:
    """All reachable pairs — the TC query (Section 6)."""
    adj = adjacency(edges)
    closure: set = set()
    for start in list(adj):
        seen = set()
        frontier = deque(adj[start])
        while frontier:
            node = frontier.popleft()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(adj.get(node, ()))
        closure.update((start, node) for node in seen)
    return closure


def apsp(edges) -> dict:
    """All-pairs shortest paths by repeated Dijkstra (Example 11).

    Matches the APSP query's semantics: pairs unreachable from any source
    are absent; self-pairs appear only when a cycle returns to the source.
    """
    adj = adjacency(edges, weighted=True)
    out: dict = {}
    for source in list(adj):
        # Like the query's base case, paths start from existing edges, so
        # the zero-length self path is not included unless a cycle exists.
        dist: dict = {}
        heap = [(weight, dst) for dst, weight in adj[source]]
        heapq.heapify(heap)
        while heap:
            d, node = heapq.heappop(heap)
            if d >= dist.get(node, float("inf")):
                continue
            dist[node] = d
            for neighbor, weight in adj.get(node, ()):
                candidate = d + weight
                if candidate < dist.get(neighbor, float("inf")):
                    heapq.heappush(heap, (candidate, neighbor))
        for dst, d in dist.items():
            out[(source, dst)] = d
    return out


def count_paths(edges, source) -> dict:
    """Number of distinct paths from *source* (Example 3); DAG input."""
    adj = adjacency(edges)
    order = _topological(adj)
    counts = defaultdict(int)
    counts[source] = 1
    for node in order:
        if counts[node]:
            for neighbor in adj.get(node, ()):
                counts[neighbor] += counts[node]
    return dict(counts)


def _topological(adj: dict) -> list:
    indegree: dict = defaultdict(int)
    nodes = set(adj)
    for node, neighbors in adj.items():
        for neighbor in neighbors:
            nodes.add(neighbor)
            indegree[neighbor] += 1
    frontier = deque(node for node in nodes if indegree[node] == 0)
    order = []
    while frontier:
        node = frontier.popleft()
        order.append(node)
        for neighbor in adj.get(node, ()):
            indegree[neighbor] -= 1
            if indegree[neighbor] == 0:
                frontier.append(neighbor)
    if len(order) != len(nodes):
        raise ValueError("count_paths requires an acyclic graph")
    return order


def bom_waitfor(assbl, basic) -> dict:
    """Days-till-delivery (the BOM query Q2): max over subpart days."""
    children = defaultdict(list)
    for part, subpart in assbl:
        children[part].append(subpart)
    days = dict(basic)

    def resolve(part, visiting=()):
        if part in days:
            return days[part]
        if part in visiting:
            raise ValueError("cyclic assembly")
        sub = [resolve(s, visiting + (part,)) for s in children.get(part, ())]
        if not sub:
            return None
        value = max(d for d in sub if d is not None)
        days[part] = value
        return value

    for part in list(children):
        resolve(part)
    return days


def management_counts(report) -> dict:
    """Example 4's semantics: Cnt(e) = 1 + Σ Cnt(direct reports of e),
    computed for every person appearing in the ``report`` relation."""
    reports = defaultdict(list)
    employees = set()
    for emp, mgr in report:
        reports[mgr].append(emp)
        employees.add(emp)

    counts: dict = {}

    def count_of(person):
        if person in counts:
            return counts[person]
        base = 1 if person in employees else 0
        total = base + sum(count_of(e) for e in reports.get(person, ()))
        counts[person] = total
        return total

    for person in employees | set(reports):
        count_of(person)
    # The query only produces rows for group keys that appear in some
    # branch output: every employee (base) and every manager (recursion).
    return {p: c for p, c in counts.items()
            if p in employees or reports.get(p)}


def mlm_bonus(sales, sponsor) -> dict:
    """Example 5's semantics: B(m) = 0.1·P(m) + 0.5·Σ B(recruits of m)."""
    recruits = defaultdict(list)
    for sponsor_id, member in sponsor:
        recruits[sponsor_id].append(member)
    bonus: dict = {}

    def bonus_of(member, profit_by_member):
        if member in bonus:
            return bonus[member]
        total = profit_by_member.get(member, 0) * 0.1
        total += sum(0.5 * bonus_of(r, profit_by_member)
                     for r in recruits.get(member, ()))
        bonus[member] = total
        return total

    profit = dict(sales)
    for member in set(profit) | set(recruits):
        bonus_of(member, profit)
    return {m: b for m, b in bonus.items() if b != 0 or m in profit}


def coalesce_intervals(intervals) -> list:
    """Example 6's semantics: merge intervals that overlap or touch."""
    out: list = []
    for start, end in sorted(intervals):
        if out and start <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], end))
        else:
            out.append((start, end))
    return out


def party_attendance(organizers, friendships, threshold: int = 3) -> set:
    """Example 7's semantics: attend if organizer or ≥ threshold attending
    friends; ``friendships`` holds (Pname, Fname) pairs meaning Pname is a
    friend of Fname."""
    friends_of = defaultdict(set)
    for pname, fname in friendships:
        friends_of[fname].add(pname)
    attending = set(organizers)
    changed = True
    while changed:
        changed = False
        for person, friends in friends_of.items():
            if person not in attending and len(friends & attending) >= threshold:
                attending.add(person)
                changed = True
    return attending


def company_control(shares) -> dict:
    """Example 8's semantics: controlled share totals to fixpoint.

    Mirrors the query's increment semantics: when ``a`` gains control of
    ``b`` it inherits b's *current* holdings; later increments to b's
    holdings flow through as increments.
    """
    return _company_control_seminaive(shares)


def _company_control_seminaive(shares) -> dict:
    """Semi-naive reference mirroring the query's increment semantics.

    Diverges (like the query itself) on cyclic majority ownership, so a
    round budget guards against silent hangs.  ``shares`` is a set of
    facts, as in the Datalog formulation: a duplicate
    ``(by, of, percent)`` row is the same fact restated, not a second
    share lot (distinct lots need a distinguishing column).
    """
    direct: dict = defaultdict(float)
    for by, of, percent in dict.fromkeys(tuple(s) for s in shares):
        direct[(by, of)] += percent

    totals: dict = dict(direct)
    control: set = set()
    delta: dict = dict(direct)

    rounds = 0
    while True:
        rounds += 1
        if rounds > 10_000:
            raise ValueError(
                "company control did not converge (cyclic majority "
                "ownership makes the classic program diverge)")
        new_control = {(a, b) for (a, b), t in totals.items()
                       if t > 50} - control
        increments: dict = defaultdict(float)
        # δcontrol ⋈ cshares_all
        for (a, b) in new_control:
            for (by, of), t in totals.items():
                if by == b:
                    increments[(a, of)] += t
        # control_all ⋈ δcshares  (minus δ⋈δ double count)
        for (a, b) in control:
            for (by, of), inc in delta.items():
                if by == b:
                    increments[(a, of)] += inc
        control |= new_control
        delta = {}
        for pair, inc in increments.items():
            if inc:
                totals[pair] = totals.get(pair, 0) + inc
                delta[pair] = inc
        if not delta and not new_control:
            break
    return totals
