"""Uniform system wrappers for the Section 8 comparisons.

Every system exposes ``run(workload) -> SystemResult`` where the workload
names an algorithm plus its input tables, and the result carries the
simulated cluster seconds (the paper's "Time (s)" axis), wall seconds, and
the output for cross-checking.  Systems:

- :class:`RaSQLSystem` — the full engine (reference configuration).
- :class:`BigDatalogSystem` — the SIGMOD'16 predecessor: same semi-naive
  core and SetRDD, but none of RaSQL's new optimizations (no stage
  combination, no partition-aware scheduling, no code generation) — the
  deltas the paper credits for its "huge improvements over BigDatalog".
- :class:`MyriaSystem` — low fixed overhead (its workers are long-running
  PostgreSQL-backed processes, no per-stage job scheduling) but a less
  efficient communication layer: fast on small inputs, scales poorly
  (Figure 8's crossover).
- :class:`GiraphSystem` / :class:`GraphXSystem` — the vertex-centric
  engines of :mod:`repro.baselines.pregel`.
- :class:`SparkSQLNaiveSystem` / :class:`SparkSQLSNSystem` — Figure 10's
  iterative-SQL loops.
- :class:`GAPSerialSystem` / :class:`GAPParallelSystem` /
  :class:`COSTSystem` — single-machine baselines (Table 3, Figure 9).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro import ExecutionConfig, RaSQLContext
from repro.baselines import algorithms, serial
from repro.baselines.pregel import (
    GIRAPH_PROFILE,
    GRAPHX_PROFILE,
    PregelEngine,
    PregelProfile,
)
from repro.baselines.sql_loop import SQLLoopEngine
from repro.engine.cluster import Cluster
from repro.engine.metrics import CostModel
from repro.queries.library import get_query
from repro.relation import Relation


@dataclass
class Workload:
    """One benchmark task.

    ``algorithm`` ∈ {reach, cc, sssp, tc, sg, delivery, management, mlm}.
    ``tables`` maps base-table name → (columns, rows).  ``source`` applies
    to reach/sssp.  ``include_load`` charges data-loading time, matching
    the paper's end-to-end measurements.
    """

    algorithm: str
    tables: dict[str, tuple[list[str], list]]
    source: object = None
    include_load: bool = True


@dataclass
class SystemResult:
    system: str
    algorithm: str
    sim_seconds: float
    wall_seconds: float
    output: object
    iterations: int = 0
    metrics: dict = field(default_factory=dict)
    #: Serialized span tree of the run (``RunInfo.trace``), populated by
    #: systems built on the RaSQL context; benchmarks hand it to
    #: ``harness.dump_trace`` to ship a per-iteration trace artifact.
    trace: dict | None = None


_QUERY_FOR = {
    "reach": "reach",
    "cc": "cc_labels",
    "sssp": "sssp",
    "tc": "tc",
    "sg": "same_generation",
    "delivery": "bom",
    "management": "management",
    "mlm": "mlm_bonus",
}


def _new_cluster(num_workers: int, scheduler: str = "partition_aware",
                 cost_model: CostModel | None = None,
                 num_partitions: int | None = None) -> Cluster:
    return Cluster(num_workers=num_workers, scheduler=scheduler,
                   cost_model=cost_model, num_partitions=num_partitions)


class RaSQLSystem:
    """The paper's system under its reference configuration."""

    name = "rasql"

    def __init__(self, num_workers: int = 4,
                 config: ExecutionConfig | None = None,
                 scheduler: str = "partition_aware",
                 cost_model: CostModel | None = None,
                 num_partitions: int | None = None):
        self.num_workers = num_workers
        self.config = config or ExecutionConfig()
        self.scheduler = scheduler
        self.cost_model = cost_model
        self.num_partitions = num_partitions

    def run(self, workload: Workload) -> SystemResult:
        cluster = _new_cluster(self.num_workers, self.scheduler,
                               self.cost_model, self.num_partitions)
        ctx = RaSQLContext(cluster=cluster, config=self.config)
        spec = get_query(_QUERY_FOR[workload.algorithm])
        t0 = time.perf_counter()
        for table, (columns, rows) in workload.tables.items():
            if workload.include_load:
                ctx.load_table(table, columns, rows)
            else:
                ctx.register_table(table, columns, rows)
        result = ctx.sql(spec.formatted(source=workload.source)
                         if workload.source is not None else spec.sql)
        wall = time.perf_counter() - t0
        return SystemResult(self.name, workload.algorithm,
                            cluster.metrics.sim_time, wall, result,
                            ctx.last_run.iterations,
                            cluster.metrics.snapshot(),
                            trace=ctx.last_run.trace)


class BigDatalogSystem(RaSQLSystem):
    """RaSQL's predecessor: semi-naive + SetRDD, pre-RaSQL scheduling.

    Per Section 9, "RaSQL borrows some of BigDatalog's best practices,
    such as SetRDD, but uses a new architecture and introduces novel
    optimizations" — so this system disables exactly those novelties.
    """

    name = "bigdatalog"

    def __init__(self, num_workers: int = 4, **kwargs):
        super().__init__(
            num_workers,
            config=ExecutionConfig(stage_combination=False, codegen=False),
            scheduler="default",
            **kwargs)


class MyriaSystem(RaSQLSystem):
    """Asynchronous-datalog analog: minimal scheduling overhead, weaker
    network path, eager per-tuple shipping (no map-side combining)."""

    name = "myria"

    #: Long-running worker processes: negligible stage scheduling cost.
    #: Less robust communication (Section 8's explanation for its poor
    #: scaling): one fifth of the reference bandwidth.
    COST_MODEL = CostModel(
        network_bandwidth_bytes_per_s=25e6,
        network_latency_s=0.0005,
        stage_overhead_s=0.002,
        task_overhead_s=0.0005,
    )

    def __init__(self, num_workers: int = 4, **kwargs):
        super().__init__(
            num_workers,
            config=ExecutionConfig(partial_aggregation=False, codegen=False,
                                   decomposed_plans=False),
            cost_model=self.COST_MODEL,
            **kwargs)


class _PregelSystem:
    """Common driver for the vertex-centric systems."""

    profile: PregelProfile

    def __init__(self, num_workers: int = 4):
        self.num_workers = num_workers

    def run(self, workload: Workload) -> SystemResult:
        cluster = _new_cluster(self.num_workers)
        engine = PregelEngine(cluster, self.profile)
        t0 = time.perf_counter()
        edges, program, context = self._prepare(workload, cluster)
        result = engine.run(edges, program, context)
        wall = time.perf_counter() - t0
        return SystemResult(self.profile.name, workload.algorithm,
                            cluster.metrics.sim_time, wall, result.values,
                            result.supersteps, cluster.metrics.snapshot())

    def _prepare(self, workload: Workload, cluster: Cluster):
        algorithm = workload.algorithm
        if algorithm in ("reach", "cc", "sssp"):
            (columns, rows), = [workload.tables[t] for t in ("edge",)]
            if workload.include_load:
                cluster.load(rows, key_indices=(0,))
            if algorithm == "reach":
                return ([r[:2] for r in rows],
                        algorithms.reach_program(workload.source), {})
            if algorithm == "cc":
                return [r[:2] for r in rows], algorithms.cc_program(), {}
            return rows, algorithms.sssp_program(workload.source), {}
        if algorithm == "delivery":
            assbl = workload.tables["assbl"][1]
            basic = workload.tables["basic"][1]
            if workload.include_load:
                cluster.load(assbl, key_indices=(0,))
            edges = [(child, parent) for parent, child in assbl]
            return edges, algorithms.delivery_program(), {
                "leaf_days": dict(basic)}
        if algorithm == "management":
            report = workload.tables["report"][1]
            if workload.include_load:
                cluster.load(report, key_indices=(0,))
            return report, algorithms.management_program(), {
                "employees": {employee for employee, _ in report}}
        if algorithm == "mlm":
            sales = workload.tables["sales"][1]
            sponsor = workload.tables["sponsor"][1]
            if workload.include_load:
                cluster.load(sponsor, key_indices=(0,))
            edges = [(member, sponsor_id) for sponsor_id, member in sponsor]
            return edges, algorithms.mlm_program(), {"profit": dict(sales)}
        raise ValueError(
            f"{self.profile.name} does not support {algorithm!r}")


class GiraphSystem(_PregelSystem):
    profile = GIRAPH_PROFILE
    name = "giraph"


class GraphXSystem(_PregelSystem):
    profile = GRAPHX_PROFILE
    name = "graphx"


class _SQLLoopSystem:
    """Common driver for the Figure 10 iterative-SQL baselines."""

    mode = "sn"
    name = "spark-sql-sn"

    def __init__(self, num_workers: int = 4, config=None):
        self.num_workers = num_workers
        #: Optional :class:`repro.core.config.ExecutionConfig` forwarded
        #: to the loop engine (iteration budget, deadline).
        self.config = config

    def run(self, workload: Workload) -> SystemResult:
        cluster = _new_cluster(self.num_workers)
        spec = get_query(_QUERY_FOR[workload.algorithm])
        tables = {}
        for table, (columns, rows) in workload.tables.items():
            if workload.include_load:
                cluster.load(rows, key_indices=(0,))
            tables[table.lower()] = Relation(table, columns, rows)
        engine = SQLLoopEngine(cluster, self.mode, config=self.config)
        t0 = time.perf_counter()
        sql = (spec.formatted(source=workload.source)
               if workload.source is not None else spec.sql)
        result = engine.run(sql, tables)
        wall = time.perf_counter() - t0
        return SystemResult(self.name, workload.algorithm,
                            cluster.metrics.sim_time, wall,
                            result.relation, result.iterations,
                            cluster.metrics.snapshot())


class SparkSQLSNSystem(_SQLLoopSystem):
    mode = "sn"
    name = "spark-sql-sn"


class SparkSQLNaiveSystem(_SQLLoopSystem):
    mode = "naive"
    name = "spark-sql-naive"


class _SerialSystem:
    """Single-threaded baselines; wall time is real, scaled to model the
    compiled language of the original (constants documented in
    :mod:`repro.baselines.serial`).

    The CC algorithms match the originals: GAP's connected components is
    an iterative label-propagation sweep, COST's is union-find — the
    difference behind their Table 3 gap on twitter.
    """

    name = "serial"
    speedup = 1.0
    threads = 1
    cc_algorithm = staticmethod(serial.undirected_label_propagation)

    def __init__(self, **_ignored):
        pass

    def run(self, workload: Workload) -> SystemResult:
        t0 = time.perf_counter()
        output = self._execute(workload)
        wall = time.perf_counter() - t0
        # Parallel variants divide by an imperfect-scaling factor.
        effective = wall / self.speedup
        if self.threads > 1:
            effective /= self.threads * 0.7
        return SystemResult(self.name, workload.algorithm, effective, wall,
                            output)

    def _execute(self, workload: Workload):
        algorithm = workload.algorithm
        if algorithm == "cc":
            edges = [r[:2] for r in workload.tables["edge"][1]]
            return self.cc_algorithm(edges)
        if algorithm == "reach":
            edges = [r[:2] for r in workload.tables["edge"][1]]
            return serial.reach(edges, workload.source)
        if algorithm == "sssp":
            return serial.sssp(workload.tables["edge"][1], workload.source)
        raise ValueError(f"{self.name} does not support {algorithm!r}")


class GAPSerialSystem(_SerialSystem):
    name = "gap-serial"
    speedup = serial.GAP_SPEEDUP


class GAPParallelSystem(_SerialSystem):
    name = "gap-parallel"
    speedup = serial.GAP_SPEEDUP
    threads = 8


class COSTSystem(_SerialSystem):
    name = "cost"
    speedup = serial.COST_SPEEDUP
    cc_algorithm = staticmethod(serial.undirected_components)


ALL_GRAPH_SYSTEMS = (RaSQLSystem, BigDatalogSystem, GraphXSystem,
                     GiraphSystem, MyriaSystem)
