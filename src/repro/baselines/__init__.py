"""Comparison systems and reference algorithms (Section 8's contenders).

- :mod:`repro.baselines.serial` — single-threaded oracles (GAP/COST).
- :mod:`repro.baselines.pregel` — vertex-centric BSP engine with Giraph
  and GraphX execution profiles.
- :mod:`repro.baselines.algorithms` — vertex programs for the workloads.
- :mod:`repro.baselines.sql_loop` — Spark-SQL-Naive/SN driver loops.
- :mod:`repro.baselines.systems` — uniform ``run(workload)`` wrappers for
  the benchmark harness.
"""
