"""Specialized wall-clock kernels for the fixpoint hot path.

The interpreted engine pays a per-row toll on every hot loop: a lambda
call to extract a key, a method call to pick a shuffle bucket, a closure
dispatch per aggregate merge.  The simulated *cost model* never sees that
toll — but the wall clock does, and the ROADMAP's north star ("as fast as
the hardware allows") is a wall-clock claim.  This module precompiles the
common shapes once, at plan/setup time, into tight specialized loops:

- :func:`make_extractor` — ``operator.itemgetter``-based key extractors
  (C-level slot access instead of a Python lambda frame per row).
- :func:`make_padder` — segment padding with cached prefix/suffix tuples
  instead of two tuple multiplications per row.
- :func:`make_router` — single-pass batched shuffle routing: one loop
  fills per-partition bucket lists, replacing a ``partition_of`` method
  call per row while preserving ``_stable_hash`` semantics bit-exactly.
- :func:`make_merge_kernel` / :func:`make_merge_rows_kernel` — unrolled
  min/max/sum/count merge loops for :class:`~repro.engine.setrdd.
  KeyedStateRDD`, replacing the generic ``AggregateFunction`` dispatch.
- :func:`make_fold_kernel` — the map-side partial-aggregation fold for
  ``(key, value)`` heads with the comparison inlined.
- :func:`hash_probe_join` / :func:`nested_loop_equi` — the join bodies
  the adaptive selector (see ``repro.core.fixpoint``) switches between.

Every kernel is a drop-in replacement for a naive reference loop that
stays in the codebase (``joins.py``, ``setrdd.py``, ``partitioner.py``);
``ExecutionConfig.kernels=False`` routes execution through the reference
loops, and the differential suite (``pytest -m kernels``) pins that both
paths produce bit-exact results.  Kernels may emit join output in a
different *order* than the reference (e.g. an incrementally-updated build
table keeps insertion order where a rebuild follows set order); every
consumer is an idempotent set union or a commutative monotonic aggregate,
so results are unaffected.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Callable, Iterable

from repro.engine.aggregates import BY_NAME, AggregateFunction
from repro.engine.partitioner import _stable_hash

__all__ = [
    "AdaptiveJoinSelector",
    "batch_hash_probe",
    "hash_probe_join",
    "make_extractor",
    "make_fold_kernel",
    "make_merge_columns_kernel",
    "make_merge_kernel",
    "make_merge_rows_kernel",
    "make_padder",
    "make_router",
    "nested_loop_equi",
]


# ---------------------------------------------------------------------------
# key extraction / padding
# ---------------------------------------------------------------------------


def make_extractor(positions: tuple[int, ...]) -> Callable[[tuple], object]:
    """``row -> key`` over column positions, specialized at plan time.

    Single-position keys stay unwrapped scalars and multi-position keys
    become tuples — the exact contract of ``partitioner.key_of`` — but the
    extraction is an ``operator.itemgetter`` (no Python frame per row).
    """
    if not positions:
        return lambda row: ()
    if len(positions) == 1:
        return itemgetter(positions[0])
    return itemgetter(*positions)


def make_padder(offset: int, arity: int, width: int) -> Callable[[tuple], tuple]:
    """Specialized ``pad_row`` for rows of a known segment and width.

    ``pad_row`` pays two tuple multiplications and a ``tuple()`` call per
    row; here the ``None`` prefix/suffix are built once.
    """
    prefix = (None,) * offset
    suffix = (None,) * (arity - offset - width)
    if prefix and suffix:
        return lambda row: prefix + row + suffix
    if prefix:
        return lambda row: prefix + row
    if suffix:
        return lambda row: row + suffix
    return lambda row: row


# ---------------------------------------------------------------------------
# batched shuffle routing
# ---------------------------------------------------------------------------


def make_router(key_positions: tuple[int, ...],
                num_partitions: int) -> Callable[[Iterable[tuple]], list[list[tuple]]]:
    """Single-pass batched routing: rows -> per-partition bucket lists.

    Bit-exact with routing each row through
    ``HashPartitioner.partition_of(key_of(row))``: the ``type(key) is
    int`` fast path and the ``_stable_hash`` fallback are inlined into
    one loop, and rows keep their relative order inside each bucket.
    """
    n = num_partitions
    if n == 1:
        def route_single(rows):
            return [list(rows)]
        return route_single

    if len(key_positions) == 1:
        index = key_positions[0]

        def route(rows):
            buckets: list[list[tuple]] = [[] for _ in range(n)]
            appends = [bucket.append for bucket in buckets]
            stable_hash = _stable_hash
            for row in rows:
                key = row[index]
                if type(key) is int:
                    appends[key % n](row)
                else:
                    appends[stable_hash(key) % n](row)
            return buckets

        return route

    getter = itemgetter(*key_positions)

    def route_multi(rows):
        buckets: list[list[tuple]] = [[] for _ in range(n)]
        appends = [bucket.append for bucket in buckets]
        stable_hash = _stable_hash
        for row in rows:
            # Multi-column keys are tuples, never ints: always stable-hash.
            appends[stable_hash(getter(row)) % n](row)
        return buckets

    return route_multi


# ---------------------------------------------------------------------------
# KeyedStateRDD merge kernels
# ---------------------------------------------------------------------------


def make_merge_kernel(aggregates: tuple[AggregateFunction, ...]
                      ) -> Callable[[dict, Iterable], list] | None:
    """Unrolled ``(state, pairs) -> delta pairs`` merge loop, or ``None``.

    Specialized for the single-aggregate column every library query uses;
    multi-aggregate states fall back to the generic
    ``AggregateFunction.merge`` dispatch in ``setrdd.py``.  Each kernel
    replays Algorithm 5's Reduce semantics exactly: min/max deltas carry
    the improved totals, sum/count deltas carry the increments, and an
    insert always enters the delta (``delta_for_insert`` is the identity
    for all four aggregates).

    Only the canonical builtin singletons qualify: a custom
    :class:`AggregateFunction` that borrows a builtin *name* but swaps
    any hook (``merge``/``delta_for_insert``/...) must keep flowing
    through the generic dispatch that honours those hooks.
    """
    if len(aggregates) != 1 or aggregates[0] is not BY_NAME.get(
            aggregates[0].name):
        return None
    name = aggregates[0].name

    if name == "min":
        def merge_min(state, pairs):
            delta: list = []
            append = delta.append
            get = state.get
            for key, values in pairs:
                current = get(key)
                value = values[0]
                if current is None:
                    state[key] = values
                    append((key, (value,)))
                elif value < current[0]:
                    state[key] = (value,)
                    append((key, (value,)))
            return delta
        return merge_min

    if name == "max":
        def merge_max(state, pairs):
            delta: list = []
            append = delta.append
            get = state.get
            for key, values in pairs:
                current = get(key)
                value = values[0]
                if current is None:
                    state[key] = values
                    append((key, (value,)))
                elif value > current[0]:
                    state[key] = (value,)
                    append((key, (value,)))
            return delta
        return merge_max

    if name in ("sum", "count"):
        def merge_sum(state, pairs):
            delta: list = []
            append = delta.append
            get = state.get
            for key, values in pairs:
                current = get(key)
                value = values[0]
                if current is None:
                    state[key] = values
                    append((key, (value,)))
                elif value != 0:
                    state[key] = (current[0] + value,)
                    append((key, (value,)))
            return delta
        return merge_sum

    return None


def make_merge_rows_kernel(aggregates: tuple[AggregateFunction, ...]
                           ) -> Callable[[dict, Iterable], list] | None:
    """Merge loop over raw ``(key, value)`` rows, skipping pair splitting.

    The ubiquitous two-column head shape (SSSP, CC, BOM, ...) otherwise
    pays two intermediate lists per merge: ``rows -> (key, values) pairs``
    before the merge and ``delta pairs -> rows`` after.  This kernel fuses
    all three loops; output rows are the delta in head schema.  Custom
    aggregate clones are rejected for the same reason as in
    :func:`make_merge_kernel`.
    """
    if len(aggregates) != 1 or aggregates[0] is not BY_NAME.get(
            aggregates[0].name):
        return None
    name = aggregates[0].name

    if name == "min":
        def merge_rows_min(state, rows):
            fresh: list = []
            append = fresh.append
            get = state.get
            for row in rows:
                key = row[0]
                value = row[1]
                current = get(key)
                if current is None:
                    state[key] = (value,)
                    append((key, value))
                elif value < current[0]:
                    state[key] = (value,)
                    append((key, value))
            return fresh
        return merge_rows_min

    if name == "max":
        def merge_rows_max(state, rows):
            fresh: list = []
            append = fresh.append
            get = state.get
            for row in rows:
                key = row[0]
                value = row[1]
                current = get(key)
                if current is None:
                    state[key] = (value,)
                    append((key, value))
                elif value > current[0]:
                    state[key] = (value,)
                    append((key, value))
            return fresh
        return merge_rows_max

    if name in ("sum", "count"):
        def merge_rows_sum(state, rows):
            fresh: list = []
            append = fresh.append
            get = state.get
            for row in rows:
                key = row[0]
                value = row[1]
                current = get(key)
                if current is None:
                    state[key] = (value,)
                    append((key, value))
                elif value != 0:
                    state[key] = (current[0] + value,)
                    append((key, value))
            return fresh
        return merge_rows_sum

    return None


def make_merge_columns_kernel(aggregates: tuple[AggregateFunction, ...]
                              ) -> Callable[[dict, Iterable, Iterable],
                                            list] | None:
    """Columnar merge: ``(state, keys, values) -> fresh rows``, or ``None``.

    The column-decomposed twin of :func:`make_merge_rows_kernel` for a
    :class:`~repro.engine.columnar.ColumnBatch` whose two columns are the
    ``(key, value)`` head — the loop walks the zipped key/value columns
    directly instead of indexing ``row[0]``/``row[1]`` per tuple.  Same
    eligibility rule (single canonical builtin aggregate), same state
    transitions, same fresh-delta rows in the same order; the columnar
    differential suite pins the equivalence.
    """
    if len(aggregates) != 1 or aggregates[0] is not BY_NAME.get(
            aggregates[0].name):
        return None
    name = aggregates[0].name

    if name == "min":
        def merge_columns_min(state, keys, values):
            fresh: list = []
            append = fresh.append
            get = state.get
            for key, value in zip(keys, values):
                current = get(key)
                if current is None:
                    state[key] = (value,)
                    append((key, value))
                elif value < current[0]:
                    state[key] = (value,)
                    append((key, value))
            return fresh
        return merge_columns_min

    if name == "max":
        def merge_columns_max(state, keys, values):
            fresh: list = []
            append = fresh.append
            get = state.get
            for key, value in zip(keys, values):
                current = get(key)
                if current is None:
                    state[key] = (value,)
                    append((key, value))
                elif value > current[0]:
                    state[key] = (value,)
                    append((key, value))
            return fresh
        return merge_columns_max

    if name in ("sum", "count"):
        def merge_columns_sum(state, keys, values):
            fresh: list = []
            append = fresh.append
            get = state.get
            for key, value in zip(keys, values):
                current = get(key)
                if current is None:
                    state[key] = (value,)
                    append((key, value))
                elif value != 0:
                    state[key] = (current[0] + value,)
                    append((key, value))
            return fresh
        return merge_columns_sum

    return None


def make_fold_kernel(aggregate: AggregateFunction
                     ) -> Callable[[Iterable[tuple]], list] | None:
    """Map-side partial aggregation over ``(key, value)`` rows, inlined.

    Replaces the ``combine`` closure call per row with the comparison /
    addition itself.  Ties resolve exactly as ``min``/``max`` builtins do
    (keep the incumbent), matching the reference fold bit-exactly.
    Custom aggregate clones are rejected (see :func:`make_merge_kernel`).
    """
    if aggregate is not BY_NAME.get(aggregate.name):
        return None
    name = aggregate.name
    if name == "min":
        def fold_min(rows):
            combined: dict = {}
            get = combined.get
            for key, value in rows:
                old = get(key)
                if old is None or value < old:
                    combined[key] = value
            return list(combined.items())
        return fold_min

    if name == "max":
        def fold_max(rows):
            combined: dict = {}
            get = combined.get
            for key, value in rows:
                old = get(key)
                if old is None or value > old:
                    combined[key] = value
            return list(combined.items())
        return fold_max

    if name in ("sum", "count"):
        def fold_sum(rows):
            combined: dict = {}
            get = combined.get
            for key, value in rows:
                old = get(key)
                combined[key] = value if old is None else old + value
            return list(combined.items())
        return fold_sum

    return None


# ---------------------------------------------------------------------------
# join bodies for the adaptive selector
# ---------------------------------------------------------------------------


def hash_probe_join(rows: Iterable[tuple], table: dict,
                    probe_key: Callable[[tuple], object],
                    combine: Callable[[tuple, tuple], tuple]) -> list[tuple]:
    """Probe a prebuilt table; identical output to ``HashJoinStep.apply``."""
    out: list[tuple] = []
    append = out.append
    get = table.get
    for row in rows:
        bucket = get(probe_key(row))
        if bucket is None:
            continue
        for build_row in bucket:
            append(combine(row, build_row))
    return out


def batch_hash_probe(keys: Iterable, rows: Iterable[tuple], table: dict,
                     combine: Callable[[tuple, tuple], tuple]) -> list[tuple]:
    """Columnar probe: pre-extracted key column instead of per-row calls.

    Output-identical to :func:`hash_probe_join` with ``probe_key`` being
    the extractor that produced ``keys`` — the key column of a
    :class:`~repro.engine.columnar.ColumnBatch` (or any parallel
    sequence) replaces the per-row ``probe_key(row)`` call.
    """
    out: list[tuple] = []
    append = out.append
    get = table.get
    for key, row in zip(keys, rows):
        bucket = get(key)
        if bucket is None:
            continue
        for build_row in bucket:
            append(combine(row, build_row))
    return out


def nested_loop_equi(rows: Iterable[tuple], build_rows: list[tuple],
                     probe_key: Callable[[tuple], object],
                     build_key: Callable[[tuple], object],
                     combine: Callable[[tuple, tuple], tuple]) -> list[tuple]:
    """Equi join as a scan of the build rows — no table, no sort.

    For tiny inputs the hash machinery costs more than the comparisons it
    saves.  Matching build rows are emitted in build order, which is the
    same per-key sequence a hash probe emits (buckets preserve insertion
    order), so the two strategies produce identical output row-for-row.
    """
    out: list[tuple] = []
    append = out.append
    for row in rows:
        key = probe_key(row)
        for build_row in build_rows:
            if build_key(build_row) == key:
                append(combine(row, build_row))
    return out


class AdaptiveJoinSelector:
    """AQE-style per-iteration join-strategy choice (Appendix D, revisited).

    The planner fixes a strategy per term from ``config.join_strategy``;
    at runtime the observed cardinalities often disagree with that static
    choice.  Per ``(join step, partition)`` evaluation the selector picks:

    - ``nested_loop`` when ``|delta| x |build|`` is tiny — scanning a
      handful of rows beats hashing (and, under sort-merge, beats sorting
      the delta).
    - ``hash`` when the planner chose sort-merge but the cumulative
      probed delta has reached the build size: building a hash table once
      now amortizes over the remaining iterations (the cached-build
      rationale of Appendix D, applied adaptively).
    - the planner's strategy otherwise.  A fused (code-generated) hash
      term is never overridden: its probe loop is already optimal, and
      re-routing it through the interpreted pipeline would only add
      dispatch overhead.

    Choices never change results — all three bodies compute the same
    equi join — only where the wall-clock time goes.
    """

    #: Override to nested-loop only below this probe x build product.
    nested_loop_budget = 64
    #: ... and only when the build side itself is this small.
    nested_loop_max_build = 16

    def __init__(self, metrics=None):
        self.metrics = metrics
        #: Cumulative delta rows probed per (step_id, partition).
        self.probed: dict[tuple[int, int], int] = {}
        #: Chosen-strategy counts, mirrored into the metrics registry.
        self.choices = {"hash": 0, "sort_merge": 0, "nested_loop": 0}
        self.overrides = 0

    def choose(self, step_id: int, partition: int, default: str,
               fused: bool, delta_n: int, build_n: int) -> str:
        """Pick a strategy for one term evaluation; records counters."""
        if default == "hash" and fused:
            choice = "hash"
        elif (delta_n * build_n <= self.nested_loop_budget
                and build_n <= self.nested_loop_max_build):
            choice = "nested_loop"
        elif default == "sort_merge":
            key = (step_id, partition)
            seen = self.probed.get(key, 0)
            self.probed[key] = seen + delta_n
            choice = "hash" if seen + delta_n >= build_n else "sort_merge"
        else:
            choice = "hash"
        self.choices[choice] += 1
        if choice != default:
            self.overrides += 1
        metrics = self.metrics
        if metrics is not None:
            metrics.inc(f"adaptive_join_{choice}")
            if choice != default:
                metrics.inc("adaptive_join_overrides")
        return choice
