"""Partitioned datasets — the immutable RDD analog.

A :class:`Dataset` is a list of :class:`Partition` objects plus an optional
partitioner describing how rows were distributed.  Each partition remembers
the worker it resides on (its cache location); the scheduler uses this for
locality decisions and the cost model charges remote fetches when a task
runs elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.engine.partitioner import HashPartitioner
from repro.engine.serialization import rows_size


@dataclass
class Partition:
    """One partition of a dataset: rows plus their home worker."""

    index: int
    rows: list[tuple]
    worker: int = 0
    _size_bytes: int | None = field(default=None, repr=False)

    def size_bytes(self) -> int:
        """Wire-size estimate, memoized (partitions are never mutated)."""
        if self._size_bytes is None:
            self._size_bytes = rows_size(self.rows)
        return self._size_bytes

    def __len__(self) -> int:
        return len(self.rows)


class Dataset:
    """An immutable, partitioned collection of rows.

    ``partitioner`` together with ``key_indices`` records *how* rows were
    placed: row ``r`` lives in partition
    ``partitioner.partition_of(key_of(r, key_indices))``.  Operators that
    need co-partitioned inputs check this instead of re-shuffling blindly.
    """

    def __init__(self, partitions: list[Partition],
                 partitioner: HashPartitioner | None = None,
                 key_indices: tuple[int, ...] | None = None):
        self.partitions = partitions
        self.partitioner = partitioner
        self.key_indices = key_indices
        #: Memory-charge group when this dataset's partitions are charged
        #: as shuffle buffers (set by ``Cluster.exchange``); consumers
        #: release the group once the rows are absorbed elsewhere.
        self.memory_group: str | None = None

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def num_rows(self) -> int:
        return sum(len(p) for p in self.partitions)

    def collect(self) -> list[tuple]:
        """All rows, concatenated in partition order."""
        out: list[tuple] = []
        for partition in self.partitions:
            out.extend(partition.rows)
        return out

    def __iter__(self) -> Iterator[tuple]:
        for partition in self.partitions:
            yield from partition.rows

    def size_bytes(self) -> int:
        return sum(p.size_bytes() for p in self.partitions)

    def is_co_partitioned_with(self, other: "Dataset") -> bool:
        """True when both datasets share partitioner and partition count.

        This is the ``Require: co-partitioned on key K`` precondition of
        Algorithms 4–6; the key *positions* may differ between the two
        schemas (e.g. delta joined on column 0, base on column 1) — what
        must agree is the hash function and modulus.
        """
        return (self.partitioner is not None
                and other.partitioner is not None
                and self.partitioner == other.partitioner
                and self.num_partitions == other.num_partitions)

    def map_partitions(self, fn: Callable[[int, list[tuple]], list[tuple]],
                       preserve_partitioning: bool = False) -> "Dataset":
        """Local (no scheduler, no metrics) per-partition transformation.

        Used by tests and by purely local set-up code.  Execution that
        should be visible to the cost model goes through
        :meth:`repro.engine.cluster.Cluster.run_stage` instead.
        """
        new_parts = [
            Partition(p.index, fn(p.index, p.rows), p.worker)
            for p in self.partitions
        ]
        if preserve_partitioning:
            return Dataset(new_parts, self.partitioner, self.key_indices)
        return Dataset(new_parts)

    def __repr__(self) -> str:
        return (f"Dataset(partitions={self.num_partitions}, "
                f"rows={self.num_rows()}, partitioner={self.partitioner})")


def from_rows_single_partition(rows: Iterable[tuple], worker: int = 0) -> Dataset:
    """Wrap rows into a one-partition dataset (handy in tests)."""
    return Dataset([Partition(0, [tuple(r) for r in rows], worker)])
