"""Task scheduling policies (Section 6.1, "Partition-Aware Scheduling").

Spark's default scheduler mixes executor load, locality-wait timers and
input locations; under concurrent stages this regularly places a task away
from its cached input, which costs a remote fetch.  The paper replaces it
with a policy that pins the task for partition *i* to the worker caching
partition *i* of the co-partitioned state, achieving inter-iteration
locality.

We reproduce both policies:

- :class:`DefaultPolicy` — honours the preferred location *most* of the
  time, but with a seeded probability (default 35%) falls back to the
  least-loaded worker, modelling locality-wait expiry.  The resulting
  remote fetches are charged by the cluster's cost model.
- :class:`PartitionAwarePolicy` — always returns the preferred worker.

Both are *health-aware*: ``assign`` takes an optional ``healthy`` pool
(live, non-blacklisted workers, as maintained by the cluster's
:class:`repro.engine.faults.RecoveryManager`).  A preferred worker that
is dead or blacklisted gets a deterministic fallback placement inside
the pool, so recovery re-runs schedule reproducibly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import NoHealthyWorkersError


@dataclass
class TaskSpec:
    """What the scheduler needs to know about one task."""

    index: int
    preferred_worker: int | None


def fallback_worker(preferred: int, healthy: Sequence[int]) -> int:
    """Deterministic placement when the preferred worker is unavailable.

    Raises :class:`repro.errors.NoHealthyWorkersError` on an empty pool
    instead of the bare ``ZeroDivisionError`` the modulo would throw —
    an exhausted pool is an operational condition callers handle, not a
    bug in the scheduler.
    """
    if not healthy:
        raise NoHealthyWorkersError(
            "cannot place a task: no healthy workers remain")
    return healthy[preferred % len(healthy)]


class SchedulingPolicy:
    """Interface: map a list of task specs to a worker id per task.

    ``healthy`` is the pool of schedulable workers (``None`` means all of
    ``range(num_workers)``); assignments must stay inside it.
    """

    name = "abstract"

    def assign(self, tasks: list[TaskSpec], num_workers: int,
               healthy: Sequence[int] | None = None) -> list[int]:
        raise NotImplementedError


@dataclass
class PartitionAwarePolicy(SchedulingPolicy):
    """Pin each task to its preferred (cache-holding) worker."""

    name: str = "partition_aware"

    def assign(self, tasks: list[TaskSpec], num_workers: int,
               healthy: Sequence[int] | None = None) -> list[int]:
        pool = list(healthy) if healthy is not None else list(range(num_workers))
        if tasks and not pool:
            raise NoHealthyWorkersError(
                f"cannot schedule {len(tasks)} tasks: no healthy workers")
        allowed = set(pool)
        assignments = []
        for task in tasks:
            preferred = (task.preferred_worker
                         if task.preferred_worker is not None
                         else task.index) % num_workers
            if preferred in allowed:
                assignments.append(preferred)
            else:
                assignments.append(fallback_worker(preferred, pool))
        return assignments


@dataclass
class DefaultPolicy(SchedulingPolicy):
    """Spark-like hybrid scheduling.

    ``miss_probability`` is the chance that a task's locality preference is
    overridden because the preferred executor was busy when the locality
    wait expired; the task then lands on whichever executor freed up first,
    modelled as a seeded-random pick.  The RNG is seeded so runs are
    reproducible.
    """

    miss_probability: float = 0.35
    seed: int = 17
    name: str = "default"
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self):
        self._rng = random.Random(self.seed)

    def assign(self, tasks: list[TaskSpec], num_workers: int,
               healthy: Sequence[int] | None = None) -> list[int]:
        pool = list(healthy) if healthy is not None else list(range(num_workers))
        if tasks and not pool:
            raise NoHealthyWorkersError(
                f"cannot schedule {len(tasks)} tasks: no healthy workers")
        allowed = set(pool)
        assignments = []
        for task in tasks:
            preferred = (task.preferred_worker if task.preferred_worker is not None
                         else task.index) % num_workers
            if (task.preferred_worker is None
                    or preferred not in allowed
                    or self._rng.random() < self.miss_probability):
                # Locality wait expired (or the preferred executor is
                # dead/blacklisted): the task runs on whichever healthy
                # executor freed up first.
                worker = pool[self._rng.randrange(len(pool))]
            else:
                worker = preferred
            assignments.append(worker)
        return assignments


def make_policy(name: str, seed: int = 17) -> SchedulingPolicy:
    """Factory used by :class:`repro.engine.cluster.Cluster`."""
    if name == "partition_aware":
        return PartitionAwarePolicy()
    if name == "default":
        return DefaultPolicy(seed=seed)
    raise ValueError(f"unknown scheduling policy {name!r} "
                     "(expected 'partition_aware' or 'default')")
