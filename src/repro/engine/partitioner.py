"""Partitioners: the hash functions of Appendix A.

A partitioner maps a *key* (one value or a tuple of values drawn from a row)
to a partition id.  Two datasets are *co-partitioned* when they share an
equal partitioner and the same number of partitions — the precondition for
the partition-local joins and set operations of Algorithms 4–6.
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import itemgetter


def _stable_hash(value) -> int:
    """A deterministic hash (Python's ``hash`` of str is salted per process).

    Determinism matters for reproducible benchmarks and for the
    property-based tests that re-run partitioning across processes.
    """
    if isinstance(value, tuple):
        h = 0x345678
        for item in value:
            h = (h * 1000003) ^ _stable_hash(item)
            h &= 0xFFFFFFFFFFFFFFFF
        return h
    if value is True or value is False:
        return int(value) + 0x9E3779B9
    if isinstance(value, int):
        return value & 0xFFFFFFFFFFFFFFFF
    if isinstance(value, float):
        if value.is_integer():
            return int(value) & 0xFFFFFFFFFFFFFFFF
        return hash(value) & 0xFFFFFFFFFFFFFFFF
    if isinstance(value, str):
        h = 5381
        for ch in value:
            h = ((h * 33) ^ ord(ch)) & 0xFFFFFFFFFFFFFFFF
        return h
    if value is None:
        return 0x51ED270B
    return hash(value) & 0xFFFFFFFFFFFFFFFF


@dataclass(frozen=True)
class HashPartitioner:
    """Hash partitioning over an explicit key, Appendix A's ``h``."""

    num_partitions: int

    def __post_init__(self):
        if self.num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")

    def partition_of(self, key) -> int:
        # Fast path: graph workloads partition on integer vertex ids.
        if type(key) is int:
            return key % self.num_partitions
        return _stable_hash(key) % self.num_partitions

    def __eq__(self, other) -> bool:
        return (isinstance(other, HashPartitioner)
                and other.num_partitions == self.num_partitions)

    def __hash__(self) -> int:
        return hash(("HashPartitioner", self.num_partitions))


def key_of(row: tuple, key_indices: tuple[int, ...]):
    """Extract the partition/join key from a row.

    Single-column keys are unwrapped (scalar) so that hash distribution and
    dictionary lookups avoid one-tuple allocation on the hot path.
    """
    if len(key_indices) == 1:
        return row[key_indices[0]]
    return tuple(row[i] for i in key_indices)


def column_partition_ids(keys, num_partitions: int):
    """Partition ids for a whole *key column* in one pass.

    The columnar twin of mapping :meth:`HashPartitioner.partition_of`
    over single-column keys: the exact ``type(key) is int`` fast-path
    check runs per value, so a mixed column (ints interleaved with
    strings or ``None``) routes identically to the row-at-a-time loop.
    Yields one partition id per key, in order.
    """
    n = num_partitions
    stable_hash = _stable_hash
    for key in keys:
        if type(key) is int:
            yield key % n
        else:
            yield stable_hash(key) % n


def make_key_fn(key_indices: tuple[int, ...]):
    """Return a fast ``row -> key`` callable for the given column positions.

    ``operator.itemgetter`` extracts at C level — no Python frame per row —
    while keeping ``key_of``'s contract (scalar for one column, tuple for
    several).
    """
    if not key_indices:
        return lambda row: ()
    if len(key_indices) == 1:
        return itemgetter(key_indices[0])
    return itemgetter(*key_indices)
