"""Supervised real-process execution backend.

``ProcessClusterBackend`` runs payload-carrying stage batches on a pool
of spawn-started OS worker processes (one per live simulated worker) and
supervises them:

- **Heartbeats** — each worker beats every ``heartbeat_interval`` from a
  daemon thread; the supervisor's poll loop wakes at the same cadence.
  A worker silent past ``liveness_timeout`` (SIGSTOP, hard livelock —
  the heartbeat thread itself is frozen) is reaped with SIGKILL.
- **Hung-task reaping** — a dispatched task unfinished past
  ``task_deadline_s`` marks its worker hung even if heartbeats continue
  (an infinite loop beats happily); same SIGKILL reap.
- **Crash detection and replay** — pipe EOF / process sentinel detects
  spontaneous deaths.  The backend keeps a *committed replay log* of
  every merged iteration per state partition; a respawned worker (or a
  survivor adopting the dead worker's partitions via
  ``worker_for_partition``) rebuilds state by replaying the log, then
  the in-flight tasks are re-dispatched — their payloads carry their own
  input rows.  Failure bookkeeping goes through the cluster's existing
  :class:`repro.engine.faults.RecoveryManager`.
- **Poison quarantine** — a task that kills its worker
  ``poison_threshold`` times is quarantined and the query fails with a
  typed :class:`repro.errors.PoisonTaskError` instead of crash-looping.
- **Graceful degradation** — reaps past ``respawn_budget`` per batch
  retire the slot: the pool shrinks to survivors and partitions re-home.
  If the pool cannot spawn at all, the backend degrades permanently and
  every stage runs on the simulated oracle (with a warning).

The driver side of the pipe never blocks on a send: each handle owns a
sender thread fed by a queue, and the supervisor drains replies with
``multiprocessing.connection.wait`` over pipes *and* process sentinels.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import queue
import signal
import threading
import time
import warnings
from multiprocessing import connection as mp_connection

from repro.engine.backend.base import ClusterBackend, ProcessConfig
from repro.engine.backend.payloads import BLOB_CACHE_SLOTS, split_install_spec
from repro.engine.serialization import dump_payload
from repro.errors import (
    ExecutionError,
    NoHealthyWorkersError,
    PoisonTaskError,
)

#: Wall-clock ceiling for a worker to come up (import + install + ping).
_SPAWN_TIMEOUT_S = 60.0


class _WorkerHandle:
    """Driver-side bookkeeping for one pool worker."""

    def __init__(self, worker_id: int, proc, conn):
        self.worker_id = worker_id
        self.proc = proc
        self.conn = conn
        self.last_heartbeat = time.monotonic()
        #: When the current head of ``inflight`` became head; the basis
        #: of the per-attempt task deadline.
        self.head_since = time.monotonic()
        #: FIFO of dispatched-but-unreplied (pos, task); the worker is
        #: serial, so replies come back in dispatch order.
        self.inflight: list[tuple[int, object]] = []
        self.reqs: dict[int, tuple[int, object]] = {}
        #: Control req ids awaited synchronously -> reply slot.
        self.expected: set[int] = set()
        self.replies: dict[int, object] = {}
        #: Req ids whose replies must be dropped (aborted batch).
        self.abandoned: set[int] = set()
        #: Digests of heavy-install blobs this worker caches, in FIFO
        #: insertion order — an exact driver-side mirror of the worker's
        #: ``blob_cache`` bookkeeping (same capacity, same eviction, no
        #: reorder on hit), so a predicted hit can never miss.
        self.cached_digests: dict[str, bool] = {}
        self._sendq: queue.SimpleQueue = queue.SimpleQueue()
        self._sender = threading.Thread(
            target=self._send_loop, daemon=True,
            name=f"rasql-send-{worker_id}")
        self._sender.start()

    def _send_loop(self):
        while True:
            message = self._sendq.get()
            if message is None:
                return
            try:
                self.conn.send(message)
            except Exception:
                return  # broken pipe: supervision handles the crash

    def send(self, message) -> None:
        """Queue a message; never blocks the supervisor."""
        self._sendq.put(message)

    def close(self) -> None:
        self._sendq.put(None)
        try:
            self.conn.close()
        except Exception:
            pass


class ProcessClusterBackend(ClusterBackend):
    """Real-parallelism backend with the supervision layer.

    Owns no scheduling or accounting: the cluster routes batches here
    through the ``wants_batch``/``run_batch`` seam and keeps charging
    the simulated clock from the returned per-task CPU seconds.
    """

    def __init__(self, cluster, config: ProcessConfig | None = None):
        self.cluster = cluster
        self.config = config or ProcessConfig()
        self._handles: list[_WorkerHandle | None] = [None] * cluster.num_workers
        self._spawned = False
        self._degraded = False
        self._req_seq = 0
        self._session_seq = 0
        self._sessions: dict[str, object] = {}
        #: sid -> partition -> [rows_by_view per committed iteration].
        self._commit_log: dict[str, dict[int, list]] = {}
        #: sid -> partition -> worker currently holding its merged state.
        self._owner: dict[str, dict[int, int]] = {}
        self._chaos: list[dict] = []
        #: (sid, stage, task_index) -> times this task killed its worker.
        self._kill_counts: dict[tuple, int] = {}
        self._quarantined: set[tuple] = set()
        self._respawns_left = self.config.respawn_budget
        atexit.register(self.shutdown)

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------

    def remote_ready(self) -> bool:
        if self._degraded:
            return False
        if not self._spawned:
            self._spawn_pool()
        return not self._degraded and any(
            handle is not None for handle in self._handles)

    def _spawn_pool(self) -> None:
        self._spawned = True
        try:
            self._ensure_importable()
            for worker in self.cluster.live_workers():
                self._handles[worker] = self._spawn_worker(worker)
        except Exception as exc:
            self._degrade(f"cannot spawn the worker pool: {exc!r}")

    def _degrade(self, why: str) -> None:
        """Permanent fallback to the simulated oracle (spawn failure).

        Never taken mid-query: once a session's merges live worker-side,
        running later iterations driver-side would double-merge."""
        self._degraded = True
        self.cluster.metrics.inc("process_backend_degradations")
        for handle in list(self._handles):
            if handle is None:
                continue
            handle.close()
            if handle.proc.is_alive():
                try:
                    os.kill(handle.proc.pid, signal.SIGKILL)
                except OSError:
                    pass
            handle.proc.join(timeout=5.0)
        self._handles = [None] * self.cluster.num_workers
        warnings.warn(
            f"process backend unavailable, falling back to the simulated "
            f"backend: {why}", RuntimeWarning, stacklevel=4)

    @staticmethod
    def _ensure_importable() -> None:
        """Make sure spawn children can ``import repro`` even when the
        parent imported it off ``sys.path`` manipulation (editable runs,
        test harnesses): prepend the package root to ``PYTHONPATH``."""
        import repro

        root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        existing = os.environ.get("PYTHONPATH", "")
        parts = existing.split(os.pathsep) if existing else []
        if root not in parts:
            os.environ["PYTHONPATH"] = os.pathsep.join([root] + parts)

    def _spawn_worker(self, worker: int) -> _WorkerHandle:
        from repro.engine.backend.worker import worker_main

        ctx = multiprocessing.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=worker_main,
            args=(child_conn, worker, self.config.heartbeat_interval),
            daemon=True, name=f"rasql-worker-{worker}")
        proc.start()
        child_conn.close()
        handle = _WorkerHandle(worker, proc, parent_conn)
        for light, heavy, digest in self._sessions.values():
            self._send_install(handle, light, heavy, digest)
        if self._chaos:
            handle.send((self._next_req(), "chaos",
                         [dict(d) for d in self._chaos]))
        # Readiness barrier: the ping reply proves the child imported,
        # applied every install, and is beating — so a respawned worker
        # cannot be liveness-reaped for its own startup latency.
        self._request_sync(handle, ("ping",), _SPAWN_TIMEOUT_S)
        handle.last_heartbeat = time.monotonic()
        return handle

    def shutdown(self) -> None:
        for handle in self._handles:
            if handle is None:
                continue
            handle.send((self._next_req(), "stop"))
        deadline = time.monotonic() + 2.0
        for index, handle in enumerate(self._handles):
            if handle is None:
                continue
            handle.proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if handle.proc.is_alive():
                try:
                    os.kill(handle.proc.pid, signal.SIGKILL)
                except OSError:
                    pass
                handle.proc.join(timeout=5.0)
            handle.close()
            self._handles[index] = None
        self._spawned = False

    def _live_handles(self) -> list[_WorkerHandle]:
        return [handle for handle in self._handles if handle is not None]

    def _next_req(self) -> int:
        self._req_seq += 1
        return self._req_seq

    # ------------------------------------------------------------------
    # session management (driven by the fixpoint operator)
    # ------------------------------------------------------------------

    def new_session_id(self) -> str:
        self._session_seq += 1
        return f"s{self._session_seq}"

    def install_session(self, spec) -> None:
        light, heavy, digest = split_install_spec(spec)
        self._sessions[spec.sid] = (light, heavy, digest)
        self._commit_log[spec.sid] = {}
        self._owner[spec.sid] = {}
        for handle in self._live_handles():
            self._send_install(handle, light, heavy, digest)

    def _send_install(self, handle: _WorkerHandle, light, heavy: bytes,
                      digest: str) -> None:
        """Install a session, skipping the heavy blob on a cache hit.

        Repeated queries over the same registered tables rebuild
        byte-identical base-partition structures; content addressing
        turns every install after the first into a light-spec-only send
        (the ``payload_bytes_saved`` counter measures the win).
        """
        metrics = self.cluster.metrics
        if digest in handle.cached_digests:
            ship = None
            metrics.inc("process_payload_bytes_saved", len(heavy))
        else:
            ship = heavy
            handle.cached_digests[digest] = True
            while len(handle.cached_digests) > BLOB_CACHE_SLOTS:
                del handle.cached_digests[next(iter(handle.cached_digests))]
            metrics.inc("process_install_bytes", len(heavy))
        handle.send((self._next_req(), "install", light, digest, ship))

    def release_session(self, sid: str) -> None:
        self._sessions.pop(sid, None)
        self._commit_log.pop(sid, None)
        self._owner.pop(sid, None)
        for handle in self._live_handles():
            handle.send((self._next_req(), "release", sid))

    def add_chaos(self, directives: list[dict]) -> None:
        """Arm worker-side chaos (poison / hang) directives."""
        self._chaos = [dict(d) for d in directives]
        self._ship_chaos()

    def _ship_chaos(self) -> None:
        directives = [dict(d) for d in self._chaos]
        for handle in self._live_handles():
            handle.send((self._next_req(), "chaos", directives))

    def collect_states(self, sid: str) -> dict[str, dict[int, object]]:
        """Gather final state partitions from their home workers."""
        out: dict[str, dict[int, object]] = {}
        n = self.cluster.num_partitions
        timeout = max(self.config.task_deadline_s, _SPAWN_TIMEOUT_S)
        for handle in list(self._live_handles()):
            partitions = [p for p in range(n)
                          if self.cluster.worker_for_partition(p)
                          == handle.worker_id]
            if not partitions:
                continue
            result = self._request_sync(
                handle, ("collect", sid, partitions), timeout)
            for view, parts in result.items():
                out.setdefault(view, {}).update(parts)
        return out

    # ------------------------------------------------------------------
    # the batch seam
    # ------------------------------------------------------------------

    def wants_batch(self, tasks) -> bool:
        if not tasks:
            return False
        if any(task.payload is None for task in tasks):
            if self._spawned and not self._degraded:
                self.cluster.metrics.inc("process_tasks_driver_local",
                                         len(tasks))
            return False
        return self.remote_ready()

    def run_batch(self, name, tasks, assignments):
        config = self.config
        self._fire_kill_injectors(name)
        outputs: dict[int, tuple] = {}
        # Grace reset: between batches nobody drains the pipes, so idle
        # heartbeats sit buffered with no receipt timestamps.  Liveness
        # is measured from batch start.
        now = time.monotonic()
        for handle in self._live_handles():
            self._drain(handle, outputs)
            handle.last_heartbeat = now
        self._respawns_left = config.respawn_budget
        try:
            # Coalesce the initial dispatch per worker: one pipe message
            # per worker instead of one per task cuts an n-partition
            # iteration from n sends to |workers| sends (the 96-/256-task
            # storms of BENCH_7).  Entry order inside each batch is task
            # order, so every inflight FIFO invariant the supervisor
            # relies on (head suspect, per-attempt deadline) holds as if
            # the tasks had been sent individually.
            grouped: dict[int, list[tuple[int, object]]] = {}
            for pos, task in enumerate(tasks):
                key = self._poison_key(name, task)
                if key in self._quarantined:
                    raise PoisonTaskError(
                        f"task {task.index} of stage {name!r} is "
                        f"quarantined as a poison pill",
                        stage=name, task_index=task.index,
                        worker_kills=self._kill_counts.get(key, 0))
                grouped.setdefault(self._route(task, assignments, pos),
                                   []).append((pos, task))
            for worker, entries in grouped.items():
                handle = self._handles[worker]
                if len(entries) == 1:
                    self._dispatch_to(handle, name, *entries[0])
                else:
                    self._dispatch_many(handle, name, entries)
            while len(outputs) < len(tasks):
                self._supervise_once(name, tasks, outputs)
            return [outputs[pos] for pos in range(len(tasks))]
        except BaseException:
            self._abandon_all()
            raise

    # -- routing and dispatch --

    @staticmethod
    def _poison_key(name, task) -> tuple:
        payload = task.payload
        sid = payload[1] if payload is not None and len(payload) > 1 else None
        return (sid, name, task.index)

    def _route(self, task, assignments, pos: int) -> int:
        cluster = self.cluster
        if task.payload[0] == "iterate":
            # State residency: an iterate task MUST run where its state
            # partition lives, whatever the scheduler said.
            return cluster.worker_for_partition(task.index)
        if assignments is not None:
            worker = assignments[pos]
            if (0 <= worker < len(self._handles)
                    and self._handles[worker] is not None):
                return worker
        return cluster.worker_for_partition(task.index)

    def _dispatch_to(self, handle: _WorkerHandle, name, pos: int,
                     task) -> None:
        blob = dump_payload(task.payload)
        req_id = self._next_req()
        handle.reqs[req_id] = (pos, task)
        if not handle.inflight:
            handle.head_since = time.monotonic()
        handle.inflight.append((pos, task))
        handle.send((req_id, "task", name, task.index, blob))
        metrics = self.cluster.metrics
        metrics.inc("process_tasks_shipped")
        metrics.inc("process_task_messages")
        metrics.inc("process_payload_bytes", len(blob))
        payload = task.payload
        if payload[0] == "iterate":
            self._owner.setdefault(payload[1], {})[payload[2]] = \
                handle.worker_id

    def _dispatch_many(self, handle: _WorkerHandle, name,
                       entries: list[tuple[int, object]]) -> None:
        """Ship several tasks to one worker as a single ``task_batch``.

        Per-task bookkeeping (req ids, inflight FIFO, shipped/payload
        counters, iterate-state ownership) is identical to
        :meth:`_dispatch_to`; only the message framing is coalesced.
        Crash-recovery re-dispatches stay per-task.
        """
        metrics = self.cluster.metrics
        if not handle.inflight:
            handle.head_since = time.monotonic()
        wire: list[tuple[int, int, bytes]] = []
        for pos, task in entries:
            blob = dump_payload(task.payload)
            req_id = self._next_req()
            handle.reqs[req_id] = (pos, task)
            handle.inflight.append((pos, task))
            wire.append((req_id, task.index, blob))
            metrics.inc("process_tasks_shipped")
            metrics.inc("process_payload_bytes", len(blob))
            payload = task.payload
            if payload[0] == "iterate":
                self._owner.setdefault(payload[1], {})[payload[2]] = \
                    handle.worker_id
        handle.send((0, "task_batch", name, wire))
        metrics.inc("process_task_messages")

    # -- supervision loop --

    def _supervise_once(self, name, tasks, outputs) -> None:
        config = self.config
        handles = self._live_handles()
        if not handles:
            raise NoHealthyWorkersError(
                "process pool has no live workers left")
        conn_map = {}
        sentinel_map = {}
        wait_on = []
        for handle in handles:
            wait_on.append(handle.conn)
            conn_map[handle.conn] = handle
            wait_on.append(handle.proc.sentinel)
            sentinel_map[handle.proc.sentinel] = handle
        ready = mp_connection.wait(wait_on, timeout=config.heartbeat_interval)

        crashed: list[_WorkerHandle] = []
        for obj in ready:
            handle = conn_map.get(obj)
            if handle is None:
                handle = sentinel_map[obj]
                # Drain first: results the worker flushed before dying
                # are committed, not replayed.
                self._drain(handle, outputs)
                crashed.append(handle)
            elif not self._drain(handle, outputs):
                crashed.append(handle)
        seen: set[int] = set()
        for handle in crashed:
            if id(handle) in seen:
                continue
            seen.add(id(handle))
            if self._handles[handle.worker_id] is handle:
                self._handle_worker_death(name, tasks, handle, outputs,
                                          reason="crash")

        now = time.monotonic()
        metrics = self.cluster.metrics
        for handle in list(self._live_handles()):
            if not handle.proc.is_alive():
                self._drain(handle, outputs)
                self._handle_worker_death(name, tasks, handle, outputs,
                                          reason="crash")
                continue
            silent = now - handle.last_heartbeat
            if silent > 2 * config.heartbeat_interval and handle.inflight:
                metrics.inc("process_heartbeats_missed")
            if silent > config.liveness_timeout:
                self._reap(name, tasks, handle, outputs, reason="liveness")
            elif (handle.inflight
                    and now - handle.head_since > config.task_deadline_s):
                self._reap(name, tasks, handle, outputs, reason="deadline")

    def _drain(self, handle: _WorkerHandle, outputs) -> bool:
        """Consume every buffered message; False on EOF (worker dead)."""
        try:
            while handle.conn.poll(0):
                self._on_message(handle, handle.conn.recv(), outputs)
        except (EOFError, OSError):
            return False
        return True

    def _on_message(self, handle: _WorkerHandle, message, outputs) -> None:
        if message[0] == "hb":
            handle.last_heartbeat = time.monotonic()
            self.cluster.metrics.inc("process_heartbeats")
            return
        tag, req_id = message[0], message[1]
        handle.last_heartbeat = time.monotonic()  # any reply is liveness
        if req_id in handle.abandoned:
            handle.abandoned.discard(req_id)
            return
        record = handle.reqs.pop(req_id, None)
        if tag == "err":
            if record is not None:
                handle.inflight = [entry for entry in handle.inflight
                                   if entry[0] != record[0]]
            raise self._rebuild_exc(message[2], message[3])
        if record is None:
            if req_id in handle.expected:
                handle.expected.discard(req_id)
                handle.replies[req_id] = message[3]
            return
        pos, task = record
        if handle.inflight and handle.inflight[0][0] == pos:
            handle.inflight.pop(0)
        else:
            handle.inflight = [entry for entry in handle.inflight
                               if entry[0] != pos]
        handle.head_since = time.monotonic()
        cpu_seconds, result = message[2], message[3]
        outputs[pos] = (result, handle.worker_id, cpu_seconds)
        payload = task.payload
        if payload[0] == "iterate" and payload[3]:
            # Committed: this merge is now part of the partition's state
            # and must be replayed if that state ever needs rebuilding.
            self._commit_log.setdefault(payload[1], {}) \
                .setdefault(payload[2], []).append(payload[3])

    @staticmethod
    def _rebuild_exc(blob, traceback_text):
        if blob is not None:
            try:
                return pickle.loads(blob)
            except Exception:
                pass
        return ExecutionError(
            f"process worker request failed remotely:\n{traceback_text}")

    # -- reaping, respawn, degradation --

    def _reap(self, name, tasks, handle: _WorkerHandle, outputs,
              reason: str) -> None:
        # Last-chance drain: the awaited reply may have just landed.
        if self._drain(handle, outputs):
            now = time.monotonic()
            if (reason == "liveness" and now - handle.last_heartbeat
                    <= self.config.liveness_timeout):
                return
            if reason == "deadline" and (
                    not handle.inflight
                    or now - handle.head_since <= self.config.task_deadline_s):
                return
        self.cluster.metrics.inc("process_worker_reaps")
        self.cluster.tracer.leaf(
            "fault", f"worker-reaped[{handle.worker_id}]",
            worker=handle.worker_id, stage=name, reason=reason)
        try:
            os.kill(handle.proc.pid, signal.SIGKILL)
        except OSError:
            pass
        handle.proc.join(timeout=10.0)
        self._drain(handle, outputs)
        self._handle_worker_death(name, tasks, handle, outputs, reason=reason)

    def _handle_worker_death(self, name, tasks, handle: _WorkerHandle,
                             outputs, reason: str) -> None:
        cluster = self.cluster
        metrics = cluster.metrics
        worker = handle.worker_id
        if reason == "crash":
            metrics.inc("process_worker_crashes")
            cluster.tracer.leaf("fault", f"worker-crashed[{worker}]",
                                worker=worker, stage=name)
        handle.close()
        handle.proc.join(timeout=10.0)
        inflight = [(pos, task) for pos, task in handle.inflight
                    if pos not in outputs]
        handle.inflight.clear()
        handle.abandoned.update(handle.reqs)
        handle.reqs.clear()
        self._handles[worker] = None
        # The dead worker's merged state is gone with it.
        for owners in self._owner.values():
            for partition in [p for p, owner in owners.items()
                              if owner == worker]:
                owners.pop(partition)

        if inflight:
            # The head task is the prime suspect: it was executing (or
            # next to execute) when the worker died.
            _, suspect = inflight[0]
            key = self._poison_key(name, suspect)
            kills = self._kill_counts.get(key, 0) + 1
            self._kill_counts[key] = kills
            self._consume_chaos(name, suspect.index)
            metrics.inc("task_failures")
            if kills >= self.config.poison_threshold:
                self._quarantined.add(key)
                metrics.inc("process_tasks_quarantined")
                cluster.tracer.leaf(
                    "fault", f"poison-quarantine[{suspect.index}]",
                    worker=worker, stage=name, kills=kills)
                raise PoisonTaskError(
                    f"task {suspect.index} of stage {name!r} killed its "
                    f"worker {kills} times (poison_threshold="
                    f"{self.config.poison_threshold}); quarantined",
                    stage=name, task_index=suspect.index, worker_kills=kills)
            cluster.recovery.check_retry_budget(name, suspect.index, kills)
            if cluster.recovery.record_failure(worker):
                metrics.inc("workers_blacklisted")

        if self._respawns_left > 0:
            self._respawns_left -= 1
            used = self.config.respawn_budget - self._respawns_left
            backoff = self.config.backoff_base_s * (2 ** (used - 1))
            time.sleep(backoff)
            metrics.advance(backoff, label="recovery")
            metrics.inc("recovery_seconds", backoff)
            try:
                replacement = self._spawn_worker(worker)
            except Exception as exc:
                warnings.warn(
                    f"respawn of process worker {worker} failed ({exc!r}); "
                    f"retiring the slot instead", RuntimeWarning)
                replacement = None
            if replacement is not None:
                metrics.inc("process_worker_respawns")
                cluster.tracer.leaf(
                    "recovery", f"worker-respawned[{worker}]",
                    worker=worker, stage=name, backoff_s=backoff)
                self._handles[worker] = replacement
                self._send_rebuilds(replacement)
                self._ship_chaos()
                for pos, task in inflight:
                    self._dispatch_to(replacement, name, pos, task)
                return

        # Respawn budget exhausted (or respawn impossible): retire the
        # slot; survivors adopt the partitions that now re-home to them.
        metrics.inc("process_backend_degradations")
        cluster.tracer.leaf(
            "recovery", f"pool-shrink[{worker}]", worker=worker, stage=name,
            survivors=len(self._live_handles()))
        cluster.lose_worker(worker, name)
        for survivor in self._live_handles():
            self._send_rebuilds(survivor)
        self._ship_chaos()
        for pos, task in inflight:
            target = self._route(task, None, pos)
            self._dispatch_to(self._handles[target], name, pos, task)

    def _send_rebuilds(self, handle: _WorkerHandle) -> None:
        """Replay committed state onto a worker for every partition that
        homes there but whose merged state it does not hold."""
        worker = handle.worker_id
        for sid, log in self._commit_log.items():
            owners = self._owner.setdefault(sid, {})
            todo = {}
            for partition, iterations in log.items():
                if (self.cluster.worker_for_partition(partition) == worker
                        and owners.get(partition) != worker):
                    todo[partition] = iterations
                    owners[partition] = worker
            if todo:
                handle.send((self._next_req(), "rebuild", sid, todo))

    def _consume_chaos(self, name, task_index: int) -> None:
        """Mirror the worker-side decrement of the directive that (very
        likely) just fired, so a respawn does not re-arm it."""
        for directive in self._chaos:
            if directive.get("times", 0) <= 0:
                continue
            import re as _re
            if not _re.search(directive["stage"], name):
                continue
            task = directive.get("task")
            if task is not None and task != task_index:
                continue
            directive["times"] -= 1
            return

    def _abandon_all(self) -> None:
        for handle in self._live_handles():
            handle.abandoned.update(handle.reqs)
            handle.reqs.clear()
            handle.inflight.clear()

    # -- chaos: real signals --

    def _fire_kill_injectors(self, name) -> None:
        for injector in getattr(self.cluster, "process_kill_injectors", ()):
            if not injector.matches(name):
                continue
            handles = self._live_handles()
            if not handles:
                continue
            if injector.worker is not None:
                handle = (self._handles[injector.worker]
                          if 0 <= injector.worker < len(self._handles)
                          else None)
            else:
                handle = handles[-1]
            if handle is None:
                continue
            injector.fire()
            sig = (signal.SIGSTOP if injector.signal == "stop"
                   else signal.SIGKILL)
            try:
                os.kill(handle.proc.pid, sig)
            except OSError:
                continue
            self.cluster.tracer.leaf(
                "fault", f"process-{injector.signal}[{handle.worker_id}]",
                worker=handle.worker_id, stage=name, signal=injector.signal)

    # -- synchronous control requests --

    def _request_sync(self, handle: _WorkerHandle, tail: tuple,
                      timeout: float):
        req_id = self._next_req()
        handle.expected.add(req_id)
        handle.send((req_id,) + tail)
        scratch: dict = {}
        deadline = time.monotonic() + timeout
        while True:
            if req_id in handle.replies:
                return handle.replies.pop(req_id)
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ExecutionError(
                    f"process worker {handle.worker_id} did not answer "
                    f"{tail[0]!r} within {timeout:.0f}s")
            try:
                if handle.conn.poll(min(remaining, 0.2)):
                    self._on_message(handle, handle.conn.recv(), scratch)
            except (EOFError, OSError):
                raise ExecutionError(
                    f"process worker {handle.worker_id} died during "
                    f"{tail[0]!r}") from None
