"""Execution backends: where a stage's tasks physically run.

The cluster's scheduling, cost model, shuffle accounting, and recovery
bookkeeping are backend-independent; a :class:`ClusterBackend` only decides
*where the task functions execute*.  Two implementations exist:

- :class:`SimulatedBackend` — tasks run inline in the driver process, in
  deterministic order.  This is the bit-exact oracle every differential
  suite compares against, and the default.
- :class:`repro.engine.backend.process.ProcessClusterBackend` — tasks whose
  :attr:`repro.engine.cluster.StageTask.payload` is set ship to a pool of
  real OS worker processes under a supervision layer (heartbeats, hung-task
  reaping, crash replay, poison quarantine).

The seam is deliberately narrow: :meth:`ClusterBackend.wants_batch` is
consulted once per stage after scheduling, and a backend that claims the
batch returns ``(output, worker, cpu_seconds)`` per task in task order.
Everything downstream — tracing leaves, busy-time accounting, simulated
clock advancement — is shared, so EXPLAIN ANALYZE output has the same
shape on both backends.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ProcessConfig:
    """Supervision knobs of the process backend (cluster-level, not
    per-query plan knobs — they never affect results, only liveness).

    heartbeat_interval:
        Seconds between a worker's heartbeat messages; also the
        supervisor's poll granularity.
    liveness_timeout:
        A worker silent (no heartbeat, no reply) for longer than this is
        presumed frozen (SIGSTOP, hard livelock) and reaped with SIGKILL.
        Generous by default: heartbeats come from a daemon thread that a
        CPU-bound task can starve for whole GIL quanta.
    task_deadline_s:
        Wall-clock budget per task attempt.  A task still unfinished past
        it is hung (its worker may well keep heartbeating — an infinite
        loop beats happily); the worker is reaped and the attempt counts
        toward the poison threshold.
    respawn_budget:
        Reaps/crashes absorbed per stage batch before the backend stops
        respawning and instead retires the slot (the pool shrinks to
        survivors, partitions re-home via ``worker_for_partition``).
    backoff_base_s:
        Base of the exponential respawn backoff
        (``backoff_base_s * 2**(respawns - 1)``).
    poison_threshold:
        A task that killed its worker this many times is quarantined and
        the query fails with :class:`repro.errors.PoisonTaskError`
        instead of crash-looping the pool.
    """

    heartbeat_interval: float = 0.05
    liveness_timeout: float = 5.0
    task_deadline_s: float = 30.0
    respawn_budget: int = 3
    backoff_base_s: float = 0.05
    poison_threshold: int = 3


class ClusterBackend:
    """Interface the cluster consults at the stage-execution seam."""

    def wants_batch(self, tasks) -> bool:
        """True to claim this stage's tasks for :meth:`run_batch`."""
        return False

    def run_batch(self, name, tasks, assignments):
        """Execute a claimed batch; returns ``[(output, worker,
        cpu_seconds), ...]`` in task order."""
        raise NotImplementedError

    def remote_ready(self) -> bool:
        """True when remote execution is available (pool spawned/spawnable)."""
        return False

    def shutdown(self) -> None:
        """Release any OS resources (processes, pipes); idempotent."""


class SimulatedBackend(ClusterBackend):
    """The deterministic in-process oracle: never claims a batch, so
    every task runs inline through the cluster's simulated path."""
