"""Process-backend worker: the child side of the supervision pipe.

Each pool worker is a spawn-started process running :func:`worker_main`.
It keeps *resident state*: for every installed session it owns real
``SetRDD``/``KeyedStateRDD`` structures (all ``n`` partitions allocated,
only the home partitions ever populated), so an iteration ships only the
incoming delta rows — never the all-relation.

Protocol (driver -> worker, one tuple per message)::

    (req_id, "install", light_spec, blob_digest, heavy_blob_or_None)
    (req_id, "release", sid)
    (req_id, "rebuild", sid, {partition: [rows_by_view, ...]})
    (req_id, "collect", sid, [partition, ...])
    (req_id, "chaos",   [directive, ...])
    (req_id, "task",    stage, task_index, payload_blob)
    (0,      "task_batch", stage, [(req_id, task_index, blob), ...])
    (req_id, "ping")
    (req_id, "stop")

An install ships its *heavy* half (prebuilt base join structures and
broadcast tables — see ``payloads.split_install_spec``) content-addressed:
when the driver predicts this worker still caches the digest, it sends
``None`` instead of re-shipping megabytes of unchanged base partitions.
The worker's blob cache mirrors the driver's bookkeeping FIFO exactly
(``BLOB_CACHE_SLOTS``, insertion order, no reorder on hit), so a
predicted hit can never miss.  A ``task_batch`` carries one worker's
whole per-iteration task set in a single message — each entry replies
individually under its own ``req_id``, in order, exactly as if the tasks
had arrived as separate messages.

Worker -> driver::

    ("ok",  req_id, cpu_seconds, result)
    ("err", req_id, pickled_exception_or_None, traceback_text)
    ("hb",  seq)                      # heartbeat daemon thread

The derivation code is *shared with the simulated oracle*, not
reimplemented: merges go through
:func:`repro.core.fixpoint.merge_into_state_partition`, decomposed
fixpoints through ``run_grouped_fixpoint``/``run_fused_fixpoint``, term
functions are recompiled from the very source the driver generated, and
the kernel routers/folds come from ``repro.engine.kernels``.

Chaos directives (``{"kind": "poison"|"hang", "stage": regex,
"task": index-or-None, "times": n}``) are checked before a task runs:
``poison`` hard-exits the process (``os._exit``) the way a segfaulting
UDF would; ``hang`` silences the heartbeat and sleeps, modelling a
livelocked executor, so the supervisor's liveness reaper has something
real to catch.
"""

from __future__ import annotations

import os
import pickle
import re
import threading
import time
import traceback

from repro.core.fixpoint import (
    FixpointOperator,
    _make_assembler,
    _make_negator,
    _make_splitter,
    merge_into_state_partition,
    run_fused_fixpoint,
    run_grouped_fixpoint,
)
from repro.engine.aggregates import partial_aggregate
from repro.engine.backend.payloads import (BLOB_CACHE_SLOTS, InstallSpec,
                                           assemble_install_spec,
                                           recompile_term)
from repro.engine.columnar import maybe_batch

#: Reply buckets smaller than this ship as plain row lists: the driver
#: decodes reply batches immediately (exchange-metric parity), so the
#: round trip only pays for itself on fat early-iteration buckets.
REPLY_BATCH_MIN_ROWS = 256
from repro.engine.kernels import make_fold_kernel, make_router
from repro.engine.serialization import load_payload
from repro.engine.setrdd import KeyedStateRDD, SetRDD
from repro.core.physical import TermRuntime


class _Heartbeat(threading.Thread):
    """Daemon thread beating on the pipe; shares the reply send lock."""

    def __init__(self, conn, lock, interval: float):
        super().__init__(daemon=True, name="rasql-heartbeat")
        self.conn = conn
        self.lock = lock
        self.interval = interval
        self.seq = 0
        self._stopped = threading.Event()

    def run(self):
        while not self._stopped.wait(self.interval):
            try:
                with self.lock:
                    self.conn.send(("hb", self.seq))
            except Exception:
                return  # driver gone; the main loop will exit on EOF
            self.seq += 1

    def stop(self):
        self._stopped.set()


class WorkerSession:
    """One installed fixpoint session: resident state + live callables
    reconstructed from the wire spec."""

    def __init__(self, spec: InstallSpec):
        self.spec = spec
        n = spec.n
        self.states: dict[str, SetRDD | KeyedStateRDD] = {}
        self.splitters: dict = {}
        self.assemblers: dict = {}
        self.negators: dict = {}
        self.two_col: dict[str, bool] = {}
        self.routers: dict = {}
        self.fold_kernels: dict = {}
        for name, view in spec.views.items():
            functions = view.aggregate_functions
            if view.has_aggregates:
                self.states[name] = KeyedStateRDD(
                    n, functions, use_kernels=True)
            else:
                self.states[name] = SetRDD(n)
            self.splitters[name] = _make_splitter(view)
            self.assemblers[name] = _make_assembler(view)
            self.negators[name] = _make_negator(view)
            self.two_col[name] = view.two_col
            self.routers[name] = make_router(view.partition_key_positions, n)
            self.fold_kernels[name] = (
                make_fold_kernel(functions[0]) if view.two_col else None)
        self.terms = [(ts, recompile_term(ts.source, ts.view))
                      for ts in spec.terms]
        self.dedup_fns = [recompile_term(ts.dedup_source, ts.view)
                          if ts.dedup_source is not None else None
                          for ts in spec.terms]
        #: Current task's fresh deltas per view (single partition at a
        #: time; the incremental state-table append reads these).
        self.fresh: dict[str, dict[int, list]] = {
            name: {} for name in spec.views}
        self._state_tables: dict[tuple, list] = {}
        runtime = TermRuntime()
        runtime.broadcast_tables = spec.broadcast_tables
        runtime.base_partitions = spec.base_partitions
        runtime.state_rows = self._state_rows
        runtime.delta_rows = self._delta_rows
        runtime.state_total = self._state_total
        runtime.state_table = self._state_table
        self.runtime = runtime

    # -- TermRuntime closures (mirror FixpointOperator._setup_states) --

    def _state_rows(self, view_name: str, partition: int) -> list[tuple]:
        if partition == -1:
            # Gathered joins read sibling partitions mid-stage; remote
            # eligibility excludes them, so this cannot be reached.
            raise RuntimeError(
                "gather join reached the process-backend worker; "
                "_remote_eligible should have kept this clique simulated")
        state = self.states[view_name]
        if isinstance(state, SetRDD):
            return list(state.partitions[partition])
        return state.partition_rows(partition)

    def _delta_rows(self, view_name: str, partition: int) -> list[tuple]:
        return self.fresh[view_name].get(partition, [])

    def _state_total(self, view_name: str, partition: int, key):
        return self.states[view_name].partitions[partition].get(key)

    def _state_table(self, view_name: str, partition: int,
                     key_positions, pad):
        """Version-validated state-side build table; same cache rules as
        :meth:`repro.core.fixpoint.FixpointOperator._state_table` minus
        the driver-only metrics and gather bypass."""
        state = self.states[view_name]
        version = state.versions[partition]
        count = len(state.partitions[partition])
        cache_key = (view_name, partition, key_positions, pad)
        entry = self._state_tables.get(cache_key)
        if entry is not None and entry[0] == version:
            if entry[1] == count:
                return entry[2]
            fresh = self.fresh[view_name].get(partition, [])
            if isinstance(state, SetRDD) and entry[1] + len(fresh) == count:
                FixpointOperator._append_state_rows(
                    entry[2], fresh, key_positions, pad)
                entry[1] = count
                return entry[2]
        table = FixpointOperator._build_state_side(
            self._state_rows(view_name, partition), key_positions, pad)
        self._state_tables[cache_key] = [version, count, table]
        return table

    # -- the per-iteration hot path --

    def iterate(self, partition: int, rows_by_view: dict[str, list]
                ) -> tuple[int, dict, dict[str, int]]:
        """Merge one partition's incoming deltas, derive, route.

        Returns ``(d_count, per_view_buckets, d_by_view)``; the driver
        sums ``d_by_view`` across partitions for its span annotations
        (its own ``_current_d`` stays empty in remote mode).
        """
        d_count = 0
        d_by_view: dict[str, int] = {}
        for name in self.spec.view_order:
            rows = rows_by_view.get(name, [])
            fresh = merge_into_state_partition(
                self.states[name], partition, rows, self.two_col[name],
                self.splitters[name], self.assemblers[name])
            self.fresh[name][partition] = fresh
            d_by_view[name] = len(fresh)
            d_count += len(fresh)
        if d_count == 0:
            return 0, {}, d_by_view
        return d_count, self._evaluate_terms(partition), d_by_view

    def _evaluate_terms(self, partition: int) -> dict[str, dict[int, list]]:
        """The kernels-mode subset of
        :meth:`repro.core.fixpoint.FixpointOperator._evaluate_terms`:
        no naive mode, no adaptive selector (plain codegen evaluation —
        bit-exact regardless), no memory touches."""
        collected: dict[str, list[tuple]] = {}
        for spec, fn in self.terms:
            delta = self.fresh[spec.delta_view].get(partition, [])
            if not delta:
                continue
            rows = fn(delta, partition, self.runtime)
            if spec.negate and rows:
                negate = self.negators[spec.view]
                rows = [negate(r) for r in rows]
            collected.setdefault(spec.view, []).extend(rows)

        per_view: dict[str, dict[int, list]] = {}
        for view_name, rows in collected.items():
            view = self.spec.views[view_name]
            if view.has_aggregates and self.spec.partial_aggregation:
                functions = view.aggregate_functions
                fold = self.fold_kernels.get(view_name)
                if fold is not None:
                    rows = fold(rows)
                elif self.two_col[view_name]:
                    combine = functions[0].combine
                    combined: dict = {}
                    get = combined.get
                    for key, value in rows:
                        old = get(key)
                        combined[key] = (value if old is None
                                         else combine(old, value))
                    rows = list(combined.items())
                else:
                    splitter = self.splitters[view_name]
                    assembler = self.assemblers[view_name]
                    pairs = partial_aggregate(
                        [splitter(r) for r in rows], functions)
                    rows = [assembler(k, v) for k, v in pairs]
            router = self.routers[view_name]
            if self.spec.columnar_batches:
                # Reply buckets ship columnar: the batch's __reduce__
                # makes the ok-reply pickle carry the compact encoding,
                # and the driver decodes back to the identical row lists
                # before its (simulated-metric-charging) exchange.  The
                # threshold is higher than the dispatch side's: a reply
                # bucket is decoded straight back to rows on the driver,
                # so encode+decode only amortizes on the fat buckets of
                # the early iterations, not a converging tail's trickle.
                per_view[view_name] = {
                    pid: maybe_batch(bucket, REPLY_BATCH_MIN_ROWS)
                    for pid, bucket in enumerate(router(rows)) if bucket}
            else:
                per_view[view_name] = {
                    pid: bucket for pid, bucket in enumerate(router(rows))
                    if bucket}
        return per_view

    def decompose(self, partition: int, mode: str, delta_rows: list):
        """Stateless per-partition fixpoint via the shared runners."""
        if mode == "grouped":
            return run_grouped_fixpoint(
                [ts.grouped_spec for ts, _ in self.terms],
                self.runtime.broadcast_tables, delta_rows,
                self.spec.max_iterations)
        return run_fused_fixpoint(
            self.dedup_fns, self.runtime.broadcast_tables, delta_rows,
            self.spec.max_iterations)

    # -- crash recovery --

    def rebuild(self, log: dict[int, list]) -> None:
        """Replay committed iterations from the driver's replay log.

        Clears each partition first (idempotent on a fresh respawn,
        necessary when a survivor re-adopts): the state is exactly the
        in-order merge of every committed iteration's incoming rows —
        the fresh-delta returns are recomputed and discarded.
        """
        for partition, iterations in log.items():
            for name in self.spec.view_order:
                state = self.states[name]
                state.replace_partition(
                    partition, set() if isinstance(state, SetRDD) else {})
            for rows_by_view in iterations:
                for name in self.spec.view_order:
                    rows = rows_by_view.get(name, [])
                    if rows:
                        merge_into_state_partition(
                            self.states[name], partition, rows,
                            self.two_col[name], self.splitters[name],
                            self.assemblers[name])

    def collect(self, partitions: list[int]) -> dict[str, dict[int, object]]:
        """Final state containers for the requested (home) partitions."""
        out: dict[str, dict[int, object]] = {}
        for name in self.spec.view_order:
            state = self.states[name]
            out[name] = {
                p: (set(state.partitions[p]) if isinstance(state, SetRDD)
                    else dict(state.partitions[p]))
                for p in partitions}
        return out


def _apply_chaos(directives: list[dict], stage: str, task_index: int,
                 heartbeat: _Heartbeat) -> None:
    """Fire the first matching armed directive (worker-side decrement;
    the driver keeps its own copy in sync via reap detection)."""
    for directive in directives:
        if directive.get("times", 0) <= 0:
            continue
        if not re.search(directive["stage"], stage):
            continue
        task = directive.get("task")
        if task is not None and task != task_index:
            continue
        directive["times"] -= 1
        if directive["kind"] == "poison":
            os._exit(42)  # no cleanup, no reply: a hard native crash
        if directive["kind"] == "hang":
            heartbeat.stop()
            time.sleep(3600.0)  # reaped long before this returns
        return


def _run_payload(sessions: dict[str, WorkerSession], payload):
    kind = payload[0]
    if kind == "iterate":
        _, sid, partition, rows_by_view = payload
        return sessions[sid].iterate(partition, rows_by_view)
    if kind == "decompose":
        _, sid, partition, mode, delta_rows = payload
        return sessions[sid].decompose(partition, mode, delta_rows)
    raise RuntimeError(f"unknown payload kind {kind!r}")


def worker_main(conn, worker_id: int, heartbeat_interval: float) -> None:
    """Entry point of a pool worker process."""
    lock = threading.Lock()
    heartbeat = _Heartbeat(conn, lock, heartbeat_interval)
    heartbeat.start()
    sessions: dict[str, WorkerSession] = {}
    chaos: list[dict] = []
    #: Content-addressed heavy-install blobs, FIFO-evicted; mirrors the
    #: driver's per-worker ``cached_digests`` bookkeeping exactly.
    blob_cache: dict[str, bytes] = {}

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return  # driver exited; die quietly
        req_id, kind = message[0], message[1]
        try:
            cpu = 0.0
            if kind == "stop":
                with lock:
                    conn.send(("ok", req_id, 0.0, None))
                return
            if kind == "ping":
                result = worker_id
            elif kind == "install":
                light, digest, heavy = message[2], message[3], message[4]
                if heavy is None:
                    heavy = blob_cache[digest]  # driver predicted a hit
                else:
                    blob_cache[digest] = heavy
                    while len(blob_cache) > BLOB_CACHE_SLOTS:
                        del blob_cache[next(iter(blob_cache))]
                sessions[light.sid] = WorkerSession(
                    assemble_install_spec(light, heavy))
                result = None
            elif kind == "release":
                sessions.pop(message[2], None)
                result = None
            elif kind == "chaos":
                chaos = message[2]
                result = None
            elif kind == "rebuild":
                sessions[message[2]].rebuild(message[3])
                result = None
            elif kind == "collect":
                result = sessions[message[2]].collect(message[3])
            elif kind == "task":
                stage, task_index, blob = message[2], message[3], message[4]
                payload = load_payload(blob)
                _apply_chaos(chaos, stage, task_index, heartbeat)
                t0 = time.perf_counter()
                result = _run_payload(sessions, payload)
                cpu = time.perf_counter() - t0
            elif kind == "task_batch":
                # One coalesced message, one reply per entry, in order —
                # indistinguishable from separate "task" messages to the
                # supervisor (its inflight FIFO matches entry order, so
                # poison-suspect and deadline logic are unchanged).
                # Liveness under a long batch is the heartbeat daemon's
                # job; it beats independently of this loop.
                stage, entries = message[2], message[3]
                for task_req, task_index, blob in entries:
                    try:
                        payload = load_payload(blob)
                        _apply_chaos(chaos, stage, task_index, heartbeat)
                        t0 = time.perf_counter()
                        task_result = _run_payload(sessions, payload)
                        task_cpu = time.perf_counter() - t0
                    except BaseException as exc:
                        try:
                            exc_blob = pickle.dumps(
                                exc, protocol=pickle.HIGHEST_PROTOCOL)
                        except Exception:
                            exc_blob = None
                        with lock:
                            try:
                                conn.send(("err", task_req, exc_blob,
                                           traceback.format_exc()))
                            except Exception:
                                return
                        continue
                    with lock:
                        try:
                            conn.send(("ok", task_req, task_cpu,
                                       task_result))
                        except Exception:
                            return
                continue
            else:
                raise RuntimeError(f"unknown request kind {kind!r}")
        except BaseException as exc:  # reply-with-error, keep serving
            try:
                exc_blob = pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception:
                exc_blob = None
            with lock:
                try:
                    conn.send(("err", req_id, exc_blob,
                               traceback.format_exc()))
                except Exception:
                    return
            continue
        with lock:
            try:
                conn.send(("ok", req_id, cpu, result))
            except Exception:
                return
