"""Picklable wire forms of a fixpoint session for the process backend.

A remote-eligible clique is *installed* once on every pool worker: the
driver strips the planned clique down to exactly what the per-iteration
hot path needs — view shapes, generated term sources, prebuilt base join
structures — and each worker reconstructs live callables from it.  The
reconstruction reuses the very same factories the driver uses
(``repro.core.fixpoint``'s splitter/assembler/negator makers, the kernel
routers and fold kernels, the codegen compile environment), so a worker's
merge/derive/route round is instruction-for-instruction the code the
simulated oracle runs — the bit-exactness argument is shared code, not
parallel reimplementation.

Generated term functions cannot be pickled (they close over a compile
environment), but their *source text* can: codegen stamps it on the
function as ``_generated_source``, and :func:`recompile_term` rebuilds
the environment — ``_build_state_table`` plus the ``_norm<i>``
count-normalizers the emitter references — and re-executes the same
source under the same synthetic filename.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field, replace

from repro.engine.aggregates import BY_NAME
from repro.engine.serialization import dump_payload, load_payload

_NORM_REF = re.compile(r"_norm(\d+)")

#: Per-worker install-blob cache capacity (driver and worker mirror this
#: FIFO exactly, so a driver-predicted cache hit can never miss).
BLOB_CACHE_SLOTS = 8


@dataclass(frozen=True)
class WireView:
    """The slice of a :class:`repro.core.physical.PhysicalView` the
    worker-side merge/aggregate/route path reads."""

    name: str
    group_positions: tuple[int, ...]
    aggregate_positions: tuple[int, ...]
    #: Aggregate *names*; the live function objects are re-looked-up in
    #: ``BY_NAME`` worker-side so kernel identity gates (which compare
    #: ``is`` against the registry) keep firing.
    aggregate_names: tuple[str, ...]
    partition_key_positions: tuple[int, ...]
    two_col: bool
    has_aggregates: bool

    @property
    def aggregate_functions(self):
        return [BY_NAME[name] for name in self.aggregate_names]


@dataclass(frozen=True)
class TermSpec:
    """One compiled term as source text + routing metadata."""

    view: str
    delta_view: str
    negate: bool
    source: str
    dedup_source: str | None = None
    grouped_spec: object | None = None  # frozen GroupedDedupSpec, picklable


@dataclass(frozen=True)
class InstallSpec:
    """Everything a worker needs to run iterate/decompose tasks for one
    fixpoint session.

    ``base_partitions`` ships *all* partitions of every co-partitioned
    build to every worker (not just the worker's home partitions): after
    a crash the survivors adopt the dead worker's partitions via
    ``worker_for_partition``, and re-homing must not require a second
    install round-trip mid-recovery.
    """

    sid: str
    n: int
    num_workers: int
    views: dict[str, WireView]
    view_order: tuple[str, ...]
    terms: tuple[TermSpec, ...]
    base_partitions: dict[int, list] = field(default_factory=dict)
    broadcast_tables: dict[int, object] = field(default_factory=dict)
    partial_aggregation: bool = True
    max_iterations: int = 100_000
    #: Workers mirror the driver's columnar setting: reply shuffle
    #: buckets (and anything else they originate) use the batch wire
    #: format only when the driver runs columnar too.
    columnar_batches: bool = True


def build_install_spec(operator, sid: str) -> InstallSpec:
    """Strip a (set-up) :class:`repro.core.fixpoint.FixpointOperator`
    down to its wire form.  Must run after ``_setup_base_relations`` so
    the prebuilt join structures exist."""
    views = {}
    for name, view in operator.planned.views.items():
        views[name] = WireView(
            name=name,
            group_positions=tuple(view.group_positions),
            aggregate_positions=tuple(view.aggregate_positions),
            aggregate_names=tuple(fn.name for fn in view.aggregate_functions),
            partition_key_positions=tuple(view.partition_key_positions),
            two_col=operator._two_col[name],
            has_aggregates=view.has_aggregates,
        )
    terms = []
    for term in operator.planned.terms:
        dedup = getattr(term, "codegen_dedup_fn", None)
        terms.append(TermSpec(
            view=term.view,
            delta_view=term.delta_view,
            negate=term.negate,
            source=term.codegen_fn._generated_source,
            dedup_source=(dedup._generated_source
                          if dedup is not None else None),
            grouped_spec=term.grouped_spec,
        ))
    return InstallSpec(
        sid=sid,
        n=operator.n,
        num_workers=operator.cluster.num_workers,
        views=views,
        view_order=tuple(operator.planned.views),
        terms=tuple(terms),
        base_partitions=dict(operator.runtime.base_partitions),
        broadcast_tables=dict(operator.runtime.broadcast_tables),
        partial_aggregation=operator.config.partial_aggregation,
        max_iterations=operator.config.max_iterations,
        columnar_batches=operator._use_columnar,
    )


def split_install_spec(spec: InstallSpec) -> tuple[InstallSpec, bytes, str]:
    """Split a spec into ``(light spec, heavy blob, blob digest)``.

    The heavy part — prebuilt base join structures and broadcast tables,
    nearly all of an install's bytes and *identical across repeated
    queries over the same registered tables* — is pickled once and
    content-addressed, so the driver can skip re-sending it to a worker
    whose blob cache still holds the digest (the base-partition install
    cache; see ``process.py``).  The light spec ships every time.
    """
    heavy = dump_payload((spec.base_partitions, spec.broadcast_tables))
    digest = hashlib.sha256(heavy).hexdigest()
    light = replace(spec, base_partitions={}, broadcast_tables={})
    return light, heavy, digest


def assemble_install_spec(light: InstallSpec, heavy: bytes) -> InstallSpec:
    """Worker-side inverse of :func:`split_install_spec`."""
    base_partitions, broadcast_tables = load_payload(heavy)
    return replace(light, base_partitions=base_partitions,
                   broadcast_tables=broadcast_tables)


def recompile_term(source: str, view: str):
    """Re-execute a generated term's source under the driver's compile
    environment; returns the live function.

    The emitter references at most two kinds of free names:
    ``_build_state_table`` (state-side probe tables) and ``_norm<i>``
    (count normalization — only ``count`` aggregates ever get one, so the
    registry lookup is exact).  ``_E`` is emitted inline by the dedup
    variant and needs no environment entry.
    """
    from repro.core.codegen import _build_state_table

    env = {"_build_state_table": _build_state_table}
    for index in set(_NORM_REF.findall(source)):
        env[f"_norm{index}"] = BY_NAME["count"].normalize
    code = compile(source, f"<rasql-codegen:{view}>", "exec")
    exec(code, env)
    fn = env["_term"]
    fn._generated_source = source
    return fn
