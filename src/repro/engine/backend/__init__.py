"""Pluggable execution backends for the cluster (see ``base.py``).

``ProcessClusterBackend`` is exported lazily: importing it pulls in the
worker module, which reaches back into ``repro.core`` — a cycle if done
while ``repro.engine.cluster`` itself is still importing this package.
"""

from repro.engine.backend.base import (
    ClusterBackend,
    ProcessConfig,
    SimulatedBackend,
)

__all__ = ["ClusterBackend", "ProcessClusterBackend", "ProcessConfig",
           "SimulatedBackend"]


def __getattr__(name):
    if name == "ProcessClusterBackend":
        from repro.engine.backend.process import ProcessClusterBackend

        return ProcessClusterBackend
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
