"""Per-worker memory accounting and spill-to-disk (resource governance).

The paper's runtime inherits Spark's unified memory manager: cached
SetRDD partitions, shuffle buffers, and broadcast variables all live in
bounded executor memory, and under pressure Spark evicts storage blocks
to disk rather than failing the job.  This module reproduces that
behaviour for the simulated cluster:

- Every cached byte is *charged* to a :class:`MemorySegment` on its home
  worker, sized with the same ``repro.engine.serialization.rows_size``
  model the shuffle accounting uses.
- When a worker's resident bytes exceed the configured budget, the
  manager *spills* least-recently-touched segments to a simulated disk
  tier.  Spills and unspills are charged to the
  :class:`repro.engine.metrics.CostModel` (``spill_seconds``) exactly
  like remote fetches are charged at the network rate — results never
  change, only accounted time and the spill counters.
- Only when even spilling everything spillable cannot fit the *working
  set* (the segment a task just charged or touched) does the manager
  raise :class:`repro.errors.MemoryBudgetExceededError` — the analog of
  an executor OOM on execution memory, which Spark cannot spill either.

Budgets come in two enforcement flavours.  A *hard* budget (user
configured via :class:`MemoryConfig`) raises when the working set cannot
fit.  A *soft* budget (installed by
:class:`repro.engine.faults.MemoryPressureInjector` mid-run) degrades
instead: the manager spills everything it can, counts a
``memory_budget_overflows`` event, and lets the stage proceed — chaos
schedules must stress the spill machinery without ever changing query
results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MemoryBudgetExceededError

__all__ = ["MemoryConfig", "MemoryManager", "MemorySegment"]


@dataclass(frozen=True)
class MemoryConfig:
    """Knobs of the per-worker memory governor.

    worker_budget_bytes:
        Resident-memory budget per simulated worker; ``None`` (the
        default) means unbounded — accounting and high-water marks are
        still recorded, but nothing ever spills.
    spill_enabled:
        When ``False`` the manager never spills: exceeding a budget
        raises immediately (the "no disk tier" ablation).
    """

    worker_budget_bytes: int | None = None
    spill_enabled: bool = True

    def __post_init__(self):
        if (self.worker_budget_bytes is not None
                and self.worker_budget_bytes < 1):
            raise ValueError(
                f"worker_budget_bytes must be positive or None, "
                f"got {self.worker_budget_bytes!r}")


class MemorySegment:
    """One charged allocation: a cached partition, shuffle buffer chunk,
    or one worker's copy of a broadcast."""

    __slots__ = ("kind", "name", "partition", "worker", "nbytes",
                 "spillable", "spilled", "last_touch")

    def __init__(self, kind: str, name: str, partition: int, worker: int,
                 nbytes: int, spillable: bool, last_touch: int):
        self.kind = kind
        self.name = name
        self.partition = partition
        self.worker = worker
        self.nbytes = nbytes
        self.spillable = spillable
        self.spilled = False
        self.last_touch = last_touch

    def describe(self) -> str:
        return f"{self.kind}:{self.name}[{self.partition}]"


class MemoryManager:
    """Charges, spills, and high-water accounting for one cluster.

    The manager owns no data — cached rows always stay in process memory
    because the engine computes real results.  What it owns is the
    *accounting*: which bytes are resident on which worker, which were
    spilled to the disk tier, and what that cost.  Determinism matters
    (chaos runs compare counters across identical runs), so eviction is
    strict least-recently-touched order driven by a logical touch clock,
    never wall time.
    """

    def __init__(self, num_workers: int, config: MemoryConfig,
                 metrics, cost_model, tracer=None):
        self.num_workers = num_workers
        self.config = config
        self.metrics = metrics
        self.cost_model = cost_model
        self.tracer = tracer
        #: Effective per-worker budget; mutable so pressure injectors can
        #: shrink it mid-run (``None`` = unbounded).
        self.budget_bytes: int | None = config.worker_budget_bytes
        #: ``False`` for user-configured budgets (exceeding the working
        #: set raises); ``True`` for injected pressure (degrade only).
        self.soft: bool = False
        self._segments: dict[tuple, MemorySegment] = {}
        self._clock = 0
        self._resident = [0] * num_workers
        self._spilled = [0] * num_workers
        self._hwm = [0] * num_workers
        self._iter_hwm = [0] * num_workers

    # ------------------------------------------------------------------
    # charging
    # ------------------------------------------------------------------

    def charge(self, kind: str, name: str, partition: int, worker: int,
               nbytes: int, spillable: bool = True) -> None:
        """Charge (or re-size) one segment and enforce the budget.

        Re-charging an existing key updates its size in place (cached
        state grows every iteration) and counts as a touch; a spilled
        segment being re-charged is read back from disk first.  The
        charged segment itself is the working set and is never chosen as
        its own spill victim.
        """
        if not isinstance(nbytes, int):
            # Columnar partitions charge themselves: a ColumnBatch (or
            # anything else exposing ``.nbytes``) may be passed in place
            # of a precomputed size, keeping spill/budget decisions
            # honest for array-backed columns row-size models miss.
            nbytes = int(getattr(nbytes, "nbytes"))
        key = (kind, name, partition)
        self._clock += 1
        segment = self._segments.get(key)
        if segment is None:
            segment = MemorySegment(kind, name, partition, worker,
                                    nbytes, spillable, self._clock)
            self._segments[key] = segment
            self._resident[worker] += nbytes
        else:
            if segment.spilled:
                self._unspill(segment)
            # Cached partitions re-home after a worker loss; move the
            # bytes with them.
            self._resident[segment.worker] -= segment.nbytes
            segment.worker = worker
            segment.nbytes = nbytes
            segment.last_touch = self._clock
            self._resident[worker] += nbytes
        self._update_hwm(worker)
        self._enforce(worker, keep=key)

    def touch(self, kind: str, name: str, partition: int) -> None:
        """Mark a segment recently used; read it back if it was spilled.

        Unknown keys are ignored (callers touch optimistically — e.g.
        state partitions before their first charge).
        """
        segment = self._segments.get((kind, name, partition))
        if segment is None:
            return
        self._clock += 1
        segment.last_touch = self._clock
        if segment.spilled:
            self._unspill(segment)
            self._update_hwm(segment.worker)
            self._enforce(segment.worker, keep=(kind, name, partition))

    def release(self, kind: str, name: str, partition: int) -> None:
        """Free one segment (dropping memory costs nothing)."""
        segment = self._segments.pop((kind, name, partition), None)
        if segment is None:
            return
        if segment.spilled:
            self._spilled[segment.worker] -= segment.nbytes
        else:
            self._resident[segment.worker] -= segment.nbytes

    def release_group(self, kind: str, name: str) -> None:
        """Free every segment of one ``(kind, name)`` group."""
        for key in [k for k in self._segments if k[0] == kind and k[1] == name]:
            self.release(*key)

    def release_all(self) -> None:
        """Drop every charge (a query's caches die with the query)."""
        for key in list(self._segments):
            self.release(*key)

    # ------------------------------------------------------------------
    # budget enforcement
    # ------------------------------------------------------------------

    def set_budget(self, nbytes: int | None, soft: bool = False) -> None:
        """Install a new per-worker budget and enforce it everywhere."""
        self.budget_bytes = nbytes
        self.soft = soft
        for worker in range(self.num_workers):
            self._enforce(worker, keep=None)

    def reset_budget(self) -> None:
        """Drop any injected soft budget, back to the configured one."""
        self.budget_bytes = self.config.worker_budget_bytes
        self.soft = False

    def apply_pressure(self, fraction: float, stage: str = "") -> int:
        """Shrink the budget to a fraction of the current peak usage.

        The injected budget is *soft*: enforcement spills but never
        raises, because chaos faults must not change query outcomes.
        Returns the new budget in bytes.
        """
        peak = max(self._resident, default=0)
        new_budget = max(1, int(peak * fraction))
        self.metrics.inc("memory_pressure_events")
        if self.tracer is not None:
            self.tracer.leaf("fault", f"memory-pressure[{stage}]",
                             stage=stage, fraction=fraction,
                             budget_bytes=new_budget)
        self.set_budget(new_budget, soft=True)
        return new_budget

    def _enforce(self, worker: int, keep: tuple | None) -> None:
        budget = self.budget_bytes
        if budget is None:
            return
        while self._resident[worker] > budget:
            victim = self._pick_victim(worker, keep)
            if victim is None:
                if self.soft:
                    # Even a fully-spilled worker cannot fit the working
                    # set under the injected budget; degrade, don't die.
                    self.metrics.inc("memory_budget_overflows")
                    return
                pinned = keep and self._segments.get(keep)
                requested = pinned.nbytes if pinned else self._resident[worker]
                what = pinned.describe() if pinned else "resident set"
                raise MemoryBudgetExceededError(
                    f"worker {worker} cannot fit {what} "
                    f"({requested} bytes) within its "
                    f"{budget}-byte memory budget even after spilling: "
                    f"{self._resident[worker]} bytes resident, "
                    f"{self._spilled[worker]} bytes already spilled — "
                    f"raise the per-worker budget or repartition the "
                    f"query more finely",
                    worker=worker, requested_bytes=requested,
                    budget_bytes=budget,
                    resident_bytes=self._resident[worker],
                    spilled_bytes=self._spilled[worker])
            self._spill(victim)

    def _pick_victim(self, worker: int, keep: tuple | None):
        if not self.config.spill_enabled:
            return None
        victim = None
        for key, segment in self._segments.items():
            if (segment.worker != worker or segment.spilled
                    or not segment.spillable or key == keep):
                continue
            if victim is None or segment.last_touch < victim.last_touch:
                victim = segment
        return victim

    def _spill(self, segment: MemorySegment) -> None:
        seconds = self.cost_model.spill_seconds(segment.nbytes)
        segment.spilled = True
        self._resident[segment.worker] -= segment.nbytes
        self._spilled[segment.worker] += segment.nbytes
        self.metrics.inc("spill_events")
        self.metrics.inc("spill_bytes", segment.nbytes)
        self.metrics.inc("spill_seconds", seconds)
        self.metrics.advance(seconds, label="spill")
        if self.tracer is not None:
            self.tracer.leaf("spill", segment.describe(),
                             worker=segment.worker, bytes=segment.nbytes,
                             direction="out")

    def _unspill(self, segment: MemorySegment) -> None:
        seconds = self.cost_model.spill_seconds(segment.nbytes)
        segment.spilled = False
        self._spilled[segment.worker] -= segment.nbytes
        self._resident[segment.worker] += segment.nbytes
        self.metrics.inc("unspill_events")
        self.metrics.inc("unspill_bytes", segment.nbytes)
        self.metrics.inc("spill_seconds", seconds)
        self.metrics.advance(seconds, label="spill")
        if self.tracer is not None:
            self.tracer.leaf("spill", segment.describe(),
                             worker=segment.worker, bytes=segment.nbytes,
                             direction="in")

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def _update_hwm(self, worker: int) -> None:
        resident = self._resident[worker]
        if resident > self._hwm[worker]:
            # The counter tracks the running max: incrementing by the
            # excess keeps span deltas meaningful (the high-water gain
            # observed *inside* a span).
            self.metrics.inc(f"memory_hwm_bytes_w{worker}",
                             resident - self._hwm[worker])
            self._hwm[worker] = resident
        if resident > self._iter_hwm[worker]:
            self._iter_hwm[worker] = resident

    def begin_iteration(self) -> None:
        """Reset the per-iteration high-water marks (fixpoint loop)."""
        self._iter_hwm = list(self._resident)

    def iteration_high_water(self) -> dict[int, int]:
        """Per-worker resident high-water since ``begin_iteration``."""
        return {w: hwm for w, hwm in enumerate(self._iter_hwm)}

    def resident_bytes(self, worker: int | None = None) -> int:
        if worker is not None:
            return self._resident[worker]
        return sum(self._resident)

    def spilled_bytes(self, worker: int | None = None) -> int:
        if worker is not None:
            return self._spilled[worker]
        return sum(self._spilled)

    def high_water_bytes(self, worker: int) -> int:
        return self._hwm[worker]

    def max_segment_bytes(self) -> int:
        """Largest live segment — the floor any hard budget must clear."""
        return max((s.nbytes for s in self._segments.values()), default=0)

    def report(self) -> dict:
        """A plain-dict summary for ``RunInfo.memory_summary`` and tests."""
        return {
            "budget_bytes": self.budget_bytes,
            "soft": self.soft,
            "per_worker": [
                {"worker": w,
                 "resident_bytes": self._resident[w],
                 "spilled_bytes": self._spilled[w],
                 "high_water_bytes": self._hwm[w]}
                for w in range(self.num_workers)
            ],
            "spill_events": self.metrics.get("spill_events"),
            "spill_bytes": self.metrics.get("spill_bytes"),
            "unspill_events": self.metrics.get("unspill_events"),
            "unspill_bytes": self.metrics.get("unspill_bytes"),
            "spill_seconds": self.metrics.get("spill_seconds"),
        }
