"""Structured tracing: the span tree behind EXPLAIN ANALYZE.

The paper tells its whole performance story through per-stage and
per-iteration observation (Figures 5-9; the four Section 6-7
optimizations are each justified by where the time went).  The flat
counters of :class:`repro.engine.metrics.MetricsRegistry` cannot
attribute simulated time to a stage, an iteration or a view, so this
module adds a hierarchical layer on top of them:

    query -> fixpoint -> iteration -> stage -> task
                      \\-> exchange / broadcast
          \\-> select (the final stratum / derived views)

A :class:`Span` brackets a region of execution.  On entry it snapshots
the registry's simulated clock and counters; on exit it records the
deltas, so every span carries — with no extra bookkeeping at the
instrumentation sites — its inclusive simulated duration and the
counter traffic (shuffle/remote/broadcast bytes, task CPU seconds, ...)
that happened inside it.  Labelled clock advances are additionally
attributed to every open span (``Span.time_by_label``), which is what
lets EXPLAIN ANALYZE split an iteration into stage time vs. shuffle
time.

Spans serialize to plain dicts (:meth:`Span.to_dict`), which is the
trace JSON schema documented in DESIGN.md; the renderers at the bottom
of this module (:func:`format_explain_analyze`) work off those dicts so
a trace loaded back from a benchmark artifact renders identically.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "Span",
    "Tracer",
    "format_explain_analyze",
    "iteration_timeline",
]


@dataclass
class Span:
    """One bracketed region of execution on the simulated cluster.

    ``start``/``end`` are simulated-clock readings; ``duration`` is
    therefore inclusive simulated time (children are not subtracted).
    ``metrics`` holds counter deltas observed between entry and exit;
    ``time_by_label`` splits the duration by clock-advance label.
    """

    kind: str
    name: str
    start: float = 0.0
    end: float | None = None
    span_id: int = 0
    attrs: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    time_by_label: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def annotate(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def find(self, kind: str) -> Iterator["Span"]:
        """All descendant spans (including self) of one kind, pre-order."""
        if self.kind == kind:
            yield self
        for child in self.children:
            yield from child.find(kind)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "span_id": self.span_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": dict(self.attrs),
            "metrics": dict(self.metrics),
            "time_by_label": dict(self.time_by_label),
            "children": [child.to_dict() for child in self.children],
        }


#: Shared sink for disabled tracers: instrumentation sites may annotate
#: it freely; nothing is retained.
_NULL_SPAN = Span(kind="null", name="null")


class Tracer:
    """Builds the span tree for one simulated cluster.

    The tracer wraps a :class:`MetricsRegistry`: span boundaries read the
    registry's clock and counters, and the registry calls back
    :meth:`record_time` on every labelled advance so open spans can
    attribute time by label.  Disabled tracers keep the full API but
    record nothing.
    """

    def __init__(self, metrics, enabled: bool = True):
        self.metrics = metrics
        self.enabled = enabled
        metrics.tracer = self
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._counter_marks: dict[int, dict[str, float]] = {}
        self._next_id = 1

    # ------------------------------------------------------------------
    # span lifecycle
    # ------------------------------------------------------------------

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    @property
    def current_span_id(self) -> int | None:
        return self._stack[-1].span_id if self._stack else None

    def begin(self, kind: str, name: str, **attrs) -> Span:
        if not self.enabled:
            return _NULL_SPAN
        span = Span(kind=kind, name=name, start=self.metrics.sim_time,
                    span_id=self._next_id, attrs=dict(attrs))
        self._next_id += 1
        self._counter_marks[span.span_id] = dict(self.metrics.counters)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span) -> None:
        if not self.enabled or span is _NULL_SPAN:
            return
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.kind}:{span.name} is not the innermost open span")
        self._stack.pop()
        span.end = self.metrics.sim_time
        mark = self._counter_marks.pop(span.span_id, {})
        for counter, value in self.metrics.counters.items():
            delta = value - mark.get(counter, 0.0)
            if delta:
                span.metrics[counter] = delta

    @contextmanager
    def span(self, kind: str, name: str, **attrs):
        span = self.begin(kind, name, **attrs)
        try:
            yield span
        finally:
            self.end(span)

    def leaf(self, kind: str, name: str, **attrs) -> Span:
        """Record an instantaneous child span (e.g. one task of a stage)."""
        if not self.enabled:
            return _NULL_SPAN
        now = self.metrics.sim_time
        span = Span(kind=kind, name=name, start=now, end=now,
                    span_id=self._next_id, attrs=dict(attrs))
        self._next_id += 1
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        return span

    # ------------------------------------------------------------------
    # clock attribution (called by MetricsRegistry.advance)
    # ------------------------------------------------------------------

    def record_time(self, label: str, seconds: float) -> None:
        if not self.enabled:
            return
        for span in self._stack:
            span.time_by_label[label] = (
                span.time_by_label.get(label, 0.0) + seconds)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def reset(self) -> None:
        self.roots.clear()
        self._stack.clear()
        self._counter_marks.clear()

    def to_dict(self) -> dict:
        return {"spans": [span.to_dict() for span in self.roots]}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


# ----------------------------------------------------------------------
# rendering (operates on the serialized dict form)
# ----------------------------------------------------------------------

def _find_dict(span: dict, kind: str) -> Iterator[dict]:
    if span.get("kind") == kind:
        yield span
    for child in span.get("children", ()):
        yield from _find_dict(child, kind)


def _stage_seconds(span: dict) -> float:
    return sum(seconds for label, seconds in span.get("time_by_label", {}).items()
               if label.startswith("stage:"))


def _shuffle_seconds(span: dict) -> float:
    return span.get("time_by_label", {}).get("shuffle", 0.0)


def _remote_bytes(span: dict) -> int:
    metrics = span.get("metrics", {})
    return int(metrics.get("shuffle_remote_bytes", 0)
               + metrics.get("remote_fetch_bytes", 0))


def iteration_timeline(trace: dict) -> list[dict]:
    """Flatten a trace into one row per fixpoint iteration.

    Each row carries ``clique``, ``iteration``, ``delta_total``,
    ``delta_by_view``, ``stage_seconds``, ``shuffle_seconds``,
    ``remote_bytes`` and ``seconds`` (inclusive simulated time) — the
    columns of the EXPLAIN ANALYZE table and of the JSON artifact the
    benchmark harness writes.
    """
    rows: list[dict] = []
    for fixpoint in _find_dict(trace, "fixpoint"):
        for iteration in _find_dict(fixpoint, "iteration"):
            attrs = iteration.get("attrs", {})
            rows.append({
                "clique": fixpoint.get("name", ""),
                "iteration": attrs.get("index"),
                "delta_total": attrs.get("delta_total", 0),
                "delta_by_view": attrs.get("delta_by_view", {}),
                "stage_seconds": _stage_seconds(iteration),
                "shuffle_seconds": _shuffle_seconds(iteration),
                "remote_bytes": _remote_bytes(iteration),
                "memory_peak_bytes": attrs.get("memory_peak_bytes", 0),
                "seconds": iteration.get("duration", 0.0),
            })
    return rows


def _format_table(headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows)) if rows
              else len(headers[i]) for i in range(len(headers))]
    lines = ["  ".join(h.rjust(w) for h, w in zip(headers, widths)),
             "  ".join("-" * w for w in widths)]
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return lines


def format_explain_analyze(trace: dict | None) -> str:
    """Render a trace as a per-iteration EXPLAIN ANALYZE report."""
    if not trace:
        return "EXPLAIN ANALYZE: no trace recorded"
    lines: list[str] = []
    total = trace.get("duration", 0.0)
    lines.append(f"EXPLAIN ANALYZE  [{trace.get('name', 'query')}]")
    lines.append(f"total simulated time: {total:.4f}s")

    admission = trace.get("attrs", {}).get("admission")
    if admission:
        state = "queued" if admission.get("queued") else "immediate"
        line = f"admission: {state}"
        if admission.get("wait_s"):
            line += f"  queue wait: {admission['wait_s']:.4f}s"
        if admission.get("reserved_bytes"):
            line += f"  reserved: {admission['reserved_bytes']:.0f} bytes"
        if admission.get("session"):
            line += f"  session: {admission['session']}"
        lines.append(line)

    for fixpoint in _find_dict(trace, "fixpoint"):
        attrs = fixpoint.get("attrs", {})
        iterations = list(_find_dict(fixpoint, "iteration"))
        lines.append("")
        lines.append(
            f"fixpoint [{fixpoint.get('name')}]  "
            f"iterations={attrs.get('iterations', len(iterations))}  "
            f"mode={attrs.get('mode', 'dsn')}  "
            f"time={fixpoint.get('duration', 0.0):.4f}s")
        if not iterations:
            continue
        view_names = sorted({
            view for span in iterations
            for view in span.get("attrs", {}).get("delta_by_view", {})})
        headers = (["iter"] + [f"delta({v})" for v in view_names]
                   + ["delta", "stage_s", "shuffle_s", "remote_B",
                      "mem_peak_B", "time_s"])
        table_rows: list[list[str]] = []
        for span in iterations:
            span_attrs = span.get("attrs", {})
            by_view = span_attrs.get("delta_by_view", {})
            table_rows.append(
                [str(span_attrs.get("index", "?"))]
                + [str(by_view.get(v, 0)) for v in view_names]
                + [str(span_attrs.get("delta_total", 0)),
                   f"{_stage_seconds(span):.4f}",
                   f"{_shuffle_seconds(span):.4f}",
                   str(_remote_bytes(span)),
                   str(int(span_attrs.get("memory_peak_bytes", 0))),
                   f"{span.get('duration', 0.0):.4f}"])
        lines.extend(_format_table(headers, table_rows))

    selects = list(_find_dict(trace, "select"))
    if selects:
        lines.append("")
        for span in selects:
            lines.append(
                f"select [{span.get('name')}]  "
                f"rows={span.get('attrs', {}).get('output_rows', '?')}")

    kernels = _format_kernels_section(trace)
    if kernels:
        lines.append("")
        lines.extend(kernels)

    memory = _format_memory_section(trace)
    if memory:
        lines.append("")
        lines.extend(memory)

    recovery = _format_recovery_section(trace)
    if recovery:
        lines.append("")
        lines.extend(recovery)

    supervision = _format_supervision_section(trace)
    if supervision:
        lines.append("")
        lines.extend(supervision)
    return "\n".join(lines)


def _format_supervision_section(trace: dict) -> list[str]:
    """The process-backend supervision report: only rendered when the
    run shipped tasks to (or at least spawned) real worker processes.

    Reads the root span's counter deltas plus the same
    ``fault``/``recovery`` leaves the cluster and backend record
    (reaps, respawns, quarantines, pool shrinks), so a trace loaded
    from an artifact renders identically to a live one.
    """
    metrics = trace.get("metrics", {})
    shipped = metrics.get("process_tasks_shipped", 0)
    degradations = metrics.get("process_backend_degradations", 0)
    if not (shipped or degradations):
        return []
    beats = metrics.get("process_heartbeats", 0)
    missed = metrics.get("process_heartbeats_missed", 0)
    lines = [
        "process supervision",
        f"  tasks shipped to pool workers: {shipped:.0f} "
        f"({metrics.get('process_payload_bytes', 0):.0f} payload bytes; "
        f"{metrics.get('process_tasks_driver_local', 0):.0f} stayed "
        f"driver-local)",
        f"  heartbeats: {beats:.0f} received, {missed:.0f} supervision "
        f"rounds found a silent busy worker",
    ]
    reaps = metrics.get("process_worker_reaps", 0)
    crashes = metrics.get("process_worker_crashes", 0)
    respawns = metrics.get("process_worker_respawns", 0)
    if reaps or crashes or respawns:
        lines.append(
            f"  worker deaths: {crashes:.0f} crashed, {reaps:.0f} reaped "
            f"(hung/silent); {respawns:.0f} respawned")
    messages = metrics.get("process_task_messages", 0)
    if messages:
        lines.append(
            f"  task pipe messages: {messages:.0f} "
            f"({shipped:.0f} tasks coalesced into batches)")
    install_bytes = metrics.get("process_install_bytes", 0)
    saved = metrics.get("process_payload_bytes_saved", 0)
    if install_bytes or saved:
        lines.append(
            f"  install blobs: {install_bytes:.0f} bytes shipped, "
            f"{saved:.0f} bytes saved by the worker blob cache")
    quarantined = metrics.get("process_tasks_quarantined", 0)
    if quarantined:
        lines.append(f"  poison tasks quarantined: {quarantined:.0f}")
    if degradations:
        lines.append(
            f"  degradation events: {degradations:.0f} "
            f"(pool shrinks / simulated fallbacks)")
    return lines


def _format_kernels_section(trace: dict) -> list[str]:
    """The kernel-layer report: state-cache traffic + adaptive choices.

    Reads the root span's counter deltas; only rendered when the query
    ran through the specialized kernels (``ExecutionConfig.kernels``) and
    touched the state-table cache or the adaptive join selector.
    """
    metrics = trace.get("metrics", {})
    hits = metrics.get("kernel_state_cache_hits", 0)
    misses = metrics.get("kernel_state_cache_misses", 0)
    updates = metrics.get("kernel_state_cache_updates", 0)
    bypass = metrics.get("kernel_state_cache_bypass", 0)
    choices = {name: metrics.get(f"adaptive_join_{name}", 0)
               for name in ("hash", "sort_merge", "nested_loop")}
    grouped = metrics.get("kernel_grouped_fixpoint_stages", 0)
    fused = metrics.get("kernel_fused_fixpoint_stages", 0)
    encoded = metrics.get("columnar_batches_encoded", 0)
    decoded = metrics.get("columnar_batches_decoded", 0)
    batch_rows = metrics.get("columnar_batch_rows", 0)
    routes = metrics.get("columnar_routes", 0)
    deduped = metrics.get("columnar_rows_deduped", 0)
    if not (hits or misses or updates or bypass or grouped or fused
            or encoded or decoded or routes or deduped
            or any(choices.values())):
        return []
    lines = ["kernels"]
    if encoded or decoded or routes:
        lines.append(
            f"  columnar batches: {encoded:.0f} encoded "
            f"({batch_rows:.0f} rows), {decoded:.0f} decoded, "
            f"{routes:.0f} base relations routed columnar")
    if deduped:
        lines.append(
            f"  shuffle dedup: {deduped:.0f} duplicate delta rows dropped "
            f"before shipping")
    if grouped:
        lines.append(
            f"  decomposed fixpoint: column-decomposed set kernel "
            f"({grouped:.0f} stages)")
    elif fused:
        lines.append(
            f"  decomposed fixpoint: fused dedup comprehension "
            f"({fused:.0f} stages)")
    if hits or misses or updates or bypass:
        lookups = hits + misses + updates
        rate = 100.0 * (hits + updates) / lookups if lookups else 0.0
        lines.append(
            f"  state build-table cache: {hits:.0f} hits, "
            f"{updates:.0f} incremental updates, {misses:.0f} rebuilds "
            f"({rate:.1f}% reused)")
        if bypass:
            lines.append(
                f"  gather-stage bypasses (mid-stage evolving state): "
                f"{bypass:.0f}")
    if any(choices.values()):
        picks = ", ".join(f"{name}={count:.0f}"
                          for name, count in choices.items() if count)
        lines.append(
            f"  adaptive join choices: {picks} "
            f"(overrides of the planned strategy: "
            f"{metrics.get('adaptive_join_overrides', 0):.0f})")
    return lines


def _format_memory_section(trace: dict) -> list[str]:
    """The memory-governance report: worker high-water marks + spills.

    ``memory_hwm_bytes_w<N>`` counters are running maxima (the manager
    increments them only by the excess over the previous peak), so the
    root span's delta for each *is* the query's high-water mark per
    worker.  Rendered whenever the query charged any memory.
    """
    metrics = trace.get("metrics", {})
    hwm = {key: value for key, value in metrics.items()
           if key.startswith("memory_hwm_bytes_w")}
    if not hwm:
        return []
    lines = ["memory"]
    for key in sorted(hwm, key=lambda k: int(k.rsplit("w", 1)[1])):
        worker = key.rsplit("w", 1)[1]
        lines.append(f"  worker {worker} high-water: {hwm[key]:.0f} bytes")
    spills = metrics.get("spill_events", 0)
    if spills:
        lines.append(
            f"  spills: {spills:.0f} "
            f"({metrics.get('spill_bytes', 0):.0f} bytes out, "
            f"{metrics.get('unspill_events', 0):.0f} reads / "
            f"{metrics.get('unspill_bytes', 0):.0f} bytes back, "
            f"{metrics.get('spill_seconds', 0.0):.4f}s simulated disk)")
    if metrics.get("memory_pressure_events", 0):
        lines.append(
            f"  pressure events: {metrics['memory_pressure_events']:.0f} "
            f"(soft-budget overflows: "
            f"{metrics.get('memory_budget_overflows', 0):.0f})")

    events = [(span.get("start", 0.0), span)
              for span in _find_dict(trace, "spill")]
    if events:
        shown = events[:12]
        lines.append("  events:")
        for start, span in shown:
            attrs = span.get("attrs", {})
            lines.append(
                f"    t={start:.4f}s  {attrs.get('direction', '?'):<3s} "
                f"{span.get('name', '')}  worker={attrs.get('worker', '?')}"
                f"  bytes={attrs.get('bytes', 0)}")
        if len(events) > len(shown):
            lines.append(f"    ... {len(events) - len(shown)} more")
    return lines


def _format_recovery_section(trace: dict) -> list[str]:
    """The fault-recovery report: only rendered when something failed.

    Reads the root span's counter deltas (``task_failures``,
    ``workers_lost``, ...) plus the ``fault``/``recovery``/``speculation``
    leaf spans the cluster records, so a trace loaded from a benchmark
    artifact renders identically to a live one.
    """
    metrics = trace.get("metrics", {})
    failures = metrics.get("task_failures", 0)
    lost = metrics.get("workers_lost", 0)
    speculated = metrics.get("speculative_tasks", 0)
    if not (failures or lost or speculated):
        return []
    attempts = metrics.get("task_attempts", 0)
    tasks = metrics.get("tasks", 0)
    lines = [
        "fault recovery",
        f"  task attempts: {attempts:.0f} for {tasks:.0f} tasks "
        f"({failures:.0f} failed, retried from cached state)",
    ]
    if lost:
        lines.append(
            f"  workers lost: {lost:.0f}  "
            f"(invalidated {metrics.get('cache_invalidated_partitions', 0):.0f}"
            f" cached partitions, "
            f"{metrics.get('cache_invalidated_bytes', 0):.0f} bytes re-derived)")
    if metrics.get("workers_blacklisted", 0):
        lines.append(
            f"  workers blacklisted: {metrics['workers_blacklisted']:.0f}")
    if speculated:
        lines.append(f"  speculative task copies: {speculated:.0f}")
    lines.append(
        f"  recovery overhead: {metrics.get('recovery_seconds', 0.0):.4f}s "
        "simulated (wasted attempts + backoff + detection + re-derivation)")

    events = []
    for kind in ("fault", "recovery", "speculation"):
        for span in _find_dict(trace, kind):
            events.append((span.get("start", 0.0), kind, span))
    if events:
        lines.append("  events:")
        for start, kind, span in sorted(events, key=lambda e: e[0]):
            attrs = span.get("attrs", {})
            detail = ""
            if kind == "recovery":
                detail = (f"  replayed={attrs.get('replayed_tasks', [])}"
                          f" rescheduled={attrs.get('rescheduled', 0)}")
            elif kind == "speculation":
                detail = (f"  {attrs.get('from_worker')}"
                          f"->{attrs.get('to_worker')}"
                          f" saved={attrs.get('saved_seconds', 0.0):.4f}s")
            elif "failures" in attrs:
                detail = f"  failures={attrs['failures']}"
            lines.append(
                f"    t={start:.4f}s  {kind:<11s} {span.get('name', '')}"
                f"{detail}")
    return lines
