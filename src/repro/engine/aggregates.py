"""Monotonic aggregate functions usable inside recursion (Sections 3, 6.2).

RaSQL allows ``min``, ``max``, ``sum`` and ``count`` in a recursive CTE head.
Their fixpoint semantics differ in what a *delta* means:

- ``min``/``max`` are lattice meets/joins: the state is the best value seen;
  a contribution enters the delta only when it improves the state, and the
  delta carries the improved value (Algorithm 5's ``v > R(k)`` test).
- ``sum``/``count`` accumulate: the state is a running total; every non-zero
  contribution enters the delta, and the delta carries the *increment*.
  Downstream rules that are linear in the aggregate column (the paper's
  Count-Paths, Management, MLM-Bonus, Company-Control) propagate increments
  correctly; the running total is what filters and final output observe.
  Termination requires positive contributions on an acyclic derivation
  structure, matching the "sum of positive numbers" condition of Section 3.
- ``count`` follows the paper's continuous-count reading: each derived row
  contributes its column value when numeric (Management passes literal
  ``1``s and accumulated counts) and ``1`` otherwise (Party-Attendance
  counts friend names).

``avg`` is deliberately absent: the ratio of monotonic sum and count is not
monotonic (Section 3), and the analyzer rejects it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable


@dataclass(frozen=True)
class AggregateFunction:
    """One aggregate column's fixpoint behaviour.

    ``merge(old, new) -> (state, changed, delta_value)`` folds one
    contribution into the state; ``delta_value`` is what flows to the next
    iteration when ``changed``.  ``combine`` is the map-side partial
    aggregation operator (Section 6.2's ``Partial_Aggregate``), which for
    all four aggregates is just ``merge`` without delta bookkeeping.
    """

    name: str
    merge: Callable[[object, object], tuple[object, bool, object]]
    delta_for_insert: Callable[[object], object]
    combine: Callable[[object, object], object]
    normalize: Callable[[object], object]

    def __repr__(self) -> str:
        return f"AggregateFunction({self.name})"


def _min_merge(old, new):
    if new < old:
        return new, True, new
    return old, False, old


def _max_merge(old, new):
    if new > old:
        return new, True, new
    return old, False, old


def _sum_merge(old, new):
    if new == 0:
        return old, False, 0
    return old + new, True, new


MIN = AggregateFunction(
    name="min",
    merge=_min_merge,
    delta_for_insert=lambda v: v,
    combine=min,
    normalize=lambda v: v,
)

MAX = AggregateFunction(
    name="max",
    merge=_max_merge,
    delta_for_insert=lambda v: v,
    combine=max,
    normalize=lambda v: v,
)

SUM = AggregateFunction(
    name="sum",
    merge=_sum_merge,
    delta_for_insert=lambda v: v,
    combine=lambda a, b: a + b,
    normalize=lambda v: v,
)

COUNT = AggregateFunction(
    name="count",
    merge=_sum_merge,
    delta_for_insert=lambda v: v,
    combine=lambda a, b: a + b,
    # Non-numeric contributions count as one derived fact.
    normalize=lambda v: v if isinstance(v, (int, float)) and not isinstance(v, bool) else 1,
)

BY_NAME: dict[str, AggregateFunction] = {
    "min": MIN,
    "max": MAX,
    "sum": SUM,
    "count": COUNT,
}


def get_aggregate(name: str) -> AggregateFunction:
    """Look up an aggregate usable in recursion; raise for others (avg)."""
    try:
        return BY_NAME[name.lower()]
    except KeyError:
        raise KeyError(
            f"aggregate {name!r} is not usable in recursion "
            f"(supported: {sorted(BY_NAME)})") from None


def merge_columns(state: dict, keys: Iterable, values: Iterable,
                  aggregate: AggregateFunction) -> list[tuple]:
    """Generic columnar merge for one aggregate column: fresh-delta rows.

    The reference twin of ``kernels.make_merge_columns_kernel`` for
    single-aggregate states whose function is *not* one of the canonical
    builtins (a custom clone with overridden hooks): walks the parallel
    key/value columns, dispatching through the aggregate's own
    ``merge``/``delta_for_insert``, and returns ``(key, delta_value)``
    rows exactly as ``KeyedStateRDD.merge_rows`` would.
    """
    merge = aggregate.merge
    delta_for_insert = aggregate.delta_for_insert
    fresh: list = []
    append = fresh.append
    get = state.get
    for key, value in zip(keys, values):
        current = get(key)
        if current is None:
            state[key] = (value,)
            append((key, delta_for_insert(value)))
        else:
            merged, changed, delta_value = merge(current[0], value)
            if changed:
                state[key] = (merged,)
                append((key, delta_value))
    return fresh


def partial_aggregate(pairs: Iterable[tuple[object, tuple]],
                      aggregates: tuple[AggregateFunction, ...]) -> list[tuple[object, tuple]]:
    """Map-side combine: collapse same-key contributions before the shuffle.

    This is the ``Partial_Aggregate`` of Algorithm 5 line 5 — it reduces the
    shuffled data volume; correctness is unaffected because every aggregate
    here is associative and commutative (tested property-style in
    ``tests/engine/test_aggregates.py``).
    """
    if len(aggregates) == 1:
        # Fast path: a single aggregate column (every library query) skips
        # the zip/tuple machinery — scalar state, one dict probe per pair.
        agg = aggregates[0]
        normalize = agg.normalize
        combine = agg.combine
        state: dict = {}
        get = state.get
        for key, values in pairs:
            value = normalize(values[0])
            old = get(key)
            state[key] = value if old is None else combine(old, value)
        return [(key, (value,)) for key, value in state.items()]
    state = {}
    for key, values in pairs:
        current = state.get(key)
        if current is None:
            state[key] = tuple(agg.normalize(v) for agg, v in zip(aggregates, values))
        else:
            state[key] = tuple(
                agg.combine(old, agg.normalize(new))
                for agg, old, new in zip(aggregates, current, values))
    return list(state.items())
