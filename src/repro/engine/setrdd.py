"""SetRDD — the mutable *all*-relation state of Section 6.1.

Spark RDDs are immutable, so each union/set-difference copies the whole
relation; the paper replaces the all-RDD with an append-only per-partition
hash set that supports in-place union.  We reproduce both flavours:

- :class:`SetRDD` for recursion without aggregates (REACH, TC, SG): each
  partition is a Python ``set`` of rows; ``union_in_place`` inserts the delta
  and returns only the genuinely new rows (set difference fused with union,
  as in the Reduce stage of Algorithm 4).
- :class:`KeyedStateRDD` for aggregates-in-recursion (CC, SSSP, BOM, ...):
  each partition is a dict from group key to the current aggregate value
  tuple; merging applies the monotonic aggregate logic of Algorithm 5
  (insert new keys, improve existing ones, emit the delta).

Both structures are deliberately *not* Datasets: they are long-lived mutable
state cached on workers for the whole fixpoint, exactly like the paper's
cached SetRDD partitions.

Both also carry a per-partition *version* counter, bumped whenever a
partition changes other than by pure append (restore after a fault,
wholesale replacement, an aggregate-value improvement).  Versions let the
fixpoint's kernel layer validate cached derivatives — hash-join build
tables, materialized row lists, memoized wire sizes — with an O(1) check
instead of a rebuild: a ``(version, row count)`` pair pins append-only
growth exactly, because appends change the count and everything else
changes the version.
"""

from __future__ import annotations

from typing import Iterable

from repro.engine.aggregates import AggregateFunction, merge_columns
from repro.engine.kernels import (make_merge_columns_kernel,
                                  make_merge_kernel, make_merge_rows_kernel)
from repro.engine.partitioner import HashPartitioner
from repro.engine.serialization import rows_size


class SetRDD:
    """Per-partition hash sets with fused union+difference."""

    def __init__(self, num_partitions: int, partitioner: HashPartitioner | None = None):
        self.partitions: list[set[tuple]] = [set() for _ in range(num_partitions)]
        self.partitioner = partitioner or HashPartitioner(num_partitions)
        self.versions: list[int] = [0] * num_partitions
        self._size_cache: list[tuple[tuple[int, int], int] | None] = \
            [None] * num_partitions

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def union_in_place(self, partition_index: int,
                       rows: Iterable[tuple]) -> list[tuple]:
        """Insert rows into one partition; return those that were new.

        This is lines 14–16 of Algorithm 4 collapsed into one pass: the
        returned list is the new delta partition ``D``.  Pure append: the
        partition version is untouched (the row count records the growth).
        """
        target = self.partitions[partition_index]
        fresh: list[tuple] = []
        for row in rows:
            if row not in target:
                target.add(row)
                fresh.append(row)
        return fresh

    def contains(self, partition_index: int, row: tuple) -> bool:
        return row in self.partitions[partition_index]

    def snapshot_partition(self, partition_index: int) -> set[tuple]:
        """Copy one partition's state for fault recovery.

        Taken by the cluster before a stage that mutates this partition;
        the pre-iteration copy plays the role of the cached all-relation
        "checkpoint" of Section 6.1.
        """
        return set(self.partitions[partition_index])

    def restore_partition(self, partition_index: int,
                          saved: set[tuple]) -> None:
        """Reset one partition to a previously-snapshotted state."""
        self.partitions[partition_index] = set(saved)
        self.versions[partition_index] += 1
        self._size_cache[partition_index] = None

    def replace_partition(self, partition_index: int,
                          rows: set[tuple]) -> None:
        """Install a whole new partition (immutability ablation, gather)."""
        self.partitions[partition_index] = rows
        self.versions[partition_index] += 1
        self._size_cache[partition_index] = None

    def dump_state(self) -> dict:
        """Whole-state dump for durable checkpoints (pickle-friendly)."""
        return {"kind": "set",
                "partitions": [list(p) for p in self.partitions]}

    def load_state(self, dumped: dict) -> None:
        """Restore a :meth:`dump_state` payload into this RDD.

        Goes through :meth:`restore_partition`, so versions bump and the
        kernel layer's cached derivatives invalidate — a resumed fixpoint
        rebuilds its build tables instead of trusting cold caches.
        """
        if dumped.get("kind") != "set" or \
                len(dumped["partitions"]) != self.num_partitions:
            raise ValueError("checkpoint state does not match this SetRDD")
        for index, rows in enumerate(dumped["partitions"]):
            self.restore_partition(index, set(rows))

    def num_rows(self) -> int:
        return sum(len(p) for p in self.partitions)

    def collect(self) -> list[tuple]:
        out: list[tuple] = []
        for partition in self.partitions:
            out.extend(partition)
        return out

    def partition_size_bytes(self, partition_index: int) -> int:
        """Wire-size estimate of one partition (memory accounting).

        Memoized on ``(version, row count)``: the memory manager re-charges
        every cached partition per stage, and most partitions are quiescent
        in any given iteration.
        """
        partition = self.partitions[partition_index]
        key = (self.versions[partition_index], len(partition))
        entry = self._size_cache[partition_index]
        if entry is not None and entry[0] == key:
            return entry[1]
        size = rows_size(partition)
        self._size_cache[partition_index] = (key, size)
        return size

    def size_bytes(self) -> int:
        return sum(self.partition_size_bytes(i)
                   for i in range(self.num_partitions))


class KeyedStateRDD:
    """Per-partition ``{group key: aggregate values}`` state.

    ``aggregates`` holds one :class:`AggregateFunction` per value column.
    A *row* of this state is ``key_columns + value_columns``; helpers exist
    to reassemble full rows for the final result and for joins against the
    all-relation (the cross terms of mutual recursion).

    With ``use_kernels`` (the default), single-aggregate merges run through
    the unrolled loops of :mod:`repro.engine.kernels`; the generic
    :class:`AggregateFunction` dispatch below remains the bit-exact
    reference path (``ExecutionConfig.kernels=False``) and the only path
    for multi-aggregate states.
    """

    def __init__(self, num_partitions: int,
                 aggregates: tuple[AggregateFunction, ...],
                 partitioner: HashPartitioner | None = None,
                 use_kernels: bool = True):
        self.partitions: list[dict] = [{} for _ in range(num_partitions)]
        self.aggregates = aggregates
        self.partitioner = partitioner or HashPartitioner(num_partitions)
        self.versions: list[int] = [0] * num_partitions
        self._rows_cache: list[tuple[int, list[tuple]] | None] = \
            [None] * num_partitions
        self._size_cache: list[tuple[int, int] | None] = [None] * num_partitions
        self._merge_kernel = make_merge_kernel(aggregates) if use_kernels else None
        self._merge_rows_kernel = \
            make_merge_rows_kernel(aggregates) if use_kernels else None
        self._merge_columns_kernel = \
            make_merge_columns_kernel(aggregates) if use_kernels else None

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def _touch(self, partition_index: int) -> None:
        """Invalidate cached derivatives after a state change."""
        self.versions[partition_index] += 1
        self._rows_cache[partition_index] = None
        self._size_cache[partition_index] = None

    def merge(self, partition_index: int,
              pairs: Iterable[tuple[object, tuple]]) -> list[tuple[object, tuple]]:
        """Merge ``(key, values)`` contributions; return the delta pairs.

        Implements the Reduce stage of Algorithm 5 generalized to a tuple of
        aggregate columns: a pair enters the delta when its key is new or
        when at least one aggregate value changed.  For ``min``/``max`` the
        delta carries the improved totals; for ``sum``/``count`` it carries
        the *increments*, which is what downstream linear recursion must
        propagate (see ``repro.engine.aggregates``).
        """
        kernel = self._merge_kernel
        if kernel is not None:
            delta = kernel(self.partitions[partition_index], pairs)
            if delta:
                self._touch(partition_index)
            return delta
        state = self.partitions[partition_index]
        aggregates = self.aggregates
        delta: list[tuple[object, tuple]] = []
        if len(aggregates) == 1:
            # Hot path: every library query has a single aggregate column.
            agg_merge = aggregates[0].merge
            agg_insert = aggregates[0].delta_for_insert
            for key, values in pairs:
                current = state.get(key)
                if current is None:
                    state[key] = values
                    delta.append((key, (agg_insert(values[0]),)))
                    continue
                merged, changed, delta_value = agg_merge(current[0], values[0])
                if changed:
                    state[key] = (merged,)
                    delta.append((key, (delta_value,)))
            if delta:
                self._touch(partition_index)
            return delta
        for key, values in pairs:
            current = state.get(key)
            if current is None:
                state[key] = tuple(values)
                delta.append((key, tuple(
                    agg.delta_for_insert(v) for agg, v in zip(aggregates, values))))
                continue
            changed = False
            new_state = []
            delta_values = []
            for agg, old, new in zip(aggregates, current, values):
                merged, did_change, delta_value = agg.merge(old, new)
                new_state.append(merged)
                delta_values.append(delta_value)
                changed = changed or did_change
            if changed:
                state[key] = tuple(new_state)
                delta.append((key, tuple(delta_values)))
        if delta:
            self._touch(partition_index)
        return delta

    def merge_rows(self, partition_index: int,
                   rows: Iterable[tuple]) -> list[tuple]:
        """Merge two-column ``(key, value)`` head rows; return delta rows.

        Fuses the ``rows -> pairs -> merge -> rows`` chain the fixpoint's
        two-column fast path otherwise spells out (one intermediate list on
        each side of :meth:`merge`).  Only valid for single-aggregate
        states with scalar keys — the shape of every two-column head.
        """
        kernel = self._merge_rows_kernel
        if kernel is not None:
            fresh = kernel(self.partitions[partition_index], rows)
            if fresh:
                self._touch(partition_index)
            return fresh
        delta = self.merge(partition_index,
                           [(row[0], row[1:]) for row in rows])
        return [(key, values[0]) for key, values in delta]

    def merge_rows_batch(self, partition_index: int, batch) -> list[tuple]:
        """Merge a two-column :class:`~repro.engine.columnar.ColumnBatch`.

        Columnar entry point for the same contract as :meth:`merge_rows`:
        the batch's parallel key/value columns feed the merge loop
        directly — no per-row ``row[0]``/``row[1]`` indexing, no tuple
        materialization for rows that do not improve the state.  Kernel
        for the builtin aggregates, generic single-aggregate dispatch
        otherwise, row-path fallback for shapes batches never take.
        """
        if batch.arity == 2:
            keys, values = batch.columns
            kernel = self._merge_columns_kernel
            if kernel is not None:
                fresh = kernel(self.partitions[partition_index], keys, values)
                if fresh:
                    self._touch(partition_index)
                return fresh
            if len(self.aggregates) == 1:
                fresh = merge_columns(self.partitions[partition_index],
                                      keys, values, self.aggregates[0])
                if fresh:
                    self._touch(partition_index)
                return fresh
        return self.merge_rows(partition_index, batch.to_rows())

    def snapshot_partition(self, partition_index: int) -> dict:
        """Copy one partition's state for fault recovery (see SetRDD)."""
        return dict(self.partitions[partition_index])

    def restore_partition(self, partition_index: int, saved: dict) -> None:
        """Reset one partition to a previously-snapshotted state."""
        self.partitions[partition_index] = dict(saved)
        self._touch(partition_index)

    def replace_partition(self, partition_index: int, state: dict) -> None:
        """Install a whole new partition (decomposed-plan write-back)."""
        self.partitions[partition_index] = state
        self._touch(partition_index)

    def dump_state(self) -> dict:
        """Whole-state dump for durable checkpoints (pickle-friendly).

        Dict insertion order is preserved by pickling, so a restored
        partition replays :meth:`partition_rows` in the same order as the
        original — accumulating aggregates fold identically on resume.
        """
        return {"kind": "keyed",
                "partitions": [dict(p) for p in self.partitions]}

    def load_state(self, dumped: dict) -> None:
        """Restore a :meth:`dump_state` payload (see ``SetRDD.load_state``)."""
        if dumped.get("kind") != "keyed" or \
                len(dumped["partitions"]) != self.num_partitions:
            raise ValueError("checkpoint state does not match this KeyedStateRDD")
        for index, state in enumerate(dumped["partitions"]):
            self.restore_partition(index, state)

    def num_groups(self) -> int:
        return sum(len(p) for p in self.partitions)

    def collect_rows(self) -> list[tuple]:
        """All groups as full ``key + values`` rows."""
        out: list[tuple] = []
        for i in range(self.num_partitions):
            out.extend(self.partition_rows(i))
        return out

    def partition_rows(self, partition_index: int) -> list[tuple]:
        """Full rows of one partition (used for all-relation cross joins).

        Memoized per version: joins against the all-relation re-read the
        same quiescent partitions every iteration.  Callers must treat the
        returned list as read-only.
        """
        cached = self._rows_cache[partition_index]
        version = self.versions[partition_index]
        if cached is not None and cached[0] == version:
            return cached[1]
        out = []
        for key, values in self.partitions[partition_index].items():
            key_part = key if isinstance(key, tuple) else (key,)
            out.append(key_part + tuple(values))
        self._rows_cache[partition_index] = (version, out)
        return out

    def partition_size_bytes(self, partition_index: int) -> int:
        """Wire-size estimate of one partition (memory accounting)."""
        cached = self._size_cache[partition_index]
        version = self.versions[partition_index]
        if cached is not None and cached[0] == version:
            return cached[1]
        size = rows_size(self.partition_rows(partition_index))
        self._size_cache[partition_index] = (version, size)
        return size

    def size_bytes(self) -> int:
        return sum(self.partition_size_bytes(i)
                   for i in range(self.num_partitions))
