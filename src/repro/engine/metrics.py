"""Metrics registry and the cluster cost model.

Two clocks exist side by side:

- *Wall time* is whatever the host measures; it reflects the real Python work
  the engine performs and is what ``pytest-benchmark`` reports.
- *Simulated time* (``MetricsRegistry.sim_time``) models a 16-node cluster:
  per-stage scheduling overhead, per-task launch overhead, network transfer
  time for shuffled/broadcast/remotely-fetched bytes, and — crucially —
  parallelism: within a stage, workers run their tasks concurrently, so the
  stage contributes ``max`` over workers of their busy time, not the sum.

The figures in the paper plot cluster seconds, so the benchmark harness
reports simulated time; wall time is kept as a sanity cross-check.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import NamedTuple


class ClockEvent(NamedTuple):
    """One labelled advance of the simulated clock.

    ``span_id`` is the innermost open tracing span at the time of the
    advance (``None`` when no tracer is attached or no span is open),
    which is how post-hoc analysis joins the flat event log back onto
    the span tree.  Being a NamedTuple, an event still unpacks as the
    historical ``(label, seconds)`` pair plus the extra field.
    """

    label: str
    seconds: float
    span_id: int | None = None


@dataclass(frozen=True)
class CostModel:
    """Constants of the simulated cluster.

    Defaults approximate the paper's testbed (1 Gbit network, commodity
    nodes): note 1 Gbit/s ~ 125e6 bytes/s.  Scheduling constants are in the
    range Spark exhibits for short stages; they are deliberately *not* tiny,
    because the whole point of stage combination (Section 7.1) is that
    per-stage overhead matters when iterations are short.
    """

    network_bandwidth_bytes_per_s: float = 125e6
    network_latency_s: float = 0.001
    stage_overhead_s: float = 0.020
    task_overhead_s: float = 0.002
    #: Multiplier applied to measured task CPU seconds before they enter the
    #: simulated clock.  1.0 means "this Python process is one worker core".
    cpu_scale: float = 1.0
    #: Time for the driver to notice a lost executor (heartbeat timeout,
    #: in the spirit of ``spark.network.timeout``, scaled to the sim).
    worker_loss_detect_s: float = 0.050
    #: Base of the exponential backoff charged before a task retry.
    task_retry_backoff_s: float = 0.005
    #: Local-disk throughput of the simulated spill tier.  Sequential
    #: writes of serialized rows on commodity disks; spills and unspills
    #: are charged at this rate, the way remote fetches are charged at
    #: the network rate.
    disk_bandwidth_bytes_per_s: float = 200e6
    #: Per-spill seek/setup latency of the disk tier.
    disk_latency_s: float = 0.0005

    def transfer_seconds(self, nbytes: int, parallel_streams: int = 1) -> float:
        """Time to move *nbytes* across the network over N parallel streams."""
        streams = max(1, parallel_streams)
        return self.network_latency_s + nbytes / (self.network_bandwidth_bytes_per_s * streams)

    def spill_seconds(self, nbytes: int) -> float:
        """Time to write (or read back) *nbytes* on the spill disk tier."""
        return self.disk_latency_s + nbytes / self.disk_bandwidth_bytes_per_s


class MetricsRegistry:
    """Named counters plus the simulated cluster clock.

    Counters of interest across the code base (all lazily created):

    - ``stages``, ``tasks`` — scheduler activity (Figure 5 ablations).
    - ``shuffle_records``, ``shuffle_bytes``, ``shuffle_remote_bytes``.
    - ``remote_fetches``, ``remote_fetch_bytes`` — locality misses
      (partition-aware scheduling ablation).
    - ``broadcast_bytes``, ``broadcast_bytes_compressed``.
    - ``iterations`` — fixpoint iterations executed.
    - ``task_attempts``, ``task_failures`` — every attempt vs injected
      deaths (fault-tolerance subsystem; Section 6.1's recovery claim).
    - ``workers_lost``, ``workers_blacklisted``, ``speculative_tasks``.
    - ``recovery_seconds`` — simulated time spent on wasted attempts,
      retry backoff, loss detection and cache re-derivation.
    - ``cache_invalidated_partitions``, ``cache_invalidated_bytes`` —
      cached partitions whose home worker was lost.
    - ``memory_hwm_bytes_w<N>`` — worker N's resident-memory high-water
      mark (the counter tracks the running max, so span deltas give the
      increase inside a span).
    - ``spill_events``, ``spill_bytes``, ``unspill_events``,
      ``unspill_bytes``, ``spill_seconds`` — disk-tier traffic of the
      memory governor (``repro.engine.memory``).
    - ``memory_pressure_events``, ``memory_budget_overflows`` — injected
      budget shrinks, and soft-budget enforcements that could not fit
      even after spilling everything spillable.
    - ``queries_admitted``, ``queries_queued``, ``queries_rejected`` —
      admission control (``repro.core.governor``).
    """

    def __init__(self):
        self.counters: dict[str, float] = defaultdict(float)
        self.sim_time: float = 0.0
        self._events: list[ClockEvent] = []
        #: Optional :class:`repro.engine.tracing.Tracer`; when attached,
        #: labelled advances are also attributed to its open spans.
        self.tracer = None

    def inc(self, name: str, amount: float = 1) -> None:
        self.counters[name] += amount

    def get(self, name: str) -> float:
        return self.counters.get(name, 0)

    def advance(self, seconds: float, label: str = "") -> None:
        """Advance the simulated cluster clock."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds}")
        self.sim_time += seconds
        if label:
            span_id = None
            if self.tracer is not None:
                span_id = self.tracer.current_span_id
                self.tracer.record_time(label, seconds)
            self._events.append(ClockEvent(label, seconds, span_id))

    def snapshot(self) -> dict[str, float]:
        """A plain-dict copy of all counters plus the simulated clock."""
        data = dict(self.counters)
        data["sim_time"] = self.sim_time
        return data

    def reset(self) -> None:
        self.counters.clear()
        self.sim_time = 0.0
        self._events.clear()

    def events(self) -> list[ClockEvent]:
        """Labelled clock advances, for debugging cost attribution."""
        return list(self._events)

    def scoped(self, scope: str) -> "ScopedCounters":
        """A counter view that namespaces every name under ``<scope>.``.

        The serving layer gives each client session one of these
        (``session.<name>``), so per-tenant traffic — submissions,
        completions, cache hits — lands in the same registry and the
        same snapshots as the global counters without colliding with
        them.
        """
        return ScopedCounters(self, scope)

    def __repr__(self) -> str:
        interesting = {k: v for k, v in sorted(self.counters.items())}
        return f"MetricsRegistry(sim_time={self.sim_time:.4f}, {interesting})"


class ScopedCounters:
    """A prefix-namespaced window onto a :class:`MetricsRegistry`.

    ``inc``/``get`` address ``<scope>.<name>`` in the underlying
    registry; :meth:`snapshot` returns only this scope's counters with
    the prefix stripped.  Obtained via :meth:`MetricsRegistry.scoped`.
    """

    def __init__(self, registry: MetricsRegistry, scope: str):
        self.registry = registry
        self.scope = scope
        self._prefix = scope + "."

    def inc(self, name: str, amount: float = 1) -> None:
        self.registry.inc(self._prefix + name, amount)

    def get(self, name: str) -> float:
        return self.registry.get(self._prefix + name)

    def snapshot(self) -> dict[str, float]:
        return {key[len(self._prefix):]: value
                for key, value in self.registry.counters.items()
                if key.startswith(self._prefix)}

    def __repr__(self) -> str:
        return f"ScopedCounters({self.scope!r}, {self.snapshot()})"
