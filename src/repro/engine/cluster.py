"""The simulated cluster: workers, stage execution, shuffle, broadcast.

All computation is performed for real inside this process, so results are
exact.  What is *simulated* is placement and time: partitions have home
workers, a scheduling policy assigns tasks, and a cost model converts
measured task CPU time + modelled data movement into cluster seconds on
``metrics.sim_time``.  Within a stage, workers run concurrently, so a stage
contributes ``max`` over workers of their busy time.

The key invariant that the partition-aware pieces of the paper rely on:
partition ``i`` of every co-partitioned structure lives on worker
``i % num_workers``.  Shuffles place their output this way, so when the
scheduler also pins task ``i`` there (``partition_aware`` policy), every
iteration's input is local — the inter-iteration locality of Section 6.1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.engine.dataset import Dataset, Partition
from repro.engine.metrics import CostModel, MetricsRegistry
from repro.engine.partitioner import HashPartitioner, make_key_fn
from repro.engine.scheduler import SchedulingPolicy, TaskSpec, make_policy
from repro.engine.serialization import CompressionCodec, rows_size
from repro.engine.tracing import Tracer


@dataclass
class StageTask:
    """One task of a stage: a function over the rows of its input partitions.

    ``snapshot``/``restore`` are optional hooks for tasks that mutate
    cached state (the fixpoint's merge): under failure injection the
    cluster snapshots before running and restores before a replay, which
    is the simulator's rendition of recomputing from the cached
    checkpoint (Section 6.1's fault-recovery argument).
    """

    index: int
    inputs: list[Partition]
    fn: Callable[..., object]
    preferred_worker: int | None = None
    snapshot: Callable[[], object] | None = None
    restore: Callable[[object], None] | None = None


@dataclass
class TaskResult:
    index: int
    output: object
    worker: int
    cpu_seconds: float
    remote_bytes: int


@dataclass
class Broadcast:
    """A broadcast variable: the same value visible on every worker."""

    value: object
    nbytes: int
    compressed: bool


class Cluster:
    """Execution substrate for one session.

    Parameters
    ----------
    num_workers:
        Simulated worker count (the paper uses 15 workers + 1 master).
    num_partitions:
        Default partition count for new datasets; the paper uses one
        partition per core.  Defaults to ``num_workers``.
    scheduler:
        ``"partition_aware"`` (the paper's policy) or ``"default"``
        (Spark-like hybrid).
    cost_model:
        Constants of the simulated network/scheduler; see
        :class:`repro.engine.metrics.CostModel`.
    """

    def __init__(self, num_workers: int = 4, num_partitions: int | None = None,
                 scheduler: str | SchedulingPolicy = "partition_aware",
                 cost_model: CostModel | None = None,
                 codec: CompressionCodec | None = None,
                 seed: int = 17, trace: bool = True):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self.num_partitions = num_partitions or num_workers
        if isinstance(scheduler, SchedulingPolicy):
            self.scheduler = scheduler
        else:
            self.scheduler = make_policy(scheduler, seed=seed)
        self.cost_model = cost_model or CostModel()
        self.codec = codec or CompressionCodec()
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(self.metrics, enabled=trace)
        self.failure_injectors: list = []

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------

    def inject_failures(self, injector) -> None:
        """Arm a :class:`repro.engine.faults.FailureInjector`."""
        self.failure_injectors.append(injector)

    def _failures_for(self, stage_name: str, task_index: int, point: str) -> int:
        count = 0
        for injector in self.failure_injectors:
            if injector.point == point and injector.should_fail(
                    stage_name, task_index):
                count += 1
        return count

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------

    def worker_for_partition(self, partition_index: int) -> int:
        """The canonical home of a partition id (stable across iterations)."""
        return partition_index % self.num_workers

    # ------------------------------------------------------------------
    # data ingestion
    # ------------------------------------------------------------------

    def partition_rows(self, rows: Iterable[Sequence],
                       key_indices: tuple[int, ...],
                       num_partitions: int | None = None) -> list[list[tuple]]:
        """Hash-partition rows locally (no cost accounting)."""
        n = num_partitions or self.num_partitions
        partitioner = HashPartitioner(n)
        key_fn = make_key_fn(key_indices)
        buckets: list[list[tuple]] = [[] for _ in range(n)]
        for row in rows:
            row = tuple(row)
            buckets[partitioner.partition_of(key_fn(row))].append(row)
        return buckets

    def parallelize(self, rows: Iterable[Sequence],
                    key_indices: tuple[int, ...] | None = None,
                    num_partitions: int | None = None) -> Dataset:
        """Distribute rows into a dataset without charging load time."""
        n = num_partitions or self.num_partitions
        if key_indices is None:
            materialized = [tuple(r) for r in rows]
            chunk = max(1, -(-len(materialized) // n))
            parts = [
                Partition(i, materialized[i * chunk:(i + 1) * chunk],
                          self.worker_for_partition(i))
                for i in range(n)
            ]
            return Dataset(parts)
        buckets = self.partition_rows(rows, key_indices, n)
        parts = [Partition(i, bucket, self.worker_for_partition(i))
                 for i, bucket in enumerate(buckets)]
        return Dataset(parts, HashPartitioner(n), key_indices)

    def load(self, rows: Iterable[Sequence],
             key_indices: tuple[int, ...] | None = None,
             num_partitions: int | None = None) -> Dataset:
        """Distribute rows *and* charge data-loading time.

        The paper's Figure 8/9 totals start "from the data loading"; this
        models a parallel HDFS scan followed by the initial hash exchange.
        """
        t0 = time.perf_counter()
        dataset = self.parallelize(rows, key_indices, num_partitions)
        cpu = time.perf_counter() - t0
        nbytes = dataset.size_bytes()
        load_time = self.cost_model.transfer_seconds(nbytes, self.num_workers)
        self.metrics.advance(load_time + cpu * self.cost_model.cpu_scale
                             / self.num_workers, label="load")
        self.metrics.inc("load_bytes", nbytes)
        return dataset

    # ------------------------------------------------------------------
    # stage execution
    # ------------------------------------------------------------------

    def run_stage(self, name: str, tasks: list[StageTask]) -> list[TaskResult]:
        """Execute one stage: schedule tasks, run them, advance the clock.

        Each task's function is called with one ``list[tuple]`` argument per
        input partition.  Remote fetches (input partition cached on a
        different worker than the task ran on) are counted and charged.
        """
        specs = []
        for task in tasks:
            preferred = task.preferred_worker
            if preferred is None and task.inputs:
                preferred = task.inputs[0].worker
            specs.append(TaskSpec(task.index, preferred))
        assignments = self.scheduler.assign(specs, self.num_workers)

        stage_span = self.tracer.begin("stage", name, tasks=len(tasks))
        try:
            return self._run_stage_body(name, tasks, assignments, stage_span)
        finally:
            self.tracer.end(stage_span)

    def _run_stage_body(self, name: str, tasks: list[StageTask],
                        assignments: list[int], stage_span) -> list[TaskResult]:
        worker_busy = [0.0] * self.num_workers
        injecting = bool(self.failure_injectors)
        results: list[TaskResult] = []
        for task, worker in zip(tasks, assignments):
            remote_bytes = 0
            remote_count = 0
            for partition in task.inputs:
                if partition.worker != worker:
                    remote_bytes += partition.size_bytes()
                    remote_count += 1

            fetch_time = 0.0
            if remote_count:
                fetch_time = (self.cost_model.network_latency_s * remote_count
                              + remote_bytes / self.cost_model.network_bandwidth_bytes_per_s)
                self.metrics.inc("remote_fetches", remote_count)
                self.metrics.inc("remote_fetch_bytes", remote_bytes)

            task_time = 0.0
            # Executor lost before the task ran: the attempt still paid
            # scheduling and any input fetch.
            for _ in range(self._failures_for(name, task.index, "before")
                           if injecting else 0):
                self.metrics.inc("task_failures")
                task_time += self.cost_model.task_overhead_s + fetch_time

            saved = None
            if injecting and task.snapshot is not None:
                saved = task.snapshot()

            t0 = time.perf_counter()
            output = task.fn(*[p.rows for p in task.inputs])
            cpu = (time.perf_counter() - t0) * self.cost_model.cpu_scale

            # Executor lost after computing but before committing: the
            # whole attempt is wasted; replay from the cached state.
            for _ in range(self._failures_for(name, task.index, "after")
                           if injecting else 0):
                self.metrics.inc("task_failures")
                task_time += (cpu + self.cost_model.task_overhead_s
                              + fetch_time)
                if task.restore is not None:
                    task.restore(saved)
                t0 = time.perf_counter()
                output = task.fn(*[p.rows for p in task.inputs])
                cpu = (time.perf_counter() - t0) * self.cost_model.cpu_scale

            task_time += cpu + self.cost_model.task_overhead_s + fetch_time
            worker_busy[worker] += task_time
            results.append(TaskResult(task.index, output, worker, cpu, remote_bytes))
            self.tracer.leaf("task", f"{name}[{task.index}]",
                             index=task.index, worker=worker,
                             cpu_seconds=cpu, remote_bytes=remote_bytes,
                             busy_seconds=task_time)

        stage_time = self.cost_model.stage_overhead_s + max(worker_busy, default=0.0)
        self.metrics.advance(stage_time, label=f"stage:{name}")
        self.metrics.inc("stages")
        self.metrics.inc("tasks", len(tasks))
        self.metrics.inc("task_cpu_seconds",
                         sum(r.cpu_seconds for r in results))
        stage_span.annotate(stage_seconds=stage_time)
        return results

    # ------------------------------------------------------------------
    # shuffle exchange
    # ------------------------------------------------------------------

    def exchange(self, map_outputs: list[tuple[int, dict[int, list[tuple]]]],
                 num_partitions: int,
                 partitioner: HashPartitioner,
                 key_indices: tuple[int, ...] | None = None) -> Dataset:
        """The ShuffleExchange of Algorithm 4, line 22.

        ``map_outputs`` is a list of ``(source_worker, buckets)`` pairs where
        ``buckets`` maps target partition id to rows.  Output partition ``i``
        is placed on its canonical worker; bytes whose source worker differs
        from the target worker are charged as network transfer (streams run
        in parallel across workers).
        """
        gathered: list[list[tuple]] = [[] for _ in range(num_partitions)]
        remote_bytes = 0
        total_bytes = 0
        total_records = 0
        for source_worker, buckets in map_outputs:
            for pid, rows in buckets.items():
                if not rows:
                    continue
                gathered[pid].extend(rows)
                nbytes = rows_size(rows)
                total_bytes += nbytes
                total_records += len(rows)
                if self.worker_for_partition(pid) != source_worker:
                    remote_bytes += nbytes

        with self.tracer.span("exchange", "shuffle") as span:
            self.metrics.inc("shuffle_records", total_records)
            self.metrics.inc("shuffle_bytes", total_bytes)
            self.metrics.inc("shuffle_remote_bytes", remote_bytes)
            if remote_bytes:
                self.metrics.advance(
                    self.cost_model.transfer_seconds(remote_bytes, self.num_workers),
                    label="shuffle")
            span.annotate(records=total_records, bytes=total_bytes,
                          remote_bytes=remote_bytes)

        parts = [Partition(i, rows, self.worker_for_partition(i))
                 for i, rows in enumerate(gathered)]
        return Dataset(parts, partitioner, key_indices)

    # ------------------------------------------------------------------
    # broadcast
    # ------------------------------------------------------------------

    def broadcast(self, value: object, nbytes: int | None = None,
                  compress: bool = False,
                  ship_hash_table: bool = False) -> Broadcast:
        """Ship a value to every worker (Section 7.2).

        ``ship_hash_table=True`` models Spark's default broadcast-hash join,
        which serializes the *built hash table* (2–3x larger than the rows);
        the paper's optimization instead broadcasts the compressed rows and
        rebuilds the table on each worker.
        """
        from repro.engine.serialization import HASH_TABLE_BLOWUP

        if nbytes is None:
            if isinstance(value, list):
                nbytes = rows_size(value)
            else:
                raise ValueError("nbytes required for non-row-list broadcasts")
        with self.tracer.span("broadcast", "broadcast") as span:
            wire_bytes = nbytes
            extra_cpu = 0.0
            if ship_hash_table:
                wire_bytes = int(wire_bytes * HASH_TABLE_BLOWUP)
            if compress:
                extra_cpu += self.codec.cpu_seconds(wire_bytes)
                wire_bytes = self.codec.compressed_size(wire_bytes)
                self.metrics.inc("broadcast_bytes_compressed", wire_bytes)
            self.metrics.inc("broadcast_bytes", wire_bytes)

            receivers = max(1, self.num_workers - 1)
            # Tree/torrent-style broadcast: cost grows with log of receivers,
            # bounded below by pushing one full copy over the sender's link.
            copies = max(1, receivers.bit_length())
            transfer = self.cost_model.transfer_seconds(wire_bytes * copies, 1)
            self.metrics.advance(transfer + extra_cpu, label="broadcast")
            span.annotate(raw_bytes=nbytes, wire_bytes=wire_bytes,
                          compressed=compress)
        return Broadcast(value, wire_bytes, compress)
