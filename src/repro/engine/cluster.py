"""The simulated cluster: workers, stage execution, shuffle, broadcast.

All computation is performed for real inside this process, so results are
exact.  What is *simulated* is placement and time: partitions have home
workers, a scheduling policy assigns tasks, and a cost model converts
measured task CPU time + modelled data movement into cluster seconds on
``metrics.sim_time``.  Within a stage, workers run concurrently, so a stage
contributes ``max`` over workers of their busy time.

The key invariant that the partition-aware pieces of the paper rely on:
partition ``i`` of every co-partitioned structure lives on worker
``i % num_workers``.  Shuffles place their output this way, so when the
scheduler also pins task ``i`` there (``partition_aware`` policy), every
iteration's input is local — the inter-iteration locality of Section 6.1.

Fault tolerance (Section 6.1's recovery argument) lives here too:

- *Task deaths* (:class:`repro.engine.faults.FailureInjector`) are retried
  within a per-task budget, with exponential backoff charged to the cost
  model; tasks that mutate cached state restore their pre-stage snapshot
  first, which is the simulator's rendition of recomputing from the cached
  all-relation "checkpoint".
- *Worker loss* (:class:`repro.engine.faults.WorkerLossInjector` or
  :meth:`Cluster.lose_worker`) invalidates every cached partition homed on
  the lost worker, replays the current stage's committed tasks that ran
  there (their outputs died with the executor), and reschedules pending
  tasks to surviving workers.  When a worker's partitions are re-homed,
  ``worker_for_partition`` remaps them deterministically so later
  iterations keep their locality.
- Workers accumulating failures are *blacklisted*
  (:class:`repro.engine.faults.RecoveryManager`) and avoided by the
  scheduler; optional *speculation* re-launches a copy of the slowest
  task and lets the first committer win (simulated time only — results
  never change).

Resource governance lives here too: every cached partition, shuffle
buffer, and broadcast is charged against a per-worker budget
(:class:`repro.engine.memory.MemoryManager`), with least-recently-touched
segments spilling to a simulated disk tier under pressure; query
deadlines are checked cooperatively at stage boundaries
(:meth:`Cluster.check_deadline`); and
:class:`repro.engine.faults.MemoryPressureInjector` shrinks budgets
mid-run for chaos testing.
"""

from __future__ import annotations

import random
import time
from collections import defaultdict
from dataclasses import dataclass
from statistics import median
from typing import Callable, Iterable, Sequence

from repro.engine.backend import ClusterBackend, ProcessConfig, SimulatedBackend
from repro.engine.dataset import Dataset, Partition
from repro.engine.faults import (
    CorruptionInjector,
    DriverKillInjector,
    FailureInjector,
    FaultToleranceConfig,
    MemoryPressureInjector,
    ProcessKillInjector,
    RecoveryManager,
    WorkerLossInjector,
)
from repro.engine.memory import MemoryConfig, MemoryManager
from repro.engine.metrics import CostModel, MetricsRegistry
from repro.engine.partitioner import HashPartitioner, make_key_fn
from repro.engine.scheduler import (
    SchedulingPolicy,
    TaskSpec,
    fallback_worker,
    make_policy,
)
from repro.engine.serialization import CompressionCodec, rows_checksum, rows_size
from repro.engine.tracing import Tracer
from repro.errors import (
    DriverCrashError,
    FaultInjectionError,
    NoHealthyWorkersError,
    QueryDeadlineExceededError,
)


@dataclass
class StageTask:
    """One task of a stage: a function over the rows of its input partitions.

    ``snapshot``/``restore`` are optional hooks for tasks that mutate
    cached state (the fixpoint's merge): under failure injection the
    cluster snapshots before running and restores before a replay, which
    is the simulator's rendition of recomputing from the cached
    checkpoint (Section 6.1's fault-recovery argument).  ``mutating``
    declares that the task's function has such side effects: an
    after-commit failure (or a worker-loss replay) of a mutating task
    without both hooks raises :class:`repro.errors.FaultInjectionError`
    instead of replaying against half-applied state.
    """

    index: int
    inputs: list[Partition]
    fn: Callable[..., object]
    preferred_worker: int | None = None
    snapshot: Callable[[], object] | None = None
    restore: Callable[[object], None] | None = None
    mutating: bool = False
    #: Picklable description of the task for the process backend; when
    #: every task of a stage carries one and the pool is up, the batch
    #: runs on real worker processes instead of calling ``fn``.
    payload: object | None = None


@dataclass
class TaskResult:
    index: int
    output: object
    worker: int
    cpu_seconds: float
    remote_bytes: int


@dataclass
class Broadcast:
    """A broadcast variable: the same value visible on every worker."""

    value: object
    nbytes: int
    compressed: bool
    #: Memory-charge group of the per-worker copies (see
    #: :class:`repro.engine.memory.MemoryManager.release_group`).
    memory_group: str | None = None


class Cluster:
    """Execution substrate for one session.

    Parameters
    ----------
    num_workers:
        Simulated worker count (the paper uses 15 workers + 1 master).
    num_partitions:
        Default partition count for new datasets; the paper uses one
        partition per core.  Defaults to ``num_workers``.
    scheduler:
        ``"partition_aware"`` (the paper's policy) or ``"default"``
        (Spark-like hybrid).
    cost_model:
        Constants of the simulated network/scheduler; see
        :class:`repro.engine.metrics.CostModel`.
    fault_config:
        Recovery policy — retry budget, blacklisting, speculation; see
        :class:`repro.engine.faults.FaultToleranceConfig`.
    """

    def __init__(self, num_workers: int = 4, num_partitions: int | None = None,
                 scheduler: str | SchedulingPolicy = "partition_aware",
                 cost_model: CostModel | None = None,
                 codec: CompressionCodec | None = None,
                 seed: int = 17, trace: bool = True,
                 fault_config: FaultToleranceConfig | None = None,
                 memory_config: MemoryConfig | None = None,
                 backend: str | ClusterBackend = "simulated",
                 process_config: ProcessConfig | None = None):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if num_partitions is not None and num_partitions < 1:
            raise ValueError(
                f"num_partitions must be >= 1 (or None for one per "
                f"worker), got {num_partitions!r}")
        self.num_workers = num_workers
        self.num_partitions = num_partitions or num_workers
        if isinstance(scheduler, SchedulingPolicy):
            self.scheduler = scheduler
        else:
            self.scheduler = make_policy(scheduler, seed=seed)
        self.cost_model = cost_model or CostModel()
        self.codec = codec or CompressionCodec()
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(self.metrics, enabled=trace)
        self.fault_config = fault_config or FaultToleranceConfig()
        # The recovery manager's jitter source is seeded from the cluster
        # seed (never wall-clock entropy): same seed, same fault schedule
        # -> bit-identical backoff charges on replay.
        self.recovery = RecoveryManager(
            self.fault_config, rng=random.Random((seed * 2654435761 + 41) % 2**32))
        self.memory = MemoryManager(num_workers,
                                    memory_config or MemoryConfig(),
                                    self.metrics, self.cost_model,
                                    self.tracer)
        #: Absolute simulated-clock deadline of the running query
        #: (``None`` = no deadline); set by ``RaSQLContext.sql``.
        self.deadline: float | None = None
        self.lost_workers: set[int] = set()
        self.failure_injectors: list[FailureInjector] = []
        self.worker_loss_injectors: list[WorkerLossInjector] = []
        self.memory_pressure_injectors: list[MemoryPressureInjector] = []
        self.corruption_injectors: list[CorruptionInjector] = []
        self.driver_kill_injectors: list[DriverKillInjector] = []
        #: Real-signal chaos for the process backend; deliberately NOT
        #: part of ``_injecting`` — these strike OS processes, not the
        #: simulated attempt loop, and must not disable remote batches.
        self.process_kill_injectors: list[ProcessKillInjector] = []
        if isinstance(backend, ClusterBackend):
            self.backend = backend
        elif backend == "process":
            # Imported lazily: backend.process pulls in worker/payload
            # modules that import back into the engine.
            from repro.engine.backend.process import ProcessClusterBackend
            self.backend = ProcessClusterBackend(self, process_config)
        elif backend == "simulated":
            self.backend = SimulatedBackend()
        else:
            raise ValueError(
                f"unknown backend {backend!r}: expected 'simulated', "
                f"'process', or a ClusterBackend instance")
        # Monotonic ids naming shuffle/broadcast memory-charge groups, so
        # consumers can release a whole exchange or broadcast at once.
        self._exchange_epoch = 0
        self._broadcast_epoch = 0

    # ------------------------------------------------------------------
    # fault injection and worker liveness
    # ------------------------------------------------------------------

    def inject_failures(self, injector) -> None:
        """Arm a :class:`FailureInjector`, :class:`WorkerLossInjector`,
        :class:`MemoryPressureInjector`, :class:`CorruptionInjector`,
        :class:`DriverKillInjector`, or :class:`ProcessKillInjector`."""
        if isinstance(injector, ProcessKillInjector):
            self.process_kill_injectors.append(injector)
        elif isinstance(injector, WorkerLossInjector):
            self.worker_loss_injectors.append(injector)
        elif isinstance(injector, MemoryPressureInjector):
            self.memory_pressure_injectors.append(injector)
        elif isinstance(injector, CorruptionInjector):
            self.corruption_injectors.append(injector)
        elif isinstance(injector, DriverKillInjector):
            self.driver_kill_injectors.append(injector)
        else:
            self.failure_injectors.append(injector)

    @property
    def _injecting(self) -> bool:
        return bool(self.failure_injectors or self.worker_loss_injectors)

    def live_workers(self) -> list[int]:
        """Workers still alive, in canonical order."""
        return [w for w in range(self.num_workers)
                if w not in self.lost_workers]

    def healthy_workers(self) -> list[int]:
        """Schedulable workers: live and not blacklisted.

        When every live worker is blacklisted the blacklist is ignored
        (Spark likewise refuses to starve a stage), so the pool is never
        empty while any worker survives.
        """
        live = self.live_workers()
        healthy = [w for w in live if w not in self.recovery.blacklisted]
        return healthy or live

    def lose_worker(self, worker: int, stage_name: str = "") -> None:
        """Kill a worker: liveness bookkeeping + detection latency.

        Cached-partition invalidation and current-stage replay happen in
        :meth:`_fire_worker_loss` when the loss strikes mid-stage; a loss
        between stages only needs the home remapping that
        :meth:`worker_for_partition` performs lazily.
        """
        if worker in self.lost_workers or not 0 <= worker < self.num_workers:
            return
        if len(self.live_workers()) <= 1:
            raise NoHealthyWorkersError(
                f"cannot lose worker {worker}: it is the last live worker")
        self.lost_workers.add(worker)
        detect = self.cost_model.worker_loss_detect_s
        self.metrics.inc("workers_lost")
        self.metrics.advance(detect, label="recovery")
        self.metrics.inc("recovery_seconds", detect)
        self.tracer.leaf("fault", f"worker-lost[{worker}]",
                         worker=worker, stage=stage_name)

    # ------------------------------------------------------------------
    # deadlines
    # ------------------------------------------------------------------

    def check_deadline(self, where: str = "") -> None:
        """Abort cooperatively once the simulated clock passes the deadline.

        Called at stage boundaries (Spark cancels jobs between tasks,
        not inside them): the stage that crossed the line completes and
        is fully accounted, then the query raises
        :class:`repro.errors.QueryDeadlineExceededError`.
        """
        if self.deadline is None or self.metrics.sim_time <= self.deadline:
            return
        self.metrics.inc("deadline_aborts")
        at = f" at stage {where!r}" if where else ""
        raise QueryDeadlineExceededError(
            f"query exceeded its deadline{at}: simulated time "
            f"{self.metrics.sim_time:.4f}s is past the "
            f"{self.deadline:.4f}s deadline — raise deadline_seconds "
            f"(CLI --timeout) or reduce the workload",
            deadline_seconds=self.deadline,
            sim_time=self.metrics.sim_time, stage=where)

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------

    def worker_for_partition(self, partition_index: int) -> int:
        """The home of a partition id (stable while its worker lives).

        After a worker loss the orphaned homes remap deterministically
        onto the surviving workers, so re-cached partitions and the
        partition-aware scheduler keep agreeing on placement.
        """
        home = partition_index % self.num_workers
        if home in self.lost_workers:
            live = self.live_workers()
            return live[partition_index % len(live)]
        return home

    # ------------------------------------------------------------------
    # data ingestion
    # ------------------------------------------------------------------

    def partition_rows(self, rows: Iterable[Sequence],
                       key_indices: tuple[int, ...],
                       num_partitions: int | None = None) -> list[list[tuple]]:
        """Hash-partition rows locally (no cost accounting)."""
        n = num_partitions or self.num_partitions
        partitioner = HashPartitioner(n)
        key_fn = make_key_fn(key_indices)
        buckets: list[list[tuple]] = [[] for _ in range(n)]
        for row in rows:
            row = tuple(row)
            buckets[partitioner.partition_of(key_fn(row))].append(row)
        return buckets

    def parallelize(self, rows: Iterable[Sequence],
                    key_indices: tuple[int, ...] | None = None,
                    num_partitions: int | None = None) -> Dataset:
        """Distribute rows into a dataset without charging load time."""
        n = num_partitions or self.num_partitions
        if key_indices is None:
            materialized = [tuple(r) for r in rows]
            chunk = max(1, -(-len(materialized) // n))
            parts = [
                Partition(i, materialized[i * chunk:(i + 1) * chunk],
                          self.worker_for_partition(i))
                for i in range(n)
            ]
            return Dataset(parts)
        buckets = self.partition_rows(rows, key_indices, n)
        parts = [Partition(i, bucket, self.worker_for_partition(i))
                 for i, bucket in enumerate(buckets)]
        return Dataset(parts, HashPartitioner(n), key_indices)

    def load(self, rows: Iterable[Sequence],
             key_indices: tuple[int, ...] | None = None,
             num_partitions: int | None = None) -> Dataset:
        """Distribute rows *and* charge data-loading time.

        The paper's Figure 8/9 totals start "from the data loading"; this
        models a parallel HDFS scan followed by the initial hash exchange.
        """
        t0 = time.perf_counter()
        dataset = self.parallelize(rows, key_indices, num_partitions)
        cpu = time.perf_counter() - t0
        nbytes = dataset.size_bytes()
        load_time = self.cost_model.transfer_seconds(nbytes, self.num_workers)
        self.metrics.advance(load_time + cpu * self.cost_model.cpu_scale
                             / self.num_workers, label="load")
        self.metrics.inc("load_bytes", nbytes)
        return dataset

    # ------------------------------------------------------------------
    # stage execution
    # ------------------------------------------------------------------

    def run_stage(self, name: str, tasks: list[StageTask]) -> list[TaskResult]:
        """Execute one stage: schedule tasks, run them, advance the clock.

        Each task's function is called with one ``list[tuple]`` argument per
        input partition.  Remote fetches (input partition cached on a
        different worker than the task ran on) are counted and charged.
        """
        self.check_deadline(name)
        for injector in self.driver_kill_injectors:
            if injector.matches(name):
                injector.fire()
                self.metrics.inc("driver_kills")
                raise DriverCrashError(
                    f"injected driver crash before stage {name!r} "
                    f"(simulated time {self.metrics.sim_time:.4f}s)")
        for injector in self.memory_pressure_injectors:
            if injector.matches(name):
                injector.fire()
                self.memory.apply_pressure(injector.fraction, stage=name)
        specs = []
        for task in tasks:
            preferred = task.preferred_worker
            if preferred is None and task.inputs:
                preferred = task.inputs[0].worker
            specs.append(TaskSpec(task.index, preferred))
        assignments = self.scheduler.assign(specs, self.num_workers,
                                            healthy=self.healthy_workers())

        stage_span = self.tracer.begin("stage", name, tasks=len(tasks))
        try:
            if self.backend.wants_batch(tasks):
                raw = self.backend.run_batch(name, tasks, assignments)
                return self._finish_batch(name, tasks, raw, stage_span)
            return self._run_stage_body(name, tasks, assignments, stage_span)
        finally:
            self.tracer.end(stage_span)

    def _finish_batch(self, name: str, tasks: list[StageTask],
                      raw: list[tuple], stage_span) -> list[TaskResult]:
        """Account a backend-executed batch exactly like a local stage.

        ``raw`` is ``[(output, worker, cpu_seconds), ...]`` in task
        order.  The simulated clock keeps its meaning under the process
        backend: measured *worker* CPU seconds feed the same cost model,
        so sim_time stays comparable across backends even though the
        wall-clock concurrency is now real.
        """
        worker_busy = [0.0] * self.num_workers
        results: list[TaskResult] = []
        for task, (output, worker, cpu) in zip(tasks, raw):
            cpu_s = cpu * self.cost_model.cpu_scale
            fetch_time, remote_bytes, remote_count = self._fetch_cost(task, worker)
            if remote_count:
                self.metrics.inc("remote_fetches", remote_count)
                self.metrics.inc("remote_fetch_bytes", remote_bytes)
            self.metrics.inc("task_attempts")
            busy = cpu_s + self.cost_model.task_overhead_s + fetch_time
            worker_busy[worker] += busy
            results.append(TaskResult(task.index, output, worker, cpu_s,
                                      remote_bytes))
            self.tracer.leaf("task", f"{name}[{task.index}]",
                             index=task.index, worker=worker,
                             cpu_seconds=cpu_s, remote_bytes=remote_bytes,
                             busy_seconds=busy)
        stage_time = self.cost_model.stage_overhead_s + max(worker_busy, default=0.0)
        self.metrics.advance(stage_time, label=f"stage:{name}")
        self.metrics.inc("stages")
        self.metrics.inc("tasks", len(tasks))
        self.metrics.inc("task_cpu_seconds",
                         sum(r.cpu_seconds for r in results))
        stage_span.annotate(stage_seconds=stage_time)
        self.check_deadline(name)
        return results

    def shutdown(self) -> None:
        """Tear down backend resources (the process pool, if any)."""
        self.backend.shutdown()

    def _run_stage_body(self, name: str, tasks: list[StageTask],
                        assignments: list[int], stage_span) -> list[TaskResult]:
        worker_busy = [0.0] * self.num_workers
        injecting = self._injecting
        results: list[TaskResult] = []
        task_busy: list[float] = []

        # Pre-stage snapshots are the last cached all-relation state: the
        # Section 6.1 "checkpoint" every recovery path replays from.
        snapshots: dict[int, object] = {}
        loss_at: dict[int, list[WorkerLossInjector]] = defaultdict(list)
        if injecting:
            for pos, task in enumerate(tasks):
                if task.snapshot is not None:
                    snapshots[pos] = task.snapshot()
            if tasks:
                for injector in self.worker_loss_injectors:
                    if injector.matches(name):
                        strike = min(max(injector.at_task, 0), len(tasks) - 1)
                        loss_at[strike].append(injector)

        for pos, task in enumerate(tasks):
            for injector in loss_at.get(pos, ()):
                self._fire_worker_loss(injector, name, pos, tasks,
                                       assignments, results, snapshots,
                                       worker_busy)
            result, busy = self._run_task_attempts(
                name, task, pos, assignments[pos], snapshots.get(pos),
                injecting, worker_busy)
            results.append(result)
            task_busy.append(busy)
            self.tracer.leaf("task", f"{name}[{task.index}]",
                             index=task.index, worker=result.worker,
                             cpu_seconds=result.cpu_seconds,
                             remote_bytes=result.remote_bytes,
                             busy_seconds=busy)

        if self.fault_config.speculation:
            self._speculate(name, tasks, results, task_busy, worker_busy)

        stage_time = self.cost_model.stage_overhead_s + max(worker_busy, default=0.0)
        self.metrics.advance(stage_time, label=f"stage:{name}")
        self.metrics.inc("stages")
        self.metrics.inc("tasks", len(tasks))
        self.metrics.inc("task_cpu_seconds",
                         sum(r.cpu_seconds for r in results))
        stage_span.annotate(stage_seconds=stage_time)
        self.check_deadline(name)
        return results

    def _fetch_cost(self, task: StageTask,
                    worker: int) -> tuple[float, int, int]:
        """Remote-input fetch time/bytes/count for a task on a worker."""
        remote_bytes = 0
        remote_count = 0
        for partition in task.inputs:
            if partition.worker != worker:
                remote_bytes += partition.size_bytes()
                remote_count += 1
        fetch_time = 0.0
        if remote_count:
            fetch_time = (self.cost_model.network_latency_s * remote_count
                          + remote_bytes / self.cost_model.network_bandwidth_bytes_per_s)
        return fetch_time, remote_bytes, remote_count

    def _attempt_fails(self, stage_name: str, task: StageTask, point: str,
                       fired: set[int]) -> bool:
        """Consult injectors for one attempt; transient ones fire once."""
        for injector in self.failure_injectors:
            if injector.point != point:
                continue
            if not injector.persistent and id(injector) in fired:
                continue
            if injector.should_fail(stage_name, task.index):
                if not injector.persistent:
                    fired.add(id(injector))
                return True
        return False

    @staticmethod
    def _guard_replayable(task: StageTask, stage_name: str) -> None:
        """Refuse to replay a state-mutating task without both hooks."""
        if task.mutating and (task.restore is None or task.snapshot is None):
            raise FaultInjectionError(
                f"task {task.index} of stage {stage_name!r} mutates cached "
                "state but has no snapshot/restore hooks; replaying it "
                "would run against half-applied state — refusing the "
                "injected failure instead of corrupting the result")

    def _record_task_failure(self, name: str, task: StageTask, worker: int,
                             failures: int) -> int:
        """Blacklist bookkeeping after a failed attempt; returns the
        (possibly reassigned) worker for the retry."""
        self.recovery.check_retry_budget(name, task.index, failures)
        if self.recovery.record_failure(worker):
            self.metrics.inc("workers_blacklisted")
            self.tracer.leaf("fault", f"blacklist[{worker}]",
                             worker=worker, stage=name,
                             failures=self.recovery.failures_by_worker[worker])
        healthy = self.healthy_workers()
        if worker not in healthy:
            preferred = (task.preferred_worker
                         if task.preferred_worker is not None else worker)
            worker = fallback_worker(preferred, healthy)
        return worker

    def _run_task_attempts(self, name: str, task: StageTask, pos: int,
                           worker: int, saved: object, injecting: bool,
                           worker_busy: list[float]) -> tuple[TaskResult, float]:
        """Run one task to commit, retrying injected failures.

        Wasted attempts (scheduling, fetch, discarded CPU, backoff) are
        charged to the worker that ran them *and* accumulated into the
        ``recovery_seconds`` counter so EXPLAIN ANALYZE can report the
        overhead of recovery separately.
        """
        fetch_time, remote_bytes, remote_count = self._fetch_cost(task, worker)
        if remote_count:
            self.metrics.inc("remote_fetches", remote_count)
            self.metrics.inc("remote_fetch_bytes", remote_bytes)

        failures = 0
        fired: set[int] = set()
        backoff_base = self.cost_model.task_retry_backoff_s
        while True:
            self.metrics.inc("task_attempts")

            # Executor lost before the task ran: the attempt still paid
            # scheduling and any input fetch.
            if injecting and self._attempt_fails(name, task, "before", fired):
                failures += 1
                waste = (self.cost_model.task_overhead_s + fetch_time
                         + self.recovery.backoff_seconds(backoff_base, failures))
                worker_busy[worker] += waste
                self.metrics.inc("task_failures")
                self.metrics.inc("recovery_seconds", waste)
                worker = self._record_task_failure(name, task, worker, failures)
                fetch_time, _, _ = self._fetch_cost(task, worker)
                continue

            t0 = time.perf_counter()
            output = task.fn(*[p.rows for p in task.inputs])
            cpu = (time.perf_counter() - t0) * self.cost_model.cpu_scale

            # Executor lost after computing but before committing: the
            # whole attempt is wasted; replay from the cached state.
            if injecting and self._attempt_fails(name, task, "after", fired):
                self._guard_replayable(task, name)
                failures += 1
                waste = (cpu + self.cost_model.task_overhead_s + fetch_time
                         + self.recovery.backoff_seconds(backoff_base, failures))
                worker_busy[worker] += waste
                self.metrics.inc("task_failures")
                self.metrics.inc("recovery_seconds", waste)
                if task.restore is not None:
                    task.restore(saved)
                worker = self._record_task_failure(name, task, worker, failures)
                fetch_time, _, _ = self._fetch_cost(task, worker)
                continue

            busy = cpu + self.cost_model.task_overhead_s + fetch_time
            worker_busy[worker] += busy
            return (TaskResult(task.index, output, worker, cpu, remote_bytes),
                    busy)

    def _fire_worker_loss(self, injector: WorkerLossInjector, name: str,
                          pos: int, tasks: list[StageTask],
                          assignments: list[int],
                          results: list[TaskResult],
                          snapshots: dict[int, object],
                          worker_busy: list[float]) -> None:
        """One worker dies mid-stage: invalidate, replay, reschedule.

        The Section 6.1 recovery path end to end: the lost worker's cached
        partitions are re-derived onto their new homes (charged as network
        transfer from the surviving copies/lineage), committed tasks whose
        outputs lived on the dead executor are replayed from the pre-stage
        snapshot, and this stage's pending tasks move to healthy workers.
        """
        live = self.live_workers()
        victim = injector.worker if injector.worker is not None else live[-1]
        if victim not in live or len(live) <= 1:
            return  # already dead, unknown, or the last survivor: no-op
        injector.fire()
        self.lose_worker(victim, stage_name=name)

        # 1) Every cached partition homed on the victim is gone; re-home
        # it and charge re-derivation from the surviving copies.
        invalidated: set[int] = set()
        invalidated_bytes = 0
        for task in tasks:
            for partition in task.inputs:
                if partition.worker == victim and id(partition) not in invalidated:
                    invalidated.add(id(partition))
                    invalidated_bytes += partition.size_bytes()
                    partition.worker = self.worker_for_partition(partition.index)
        if invalidated:
            refetch = self.cost_model.transfer_seconds(
                invalidated_bytes, len(self.live_workers()))
            self.metrics.inc("cache_invalidated_partitions", len(invalidated))
            self.metrics.inc("cache_invalidated_bytes", invalidated_bytes)
            self.metrics.advance(refetch, label="recovery")
            self.metrics.inc("recovery_seconds", refetch)

        # 2) Replay this stage's committed tasks that ran on the victim:
        # their outputs died with the executor.  State-mutating tasks
        # restore the pre-stage snapshot first so the replay is exact.
        replayed: list[int] = []
        for prev_pos in range(len(results)):
            prev = results[prev_pos]
            if prev.worker != victim:
                continue
            prev_task = tasks[prev_pos]
            self._guard_replayable(prev_task, name)
            if prev_task.restore is not None:
                prev_task.restore(snapshots.get(prev_pos))
            new_worker = fallback_worker(victim, self.healthy_workers())
            fetch_time, new_remote, _ = self._fetch_cost(prev_task, new_worker)
            self.metrics.inc("task_attempts")
            t0 = time.perf_counter()
            output = prev_task.fn(*[p.rows for p in prev_task.inputs])
            cpu = (time.perf_counter() - t0) * self.cost_model.cpu_scale
            busy = cpu + self.cost_model.task_overhead_s + fetch_time
            worker_busy[new_worker] += busy
            self.metrics.inc("recovery_seconds", busy)
            results[prev_pos] = TaskResult(prev.index, output, new_worker,
                                           cpu, new_remote)
            replayed.append(prev.index)

        # 3) Pending tasks assigned to the victim move to healthy workers.
        healthy = self.healthy_workers()
        rescheduled = 0
        for later in range(pos, len(assignments)):
            if assignments[later] == victim:
                assignments[later] = fallback_worker(victim, healthy)
                rescheduled += 1
        self.tracer.leaf("recovery", f"stage-replay[{name}]",
                         worker=victim, stage=name, at_task=pos,
                         replayed_tasks=replayed, rescheduled=rescheduled,
                         invalidated_partitions=len(invalidated),
                         invalidated_bytes=invalidated_bytes)

    def _speculate(self, name: str, tasks: list[StageTask],
                   results: list[TaskResult], task_busy: list[float],
                   worker_busy: list[float]) -> None:
        """Straggler mitigation: re-launch the slowest task elsewhere.

        The speculative copy launches when the median task finishes and
        the first committer wins.  Only side-effect-free tasks are
        speculated (a mutating copy would double-apply the merge), and
        since both attempts compute the same value the simulation only
        adjusts time: the duplicate work is charged to the copy's worker
        and the abandoned original stops counting toward the stage's
        critical path.
        """
        if len(results) < 2:
            return
        med = median(task_busy)
        slow_pos = max(range(len(task_busy)), key=task_busy.__getitem__)
        slow = task_busy[slow_pos]
        if slow <= 0 or slow <= med * self.fault_config.speculation_multiplier:
            return
        task = tasks[slow_pos]
        if task.mutating or task.snapshot is not None:
            return
        original = results[slow_pos].worker
        others = [w for w in self.live_workers() if w != original]
        if not others:
            return
        spec_worker = min(others, key=lambda w: worker_busy[w])
        fetch_time, _, _ = self._fetch_cost(task, spec_worker)
        # The copy runs at the stage's typical rate: straggling is
        # attributed to the sick executor, not to the task's work.
        copy_cpu = median(r.cpu_seconds for r in results)
        copy_busy = copy_cpu + self.cost_model.task_overhead_s + fetch_time
        copy_finish = med + copy_busy
        if copy_finish >= slow:
            return
        worker_busy[spec_worker] += copy_busy
        worker_busy[original] -= slow - copy_finish
        self.metrics.inc("speculative_tasks")
        self.tracer.leaf("speculation", f"{name}[{task.index}]",
                         index=task.index, from_worker=original,
                         to_worker=spec_worker,
                         saved_seconds=slow - copy_finish)

    # ------------------------------------------------------------------
    # shuffle exchange
    # ------------------------------------------------------------------

    def exchange(self, map_outputs: list[tuple[int, dict[int, list[tuple]]]],
                 num_partitions: int,
                 partitioner: HashPartitioner,
                 key_indices: tuple[int, ...] | None = None) -> Dataset:
        """The ShuffleExchange of Algorithm 4, line 22.

        ``map_outputs`` is a list of ``(source_worker, buckets)`` pairs where
        ``buckets`` maps target partition id to rows.  Output partition ``i``
        is placed on its canonical worker; bytes whose source worker differs
        from the target worker are charged as network transfer (streams run
        in parallel across workers).
        """
        gathered: list[list[tuple]] = [[] for _ in range(num_partitions)]
        remote_bytes = 0
        total_bytes = 0
        total_records = 0
        # Corruption injection + checksum verification.  Checksums are
        # computed only while an injector is armed: the map side hashed
        # the pristine bucket, the reduce side hashes what arrived, and a
        # mismatch triggers a charged re-fetch of the pristine rows.  No
        # injector armed -> zero extra work on the clean hot path.
        corruptors = [c for c in self.corruption_injectors if c.matches()]
        verify = self.fault_config.verify_shuffle_checksums
        for source_worker, buckets in map_outputs:
            for pid, rows in buckets.items():
                if not rows:
                    continue
                nbytes = rows_size(rows)
                delivered = rows
                for injector in corruptors:
                    mangled = injector.corrupt(rows)
                    if mangled is None:
                        continue
                    self.metrics.inc("shuffle_corruption_injected")
                    if verify and rows_checksum(mangled) != rows_checksum(rows):
                        refetch = self.cost_model.transfer_seconds(nbytes, 1)
                        self.metrics.advance(refetch, label="corruption-recovery")
                        self.metrics.inc("recovery_seconds", refetch)
                        self.metrics.inc("shuffle_corruption_detected")
                        self.metrics.inc("shuffle_corruption_refetch_bytes",
                                         nbytes)
                        self.tracer.leaf("fault", "shuffle-corruption",
                                         partition=pid, bytes=nbytes)
                    else:
                        # Verification off (or an astronomically unlikely
                        # hash collision): the mangled bucket flows through.
                        self.metrics.inc("shuffle_corruption_undetected")
                        delivered = mangled
                gathered[pid].extend(delivered)
                total_bytes += nbytes
                total_records += len(rows)
                if self.worker_for_partition(pid) != source_worker:
                    remote_bytes += nbytes

        with self.tracer.span("exchange", "shuffle") as span:
            self.metrics.inc("shuffle_records", total_records)
            self.metrics.inc("shuffle_bytes", total_bytes)
            self.metrics.inc("shuffle_remote_bytes", remote_bytes)
            if remote_bytes:
                self.metrics.advance(
                    self.cost_model.transfer_seconds(remote_bytes, self.num_workers),
                    label="shuffle")
            span.annotate(records=total_records, bytes=total_bytes,
                          remote_bytes=remote_bytes)

        parts = [Partition(i, rows, self.worker_for_partition(i))
                 for i, rows in enumerate(gathered)]
        dataset = Dataset(parts, partitioner, key_indices)
        # Shuffle buffers occupy memory on the receiving workers until
        # the consuming stage releases them (repro.core.fixpoint does,
        # after the merge absorbs them into the cached state).
        group = f"x{self._exchange_epoch}"
        self._exchange_epoch += 1
        dataset.memory_group = group
        for part in parts:
            if part.rows:
                self.memory.charge("shuffle", group, part.index,
                                   part.worker, part.size_bytes())
        return dataset

    def restore_exchange(self, per_partition_rows: list[list[tuple]],
                         partitioner: HashPartitioner,
                         key_indices: tuple[int, ...] | None = None) -> Dataset:
        """Re-materialize a previously-exchanged dataset from a checkpoint.

        The rows were already bucketed by target partition when the
        checkpoint was cut, so no routing and no *network* time happens
        here — the resume path charges the blob's disk read under the
        ``"checkpoint"`` label instead.  Placement and shuffle-tier
        memory charges are identical to the original :meth:`exchange`,
        so the consuming merge stage releases the same group.
        """
        parts = [Partition(i, rows, self.worker_for_partition(i))
                 for i, rows in enumerate(per_partition_rows)]
        dataset = Dataset(parts, partitioner, key_indices)
        group = f"x{self._exchange_epoch}"
        self._exchange_epoch += 1
        dataset.memory_group = group
        for part in parts:
            if part.rows:
                self.memory.charge("shuffle", group, part.index,
                                   part.worker, part.size_bytes())
        return dataset

    # ------------------------------------------------------------------
    # broadcast
    # ------------------------------------------------------------------

    def broadcast(self, value: object, nbytes: int | None = None,
                  compress: bool = False,
                  ship_hash_table: bool = False) -> Broadcast:
        """Ship a value to every worker (Section 7.2).

        ``ship_hash_table=True`` models Spark's default broadcast-hash join,
        which serializes the *built hash table* (2–3x larger than the rows);
        the paper's optimization instead broadcasts the compressed rows and
        rebuilds the table on each worker.
        """
        from repro.engine.serialization import HASH_TABLE_BLOWUP

        if nbytes is None:
            if isinstance(value, list):
                nbytes = rows_size(value)
            else:
                raise ValueError("nbytes required for non-row-list broadcasts")
        with self.tracer.span("broadcast", "broadcast") as span:
            wire_bytes = nbytes
            extra_cpu = 0.0
            if ship_hash_table:
                wire_bytes = int(wire_bytes * HASH_TABLE_BLOWUP)
            if compress:
                extra_cpu += self.codec.cpu_seconds(wire_bytes)
                wire_bytes = self.codec.compressed_size(wire_bytes)
                self.metrics.inc("broadcast_bytes_compressed", wire_bytes)
            self.metrics.inc("broadcast_bytes", wire_bytes)

            receivers = max(1, self.num_workers - 1)
            # Tree/torrent-style broadcast: cost grows with log of receivers,
            # bounded below by pushing one full copy over the sender's link.
            copies = max(1, receivers.bit_length())
            transfer = self.cost_model.transfer_seconds(wire_bytes * copies, 1)
            self.metrics.advance(transfer + extra_cpu, label="broadcast")
            span.annotate(raw_bytes=nbytes, wire_bytes=wire_bytes,
                          compressed=compress)
        result = Broadcast(value, wire_bytes, compress)
        # Every live worker holds a deserialized copy: charge the raw
        # bytes per worker (the wire form is transient).
        group = f"b{self._broadcast_epoch}"
        self._broadcast_epoch += 1
        result.memory_group = group
        for worker in self.live_workers():
            self.memory.charge("broadcast", group, worker, worker, nbytes)
        return result
