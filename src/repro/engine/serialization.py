"""Row serialization size model and the broadcast compression codec.

The engine never actually serializes rows — everything lives in one Python
process — but the network cost model needs byte counts.  ``row_size`` gives a
deterministic wire-size estimate comparable to a compact binary row format
(8 bytes per number, raw bytes per string, small per-field/row overhead).

``CompressionCodec`` models the broadcast compression of Section 7.2: the
paper broadcasts the *compressed* relation and lets each worker build its own
hash table, instead of shipping a hash table that is "often 2X to 3X larger
than the original".  We reproduce both effects as byte-count multipliers.

Checkpoint blobs are the one place the engine *really* serializes state:
:func:`dump_blob` / :func:`load_blob` persist a pickled payload behind a
content hash (first line ``rasql-ckpt <sha256-hex>\\n``, then the pickle
bytes), written atomically via a temp file + rename so a crash mid-write
leaves either the previous checkpoint or none, never a torn one.
:func:`rows_checksum` is the cheap order-insensitive integrity hash the
shuffle path uses for corruption detection.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import zlib
from dataclasses import dataclass

from repro.errors import CheckpointCorruptionError, CheckpointError

_NUMERIC_BYTES = 8
_FIELD_OVERHEAD = 2
_ROW_OVERHEAD = 4

#: How much larger a serialized hash table is than the raw rows it indexes.
#: The paper reports "2X to 3X"; we use the middle of that range.
HASH_TABLE_BLOWUP = 2.5


def value_size(value) -> int:
    """Wire-size estimate of one scalar value in bytes."""
    if isinstance(value, bool) or value is None:
        return 1
    if isinstance(value, (int, float)):
        return _NUMERIC_BYTES
    if isinstance(value, str):
        return len(value.encode("utf-8", errors="replace"))
    if isinstance(value, bytes):
        return len(value)
    # Fallback for exotic values: size of their text rendering.
    return len(str(value))


def row_size(row: tuple) -> int:
    """Wire-size estimate of one row in bytes."""
    total = _ROW_OVERHEAD
    for value in row:
        total += _FIELD_OVERHEAD + value_size(value)
    return total


_SAMPLE_THRESHOLD = 64


def rows_size(rows) -> int:
    """Wire-size estimate of a collection of rows in bytes.

    Exact for small collections; for large ones the estimate samples 64
    evenly spaced rows and extrapolates — this function sits on the
    shuffle accounting hot path and the model only needs byte counts, not
    byte-perfect sums.
    """
    nbytes = getattr(rows, "nbytes", None)
    if nbytes is not None:
        # Columnar batches (engine.columnar.ColumnBatch) account for
        # themselves: array-backed columns are exact, object columns use
        # the same 64-row sampling this function applies to row lists.
        return nbytes
    if not isinstance(rows, (list, tuple)):
        rows = list(rows)
    n = len(rows)
    if n <= _SAMPLE_THRESHOLD:
        return sum(row_size(row) for row in rows)
    step = n // _SAMPLE_THRESHOLD
    sampled = sum(row_size(rows[i]) for i in range(0, step * _SAMPLE_THRESHOLD, step))
    return int(sampled * (n / _SAMPLE_THRESHOLD))


_BLOB_MAGIC = b"rasql-ckpt "


def dump_blob(path: str, payload) -> int:
    """Pickle *payload* to *path* behind a sha256 header, atomically.

    Returns the number of bytes written.  The write goes to
    ``<path>.tmp`` first and is renamed into place, so concurrent
    readers (and a crash between the two steps) see either the old
    complete blob or the new complete blob.
    """
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    header = _BLOB_MAGIC + hashlib.sha256(body).hexdigest().encode("ascii") + b"\n"
    tmp = path + ".tmp"
    try:
        with open(tmp, "wb") as fh:
            fh.write(header)
            fh.write(body)
        os.replace(tmp, path)
    except OSError as exc:
        raise CheckpointError(f"cannot write checkpoint blob {path!r}: {exc}") from exc
    return len(header) + len(body)


def load_blob(path: str):
    """Load a blob written by :func:`dump_blob`, verifying its hash.

    Raises :class:`~repro.errors.CheckpointCorruptionError` when the
    body's sha256 does not match the header (torn write, bit flip), and
    :class:`~repro.errors.CheckpointError` when the file is unreadable
    or not a checkpoint blob at all.
    """
    try:
        with open(path, "rb") as fh:
            header = fh.readline()
            body = fh.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint blob {path!r}: {exc}") from exc
    if not header.startswith(_BLOB_MAGIC):
        raise CheckpointError(f"{path!r} is not a RaSQL checkpoint blob")
    expected = header[len(_BLOB_MAGIC):].strip().decode("ascii", errors="replace")
    actual = hashlib.sha256(body).hexdigest()
    if actual != expected:
        raise CheckpointCorruptionError(
            f"checkpoint blob {path!r} failed its integrity check "
            f"(header {expected[:12]}..., body {actual[:12]}...)")
    try:
        return pickle.loads(body)
    except Exception as exc:  # pickle raises a zoo of types
        raise CheckpointCorruptionError(
            f"checkpoint blob {path!r} verified but failed to unpickle: {exc}") from exc


def dump_payload(payload) -> bytes:
    """Pickle a task payload for the process-backend wire.

    Payloads are plain tuples of builtins plus the frozen wire
    dataclasses of :mod:`repro.engine.backend.payloads` — no closures,
    no live state — so the highest pickle protocol always applies.
    """
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def load_payload(blob: bytes):
    """Inverse of :func:`dump_payload` (worker side)."""
    return pickle.loads(blob)


def rows_checksum(rows) -> int:
    """Order-insensitive integrity hash of a row collection.

    XOR of per-row crc32s over each row's ``repr`` — cheap enough for
    the shuffle hot path (it only runs when a corruption injector is
    armed), order-insensitive so map-side and reduce-side can hash in
    whatever order they hold the rows, and sensitive to any single-value
    mutation (``1`` vs ``1.0`` differ, matching bit-exactness).
    """
    digest = 0
    for row in rows:
        digest ^= zlib.crc32(repr(row).encode("utf-8", errors="replace"))
    return digest


@dataclass(frozen=True)
class CompressionCodec:
    """A byte-count compression model for broadcast data.

    ``ratio`` is output/input; 0.45 approximates what a general-purpose
    codec (LZ4/Snappy) achieves on integer-heavy edge lists, which is the
    regime of the Figure 6 experiment.  ``throughput`` charges CPU time for
    the compression itself on the sender.
    """

    ratio: float = 0.45
    throughput_bytes_per_s: float = 400e6

    def compressed_size(self, nbytes: int) -> int:
        return max(1, int(nbytes * self.ratio))

    def cpu_seconds(self, nbytes: int) -> float:
        return nbytes / self.throughput_bytes_per_s
