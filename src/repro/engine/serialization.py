"""Row serialization size model and the broadcast compression codec.

The engine never actually serializes rows — everything lives in one Python
process — but the network cost model needs byte counts.  ``row_size`` gives a
deterministic wire-size estimate comparable to a compact binary row format
(8 bytes per number, raw bytes per string, small per-field/row overhead).

``CompressionCodec`` models the broadcast compression of Section 7.2: the
paper broadcasts the *compressed* relation and lets each worker build its own
hash table, instead of shipping a hash table that is "often 2X to 3X larger
than the original".  We reproduce both effects as byte-count multipliers.
"""

from __future__ import annotations

from dataclasses import dataclass

_NUMERIC_BYTES = 8
_FIELD_OVERHEAD = 2
_ROW_OVERHEAD = 4

#: How much larger a serialized hash table is than the raw rows it indexes.
#: The paper reports "2X to 3X"; we use the middle of that range.
HASH_TABLE_BLOWUP = 2.5


def value_size(value) -> int:
    """Wire-size estimate of one scalar value in bytes."""
    if isinstance(value, bool) or value is None:
        return 1
    if isinstance(value, (int, float)):
        return _NUMERIC_BYTES
    if isinstance(value, str):
        return len(value.encode("utf-8", errors="replace"))
    if isinstance(value, bytes):
        return len(value)
    # Fallback for exotic values: size of their text rendering.
    return len(str(value))


def row_size(row: tuple) -> int:
    """Wire-size estimate of one row in bytes."""
    total = _ROW_OVERHEAD
    for value in row:
        total += _FIELD_OVERHEAD + value_size(value)
    return total


_SAMPLE_THRESHOLD = 64


def rows_size(rows) -> int:
    """Wire-size estimate of a collection of rows in bytes.

    Exact for small collections; for large ones the estimate samples 64
    evenly spaced rows and extrapolates — this function sits on the
    shuffle accounting hot path and the model only needs byte counts, not
    byte-perfect sums.
    """
    if not isinstance(rows, (list, tuple)):
        rows = list(rows)
    n = len(rows)
    if n <= _SAMPLE_THRESHOLD:
        return sum(row_size(row) for row in rows)
    step = n // _SAMPLE_THRESHOLD
    sampled = sum(row_size(rows[i]) for i in range(0, step * _SAMPLE_THRESHOLD, step))
    return int(sampled * (n / _SAMPLE_THRESHOLD))


@dataclass(frozen=True)
class CompressionCodec:
    """A byte-count compression model for broadcast data.

    ``ratio`` is output/input; 0.45 approximates what a general-purpose
    codec (LZ4/Snappy) achieves on integer-heavy edge lists, which is the
    regime of the Figure 6 experiment.  ``throughput`` charges CPU time for
    the compression itself on the sender.
    """

    ratio: float = 0.45
    throughput_bytes_per_s: float = 400e6

    def compressed_size(self, nbytes: int) -> int:
        return max(1, int(nbytes * self.ratio))

    def cpu_seconds(self, nbytes: int) -> float:
        return nbytes / self.throughput_bytes_per_s
