"""Column-decomposed row batches — the columnar execution/wire layer.

A :class:`ColumnBatch` holds the rows of one relation partition (or one
shuffle bucket, or one iteration's delta) as *parallel per-column
sequences* instead of a list of row tuples:

- columns whose every value is a plain ``int`` (``type(v) is int`` — a
  ``bool`` is deliberately not an int here, it would not round-trip
  ``repr``-exactly) live in an ``array('q')``;
- columns whose every value is a plain ``float`` live in an
  ``array('d')`` (C doubles are Python floats, so the round trip is
  bit-exact, NaN payloads included);
- anything else — strings, ``None``-bearing (NULL) columns, mixed types,
  ints beyond 64 bits — falls back to a plain Python list.

The same representation doubles as the process backend's wire format:
:meth:`encode` splits each int column into its eight native-endian byte
planes (``raw[i::8]`` — pure C-speed slicing), drops the planes that are
a constant 0x00/0xFF (the high bytes of narrow values, i.e. most of
them), ships floats as raw doubles and object columns pickled, then
DEFLATEs the lot.  Byte-plane layout is what makes the compression
bite: a converging fixpoint's delta columns are full of near-equal
values whose low-byte planes are long repetitive runs that interleaved
row pickles hide from the codec.  ``ColumnBatch`` pickles *as* its encoded form (see
``__reduce__``), so any payload that contains one ships compactly with
no changes to the payload plumbing, and the encoding is cached — a batch
relayed driver → worker → driver is encoded exactly once.

Everything here is bit-exact with the row-tuple paths it replaces:
``to_rows(from_rows(rows)) == rows`` value-for-value and order-for-order,
and :meth:`route` reproduces ``repro.engine.kernels.make_router`` (and
therefore ``HashPartitioner.partition_of``) bucket-for-bucket.  The
differential suite (``pytest -m kernels``) pins both claims.
"""

from __future__ import annotations

import zlib
from array import array
from itertools import islice
from operator import itemgetter
from pickle import HIGHEST_PROTOCOL, dumps, loads
from typing import Callable, Iterable, Iterator

from repro.engine.partitioner import _stable_hash, column_partition_ids
from repro.engine.serialization import value_size

__all__ = ["ColumnBatch", "MIN_BATCH_ROWS", "as_rows", "maybe_batch"]

#: Below this many rows a batch cannot amortize its per-column setup and
#: header bytes; ``maybe_batch`` leaves such inputs as plain row lists.
#: This is a representation-choice threshold, not a correctness gate —
#: both forms flow through the same consumers bit-exactly.
MIN_BATCH_ROWS = 16

#: DEFLATE level 3 lands within ~2% of level 6 on plane data (the runs
#: are long and obvious) at two-thirds of the compression CPU, which
#: matters when driver and workers share cores.
_ZLIB_LEVEL = 3

#: Bytes per value of a numeric column's wire planes (``array('q')``
#: and ``array('d')`` are both 8 bytes on every supported platform).
_INT_WIDTH = array("q").itemsize


def _planes(raw: bytes, count: int, width: int = _INT_WIDTH) -> list:
    """Split packed values into per-byte planes (``raw[i::width]``).

    A plane that is a constant 0x00/0xFF — the sign extension of narrow
    values, i.e. most planes — collapses to that int.  Pure C-speed
    slicing/counting; DEFLATE does the actual squeezing on plane runs.
    """
    planes: list = []
    for i in range(width):
        plane = raw[i::width]
        if count and plane[0] in (0, 255) and \
                plane.count(plane[0]) == count:
            planes.append(plane[0])
        else:
            planes.append(plane)
    return planes


def _unplanes(planes: list, count: int, width: int = _INT_WIDTH) -> bytes:
    """Inverse of :func:`_planes`: re-interleave the byte planes."""
    interleaved = bytearray(width * count)
    for i, plane in enumerate(planes):
        if isinstance(plane, int):
            if plane:  # 0xFF sign-extension plane
                interleaved[i::width] = b"\xff" * count
            # zero planes: bytearray starts zeroed
        else:
            interleaved[i::width] = plane
    return bytes(interleaved)


class ColumnBatch:
    """Rows of uniform arity, stored column-major.  Immutable by
    convention: every consumer treats columns as read-only."""

    __slots__ = ("columns", "kinds", "length", "arity", "_wire")

    def __init__(self, columns: list, kinds: str, length: int):
        #: Parallel per-column storage: ``array('q')`` (kind ``'i'``),
        #: ``array('d')`` (kind ``'f'``) or ``list`` (kind ``'o'``).
        self.columns = columns
        self.kinds = kinds
        self.length = length
        self.arity = len(columns)
        self._wire: bytes | None = None

    # -- construction ---------------------------------------------------

    @classmethod
    def from_rows(cls, rows: list[tuple]) -> "ColumnBatch":
        """Column-decompose a list of equal-arity row tuples.

        Raises ``ValueError`` on ragged input (``zip(*rows)`` would
        silently truncate); :func:`maybe_batch` screens for that.
        """
        if not rows:
            return cls([], "", 0)
        try:
            decomposed = list(zip(*rows, strict=True))
        except ValueError:
            raise ValueError(
                "ColumnBatch requires uniform-arity rows") from None
        columns: list = []
        kinds: list[str] = []
        for values in decomposed:
            # One C-speed pass classifies the column; ``bool`` (a
            # subclass of int) lands in the object branch by type
            # identity, as does None, so the set check is exact.
            value_types = set(map(type, values))
            if value_types == {int}:
                try:
                    columns.append(array("q", values))
                    kinds.append("i")
                    continue
                except OverflowError:
                    pass  # > 64-bit int somewhere: object column
            elif value_types == {float}:
                columns.append(array("d", values))
                kinds.append("f")
                continue
            columns.append(list(values))
            kinds.append("o")
        return cls(columns, "".join(kinds), len(rows))

    # -- row views ------------------------------------------------------

    def __len__(self) -> int:
        return self.length

    def iter_rows(self) -> Iterator[tuple]:
        """Rows as tuples, in original order (``array`` items come back
        as plain ``int``/``float``, so tuples equal the originals)."""
        if not self.columns:
            return iter(())
        return zip(*self.columns)

    # Iterating a batch iterates its rows, so consumers written against
    # row iterables (``set(delta_rows)``, ``for row in rows``) accept a
    # batch unchanged.
    __iter__ = iter_rows

    def to_rows(self) -> list[tuple]:
        if not self.columns:
            return []
        return list(zip(*self.columns))

    def take(self, indices: Iterable[int]) -> "ColumnBatch":
        """A new batch of the selected rows, in the given order."""
        idx = list(indices)
        columns: list = []
        for kind, col in zip(self.kinds, self.columns):
            picked = [col[i] for i in idx]
            columns.append(array("q", picked) if kind == "i"
                           else array("d", picked) if kind == "f"
                           else picked)
        return ColumnBatch(columns, self.kinds, len(idx))

    def slice(self, start: int, stop: int) -> "ColumnBatch":
        """Contiguous row range as a new batch (array slices are cheap)."""
        columns = [col[start:stop] for col in self.columns]
        length = len(columns[0]) if columns else 0
        return ColumnBatch(columns, self.kinds, length)

    def dedup(self) -> "ColumnBatch":
        """Distinct rows, first occurrence wins, order preserved — the
        columnar twin of ``list(dict.fromkeys(rows))``."""
        return ColumnBatch.from_rows(list(dict.fromkeys(self.iter_rows())))

    # -- hash-partition routing -----------------------------------------

    def route(self, key_positions: tuple[int, ...],
              num_partitions: int) -> list[list[tuple]]:
        """Single-pass shuffle routing over the key column(s).

        Bucket-for-bucket identical to
        ``kernels.make_router(key_positions, n)(self.to_rows())``: the
        ``type(key) is int`` fast path, the ``_stable_hash`` fallback and
        the always-hash rule for multi-column keys are reproduced exactly,
        and rows keep their relative order inside each bucket.
        """
        n = num_partitions
        if n == 1:
            return [self.to_rows()]
        buckets: list[list[tuple]] = [[] for _ in range(n)]
        appends = [bucket.append for bucket in buckets]
        if len(key_positions) == 1:
            position = key_positions[0]
            keys = self.columns[position] if self.columns else ()
            if self.kinds[position:position + 1] == "i":
                # Whole-column int fast path: no per-row type check.
                for key, row in zip(keys, self.iter_rows()):
                    appends[key % n](row)
            else:
                for pid, row in zip(column_partition_ids(keys, n),
                                    self.iter_rows()):
                    appends[pid](row)
            return buckets
        getter = itemgetter(*key_positions)
        stable_hash = _stable_hash
        for row in self.iter_rows():
            appends[stable_hash(getter(row)) % n](row)
        return buckets

    def partition_ids(self, key_positions: tuple[int, ...],
                      num_partitions: int) -> Iterator[int]:
        """One partition id per row, in order — :meth:`route` without the
        bucket fill, for callers that fuse routing with another pass
        (e.g. the base-relation route + hash-table build)."""
        n = num_partitions
        if n == 1:
            return iter([0] * self.length)
        if len(key_positions) == 1:
            position = key_positions[0]
            keys = self.columns[position] if self.columns else ()
            if self.kinds[position:position + 1] == "i":
                return (key % n for key in keys)
            return column_partition_ids(keys, n)
        stable_hash = _stable_hash
        return (stable_hash(key) % n
                for key in zip(*(self.columns[p] for p in key_positions)))

    def keys(self, key_positions: tuple[int, ...]) -> Iterable:
        """The key column (scalars) or zipped key tuples — the columnar
        form of mapping ``partitioner.key_of`` over the rows."""
        if len(key_positions) == 1:
            return self.columns[key_positions[0]]
        return list(zip(*(self.columns[p] for p in key_positions)))

    # -- memory accounting ----------------------------------------------

    @property
    def nbytes(self) -> int:
        """In-memory footprint estimate (see ``serialization.rows_size``;
        object columns are sampled the same way row lists are)."""
        total = 56  # object header + slots
        for kind, col in zip(self.kinds, self.columns):
            if kind in ("i", "f"):
                total += col.itemsize * len(col) + 64
                continue
            count = len(col)
            if count == 0:
                total += 56
            elif count <= 64:
                total += 56 + sum(value_size(v) for v in col)
            else:
                step = count // 64
                sampled = list(islice(col, 0, count, step))
                total += 56 + (sum(value_size(v) for v in sampled)
                               * count // len(sampled))
        return total

    # -- wire format ----------------------------------------------------

    def encode(self) -> bytes:
        """Compact self-describing bytes; cached (batches are immutable).

        Layout: 1 tag byte (``Z`` deflated / ``R`` raw) + pickle of
        ``("CB1", length, [per-column spec])`` where an int column is
        ``("p", [plane_0 .. plane_7])`` — its eight native-endian byte
        planes (``tobytes()[i::8]``), each either the raw plane bytes or
        the int ``0``/``255`` when the plane is that constant (the sign
        extension of narrow values, i.e. most planes) — a float column
        is ``("f", payload_bytes)`` and an object column is
        ``("o", values_list)``.  Every step is C-speed slicing; DEFLATE
        does the actual squeezing on the plane runs.
        """
        if self._wire is not None:
            return self._wire
        cols = []
        for kind, col in zip(self.kinds, self.columns):
            if kind == "i":
                cols.append(("p", _planes(col.tobytes(), len(col))))
            elif kind == "f":
                cols.append(("f", _planes(col.tobytes(), len(col))))
            else:
                cols.append(("o", list(col)))
        raw = dumps(("CB1", self.length, cols), protocol=HIGHEST_PROTOCOL)
        packed = zlib.compress(raw, _ZLIB_LEVEL)
        wire = (b"Z" + packed) if len(packed) < len(raw) else (b"R" + raw)
        self._wire = wire
        return wire

    @classmethod
    def decode(cls, blob: bytes) -> "ColumnBatch":
        raw = zlib.decompress(blob[1:]) if blob[:1] == b"Z" else blob[1:]
        magic, length, cols = loads(raw)
        if magic != "CB1":
            raise ValueError(f"not a ColumnBatch blob: {magic!r}")
        columns: list = []
        kinds: list[str] = []
        for spec in cols:
            if spec[0] == "p":
                col = array("q")
                col.frombytes(_unplanes(spec[1], length))
                columns.append(col)
                kinds.append("i")
            elif spec[0] == "f":
                col = array("d")
                col.frombytes(_unplanes(spec[1], length))
                columns.append(col)
                kinds.append("f")
            else:
                columns.append(spec[1])
                kinds.append("o")
        batch = cls(columns, "".join(kinds), length)
        batch._wire = bytes(blob)
        return batch

    def __reduce__(self):
        # Pickling IS the wire format: payloads carrying a batch ship its
        # encoded (deflated byte-plane) bytes, and a relay re-sends the
        # cached encoding instead of re-compressing.
        return (ColumnBatch.decode, (self.encode(),))

    def __repr__(self) -> str:
        return (f"ColumnBatch(rows={self.length}, arity={self.arity}, "
                f"kinds={self.kinds!r})")


def maybe_batch(rows: list[tuple],
                min_rows: int = MIN_BATCH_ROWS) -> "ColumnBatch | list[tuple]":
    """Batch a row list when it is worth it; else return it unchanged.

    Ineligible inputs — too small to amortize the headers, or ragged
    arity (``zip(*rows)`` would truncate) — stay plain lists.  Both
    representations are accepted everywhere a batch is, so this is a
    pure wire/layout decision.
    """
    if len(rows) < min_rows:
        return rows
    try:
        return ColumnBatch.from_rows(rows)
    except ValueError:  # ragged arity
        return rows


def as_rows(rows: "ColumnBatch | list[tuple]") -> list[tuple]:
    """Normalize either representation to a row-tuple list."""
    if isinstance(rows, ColumnBatch):
        return rows.to_rows()
    return rows
