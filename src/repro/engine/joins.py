"""Partition-local join kernels (Appendix D, Section 7.2).

These run inside stage tasks; the distributed choreography (co-partitioning,
broadcast, shuffle) lives in the fixpoint operator and planner.  Three
kernels mirror the paper's join menu:

- *hash join* — build a table on one side, probe with the other.  In the
  fixpoint the base relation is always the build side, built once and cached
  across iterations (Appendix D's rationale: the delta is usually larger,
  and a cached build amortizes to ~zero).
- *sort-merge join* — sorts both inputs, merges sorted runs; the base side's
  sorted run can likewise be cached.  Slower than a cached hash probe but
  uses less memory (Figure 11).
- *nested-loop join* — the fallback for non-equi predicates (Interval
  Coalesce joins on ``coal.S <= inter.S AND inter.S <= coal.E``).

These are also the *reference* kernels for the specialized hot-path loops
in :mod:`repro.engine.kernels`: ``ExecutionConfig.kernels=False`` routes
every join through the functions below, and the differential suite
(``pytest -m kernels``) pins both paths to bit-exact results.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence


def build_hash_table(rows: Iterable[tuple],
                     key_fn: Callable[[tuple], object]) -> dict:
    """Build ``{key: [rows]}`` for the build side of a hash join."""
    table: dict = {}
    for row in rows:
        key = key_fn(row)
        bucket = table.get(key)
        if bucket is None:
            table[key] = [row]
        else:
            bucket.append(row)
    return table


def build_hash_table_columns(keys: Iterable, rows: Iterable[tuple]) -> dict:
    """Columnar build: parallel key column instead of per-row ``key_fn``.

    ``{key: [rows]}`` with buckets in input order — entry-for-entry
    identical to :func:`build_hash_table` when ``keys`` is the column the
    key function would have extracted (e.g. ``ColumnBatch.keys(...)``).
    """
    table: dict = {}
    for key, row in zip(keys, rows):
        bucket = table.get(key)
        if bucket is None:
            table[key] = [row]
        else:
            bucket.append(row)
    return table


def hash_join_probe(probe_rows: Iterable[tuple],
                    probe_key_fn: Callable[[tuple], object],
                    table: dict,
                    combine: Callable[[tuple, tuple], object]) -> list:
    """Probe a prebuilt hash table; ``combine(probe, build)`` shapes output.

    ``combine`` may return ``None`` to drop a pair (fused residual filter).
    """
    out: list = []
    append = out.append
    for probe in probe_rows:
        bucket = table.get(probe_key_fn(probe))
        if bucket is None:
            continue
        for build in bucket:
            result = combine(probe, build)
            if result is not None:
                append(result)
    return out


def sort_rows(rows: Iterable[tuple], key_fn: Callable[[tuple], object]) -> list[tuple]:
    """Sort rows by join key; exposed so the base side can be cached sorted."""
    return sorted(rows, key=key_fn)


def sort_merge_join(left_sorted: Sequence[tuple], right_sorted: Sequence[tuple],
                    left_key_fn: Callable[[tuple], object],
                    right_key_fn: Callable[[tuple], object],
                    combine: Callable[[tuple, tuple], object]) -> list:
    """Merge two key-sorted runs, emitting combined matches.

    Both inputs must already be sorted by their key (see :func:`sort_rows`).
    Handles duplicate keys on both sides (full cross product per key group).
    """
    out: list = []
    append = out.append
    i, j = 0, 0
    n, m = len(left_sorted), len(right_sorted)
    while i < n and j < m:
        lk = left_key_fn(left_sorted[i])
        rk = right_key_fn(right_sorted[j])
        if lk < rk:
            i += 1
        elif rk < lk:
            j += 1
        else:
            # Collect the key group on each side, emit the cross product.
            i_end = i
            while i_end < n and left_key_fn(left_sorted[i_end]) == lk:
                i_end += 1
            j_end = j
            while j_end < m and right_key_fn(right_sorted[j_end]) == rk:
                j_end += 1
            for left_row in left_sorted[i:i_end]:
                for right_row in right_sorted[j:j_end]:
                    result = combine(left_row, right_row)
                    if result is not None:
                        append(result)
            i, j = i_end, j_end
    return out


def nested_loop_join(left_rows: Iterable[tuple], right_rows: Sequence[tuple],
                     predicate: Callable[[tuple, tuple], bool],
                     combine: Callable[[tuple, tuple], object]) -> list:
    """Theta join fallback: test every pair against ``predicate``."""
    out: list = []
    append = out.append
    for left_row in left_rows:
        for right_row in right_rows:
            if predicate(left_row, right_row):
                result = combine(left_row, right_row)
                if result is not None:
                    append(result)
    return out
