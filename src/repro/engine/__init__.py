"""A single-process reproduction of the Spark substrate RaSQL runs on.

The engine executes real work (results are exact) while *modelling* the
distributed aspects: partitions carry a home worker, a scheduler assigns
tasks to workers under one of two policies, data that crosses workers is
charged against a network cost model, and a simulated cluster clock
aggregates per-worker busy time so that parallel speedup and scheduling
overheads are observable — this is what the paper's "Time (s)" axes measure.

Public surface:

- :class:`~repro.engine.cluster.Cluster` — the session's execution substrate.
- :class:`~repro.engine.dataset.Dataset` — an immutable partitioned dataset
  (the RDD analog).
- :class:`~repro.engine.setrdd.SetRDD` / ``KeyedStateRDD`` — the mutable
  *all*-relation state of Section 6.1.
- :mod:`~repro.engine.joins` — shuffle-hash, sort-merge and broadcast joins
  (Appendix D / Section 7.2).
"""

from repro.engine.cluster import Cluster
from repro.engine.dataset import Dataset, Partition
from repro.engine.metrics import CostModel, MetricsRegistry
from repro.engine.partitioner import HashPartitioner
from repro.engine.setrdd import KeyedStateRDD, SetRDD

__all__ = [
    "Cluster",
    "CostModel",
    "Dataset",
    "HashPartitioner",
    "KeyedStateRDD",
    "MetricsRegistry",
    "Partition",
    "SetRDD",
]
