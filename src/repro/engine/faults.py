"""Task-failure injection and stage-level recovery (Section 6.1).

The paper argues SetRDD does not compromise fault recovery: because the
all-relation's partitions are always cached ("checkpointed"), "a failure
in any iteration will only incur the replay of the execution job belonging
to the current stage".  This module lets tests and benchmarks exercise
exactly that: a :class:`FailureInjector` makes chosen tasks fail, and the
cluster replays them, charging the wasted attempt.

Two failure points are modeled:

- ``"before"`` — the executor is lost before the task starts (scheduling
  charged, no work done).  Replay is trivially safe.
- ``"after"`` — the task dies after doing its work but before committing
  its output.  Replay must not observe the half-applied state, so tasks
  that mutate cached state (the fixpoint's merge) provide
  snapshot/restore hooks; the cluster restores before re-running.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


class SimulatedTaskFailure(Exception):
    """Raised internally to unwind a failing task attempt."""


@dataclass
class FailureInjector:
    """Fail matching tasks a bounded number of times.

    ``stage_pattern`` is a regex matched against the stage name;
    ``task_index`` of ``None`` targets every task of a matching stage.
    ``times`` bounds total injected failures (a real lost executor fails a
    bounded number of tasks before blacklisting kicks in).
    ``point`` is ``"before"`` or ``"after"`` (see module docstring).
    """

    stage_pattern: str
    task_index: int | None = 0
    times: int = 1
    point: str = "before"
    injected: int = field(default=0, init=False)

    def __post_init__(self):
        if self.point not in ("before", "after"):
            raise ValueError(f"unknown failure point {self.point!r}")
        self._regex = re.compile(self.stage_pattern)

    def should_fail(self, stage_name: str, task_index: int) -> bool:
        if self.injected >= self.times:
            return False
        if not self._regex.search(stage_name):
            return False
        if self.task_index is not None and task_index != self.task_index:
            return False
        self.injected += 1
        return True
