"""Fault injection and recovery policy (Section 6.1).

The paper argues SetRDD does not compromise fault recovery: because the
all-relation's partitions are always cached ("checkpointed"), "a failure
in any iteration will only incur the replay of the execution job belonging
to the current stage".  This module lets tests and benchmarks exercise
exactly that, at two granularities:

- :class:`FailureInjector` kills individual *task attempts* at a chosen
  point; the cluster retries them (restoring any state snapshot first)
  within a bounded per-task budget.
- :class:`WorkerLossInjector` kills a whole *worker*: every cached
  partition homed there is invalidated, completed tasks of the current
  stage that ran on it are replayed from the last cached all-relation
  state, and pending tasks are rescheduled to surviving workers.

Two failure points are modeled for task deaths:

- ``"before"`` — the executor is lost before the task starts (scheduling
  charged, no work done).  Replay is trivially safe.
- ``"after"`` — the task dies after doing its work but before committing
  its output.  Replay must not observe the half-applied state, so tasks
  that mutate cached state (the fixpoint's merge) provide
  snapshot/restore hooks; the cluster restores before re-running.  An
  after-point failure on a task that declares itself mutating but has no
  restore hook raises :class:`repro.errors.FaultInjectionError` instead
  of silently corrupting the result.

:class:`RecoveryManager` holds the recovery *policy* — retry budget,
exponential backoff, and worker blacklisting after repeated failures —
configured by :class:`FaultToleranceConfig`.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field

from repro.errors import TaskRetryExhaustedError


@dataclass(frozen=True)
class FaultToleranceConfig:
    """Recovery knobs of the simulated cluster (Spark analogs in parens).

    max_task_retries:
        Failed attempts tolerated per task before the stage aborts with
        :class:`repro.errors.TaskRetryExhaustedError`
        (``spark.task.maxFailures`` minus one).
    blacklist_after:
        Task failures attributed to one worker before it is excluded
        from scheduling (``spark.blacklist.*``).  Blacklisted workers
        keep their cached partitions — only new task placement avoids
        them — mirroring Spark's executor blacklisting.
    speculation:
        Re-launch a speculative copy of a straggler task and take the
        first committer (``spark.speculation``).  Only side-effect-free
        tasks are speculated; the copy changes simulated time, never
        results.
    speculation_multiplier:
        A task is a straggler when its busy time exceeds this multiple
        of the stage's median task time (``spark.speculation.multiplier``).
    backoff_jitter:
        Fractional jitter added on top of the exponential retry backoff:
        each backoff is multiplied by ``1 + jitter * u`` with ``u`` drawn
        from the cluster's *seeded* RNG — never wall-clock entropy — so
        two runs with the same seed and fault schedule charge identical
        backoffs and chaos replays stay deterministic.  ``0.0`` (the
        default) reproduces the pure exponential schedule bit-for-bit.
    verify_shuffle_checksums:
        Verify shuffle buckets against their map-side content hash on
        the reduce side and recover (re-fetch, charged to the network)
        on mismatch.  Checksums are only computed while a
        :class:`CorruptionInjector` is armed, so clean runs pay nothing.
        ``False`` lets injected corruption through — for tests proving
        the verification matters.
    """

    max_task_retries: int = 4
    blacklist_after: int = 3
    speculation: bool = False
    speculation_multiplier: float = 1.5
    backoff_jitter: float = 0.0
    verify_shuffle_checksums: bool = True

    def __post_init__(self):
        if self.backoff_jitter < 0:
            raise ValueError(
                f"backoff_jitter must be >= 0, got {self.backoff_jitter!r}")


@dataclass
class FailureInjector:
    """Fail matching task attempts a bounded number of times.

    ``stage_pattern`` is a regex matched against the stage name;
    ``task_index`` of ``None`` targets every task of a matching stage.
    ``times`` bounds total injected failures across the run.
    ``point`` is ``"before"`` or ``"after"`` (see module docstring).
    ``persistent`` makes the injector fail the *retries* of a task too
    (the default fails each task at most once per stage visit, modelling
    a transient fault that a retry survives); a persistent injector
    models a deterministic fault and will exhaust the retry budget.
    """

    stage_pattern: str
    task_index: int | None = 0
    times: int = 1
    point: str = "before"
    persistent: bool = False
    injected: int = field(default=0, init=False)

    def __post_init__(self):
        if self.point not in ("before", "after"):
            raise ValueError(f"unknown failure point {self.point!r}")
        self._regex = re.compile(self.stage_pattern)

    def should_fail(self, stage_name: str, task_index: int) -> bool:
        if self.injected >= self.times:
            return False
        if not self._regex.search(stage_name):
            return False
        if self.task_index is not None and task_index != self.task_index:
            return False
        self.injected += 1
        return True


@dataclass
class WorkerLossInjector:
    """Kill a worker when a matching stage reaches a chosen task.

    ``worker`` of ``None`` picks a victim deterministically at fire time
    (the highest-numbered live worker, so worker 0 — the "master-ish"
    home of partition 0 — dies last).  ``at_task`` is the position in
    the stage's task list at which the loss strikes (clamped to the
    stage size), so losses can land mid-stage, after some tasks already
    committed.  ``skip_matches`` skips that many matching stages first,
    which is how chaos schedules hit random *iterations* of the
    fixpoint.  ``times`` bounds total losses from this injector.
    """

    stage_pattern: str
    worker: int | None = None
    at_task: int = 0
    skip_matches: int = 0
    times: int = 1
    injected: int = field(default=0, init=False)
    _seen: int = field(default=0, init=False)

    def __post_init__(self):
        self._regex = re.compile(self.stage_pattern)

    def matches(self, stage_name: str) -> bool:
        """True when this injector should strike during *this* stage."""
        if self.injected >= self.times:
            return False
        if not self._regex.search(stage_name):
            return False
        self._seen += 1
        return self._seen > self.skip_matches

    def fire(self) -> None:
        self.injected += 1


@dataclass
class ProcessKillInjector:
    """Send a real signal to a live pool worker when a matching stage
    starts (process backend only).

    ``signal`` of ``"kill"`` SIGKILLs the victim — a spontaneous crash
    the supervisor detects via pipe EOF / process sentinel.  ``"stop"``
    SIGSTOPs it — a frozen-but-alive worker whose heartbeats cease, so
    the liveness reaper must SIGKILL it; no SIGCONT is ever sent.
    ``worker`` of ``None`` picks the highest-numbered live pool worker
    at fire time, mirroring :class:`WorkerLossInjector`.
    ``skip_matches``/``times`` follow the same schedule idiom.
    """

    stage_pattern: str
    signal: str = "kill"
    worker: int | None = None
    skip_matches: int = 0
    times: int = 1
    injected: int = field(default=0, init=False)
    _seen: int = field(default=0, init=False)

    def __post_init__(self):
        if self.signal not in ("kill", "stop"):
            raise ValueError(
                f"ProcessKillInjector signal must be 'kill' or 'stop', "
                f"got {self.signal!r}")
        self._regex = re.compile(self.stage_pattern)

    def matches(self, stage_name: str) -> bool:
        """True when this injector should strike during *this* stage."""
        if self.injected >= self.times:
            return False
        if not self._regex.search(stage_name):
            return False
        self._seen += 1
        return self._seen > self.skip_matches

    def fire(self) -> None:
        self.injected += 1


@dataclass
class MemoryPressureInjector:
    """Shrink the per-worker memory budget when a matching stage starts.

    Models a noisy neighbour (another application's executors growing)
    rather than a crash: when the injector fires, the cluster's
    :class:`repro.engine.memory.MemoryManager` budget drops to
    ``fraction`` of the current peak per-worker resident bytes, forcing
    least-recently-touched cached partitions to spill.  The injected
    budget is *soft* — enforcement spills and counts overflows but never
    raises — because chaos faults must degrade a run, not change its
    result.  ``skip_matches``/``times`` follow
    :class:`WorkerLossInjector` so seeded schedules can strike random
    fixpoint iterations.
    """

    stage_pattern: str
    fraction: float = 0.5
    skip_matches: int = 0
    times: int = 1
    injected: int = field(default=0, init=False)
    _seen: int = field(default=0, init=False)

    def __post_init__(self):
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(
                f"fraction must be in (0, 1], got {self.fraction!r}")
        self._regex = re.compile(self.stage_pattern)

    def matches(self, stage_name: str) -> bool:
        """True when this injector should strike before *this* stage."""
        if self.injected >= self.times:
            return False
        if not self._regex.search(stage_name):
            return False
        self._seen += 1
        return self._seen > self.skip_matches

    def fire(self) -> None:
        self.injected += 1


@dataclass
class CorruptionInjector:
    """Flip one value inside a shuffle bucket of a matching exchange.

    Models an in-flight bit flip / torn frame on the wire: the reduce
    side receives a bucket whose content no longer matches what the map
    side hashed.  With ``verify_shuffle_checksums`` on (the default) the
    cluster detects the mismatch, charges a re-fetch, and delivers the
    pristine rows — results stay bit-exact; with verification off the
    mangled rows flow through and the run diverges (which is the test
    that the checksums earn their keep).

    The victim bucket/row/column are drawn from a ``seed``-derived RNG,
    never wall-clock entropy, so chaos schedules replay identically.
    ``skip_matches`` counts *exchanges* (each shuffle is one match),
    letting schedules strike random iterations.
    """

    skip_matches: int = 0
    times: int = 1
    seed: int = 0
    injected: int = field(default=0, init=False)
    _seen: int = field(default=0, init=False)
    _armed: bool = field(default=False, init=False)

    def __post_init__(self):
        self._rng = random.Random((self.seed * 2654435761 + 97) % 2**32)

    def matches(self) -> bool:
        """Consult once per exchange; arms the injector for one bucket."""
        if self.injected >= self.times or self._armed:
            return False
        self._seen += 1
        if self._seen <= self.skip_matches:
            return False
        self._armed = True
        return True

    def corrupt(self, rows: list[tuple]) -> list[tuple] | None:
        """Mangle one row of *rows* if armed; returns the corrupted copy."""
        if not self._armed or not rows:
            return None
        self._armed = False
        self.injected += 1
        mangled = list(rows)
        index = self._rng.randrange(len(mangled))
        victim = mangled[index]
        if victim:
            column = self._rng.randrange(len(victim))
            value = victim[column]
            flipped = (value + 1) if isinstance(value, (int, float)) \
                and not isinstance(value, bool) else "§corrupt"
            mangled[index] = victim[:column] + (flipped,) + victim[column + 1:]
        else:
            mangled[index] = ("§corrupt",)
        return mangled


@dataclass
class DriverKillInjector:
    """Kill the *driver* when a matching stage is about to start.

    Unlike every other injector, this one is unrecoverable in-process:
    the cluster raises :class:`repro.errors.DriverCrashError` — which is
    deliberately not a :class:`repro.errors.RaSQLError`, so no layer of
    the engine or the serving stack absorbs it.  Chaos harnesses catch
    it at the outermost level and model the restart (WAL replay +
    checkpoint resume).  ``skip_matches``/``times`` follow
    :class:`WorkerLossInjector`.
    """

    stage_pattern: str
    skip_matches: int = 0
    times: int = 1
    injected: int = field(default=0, init=False)
    _seen: int = field(default=0, init=False)

    def __post_init__(self):
        self._regex = re.compile(self.stage_pattern)

    def matches(self, stage_name: str) -> bool:
        if self.injected >= self.times:
            return False
        if not self._regex.search(stage_name):
            return False
        self._seen += 1
        return self._seen > self.skip_matches

    def fire(self) -> None:
        self.injected += 1


class RecoveryManager:
    """Retry budget, backoff, and worker blacklisting for one cluster.

    The cluster consults this on every task failure; the manager only
    tracks *policy state* (per-worker failure tallies, the blacklist) —
    the cluster owns execution and cost accounting.  ``rng`` is the
    cluster's seeded random source; backoff jitter
    (``FaultToleranceConfig.backoff_jitter``) draws from it exclusively,
    keeping replays deterministic.
    """

    def __init__(self, config: FaultToleranceConfig | None = None,
                 rng: random.Random | None = None):
        self.config = config or FaultToleranceConfig()
        self.failures_by_worker: dict[int, int] = {}
        self.blacklisted: set[int] = set()
        self._rng = rng

    def record_failure(self, worker: int) -> bool:
        """Attribute one task failure to a worker.

        Returns ``True`` when this failure pushed the worker over the
        blacklist threshold (i.e. it is *newly* blacklisted).
        """
        count = self.failures_by_worker.get(worker, 0) + 1
        self.failures_by_worker[worker] = count
        if worker not in self.blacklisted and count >= self.config.blacklist_after:
            self.blacklisted.add(worker)
            return True
        return False

    def check_retry_budget(self, stage: str, task_index: int,
                           failures: int) -> None:
        """Raise when a task has failed more times than the budget allows."""
        if failures > self.config.max_task_retries:
            raise TaskRetryExhaustedError(
                f"task {task_index} of stage {stage!r} failed {failures} "
                f"times, exceeding max_task_retries="
                f"{self.config.max_task_retries}",
                stage=stage, task_index=task_index, attempts=failures)

    def backoff_seconds(self, base: float, failures: int) -> float:
        """Exponential retry backoff charged to the simulated clock.

        With ``backoff_jitter`` configured, the backoff is stretched by
        up to that fraction using the seeded RNG (decorrelating retry
        storms the way wall-clock jitter would, without the
        nondeterminism).
        """
        backoff = base * (2 ** max(0, failures - 1))
        jitter = self.config.backoff_jitter
        if jitter and self._rng is not None:
            backoff *= 1.0 + jitter * self._rng.random()
        return backoff
