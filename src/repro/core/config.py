"""Execution configuration: every optimization knob of Sections 6–7.

The defaults reproduce the paper's reference configuration ("RaSQL is
configured to execute queries using shuffle-hash join and optimized DSN
evaluation with stage combination and code generation", Section 8); each
benchmark flips exactly the knob its figure ablates.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

# Re-exported here so callers configuring a session can import every knob
# from one place; the class lives in the engine layer (which must not
# import core) next to the injectors it governs.
from repro.engine.faults import FaultToleranceConfig

__all__ = ["DEFAULT_CHECKPOINT_INTERVAL", "DEFAULT_CONFIG", "ExecutionConfig",
           "FaultToleranceConfig"]

#: The interval the CLI's bare ``--checkpoint DIR`` (no explicit
#: ``--checkpoint-interval``) uses, and the one the overhead benchmark's
#: <10% acceptance bound is measured at.
DEFAULT_CHECKPOINT_INTERVAL = 4


@dataclass(frozen=True)
class ExecutionConfig:
    """Knobs of the fixpoint operator and its physical plans.

    evaluation:
        ``"dsn"`` — distributed semi-naive (Algorithms 4–6), the default.
        ``"naive"`` — Algorithm 1/2: re-derive from the full relation each
        iteration (used by the PreM tool and semantics tests).
        ``"stratified"`` — ignore head aggregates during recursion and
        apply them afterwards (Figure 1's comparison); may not terminate
        on cyclic data, exactly as the paper warns.
    stage_combination:
        Fuse Reduce(i) with Map(i+1) into one ShuffleMap stage
        (Section 7.1, Figure 5).
    join_strategy:
        ``"shuffle_hash"`` (cached base build side), ``"sort_merge"``
        (cached sorted base run) — Appendix D / Figure 11.  Either applies
        only where the co-partitioned path is available; other rules use
        broadcast joins.
    broadcast_bases:
        Force every base relation to be broadcast instead of co-partitioned
        (the decomposed plan of Section 7.2 requires this; it is also the
        fallback for multi-join and theta rules).
    broadcast_compression:
        Broadcast the compressed rows and rebuild hash tables on workers
        instead of shipping the built hash table (Section 7.2, Figure 6).
    decomposed_plans:
        Run decomposable cliques (Section 7.2) as independent per-partition
        fixpoints with no shuffle.
    codegen:
        Fuse each rule pipeline into one generated Python function
        (Section 7.3, Figure 7) instead of interpreting closure chains.
    partial_aggregation:
        Map-side combine before the shuffle (Algorithm 5 line 5).
    use_setrdd:
        Mutable all-relation state (Section 6.1).  ``False`` re-creates the
        state dict/set every iteration, modelling immutable RDD lineage —
        the SetRDD ablation.
    magic_filters:
        Seed the recursion with the final SELECT's equality constants on
        delta-preserved columns (a lightweight magic-sets rewrite; see
        :func:`repro.core.optimizer.magic_filter_pushdown`).
    kernels:
        Run the fixpoint hot path through the precompiled specialized
        kernels of :mod:`repro.engine.kernels` (itemgetter key extractors,
        batched shuffle routing, cached state build tables, unrolled
        aggregate merges).  ``False`` routes everything through the naive
        reference loops — the bit-exact baseline the differential suite
        (``pytest -m kernels``) compares against.  Wall-clock only: the
        simulated cost model is identical either way.
    adaptive_joins:
        Re-choose the join strategy of co-partitioned base joins per
        evaluation from observed delta/build cardinalities (hash vs
        sort-merge vs nested-loop; AQE-style).  Requires ``kernels``;
        choices are surfaced in EXPLAIN ANALYZE's "kernels" section.
    kernel_min_rows:
        Size gate for the kernel layer: a clique whose distinct base
        inputs total fewer rows than this runs through the reference
        loops even when ``kernels`` is on.  Router construction, padder
        specialization and state-table caching are per-query setup costs
        that dominate sub-millisecond queries (BENCH_5.json showed
        ``same_generation`` at 0.75x and ``bom_stratified`` at 0.68x);
        below the threshold the dispatch overhead cannot amortize.
        ``0`` disables the gate.  Results are bit-exact either way —
        the gate moves only wall-clock time.
    columnar_batches:
        Run the kernel layer's hot paths over column-decomposed
        :class:`repro.engine.columnar.ColumnBatch` batches — columnar
        base routing and hash-table builds, slot-specialized columnar
        aggregate merges — and use the batch encoding (narrow-width int
        columns + DEFLATE) as the process backend's wire format for
        per-iteration delta payloads and reply buckets.  Requires
        ``kernels`` and obeys ``kernel_min_rows``; ``False`` keeps the
        row-tuple representation end to end.  Bit-exact either way (the
        differential suite under ``pytest -m kernels`` pins rows *and*
        iteration counts); only wall-clock time and process-backend
        payload bytes move.  CLI: ``--no-columnar``.
    max_iterations:
        Safety budget; exceeding it raises
        :class:`repro.errors.FixpointNotReachedError`.  Also bounds the
        SQL-loop baseline's iteration budget
        (:class:`repro.baselines.sql_loop.SQLLoopEngine`).
    deadline_seconds:
        Cooperative per-query deadline in *simulated* seconds (``None``
        disables it).  The cluster checks the simulated clock at stage
        boundaries and raises
        :class:`repro.errors.QueryDeadlineExceededError` — with the
        partial trace attached — once the clock passes the deadline.
        Exposed on the CLI as ``--timeout``.
    checkpoint_interval:
        Persist a durable fixpoint checkpoint every N completed
        iterations (``0`` disables).  Checkpointing is *active* only
        when both this and ``checkpoint_dir`` are set; each knob alone
        is valid but inert, so configs can be composed piecewise.
        While active, decomposed plans are disabled for the checkpointed
        clique (their per-partition local fixpoints have no global
        iteration barrier to cut a consistent checkpoint at).  CLI:
        ``--checkpoint-interval``.
    checkpoint_dir:
        Directory receiving checkpoint blobs and the per-query manifest
        (see :mod:`repro.core.checkpoint`).  A killed or
        deadline-exceeded query resumes from its last completed
        checkpointed iteration via :meth:`repro.RaSQLContext.resume`.
        CLI: ``--checkpoint DIR``.
    backend:
        ``"simulated"`` — the deterministic single-process cluster (the
        oracle every differential suite compares against).
        ``"process"`` — real OS worker processes (spawn-start
        ``multiprocessing``) behind the same cluster abstraction, with
        supervision: heartbeats, hung-task reaping, crash replay, poison
        quarantine (see :mod:`repro.engine.backend`).  Results are
        bit-exact either way; only wall-clock parallelism changes.
        Knobs for the supervision layer live in
        :class:`repro.engine.backend.ProcessConfig` (a cluster-level
        concern, not a per-query plan knob).  CLI: ``--backend``.
    """

    evaluation: str = "dsn"
    stage_combination: bool = True
    join_strategy: str = "shuffle_hash"
    broadcast_bases: bool = False
    broadcast_compression: bool = True
    decomposed_plans: bool = True
    codegen: bool = True
    partial_aggregation: bool = True
    use_setrdd: bool = True
    magic_filters: bool = True
    kernels: bool = True
    adaptive_joins: bool = True
    kernel_min_rows: int = 256
    columnar_batches: bool = True
    max_iterations: int = 100_000
    deadline_seconds: float | None = None
    checkpoint_interval: int = 0
    checkpoint_dir: str | None = None
    backend: str = "simulated"

    @property
    def checkpointing(self) -> bool:
        """True when checkpoints will actually be written."""
        return self.checkpoint_interval > 0 and self.checkpoint_dir is not None

    def __post_init__(self):
        if self.evaluation not in ("dsn", "naive", "stratified"):
            raise ValueError(f"unknown evaluation mode {self.evaluation!r}")
        if self.join_strategy not in ("shuffle_hash", "sort_merge"):
            raise ValueError(f"unknown join strategy {self.join_strategy!r}")
        if self.kernel_min_rows < 0:
            raise ValueError(
                f"kernel_min_rows must be >= 0, got {self.kernel_min_rows}")
        if self.max_iterations < 1:
            raise ValueError(
                f"max_iterations must be >= 1, got {self.max_iterations}")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError(
                f"deadline_seconds must be positive, got "
                f"{self.deadline_seconds}")
        if self.checkpoint_interval < 0:
            raise ValueError(
                f"checkpoint_interval must be >= 0, got "
                f"{self.checkpoint_interval}")
        if self.backend not in ("simulated", "process"):
            raise ValueError(f"unknown backend {self.backend!r}")

    def but(self, **changes) -> "ExecutionConfig":
        """A copy with some knobs changed (benchmark convenience)."""
        return replace(self, **changes)


#: The paper's reference configuration.
DEFAULT_CONFIG = ExecutionConfig()
