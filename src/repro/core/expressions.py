"""Expression resolution and compilation.

During analysis every rule gets a :class:`Layout`: the flattened row shape
produced by joining its FROM list in order.  Expressions compile against a
layout into plain Python closures over that flat tuple — the *interpreted*
evaluation mode.  (The generated-code mode lives in
:mod:`repro.core.codegen`; both must agree, which a property test checks.)

SQL comparison semantics with NULLs are simplified to Python semantics:
the dialect's workloads never produce NULLs (the analyzer has no outer
joins), so three-valued logic is out of scope and documented as such.
"""

from __future__ import annotations

import operator
from typing import Callable

from repro.core import ast_nodes as ast
from repro.errors import AnalysisError


class Layout:
    """Slot assignment for the flattened join row of one rule.

    ``bindings`` is the FROM list in order: ``(binding_name, columns)``.
    A column reference resolves to a slot index; unqualified names must be
    unambiguous across bindings.
    """

    def __init__(self, bindings: list[tuple[str, tuple[str, ...]]]):
        self.bindings = bindings
        self.slots: dict[tuple[str, str], int] = {}
        self.by_column: dict[str, list[int]] = {}
        self.offsets: dict[str, int] = {}
        index = 0
        for binding, columns in bindings:
            binding_key = binding.lower()
            if binding_key in self.offsets:
                raise AnalysisError(f"duplicate FROM binding {binding!r}")
            self.offsets[binding_key] = index
            for column in columns:
                key = (binding_key, column.lower())
                self.slots[key] = index
                self.by_column.setdefault(column.lower(), []).append(index)
                index += 1
        self.arity = index

    def slot_of(self, ref: ast.ColumnRef) -> int:
        """Resolve a column reference to its slot, with SQL error messages."""
        if ref.table is not None:
            binding_key = ref.table.lower()
            if binding_key not in self.offsets:
                raise AnalysisError(f"unknown table or alias {ref.table!r} "
                                    f"in reference {ref.to_sql()!r}")
            slot = self.slots.get((binding_key, ref.name.lower()))
            if slot is None:
                raise AnalysisError(f"unknown column {ref.to_sql()!r}")
            return slot
        candidates = self.by_column.get(ref.name.lower(), [])
        if not candidates:
            raise AnalysisError(f"unknown column {ref.name!r}")
        if len(candidates) > 1:
            raise AnalysisError(f"ambiguous column {ref.name!r} "
                                f"(matches {len(candidates)} bindings)")
        return candidates[0]

    def binding_of_slot(self, slot: int) -> str:
        """Which FROM binding a slot belongs to (used by the planner)."""
        owner = None
        for binding, columns in self.bindings:
            start = self.offsets[binding.lower()]
            if start <= slot < start + len(columns):
                owner = binding
        if owner is None:
            raise AnalysisError(f"slot {slot} out of range")
        return owner


_ARITHMETIC = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}

_COMPARISON = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def compile_expr(expr: ast.Expr, layout: Layout) -> Callable[[tuple], object]:
    """Compile an expression into a ``row -> value`` closure.

    Aggregate calls are rejected — they are only legal inside GROUP BY
    evaluation, which :mod:`repro.core.executor` handles separately.
    """
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda row: value

    if isinstance(expr, ast.ColumnRef):
        slot = layout.slot_of(expr)
        return lambda row: row[slot]

    if isinstance(expr, ast.BinaryOp):
        op = expr.op.upper()
        if op == "AND":
            left = compile_expr(expr.left, layout)
            right = compile_expr(expr.right, layout)
            return lambda row: bool(left(row)) and bool(right(row))
        if op == "OR":
            left = compile_expr(expr.left, layout)
            right = compile_expr(expr.right, layout)
            return lambda row: bool(left(row)) or bool(right(row))
        fn = _ARITHMETIC.get(expr.op) or _COMPARISON.get(expr.op)
        if fn is None:
            raise AnalysisError(f"unsupported operator {expr.op!r}")
        left = compile_expr(expr.left, layout)
        right = compile_expr(expr.right, layout)
        return lambda row: fn(left(row), right(row))

    if isinstance(expr, ast.UnaryOp):
        inner = compile_expr(expr.operand, layout)
        if expr.op.upper() == "NOT":
            return lambda row: not inner(row)
        if expr.op == "-":
            return lambda row: -inner(row)
        raise AnalysisError(f"unsupported unary operator {expr.op!r}")

    if isinstance(expr, ast.Case):
        compiled = [(compile_expr(c, layout), compile_expr(v, layout))
                    for c, v in expr.whens]
        default = (compile_expr(expr.default, layout)
                   if expr.default is not None else None)

        def evaluate_case(row):
            for condition, value in compiled:
                if condition(row):
                    return value(row)
            return default(row) if default is not None else None

        return evaluate_case

    if isinstance(expr, ast.FunctionCall):
        raise AnalysisError(
            f"aggregate {expr.name!r} is not allowed in this position")

    if isinstance(expr, ast.Star):
        raise AnalysisError("'*' is only allowed inside count(*)")

    raise AnalysisError(f"cannot compile expression {expr!r}")


def split_conjuncts(expr: ast.Expr | None) -> list[ast.Expr]:
    """Flatten a predicate into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op.upper() == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: list[ast.Expr]) -> ast.Expr | None:
    """Rebuild a predicate from conjuncts (inverse of split_conjuncts)."""
    if not conjuncts:
        return None
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = ast.BinaryOp("AND", result, conjunct)
    return result


def referenced_bindings(expr: ast.Expr, layout: Layout) -> set[str]:
    """The lowercase FROM-binding names an expression touches.

    Unqualified references are resolved through the layout first.
    """
    names: set[str] = set()
    for node in expr.walk():
        if isinstance(node, ast.ColumnRef):
            if node.table is not None:
                names.add(node.table.lower())
            else:
                slot = layout.slot_of(node)
                names.add(layout.binding_of_slot(slot).lower())
    return names


def is_equi_conjunct(expr: ast.Expr) -> tuple[ast.ColumnRef, ast.ColumnRef] | None:
    """If *expr* is ``col = col`` between two columns, return the pair."""
    if (isinstance(expr, ast.BinaryOp) and expr.op == "="
            and isinstance(expr.left, ast.ColumnRef)
            and isinstance(expr.right, ast.ColumnRef)):
        return expr.left, expr.right
    return None


def fold_constants(expr: ast.Expr) -> ast.Expr:
    """Evaluate constant sub-expressions at compile time.

    One of the optimizer's batch rules (Section 5, "constant evaluation").
    """
    if isinstance(expr, ast.BinaryOp):
        left = fold_constants(expr.left)
        right = fold_constants(expr.right)
        if isinstance(left, ast.Literal) and isinstance(right, ast.Literal):
            op = expr.op.upper()
            if op == "AND":
                return ast.Literal(bool(left.value) and bool(right.value))
            if op == "OR":
                return ast.Literal(bool(left.value) or bool(right.value))
            fn = _ARITHMETIC.get(expr.op) or _COMPARISON.get(expr.op)
            if fn is not None and left.value is not None and right.value is not None:
                try:
                    return ast.Literal(fn(left.value, right.value))
                except (ZeroDivisionError, TypeError):
                    pass  # leave for runtime, which will raise properly
        return ast.BinaryOp(expr.op, left, right)
    if isinstance(expr, ast.UnaryOp):
        inner = fold_constants(expr.operand)
        if isinstance(inner, ast.Literal) and inner.value is not None:
            if expr.op.upper() == "NOT":
                return ast.Literal(not inner.value)
            if expr.op == "-":
                return ast.Literal(-inner.value)
        return ast.UnaryOp(expr.op, inner)
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(expr.name,
                                tuple(fold_constants(a) for a in expr.args),
                                expr.distinct)
    if isinstance(expr, ast.Case):
        return ast.Case(
            tuple((fold_constants(c), fold_constants(v))
                  for c, v in expr.whens),
            fold_constants(expr.default) if expr.default is not None else None)
    return expr
