"""Physical planning: logical clique plans → compiled fixpoint inputs.

This is where the paper's physical choices are made (Sections 6–7,
Appendix D):

- **Partition keys.** Each clique view is hash-partitioned on the columns
  through which recursive rules join it (Algorithm 4's requirement that
  the reduce key equal the join key).  Views only referenced join-lessly
  default to their group key.
- **Delta expansion.** A rule with one recursive reference yields one
  term; with two references it yields the two classic semi-naive cross
  terms, plus a negated δ⋈δ inclusion-exclusion correction when the head
  aggregates are ``sum``/``count`` (set and min/max semantics absorb the
  overlap, accumulation does not).
- **Join strategy.** The first join of a term runs co-partitioned
  (shuffle-hash with cached base build side, or sort-merge) when the
  delta-side equi columns are exactly the view's partition key; every
  other base input is broadcast; non-equi inputs fall back to nested
  loops.  Sibling-state joins are co-partitioned when keys align and
  gather otherwise.
- **Increment vs total.** For ``sum``/``count`` delta views, a term that
  filters or joins on the aggregate column reads group *totals*
  (TotalizeStep); linear propagation reads increments.  Mixing both in one
  rule is rejected as unsupported.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core import ast_nodes as ast
from repro.core.config import ExecutionConfig
from repro.core.decompose import decompose_keys
from repro.core.expressions import compile_expr, conjoin, referenced_bindings
from repro.core.logical import (
    CliquePlan,
    JoinNode,
    RecursiveScanNode,
    RulePlan,
    ScanNode,
    ViewPlan,
)
from repro.core.physical import (
    BaseRelationPlan,
    CompiledTerm,
    FilterStep,
    HashJoinStep,
    NestedLoopStep,
    PhysicalClique,
    PhysicalView,
    SortMergeJoinStep,
    Step,
    TotalizeStep,
    make_projector,
)
from repro.engine.kernels import make_padder
from repro.errors import PlanningError


# ---------------------------------------------------------------------------
# partition keys
# ---------------------------------------------------------------------------


def _equi_slot_pairs(rule: RulePlan) -> list[tuple[int, int]]:
    """Equi conjuncts as (slot, slot) pairs over the rule layout."""
    pairs = []
    for left, right in rule.join.equi_conjuncts:
        pairs.append((rule.layout.slot_of(left), rule.layout.slot_of(right)))
    return pairs


def _segment_of(rule: RulePlan, input_index: int) -> tuple[int, int]:
    """(offset, arity) of one join input's slot segment."""
    node = rule.join.inputs[input_index]
    offset = rule.layout.offsets[node.binding.lower()]
    return offset, len(node.columns)


def _reference_key_candidates(view_name: str, clique: CliquePlan
                              ) -> list[tuple[int, ...]]:
    """Join-key position tuples for every recursive reference of a view."""
    target = view_name.lower()
    candidates = []
    for view in clique.views:
        for rule in view.recursive_rules:
            pairs = _equi_slot_pairs(rule)
            for index in rule.recursive_inputs():
                node = rule.join.inputs[index]
                if node.view.lower() != target:
                    continue
                offset, arity = _segment_of(rule, index)
                positions = set()
                for a, b in pairs:
                    inside_a = offset <= a < offset + arity
                    inside_b = offset <= b < offset + arity
                    if inside_a != inside_b:
                        positions.add((a if inside_a else b) - offset)
                if positions:
                    candidates.append(tuple(sorted(positions)))
    return candidates


def plan_partition_keys(clique: CliquePlan,
                        effective_aggregates: dict[str, tuple]) -> dict[str, tuple[int, ...]]:
    """Choose the hash-partition key positions of every clique view."""
    keys: dict[str, tuple[int, ...]] = {}
    for view in clique.views:
        name = view.name.lower()
        aggregates = effective_aggregates[name]
        group_positions = tuple(i for i, a in enumerate(aggregates) if a is None)
        candidates = _reference_key_candidates(view.name, clique)
        if any(a is not None for a in aggregates):
            # Partitioning must be a function of the group key, or groups
            # would straddle partitions.
            candidates = [c for c in candidates
                          if set(c) <= set(group_positions)]
            default = group_positions
        else:
            default = tuple(range(len(view.columns)))
        if candidates:
            keys[name] = Counter(candidates).most_common(1)[0][0]
        else:
            keys[name] = default if default else (0,)
    return keys


# ---------------------------------------------------------------------------
# term compilation
# ---------------------------------------------------------------------------


class _StepIds:
    """Monotonic step-id allocator shared across one clique's terms."""

    def __init__(self):
        self.next_id = 0

    def take(self) -> int:
        value = self.next_id
        self.next_id += 1
        return value


@dataclass
class _TermContext:
    clique: CliquePlan
    views: dict[str, PhysicalView]
    config: ExecutionConfig
    decomposed: bool
    step_ids: _StepIds
    base_plans: list[BaseRelationPlan]


def _delta_value_mode(rule: RulePlan, delta_index: int,
                      delta_view: PhysicalView) -> str:
    """``"increment"`` or ``"total"`` for a sum/count delta (see module doc)."""
    accumulating = [p for p, a in enumerate(delta_view.aggregates)
                    if a is not None and a.name in ("sum", "count")]
    if not accumulating:
        return "increment"

    offset, arity = _segment_of(rule, delta_index)
    agg_slots = {offset + p for p in accumulating}

    def touches(exprs) -> bool:
        for expr in exprs:
            for node in expr.walk():
                if isinstance(node, ast.ColumnRef):
                    if rule.layout.slot_of(node) in agg_slots:
                        return True
        return False

    filter_exprs = list(rule.join.residual)
    filter_exprs += [side for pair in rule.join.equi_conjuncts for side in pair]
    in_filter = touches(filter_exprs)
    in_projection = touches(rule.projections)
    if in_filter and in_projection:
        raise PlanningError(
            f"rule of view {rule.view!r} both filters on and propagates the "
            f"sum/count column of {delta_view.name!r}; increment semantics "
            f"cannot express this (see DESIGN.md)")
    return "total" if in_filter else "increment"


def _compile_term(ctx: _TermContext, target: PhysicalView, rule: RulePlan,
                  delta_index: int, other_rec_sources: dict[int, str],
                  negate: bool) -> CompiledTerm:
    """Compile one delta-expansion term of one rule.

    ``other_rec_sources`` maps non-delta recursive input positions to
    ``"state"`` or ``"delta"`` (the latter only in δ⋈δ correction terms).
    """
    layout = rule.layout
    arity = layout.arity
    join: JoinNode = rule.join
    delta_node = join.inputs[delta_index]
    assert isinstance(delta_node, RecursiveScanNode)
    delta_view = ctx.views[delta_node.view.lower()]
    delta_offset, delta_arity = _segment_of(rule, delta_index)

    pairs = _equi_slot_pairs(rule)
    steps: list[Step] = []
    bound_bindings = {delta_node.binding.lower()}
    bound_slots = set(range(delta_offset, delta_offset + delta_arity))
    pending = [i for i in range(len(join.inputs)) if i != delta_index]

    # Residual conjuncts, compiled lazily once their bindings are bound.
    residual = list(join.residual)
    consumed = [False] * len(residual)

    def applicable_filters() -> list[FilterStep]:
        out = []
        for i, conjunct in enumerate(residual):
            if consumed[i]:
                continue
            refs = referenced_bindings(conjunct, layout)
            if refs <= bound_bindings:
                out.append(FilterStep(compile_expr(conjunct, layout),
                                      conjunct.to_sql()))
                consumed[i] = True
        return out

    # --- increment/total handling + delta-only prefilter -----------------
    value_mode = _delta_value_mode(rule, delta_index, delta_view)
    if value_mode == "total":
        group_slots = tuple(delta_offset + p for p in delta_view.group_positions)
        agg_map = tuple(
            (delta_offset + p, i)
            for i, p in enumerate(delta_view.aggregate_positions))
        steps.append(TotalizeStep(delta_view.name.lower(), delta_offset,
                                  group_slots, agg_map))
    steps.extend(applicable_filters())

    first_join = True
    copartition_index: int | None = None
    while pending:
        # Prefer an input reachable through an equi conjunct.
        chosen = None
        join_pairs: list[tuple[int, int]] = []  # (probe slot, build slot)
        for index in pending:
            offset, input_arity = _segment_of(rule, index)
            segment = range(offset, offset + input_arity)
            matched = []
            for a, b in pairs:
                if a in segment and b in bound_slots:
                    matched.append((b, a))
                elif b in segment and a in bound_slots:
                    matched.append((a, b))
            if matched:
                chosen, join_pairs = index, sorted(matched)
                break
        if chosen is None:
            chosen, join_pairs = pending[0], []
        pending.remove(chosen)

        node = join.inputs[chosen]
        offset, input_arity = _segment_of(rule, chosen)
        probe_slots = tuple(p for p, _ in join_pairs)
        build_slots = tuple(b for _, b in join_pairs)

        if isinstance(node, RecursiveScanNode):
            source = other_rec_sources[chosen]
            other_view = ctx.views[node.view.lower()]
            if not join_pairs:
                raise PlanningError(
                    f"recursive reference {node.view!r} in a rule of "
                    f"{rule.view!r} has no equi-join condition; cross "
                    f"products over recursive state are not supported")
            # Aligned when the delta side is keyed on its partition key and
            # the state side on its own.
            delta_key = tuple(sorted(s - delta_offset for s in probe_slots
                                     if delta_offset <= s < delta_offset + delta_arity))
            state_key = tuple(sorted(b - offset for b in build_slots))
            aligned = (len(probe_slots) == len(join_pairs)
                       and delta_key == delta_view.partition_key_positions
                       and state_key == other_view.partition_key_positions
                       and all(delta_offset <= s < delta_offset + delta_arity
                               for s in probe_slots))
            steps.append(HashJoinStep(
                ctx.step_ids.take(), source, probe_slots, build_slots,
                state_view=node.view.lower(), state_offset=offset,
                arity=arity, gather=not aligned))
        else:
            assert isinstance(node, ScanNode)
            scan_filter = None
            filter_sql = ""
            if node.filter is not None:
                scan_filter = compile_expr(node.filter, layout)
                filter_sql = node.filter.to_sql()

            delta_side_key = tuple(sorted(
                s - delta_offset for s in probe_slots
                if delta_offset <= s < delta_offset + delta_arity))
            can_copartition = (
                first_join
                and join_pairs
                and not ctx.config.broadcast_bases
                and not ctx.decomposed
                and all(delta_offset <= s < delta_offset + delta_arity
                        for s in probe_slots)
                and delta_side_key == delta_view.partition_key_positions)

            step_id = ctx.step_ids.take()
            if can_copartition:
                copartition_index = len(steps)
                if ctx.config.join_strategy == "sort_merge":
                    steps.append(SortMergeJoinStep(step_id, probe_slots,
                                                   build_slots))
                else:
                    steps.append(HashJoinStep(step_id, "base_partition",
                                              probe_slots, build_slots))
                mode = "copartition"
                equi = True
            elif join_pairs:
                steps.append(HashJoinStep(step_id, "broadcast", probe_slots,
                                          build_slots))
                mode = "broadcast"
                equi = True
            else:
                # Theta or cross join: collect conjuncts that become
                # evaluable exactly now and fuse them into the loop.
                theta = []
                future_bound = bound_bindings | {node.binding.lower()}
                for i, conjunct in enumerate(residual):
                    if not consumed[i] and referenced_bindings(
                            conjunct, layout) <= future_bound:
                        theta.append(conjunct)
                        consumed[i] = True
                predicate = (compile_expr(conjoin(theta), layout)
                             if theta else None)
                steps.append(NestedLoopStep(step_id, predicate))
                mode = "broadcast"
                equi = False
            ctx.base_plans.append(BaseRelationPlan(
                step_id, node.relation, node.binding, mode, offset, arity,
                build_slots, scan_filter, filter_sql, equi))

        bound_bindings.add(node.binding.lower())
        bound_slots.update(range(offset, offset + input_arity))
        first_join = False
        steps.extend(applicable_filters())

    if not all(consumed):
        raise PlanningError("internal: unconsumed residual conjuncts")

    # Delta prefilter: scan filter pushed onto the recursive reference is
    # impossible (optimizer never does it), but residuals touching only the
    # delta were already emitted as the first FilterSteps above.
    compiled_projections = [compile_expr(e, layout) for e in rule.projections]
    project = make_projector(compiled_projections, target.aggregates)

    return CompiledTerm(
        view=target.name.lower(),
        delta_view=delta_view.name.lower(),
        delta_offset=delta_offset,
        arity=arity,
        steps=steps,
        project=project,
        negate=negate,
        rule=rule,
        copartition_index=copartition_index,
        padder=(make_padder(delta_offset, arity, delta_arity)
                if ctx.config.kernels else None),
    )


def _expand_rule(ctx: _TermContext, target: PhysicalView,
                 rule: RulePlan) -> list[CompiledTerm]:
    """Delta-expand one recursive rule into compiled terms."""
    rec_positions = rule.recursive_inputs()
    accumulating = any(a is not None and a.name in ("sum", "count")
                       for a in target.aggregates)

    if len(rec_positions) == 1:
        (position,) = rec_positions
        return [_compile_term(ctx, target, rule, position, {}, negate=False)]

    if len(rec_positions) == 2:
        first, second = rec_positions
        terms = [
            # δ1 ⋈ all2 and all1 ⋈ δ2 — all-relations are post-merge (new).
            _compile_term(ctx, target, rule, first, {second: "state"},
                          negate=False),
            _compile_term(ctx, target, rule, second, {first: "state"},
                          negate=False),
        ]
        if accumulating:
            # Both cross terms double-count δ1 ⋈ δ2 under accumulation;
            # subtract it (inclusion–exclusion).  Idempotent semantics
            # (sets, min/max) absorb the overlap instead.
            terms.append(_compile_term(ctx, target, rule, first,
                                       {second: "delta"}, negate=True))
        return terms

    if accumulating:
        raise PlanningError(
            f"rule of view {rule.view!r} has {len(rec_positions)} recursive "
            f"references with sum/count aggregates; inclusion-exclusion "
            f"beyond two references is not implemented")
    return [_compile_term(ctx, target, rule, position,
                          {p: "state" for p in rec_positions if p != position},
                          negate=False)
            for position in rec_positions]


def _compile_base_rule(ctx: _TermContext, target: PhysicalView,
                       rule: RulePlan) -> CompiledTerm | tuple:
    """Base rules reuse the term pipeline with a scan as the driving input.

    Returns either a compiled term (driven by the full rows of its first
    FROM input) or, for FROM-less rules, the normalized constant rows.
    """
    if rule.join is None:
        normalize = [a.normalize if a is not None else (lambda v: v)
                     for a in target.aggregates]
        return tuple(tuple(fn(v) for fn, v in zip(normalize, row))
                     for row in rule.constant_rows)

    layout = rule.layout
    join = rule.join
    driving = 0
    driving_node = join.inputs[driving]
    offset, driving_arity = _segment_of(rule, driving)

    steps: list[Step] = []
    bound_bindings = {driving_node.binding.lower()}
    bound_slots = set(range(offset, offset + driving_arity))
    pending = [i for i in range(len(join.inputs)) if i != driving]
    pairs = _equi_slot_pairs(rule)
    residual = list(join.residual)
    consumed = [False] * len(residual)

    prefilter = None
    if isinstance(driving_node, ScanNode) and driving_node.filter is not None:
        prefilter = compile_expr(driving_node.filter, layout)

    def applicable_filters():
        out = []
        for i, conjunct in enumerate(residual):
            if not consumed[i] and referenced_bindings(
                    conjunct, layout) <= bound_bindings:
                out.append(FilterStep(compile_expr(conjunct, layout),
                                      conjunct.to_sql()))
                consumed[i] = True
        return out

    steps.extend(applicable_filters())

    while pending:
        chosen = None
        join_pairs: list[tuple[int, int]] = []
        for index in pending:
            o, a = _segment_of(rule, index)
            segment = range(o, o + a)
            matched = []
            for x, y in pairs:
                if x in segment and y in bound_slots:
                    matched.append((y, x))
                elif y in segment and x in bound_slots:
                    matched.append((x, y))
            if matched:
                chosen, join_pairs = index, sorted(matched)
                break
        if chosen is None:
            chosen, join_pairs = pending[0], []
        pending.remove(chosen)

        node = join.inputs[chosen]
        if not isinstance(node, ScanNode):
            raise PlanningError("base rule cannot reference recursive views")
        o, a = _segment_of(rule, chosen)
        scan_filter = (compile_expr(node.filter, layout)
                       if node.filter is not None else None)
        filter_sql = node.filter.to_sql() if node.filter is not None else ""
        step_id = ctx.step_ids.take()
        if join_pairs:
            probe = tuple(p for p, _ in join_pairs)
            build = tuple(b for _, b in join_pairs)
            steps.append(HashJoinStep(step_id, "broadcast", probe, build))
            equi = True
        else:
            theta = []
            future = bound_bindings | {node.binding.lower()}
            for i, conjunct in enumerate(residual):
                if not consumed[i] and referenced_bindings(
                        conjunct, layout) <= future:
                    theta.append(conjunct)
                    consumed[i] = True
            predicate = compile_expr(conjoin(theta), layout) if theta else None
            steps.append(NestedLoopStep(step_id, predicate))
            build = ()
            equi = False
        ctx.base_plans.append(BaseRelationPlan(
            step_id, node.relation, node.binding, "broadcast", o,
            layout.arity, build, scan_filter, filter_sql, equi))
        bound_bindings.add(node.binding.lower())
        bound_slots.update(range(o, o + a))
        steps.extend(applicable_filters())

    compiled = [compile_expr(e, layout) for e in rule.projections]
    project = make_projector(compiled, target.aggregates)
    return CompiledTerm(
        view=target.name.lower(),
        delta_view="",  # filled from the driving scan at execution
        delta_offset=offset,
        arity=layout.arity,
        steps=steps,
        project=project,
        delta_prefilter=prefilter,
        rule=rule,
        padder=(make_padder(offset, layout.arity, driving_arity)
                if ctx.config.kernels else None),
    )


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


@dataclass
class PlannedBaseRule:
    """A base rule ready for one-shot evaluation at fixpoint start."""

    view: str
    #: Compiled pipeline driven by ``driving_relation`` (None → constants).
    term: CompiledTerm | None
    driving_relation: str | None
    constant_rows: tuple = ()


@dataclass
class PlannedClique(PhysicalClique):
    """PhysicalClique plus planned base rules (separate dataclass so the
    engine-facing PhysicalClique stays importable without planner types).

    ``maintenance_terms`` (filled when planning with ``maintenance=True``)
    maps a base-table name to the terms that derive new facts when rows
    are *inserted* into that table: for every rule input scanning it, a
    term driven by the new rows, joining the other inputs — recursive
    references through the (gathered) current state, sibling scans through
    broadcast tables.  This is the incremental-view-maintenance machinery
    of :mod:`repro.core.streaming`.
    """

    base_rules: list[PlannedBaseRule] = None
    maintenance_terms: dict[str, list[CompiledTerm]] = None


def _compile_maintenance_term(ctx: _TermContext, target: PhysicalView,
                              rule: RulePlan, scan_index: int) -> CompiledTerm:
    """A term driven by *inserted rows* of one base input of a rule.

    Recursive references join against the gathered current state (an
    update batch is small and unpartitioned, so per-partition alignment
    does not apply); other scans join via broadcast tables.  State values
    are running totals, which is exactly what a fresh base fact must
    combine with.
    """
    layout = rule.layout
    join = rule.join
    driving = join.inputs[scan_index]
    assert isinstance(driving, ScanNode)
    offset, driving_arity = _segment_of(rule, scan_index)

    steps: list[Step] = []
    bound_bindings = {driving.binding.lower()}
    bound_slots = set(range(offset, offset + driving_arity))
    pending = [i for i in range(len(join.inputs)) if i != scan_index]
    pairs = _equi_slot_pairs(rule)
    residual = list(join.residual)
    consumed = [False] * len(residual)

    prefilter = (compile_expr(driving.filter, layout)
                 if driving.filter is not None else None)

    def applicable_filters():
        out = []
        for i, conjunct in enumerate(residual):
            if not consumed[i] and referenced_bindings(
                    conjunct, layout) <= bound_bindings:
                out.append(FilterStep(compile_expr(conjunct, layout),
                                      conjunct.to_sql()))
                consumed[i] = True
        return out

    steps.extend(applicable_filters())

    while pending:
        chosen = None
        join_pairs: list[tuple[int, int]] = []
        for index in pending:
            o, a = _segment_of(rule, index)
            segment = range(o, o + a)
            matched = []
            for x, y in pairs:
                if x in segment and y in bound_slots:
                    matched.append((y, x))
                elif y in segment and x in bound_slots:
                    matched.append((x, y))
            if matched:
                chosen, join_pairs = index, sorted(matched)
                break
        if chosen is None:
            chosen, join_pairs = pending[0], []
        pending.remove(chosen)

        node = join.inputs[chosen]
        o, a = _segment_of(rule, chosen)
        probe = tuple(p for p, _ in join_pairs)
        build = tuple(b for _, b in join_pairs)
        if isinstance(node, RecursiveScanNode):
            if not join_pairs:
                raise PlanningError(
                    "maintenance terms require an equi join to every "
                    "recursive reference")
            steps.append(HashJoinStep(
                ctx.step_ids.take(), "state", probe, build,
                state_view=node.view.lower(), state_offset=o,
                arity=layout.arity, gather=True))
        else:
            scan_filter = (compile_expr(node.filter, layout)
                           if node.filter is not None else None)
            filter_sql = node.filter.to_sql() if node.filter is not None else ""
            step_id = ctx.step_ids.take()
            if join_pairs:
                steps.append(HashJoinStep(step_id, "broadcast", probe, build))
                equi = True
            else:
                theta = []
                future = bound_bindings | {node.binding.lower()}
                for i, conjunct in enumerate(residual):
                    if not consumed[i] and referenced_bindings(
                            conjunct, layout) <= future:
                        theta.append(conjunct)
                        consumed[i] = True
                predicate = (compile_expr(conjoin(theta), layout)
                             if theta else None)
                steps.append(NestedLoopStep(step_id, predicate))
                equi = False
            ctx.base_plans.append(BaseRelationPlan(
                step_id, node.relation, node.binding, "broadcast", o,
                layout.arity, build, scan_filter, filter_sql, equi))
        bound_bindings.add(node.binding.lower())
        bound_slots.update(range(o, o + a))
        steps.extend(applicable_filters())

    compiled = [compile_expr(e, layout) for e in rule.projections]
    project = make_projector(compiled, target.aggregates)
    return CompiledTerm(
        view=target.name.lower(),
        delta_view=f"@{driving.relation.lower()}",
        delta_offset=offset,
        arity=layout.arity,
        steps=steps,
        project=project,
        delta_prefilter=prefilter,
        rule=rule,
    )


def plan_clique(clique: CliquePlan, config: ExecutionConfig,
                maintenance: bool = False) -> PlannedClique:
    """Compile one recursive clique under *config*.

    ``maintenance=True`` additionally compiles the insertion-maintenance
    terms used by incremental views (see :class:`PlannedClique`)."""
    stratified = config.evaluation == "stratified"
    effective_aggregates = {
        view.name.lower(): (tuple([None] * len(view.columns)) if stratified
                            else view.aggregates)
        for view in clique.views
    }

    keys = plan_partition_keys(clique, effective_aggregates)

    decomposition = decompose_keys(clique) if config.decomposed_plans else None
    decomposed = decomposition is not None
    if decomposed:
        keys.update(decomposition)

    views = {
        view.name.lower(): PhysicalView(
            plan=view,
            partition_key_positions=keys[view.name.lower()],
            aggregates=effective_aggregates[view.name.lower()])
        for view in clique.views
    }

    ctx = _TermContext(clique, views, config, decomposed, _StepIds(), [])

    terms: list[CompiledTerm] = []
    base_rules: list[PlannedBaseRule] = []
    for view in clique.views:
        target = views[view.name.lower()]
        for rule in view.recursive_rules:
            terms.extend(_expand_rule(ctx, target, rule))
        for rule in view.base_rules:
            compiled = _compile_base_rule(ctx, target, rule)
            if isinstance(compiled, CompiledTerm):
                driving = rule.join.inputs[0]
                base_rules.append(PlannedBaseRule(
                    view.name.lower(), compiled, driving.relation))
            else:
                base_rules.append(PlannedBaseRule(
                    view.name.lower(), None, None, compiled))

    maintenance_terms: dict[str, list[CompiledTerm]] = {}
    if maintenance:
        for view in clique.views:
            target = views[view.name.lower()]
            for rule in view.recursive_rules + view.base_rules:
                if rule.join is None:
                    continue
                for index, node in enumerate(rule.join.inputs):
                    if isinstance(node, ScanNode):
                        term = _compile_maintenance_term(ctx, target, rule,
                                                         index)
                        maintenance_terms.setdefault(
                            node.relation.lower(), []).append(term)

    if config.codegen:
        from repro.core.codegen import attach_generated_code

        for term in terms:
            attach_generated_code(term, views[term.view].aggregates,
                                  kernels=config.kernels)
        for base_rule in base_rules:
            if base_rule.term is not None:
                attach_generated_code(base_rule.term,
                                      views[base_rule.term.view].aggregates,
                                      kernels=config.kernels)
        for table_terms in maintenance_terms.values():
            for term in table_terms:
                attach_generated_code(term, views[term.view].aggregates,
                                      kernels=config.kernels)

    return PlannedClique(
        views=views,
        terms=terms,
        base_plans=ctx.base_plans,
        decomposable=decomposed,
        decompose_keys=decomposition or {},
        base_rules=base_rules,
        maintenance_terms=maintenance_terms,
    )
