"""Physical rule terms: the per-partition pipelines the fixpoint runs.

Planning (see :mod:`repro.core.planner`) turns every recursive rule into one
or more *terms* — the delta-expansion of semi-naive evaluation.  A term
fixes which recursive reference is fed by the delta; the remaining inputs
are joined against it through a pipeline of steps:

- :class:`HashJoinStep` — equi join against a prebuilt hash table: either a
  co-partitioned cached base partition (Appendix D's shuffle-hash join with
  the base always on the build side), a broadcast table (Section 7.2), or a
  sibling view's all-relation partition (mutual recursion cross terms).
- :class:`SortMergeJoinStep` — the Appendix D alternative for the
  co-partitioned path; the base side's sorted run is cached.
- :class:`NestedLoopStep` — theta joins (Interval Coalesce).
- :class:`FilterStep` / the final projection — residual predicates and the
  head expressions, with ``count()`` contribution normalization.

Rows travel as *padded* tuples of the rule's full layout arity: each FROM
binding owns a slot segment, unbound segments hold ``None``.  Joining two
padded rows is an elementwise coalesce.  This keeps one compiled expression
per rule valid at every pipeline position.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.logical import RulePlan, ViewPlan
from repro.engine.aggregates import AggregateFunction
from repro.engine.joins import build_hash_table, sort_merge_join, sort_rows
from repro.engine.kernels import make_extractor


def pad_row(row: tuple, offset: int, arity: int) -> tuple:
    """Place a source row into its segment of the combined layout."""
    return (None,) * offset + tuple(row) + (None,) * (arity - offset - len(row))


def merge_padded(left: tuple, right: tuple) -> tuple:
    """Coalesce two padded rows with disjoint bound segments."""
    return tuple(l if l is not None else r for l, r in zip(left, right))


def make_slots_key(slots: tuple[int, ...]) -> Callable[[tuple], object]:
    """Key extractor over combined-row slots (scalar for one slot)."""
    return make_extractor(slots)


class TermRuntime:
    """Mutable executor-side context a term evaluates against.

    Populated by the fixpoint operator during setup and iteration:

    - ``broadcast_tables[step_id]`` — hash table (or row list) over the
      padded rows of a broadcast base relation.
    - ``base_partitions[step_id][p]`` — cached hash table / sorted run of
      partition ``p`` of a co-partitioned base relation.
    - ``state_rows(view, p)`` — current all-relation rows of a view's
      partition ``p`` (full rows, head schema); ``p = -1`` gathers all
      partitions (the fallback when state keys are not join-aligned).
    - ``delta_rows(view, p)`` — the view's current-iteration delta rows
      (for the δ⋈δ correction terms of two-recursive-reference rules).
    - ``state_total(view, p, key)`` — current aggregate values of a group
      (increment→total conversion for filters over sum/count columns).
    - ``state_table(view, p, key_positions, pad)`` — version-validated
      cached hash table over a view's all-relation partition (the kernel
      layer; ``None`` when ``ExecutionConfig.kernels`` is off, in which
      case callers rebuild from ``state_rows``).  ``pad=None`` keys raw
      rows by relative positions (the codegen path); ``pad=(offset,
      arity)`` keys padded rows by absolute slots (the interpreted path).
    - ``base_raw[step_id][p]`` — the raw padded bucket list behind a
      co-partitioned build (what the adaptive join selector scans or
      re-indexes when it overrides the planner's strategy).
    """

    def __init__(self):
        self.broadcast_tables: dict[int, object] = {}
        self.base_partitions: dict[int, list] = {}
        self.base_raw: dict[int, list[list[tuple]]] = {}
        self.state_rows: Callable[[str, int], list[tuple]] | None = None
        self.delta_rows: Callable[[str, int], list[tuple]] | None = None
        self.state_total: Callable[[str, int, object], tuple | None] | None = None
        self.state_table: Callable[
            [str, int, tuple[int, ...], tuple[int, int] | None], dict] | None = None


class Step:
    """One pipeline stage: padded rows in, padded rows out."""

    def apply(self, rows: list[tuple], partition: int,
              runtime: TermRuntime) -> list[tuple]:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass
class HashJoinStep(Step):
    """Probe a hash table of padded build rows with a combined-row key.

    ``source`` selects where the table comes from:
    ``"broadcast"`` (built once at setup), ``"base_partition"`` (built once
    per partition at setup, cached across iterations), ``"state"`` or
    ``"delta"`` (rebuilt from the named view's partition each call — these
    change every iteration, so the table cannot be cached; see DESIGN.md
    for the trade-off).  ``gather=True`` reads all partitions of the state
    instead of the aligned one (the non-co-partitioned fallback).
    """

    step_id: int
    source: str
    probe_slots: tuple[int, ...]
    build_slots: tuple[int, ...]
    state_view: str | None = None
    state_offset: int = 0
    arity: int = 0
    gather: bool = False

    def __post_init__(self):
        # Extractors are specialized once per step, not once per task.
        self.probe_key = make_slots_key(self.probe_slots)
        self.build_key = make_slots_key(self.build_slots)

    def apply(self, rows, partition, runtime):
        probe_key = self.probe_key
        if self.source == "broadcast":
            table = runtime.broadcast_tables[self.step_id]
        elif self.source == "base_partition":
            table = runtime.base_partitions[self.step_id][partition]
        else:  # state or delta
            source_partition = -1 if self.gather else partition
            if self.source == "state" and runtime.state_table is not None:
                # Kernel layer: version-validated cached build table.
                table = runtime.state_table(
                    self.state_view, source_partition, self.build_slots,
                    (self.state_offset, self.arity))
            else:
                accessor = (runtime.state_rows if self.source == "state"
                            else runtime.delta_rows)
                state = accessor(self.state_view, source_partition)
                table = build_hash_table(
                    (pad_row(r, self.state_offset, self.arity) for r in state),
                    self.build_key)
        out: list[tuple] = []
        append = out.append
        get = table.get
        for row in rows:
            bucket = get(probe_key(row))
            if bucket is None:
                continue
            for build_row in bucket:
                append(merge_padded(row, build_row))
        return out

    def describe(self) -> str:
        return f"HashJoin[{self.source}] probe={self.probe_slots} build={self.build_slots}"


@dataclass
class SortMergeJoinStep(Step):
    """Co-partitioned sort-merge join; the base side's run is pre-sorted."""

    step_id: int
    probe_slots: tuple[int, ...]
    build_slots: tuple[int, ...]

    def __post_init__(self):
        self.probe_key = make_slots_key(self.probe_slots)
        self.build_key = make_slots_key(self.build_slots)

    def apply(self, rows, partition, runtime):
        probe_key = self.probe_key
        sorted_delta = sort_rows(rows, probe_key)
        base_sorted = runtime.base_partitions[self.step_id][partition]
        return sort_merge_join(sorted_delta, base_sorted, probe_key,
                               self.build_key, merge_padded)

    def describe(self) -> str:
        return f"SortMergeJoin probe={self.probe_slots} build={self.build_slots}"


@dataclass
class NestedLoopStep(Step):
    """Theta/cross join against a broadcast input's padded rows."""

    step_id: int
    predicate: Callable[[tuple], object] | None

    def apply(self, rows, partition, runtime):
        others = runtime.broadcast_tables[self.step_id]
        predicate = self.predicate
        out: list[tuple] = []
        append = out.append
        for row in rows:
            for other in others:
                merged = merge_padded(row, other)
                if predicate is None or predicate(merged):
                    append(merged)
        return out

    def describe(self) -> str:
        return "NestedLoopJoin" if self.predicate else "CrossJoin"


@dataclass
class TotalizeStep(Step):
    """Replace a delta's increment values by the group's current totals.

    Used when a rule *filters or joins on* a ``sum``/``count`` column of
    its delta view (Company Control's ``Tot > 50``, Party Attendance's
    ``Ncount >= 3``): the predicate must see the accumulated total, not the
    increment the delta carries for linear propagation.  The state is
    co-partitioned with the delta, so the lookup is partition-local.
    """

    view: str
    offset: int
    group_slots: tuple[int, ...]
    agg_slot_to_position: tuple[tuple[int, int], ...]

    def apply(self, rows, partition, runtime):
        group_key = make_slots_key(self.group_slots)
        out: list[tuple] = []
        for row in rows:
            totals = runtime.state_total(self.view, partition, group_key(row))
            if totals is None:
                continue  # group vanished (cannot happen under monotone merge)
            patched = list(row)
            for slot, position in self.agg_slot_to_position:
                patched[slot] = totals[position]
            out.append(tuple(patched))
        return out

    def describe(self) -> str:
        return f"Totalize[{self.view}]"


@dataclass
class FilterStep(Step):
    """Residual predicate applied once all its bindings are bound."""

    predicate: Callable[[tuple], object]
    sql: str = ""

    def apply(self, rows, partition, runtime):
        predicate = self.predicate
        return [row for row in rows if predicate(row)]

    def describe(self) -> str:
        return f"Filter[{self.sql}]"


@dataclass(frozen=True)
class GroupedDedupSpec:
    """Shape descriptor for the column-decomposed set fixpoint.

    Applies to terms of the form ``view(p..., y) <- delta(..), rel(..)``
    where ``rel`` is a single broadcast hash join, every projection part
    but the last reads only the delta row, and the last reads one build
    column.  The decomposed driver then keeps the member set as
    ``prefix -> {last column}`` and dedups whole adjacency sets with
    C-level set algebra instead of hashing every derived row tuple.

    ``probe`` and ``prefix`` are positions into delta (= view) rows;
    ``build_index`` indexes rows of the broadcast bucket list.
    """

    step_id: int
    probe: tuple[int, ...]
    prefix: tuple[int, ...]
    build_index: int


@dataclass
class CompiledTerm:
    """One delta-expansion term of one recursive rule, fully compiled.

    ``project`` maps a final combined row to the head row (aggregate
    contributions already normalized).  ``negate`` marks the
    inclusion-exclusion correction term of two-recursive-reference rules
    over ``sum``/``count`` (its contributions enter with flipped sign).
    """

    view: str
    delta_view: str
    delta_offset: int
    arity: int
    steps: list[Step]
    project: Callable[[tuple], tuple]
    delta_prefilter: Callable[[tuple], object] | None = None
    negate: bool = False
    rule: RulePlan | None = field(default=None, repr=False)
    #: Fused whole-pipeline function (Section 7.3); set by the planner when
    #: code generation is enabled and the pipeline is fusible.
    codegen_fn: Callable | None = field(default=None, repr=False)
    #: Comprehension variant ``(delta, partition, runtime) -> derived``
    #: (duplicates included) for aggregate-free terms (kernel layer); the
    #: decomposed set-fixpoint driver dedups each round with set algebra.
    codegen_dedup_fn: Callable | None = field(default=None, repr=False)
    #: Column-decomposed fixpoint shape (kernel layer); set when the term
    #: is a single broadcast join whose projection is delta-only parts
    #: followed by one build column — see ``codegen.grouped_dedup_spec``.
    grouped_spec: "GroupedDedupSpec | None" = field(default=None, repr=False)
    #: Index into ``steps`` of the co-partitioned first join (the one the
    #: adaptive selector may re-strategize), or ``None``.
    copartition_index: int | None = None
    #: Specialized delta padder (``kernels.make_padder``); set at plan time.
    padder: Callable[[tuple], tuple] | None = field(default=None, repr=False)

    def evaluate(self, delta_rows: list[tuple], partition: int,
                 runtime: TermRuntime) -> list[tuple]:
        """Run the pipeline over one partition's delta rows."""
        if self.codegen_fn is not None:
            return self.codegen_fn(delta_rows, partition, runtime)
        padder = self.padder
        if padder is not None:
            rows = [padder(r) for r in delta_rows]
        else:
            offset, arity = self.delta_offset, self.arity
            rows = [pad_row(r, offset, arity) for r in delta_rows]
        if self.delta_prefilter is not None:
            predicate = self.delta_prefilter
            rows = [row for row in rows if predicate(row)]
        for step in self.steps:
            if not rows:
                return []
            rows = step.apply(rows, partition, runtime)
        project = self.project
        return [project(row) for row in rows]

    def describe(self) -> str:
        parts = [f"Term[{self.view} <- delta({self.delta_view})"
                 f"{' NEGATED' if self.negate else ''}]"]
        parts += ["  " + s.describe() for s in self.steps]
        return "\n".join(parts)


def make_projector(compiled_exprs: list[Callable[[tuple], object]],
                   aggregates: tuple[AggregateFunction | None, ...],
                   ) -> Callable[[tuple], tuple]:
    """Build the head projector, normalizing aggregate contributions.

    Normalization (``count()`` over non-numeric contributions counts 1)
    happens here — at contribution-creation time — so it is applied exactly
    once regardless of whether map-side partial aggregation runs.
    """
    normalizers = [agg.normalize if agg is not None else None
                   for agg in aggregates]
    if not any(normalizers):
        return lambda row: tuple(fn(row) for fn in compiled_exprs)

    def project(row: tuple) -> tuple:
        out = []
        for fn, normalize in zip(compiled_exprs, normalizers):
            value = fn(row)
            out.append(normalize(value) if normalize is not None else value)
        return tuple(out)

    return project


@dataclass
class PhysicalView:
    """Execution-time description of one clique view."""

    plan: ViewPlan
    #: Head-column positions the view's delta/state are hash-partitioned on.
    partition_key_positions: tuple[int, ...]
    #: Effective aggregates: the view's, or all-``None`` in stratified mode.
    aggregates: tuple[AggregateFunction | None, ...]

    @property
    def name(self) -> str:
        return self.plan.name

    @property
    def has_aggregates(self) -> bool:
        return any(a is not None for a in self.aggregates)

    @property
    def group_positions(self) -> tuple[int, ...]:
        return tuple(i for i, a in enumerate(self.aggregates) if a is None)

    @property
    def aggregate_positions(self) -> tuple[int, ...]:
        return tuple(i for i, a in enumerate(self.aggregates) if a is not None)

    @property
    def aggregate_functions(self) -> tuple[AggregateFunction, ...]:
        return tuple(a for a in self.aggregates if a is not None)


@dataclass
class BaseRelationPlan:
    """How one base input of one term step is distributed and prebuilt.

    ``mode``: ``"copartition"`` (hash-partitioned on the build key, build
    side cached per partition — Appendix D) or ``"broadcast"``
    (Section 7.2).  ``filter`` is the scan's pushed-down predicate,
    compiled over the *padded* row.  ``equi=False`` means the broadcast
    value is a plain padded-row list for a nested-loop step.
    """

    step_id: int
    relation: str
    binding: str
    mode: str
    offset: int
    arity: int
    build_slots: tuple[int, ...]
    filter: Callable[[tuple], object] | None
    filter_sql: str
    equi: bool


@dataclass
class PhysicalClique:
    """Everything the fixpoint operator needs to run one clique."""

    views: dict[str, PhysicalView]
    terms: list[CompiledTerm]
    base_plans: list[BaseRelationPlan]
    decomposable: bool
    decompose_keys: dict[str, tuple[int, ...]]

    def view(self, name: str) -> PhysicalView:
        return self.views[name.lower()]

    def explain(self) -> str:
        lines = ["FixPoint [" + ", ".join(
            v.name for v in self.views.values()) + "]"]
        if self.decomposable:
            lines.append("  (decomposable: per-partition independent fixpoints)")
        for term in self.terms:
            for line in term.describe().splitlines():
                lines.append("  " + line)
        return "\n".join(lines)
