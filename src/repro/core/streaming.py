"""Incremental maintenance of recursive views under insertions.

The paper's future-work list includes extending aggregates-in-recursion
"to continuous queries on streaming data" (Section 10, citing the ASTRO
system).  The fixpoint machinery makes the monotone-insertion case
natural: RaSQL's recursion is monotone in its base facts — set views only
grow, min/max only improve, sum/count only accumulate — so inserting base
rows is just *more delta*:

1. new rows join the existing recursive state through *maintenance terms*
   (δbase ⋈ R_all, planned once per base-table occurrence in each rule);
2. the resulting contributions feed the ordinary semi-naive loop, which
   runs to quiescence from wherever the state already is.

Deletions and updates are out of scope (they would require non-monotone
view maintenance, e.g. DRed); ``insert`` is the only mutation.

Example::

    view = IncrementalView(ctx, SSSP_QUERY)
    view.result()                       # distances over the initial edges
    view.insert("edge", [(4, 9, 1.0)])  # shortcut appears
    view.result()                       # distances improved incrementally
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.analyzer import analyze
from repro.core.executor import execute_select
from repro.core.fixpoint import FixpointOperator
from repro.core.logical import CliquePlan, ScanNode
from repro.core.optimizer import optimize
from repro.core.parser import parse
from repro.core.physical import pad_row
from repro.core.planner import plan_clique
from repro.errors import AnalysisError, PlanningError
from repro.relation import Relation


class IncrementalView:
    """A continuously maintained RaSQL query over growing base tables.

    Restrictions (checked at construction):

    - the script must be a single WITH query over one recursive clique
      (no CREATE VIEW prelude — derived views would need their own
      maintenance logic);
    - the shuffle-hash join strategy (cached hash tables absorb appends;
      sorted runs would need re-sorting);
    - decomposed execution is disabled internally (its per-partition local
      state is not retained between calls);
    - a rule that references the inserted table *twice* is rejected for
      ``sum``/``count`` heads (the δ⋈δ overlap of same-table self-joins
      would double-count; set/min/max absorb it).
    """

    def __init__(self, ctx, query: str):
        self.ctx = ctx
        config = ctx.config
        if config.join_strategy != "shuffle_hash":
            raise PlanningError(
                "incremental views require the shuffle_hash join strategy")
        if config.evaluation != "dsn":
            raise PlanningError("incremental views require DSN evaluation")
        self.config = config.but(decomposed_plans=False)

        analyzed = optimize(analyze(parse(query), ctx.catalog))
        cliques = analyzed.cliques()
        if len(cliques) != 1 or len(analyzed.units) != 1:
            raise AnalysisError(
                "incremental views support exactly one recursive clique")
        self.clique: CliquePlan = cliques[0]
        self.final = analyzed.final
        self.planned = plan_clique(self.clique, self.config, maintenance=True)
        self._check_same_table_self_joins()

        # Mutable copies of the base tables this view reads, so inserts
        # are visible to the final stratum without touching the session
        # catalog.
        self._tables: dict[str, Relation] = {}
        for plan in self.planned.base_plans:
            key = plan.relation.lower()
            if key not in self._tables:
                original = ctx.catalog.get(plan.relation)
                self._tables[key] = Relation(original.name, original.columns,
                                             list(original.rows))
        for base_rule in self.planned.base_rules:
            if base_rule.driving_relation:
                key = base_rule.driving_relation.lower()
                if key not in self._tables:
                    original = ctx.catalog.get(base_rule.driving_relation)
                    self._tables[key] = Relation(
                        original.name, original.columns, list(original.rows))

        self.operator = FixpointOperator(self.planned, ctx.cluster,
                                         self.config, self._resolve)
        initial = self.operator.execute()
        self.iterations = initial.iterations
        #: Memoized final-SELECT output; dropped by the next ``insert``.
        self._cached_result: Relation | None = None
        #: How many times the final SELECT actually executed — repeated
        #: ``result()`` calls between inserts must not grow this (the
        #: serving layer reads it as the view's snapshot-hit telemetry).
        self.result_evaluations = 0

    # ------------------------------------------------------------------

    def _check_same_table_self_joins(self) -> None:
        for view in self.clique.views:
            target = self.planned.views[view.name.lower()]
            accumulating = any(a is not None and a.name in ("sum", "count")
                               for a in target.aggregates)
            if not accumulating:
                continue
            for rule in view.recursive_rules + view.base_rules:
                if rule.join is None:
                    continue
                tables = [n.relation.lower() for n in rule.join.inputs
                          if isinstance(n, ScanNode)]
                duplicated = {t for t in tables if tables.count(t) > 1}
                if duplicated:
                    raise PlanningError(
                        f"incremental maintenance of sum/count view "
                        f"{view.name!r} with a self-joined base table "
                        f"{sorted(duplicated)} would double-count")

    def _resolve(self, name: str) -> Relation:
        key = name.lower()
        if key in self._tables:
            return self._tables[key]
        return self.ctx.catalog.get(name)

    # ------------------------------------------------------------------

    def insert(self, table: str, rows: Iterable[Sequence]) -> int:
        """Insert rows into a base table and repair the view.

        Returns the number of fixpoint iterations the repair took (0 when
        the insertion derived nothing new).
        """
        key = table.lower()
        new_rows = [tuple(r) for r in rows]
        if not new_rows:
            return 0
        if key not in self._tables:
            raise AnalysisError(
                f"table {table!r} is not read by this view "
                f"(tables: {sorted(self._tables)})")
        relation = self._tables[key]
        for row in new_rows:
            if len(row) != len(relation.columns):
                raise AnalysisError(
                    f"row {row!r} does not match {table!r} schema "
                    f"{relation.columns}")

        # The base table is about to change, so the memoized final SELECT
        # goes stale even if the repair below derives nothing new (the
        # final stratum may scan the base table directly).
        self._cached_result = None

        # 1. make the new rows visible to every cached join side (before
        #    evaluating, so same-table multi-reference rules see them).
        self._absorb_into_join_sides(key, new_rows)
        relation.rows.extend(new_rows)

        # 2. derive the new contributions.
        outputs: dict[str, list[tuple]] = {}
        for term in self.planned.maintenance_terms.get(key, ()):
            derived = term.evaluate(new_rows, 0, self.operator.runtime)
            if derived:
                outputs.setdefault(term.view, []).extend(derived)

        if not outputs:
            return 0

        # 3. run the ordinary semi-naive loop from the existing state.
        incoming = self.operator._exchange_outputs(
            {view: {0: rows} for view, rows in outputs.items()},
            source_workers={0: 0})
        iterations, _ = self.operator._run_to_fixpoint(incoming)
        self.iterations += iterations
        return iterations

    def _absorb_into_join_sides(self, table_key: str,
                                new_rows: list[tuple]) -> None:
        runtime = self.operator.runtime
        for plan in self.planned.base_plans:
            if plan.relation.lower() != table_key:
                continue
            padded = [pad_row(r, plan.offset, plan.arity) for r in new_rows]
            if plan.filter is not None:
                padded = [r for r in padded if plan.filter(r)]
            if not padded:
                continue
            if plan.mode == "broadcast":
                target = runtime.broadcast_tables.get(plan.step_id)
                if target is None:
                    continue
                if plan.equi:
                    from repro.core.physical import make_slots_key

                    key_fn = make_slots_key(plan.build_slots)
                    for row in padded:
                        target.setdefault(key_fn(row), []).append(row)
                else:
                    target.extend(padded)
            else:  # copartition
                from repro.core.physical import make_slots_key

                key_fn = make_slots_key(plan.build_slots)
                tables = runtime.base_partitions[plan.step_id]
                partitions = self.operator._base_partition_objects[plan.step_id]
                partitioner = self.operator.partitioner
                for row in padded:
                    pid = partitioner.partition_of(key_fn(row))
                    tables[pid].setdefault(key_fn(row), []).append(row)
                    # Partition.rows aliases runtime.base_raw's bucket, so
                    # the adaptive selector's scan inputs stay in sync; its
                    # lazily re-indexed alternates must be dropped.
                    partitions[pid].rows.append(row)
                    partitions[pid]._size_bytes = None
                    self.operator.invalidate_base_build(plan.step_id, pid)

    # ------------------------------------------------------------------

    def result(self) -> Relation:
        """The final SELECT evaluated over the current state.

        Memoized until the next :meth:`insert`: between mutations the
        view's state is frozen, so repeated reads — the dominant access
        pattern once the view is served to many clients — return the
        cached relation without re-running the final stratum.  All
        readers between two inserts therefore observe the *same*
        snapshot object.
        """
        if self._cached_result is not None:
            return self._cached_result
        states = self.operator._relations()

        def resolve(name: str) -> Relation:
            key = name.lower()
            if key in states:
                return states[key]
            return self._resolve(name)

        # _relations() keys by original view name; index case-insensitively.
        states = {name.lower(): rel for name, rel in states.items()}
        self.result_evaluations += 1
        self._cached_result = execute_select(self.final, resolve, "result")
        return self._cached_result

    def view_relation(self, name: str) -> Relation:
        """The current contents of one recursive view."""
        states = self.operator._relations()
        for view_name, relation in states.items():
            if view_name.lower() == name.lower():
                return relation
        raise KeyError(name)
