"""Tokenizer for the RaSQL dialect.

Hand-written single-pass scanner producing a flat token list.  Keywords are
recognized case-insensitively but identifiers preserve their spelling (SQL
identifiers are case-insensitive at resolution time, handled by the
analyzer's schemas).  ``--`` line comments and ``/* */`` block comments are
skipped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError

KEYWORDS = frozenset({
    "WITH", "RECURSIVE", "AS", "SELECT", "DISTINCT", "FROM", "WHERE",
    "GROUP", "BY", "HAVING", "UNION", "ALL", "AND", "OR", "NOT",
    "CREATE", "VIEW", "NULL", "TRUE", "FALSE",
    "ORDER", "LIMIT", "ASC", "DESC", "BETWEEN", "IN",
    "CASE", "WHEN", "THEN", "ELSE", "END",
})

#: Multi- and single-character operators, longest first.
_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/",
              "(", ")", ",", ".", ";")


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is ``KEYWORD``, ``IDENT``, ``NUMBER``, ``STRING``, ``OP`` or
    ``EOF``; ``value`` holds the original text (keyword matching is
    case-insensitive, numbers are converted by the parser).
    """

    kind: str
    value: str
    position: int
    line: int
    column: int

    def matches(self, kind: str, value: str | None = None) -> bool:
        if self.kind != kind:
            return False
        if value is None:
            return True
        if kind == "KEYWORD":
            return self.value.upper() == value.upper()
        return self.value == value


def tokenize(text: str) -> list[Token]:
    """Scan *text* into tokens, ending with an EOF token."""
    tokens: list[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(text)

    def location(pos: int) -> tuple[int, int]:
        return line, pos - line_start + 1

    while i < n:
        ch = text[i]

        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch.isspace():
            i += 1
            continue

        # -- line comment
        if ch == "-" and i + 1 < n and text[i + 1] == "-":
            while i < n and text[i] != "\n":
                i += 1
            continue
        # /* block comment */
        if ch == "/" and i + 1 < n and text[i + 1] == "*":
            end = text.find("*/", i + 2)
            if end == -1:
                ln, col = location(i)
                raise ParseError("unterminated block comment", i, ln, col)
            for offset in range(i, end):
                if text[offset] == "\n":
                    line += 1
                    line_start = offset + 1
            i = end + 2
            continue

        ln, col = location(i)

        # string literal
        if ch == "'":
            j = i + 1
            chars: list[str] = []
            while j < n:
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":
                        chars.append("'")
                        j += 2
                        continue
                    break
                chars.append(text[j])
                j += 1
            else:
                raise ParseError("unterminated string literal", i, ln, col)
            tokens.append(Token("STRING", "".join(chars), i, ln, col))
            i = j + 1
            continue

        # number literal
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A dot not followed by a digit is a qualifier, not a
                    # decimal point (e.g. ``edge.Dst`` after ``1.``-free text).
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token("NUMBER", text[i:j], i, ln, col))
            i = j
            continue

        # identifier or keyword
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word.upper() in KEYWORDS:
                tokens.append(Token("KEYWORD", word, i, ln, col))
            else:
                tokens.append(Token("IDENT", word, i, ln, col))
            i = j
            continue

        # operator / punctuation
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token("OP", op, i, ln, col))
                i += len(op)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}", i, ln, col)

    tokens.append(Token("EOF", "", n, line, n - line_start + 1))
    return tokens
